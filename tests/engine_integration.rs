//! Cross-crate engine integration: conservation laws over full testbed
//! workflows, and query-level fault injection.

use ntga::prelude::*;

#[test]
fn counter_conservation_across_testbed_workflows() {
    // For every job of every approach on a two-star query:
    // shuffle records in == reduce records in; bytes are non-zero exactly
    // where the phase ran; every job's read bytes are covered by files
    // that existed (input or an earlier job's output).
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(25));
    let b1 = ntga::testbed::b_series().remove(1);
    for approach in [
        Approach::Pig,
        Approach::Hive,
        Approach::NtgaEager,
        Approach::NtgaLazyFull,
        Approach::NtgaLazyPartial(32),
    ] {
        let engine = ClusterConfig::default().engine_with(&store);
        let run = run_query(approach, &engine, &b1.query, "cons", false).unwrap();
        assert!(run.succeeded());
        let mut produced_text: u64 = store.text_bytes();
        for job in &run.stats.jobs {
            if job.reduce_tasks > 0 {
                assert_eq!(
                    job.map_output_records, job.reduce_input_records,
                    "{approach:?}/{}: shuffle not conserved",
                    job.name
                );
            }
            assert!(
                job.reduce_groups <= job.reduce_input_records,
                "{approach:?}/{}: more groups than records",
                job.name
            );
            assert!(
                job.hdfs_read_bytes <= produced_text * 2 + store.text_bytes(),
                "{approach:?}/{}: read more than ever produced",
                job.name
            );
            produced_text += job.output_text_bytes;
            assert!(job.sim_seconds >= job.startup_seconds);
        }
        // Workflow aggregates match per-job sums.
        let sum_writes: u64 = run.stats.jobs.iter().map(|j| j.hdfs_write_bytes).sum();
        assert_eq!(sum_writes, run.stats.total_write_bytes());
        assert!(run.stats.jobs.len() as u64 >= run.stats.mr_cycles);
    }
}

#[test]
fn query_results_survive_task_failures() {
    // Fault tolerance end-to-end: inject task failures into a whole NTGA
    // query workflow; retried tasks must reproduce byte-identical results.
    let store = datagen::bio2rdf::generate(&datagen::Bio2RdfConfig::with_genes(30));
    let a6 = ntga::testbed::a_series().remove(5);
    let gold = rdf_query::naive::evaluate(&a6.query, &store);
    assert!(!gold.is_empty());

    let clean_engine = ClusterConfig::default().engine_with(&store);
    let clean = run_query(Approach::NtgaAuto(64), &clean_engine, &a6.query, "f", true).unwrap();
    assert_eq!(clean.solutions.as_ref().unwrap(), &gold);
    let clean_retries: u64 = clean.stats.jobs.iter().map(|j| j.task_retries).sum();
    assert_eq!(clean_retries, 0);

    let faulty_engine = ClusterConfig::default()
        .engine_with(&store)
        .with_faults(mrsim::FaultConfig::with_probability(0.4, 21));
    let faulty = run_query(Approach::NtgaAuto(64), &faulty_engine, &a6.query, "f", true).unwrap();
    assert!(faulty.succeeded(), "{:?}", faulty.stats.failure);
    let retries: u64 = faulty.stats.jobs.iter().map(|j| j.task_retries).sum();
    assert!(retries > 0, "p=0.4 should have forced retries");
    assert_eq!(faulty.solutions.unwrap(), gold, "faults changed the results");
    // Byte counters unchanged: failed attempts ship nothing.
    assert_eq!(clean.stats.total_write_bytes(), faulty.stats.total_write_bytes());
}

#[test]
fn selectivity_estimates_order_testbed_stars_sensibly() {
    // The estimator must rank B2's filtered star as more selective than
    // B1's unfiltered one, and bound-only stars below unbound ones on row
    // cardinality.
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(60));
    let stats = store.stats();
    let b1 = ntga::testbed::b_series().remove(1).query;
    let b2 = ntga::testbed::b_series().remove(2).query;
    let b1_rows = rdf_query::estimate::star_row_cardinality(&b1.stars[0], &stats);
    let b2_rows = rdf_query::estimate::star_row_cardinality(&b2.stars[0], &stats);
    assert!(
        b2_rows < b1_rows,
        "partially-bound B2 star ({b2_rows}) must estimate below B1 ({b1_rows})"
    );
    // Estimates are in a sane relationship with reality: B1's star rows
    // are within 10x of the actual relational star-join output.
    let engine = ClusterConfig::default().engine_with(&store);
    let run = run_query(Approach::Hive, &engine, &b1, "est", false).unwrap();
    let actual_star_rows = run.stats.jobs[0].output_records as f64;
    assert!(
        b1_rows / actual_star_rows < 20.0 && actual_star_rows / b1_rows < 20.0,
        "estimate {b1_rows} vs actual {actual_star_rows} (off by more than 20x)"
    );
}
