//! Every testbed query of the paper, executed with every approach on
//! small instances of the matching generated datasets: results must agree
//! with the naive evaluator, and the structural claims of the paper
//! (cycle counts, full scans, relative write volumes) must hold.

use ntga::prelude::*;
use ntga::testbed::TestQuery;

fn bsbm() -> TripleStore {
    datagen::bsbm::generate(&datagen::BsbmConfig {
        products: 30,
        features: 20,
        max_features_per_product: 10,
        ..Default::default()
    })
}

fn bio() -> TripleStore {
    datagen::bio2rdf::generate(&datagen::Bio2RdfConfig::with_genes(35))
}

fn dbp() -> TripleStore {
    datagen::dbpedia::generate(&datagen::DbpediaConfig::with_entities(60))
}

fn check_all(queries: &[TestQuery], store: &TripleStore) {
    for tq in queries {
        let gold = rdf_query::naive::evaluate(&tq.query, store);
        for approach in [
            Approach::Pig,
            Approach::Hive,
            Approach::NtgaEager,
            Approach::NtgaLazyFull,
            Approach::NtgaLazyPartial(64),
            Approach::NtgaAuto(64),
        ] {
            let engine = ClusterConfig::default().engine_with(store);
            let run = run_query(approach, &engine, &tq.query, &tq.id, true)
                .unwrap_or_else(|e| panic!("{}/{:?}: {e}", tq.id, approach));
            assert!(run.succeeded(), "{}/{:?}: {:?}", tq.id, approach, run.stats.failure);
            assert_eq!(run.solutions.unwrap(), gold, "{}/{:?}: wrong solutions", tq.id, approach);
        }
    }
}

#[test]
fn case_study_queries_agree() {
    check_all(&ntga::testbed::case_study(), &bsbm());
}

#[test]
fn b_series_agree() {
    check_all(&ntga::testbed::b_series(), &bsbm());
}

#[test]
fn b1_varying_bound_agree() {
    let queries: Vec<TestQuery> = (3..=6).map(ntga::testbed::b1_varying_bound).collect();
    check_all(&queries, &bsbm());
}

#[test]
fn a_series_agree() {
    check_all(&ntga::testbed::a_series(), &bio());
}

#[test]
fn c_series_agree() {
    check_all(&ntga::testbed::c_series(), &dbp());
}

#[test]
fn ntga_cycle_counts_beat_relational() {
    // Two-star queries: Pig/Hive need 3+ cycles, NTGA exactly 2; NTGA
    // performs exactly one full scan of the base relation.
    let store = bsbm();
    for tq in ntga::testbed::b_series() {
        if tq.query.stars.len() != 2 {
            continue;
        }
        let engine = ClusterConfig::default().engine_with(&store);
        let ntga_run =
            run_query(Approach::NtgaAuto(64), &engine, &tq.query, &tq.id, false).unwrap();
        assert_eq!(ntga_run.stats.mr_cycles, 2, "{}", tq.id);
        assert_eq!(ntga_run.stats.full_scans, 1, "{}", tq.id);

        let engine = ClusterConfig::default().engine_with(&store);
        let hive_run = run_query(Approach::Hive, &engine, &tq.query, &tq.id, false).unwrap();
        assert_eq!(hive_run.stats.mr_cycles, 3, "{}", tq.id);
        assert!(hive_run.stats.full_scans >= 2, "{}", tq.id);
    }
}

#[test]
fn lazy_unnest_writes_less_on_unbound_queries() {
    // The paper's central quantitative claim: on unbound-property queries
    // lazy β-unnesting writes far fewer intermediate HDFS bytes than both
    // the relational plans and eager unnesting (80–98 % less in Figures
    // 10/13/14).
    let store = bio();
    for tq in ntga::testbed::a_series() {
        if tq.query.stars.len() < 2 {
            continue;
        }
        let mut writes = std::collections::HashMap::new();
        for approach in [Approach::Hive, Approach::NtgaEager, Approach::NtgaLazyFull] {
            let engine = ClusterConfig::default().engine_with(&store);
            let run = run_query(approach, &engine, &tq.query, &tq.id, false).unwrap();
            writes.insert(approach.label(), run.stats.intermediate_write_bytes());
        }
        let hive = writes["Hive"];
        let lazy = writes["LazyUnnest-full"];
        let eager = writes["EagerUnnest"];
        assert!(lazy <= eager, "{}: lazy {lazy} > eager {eager}", tq.id);
        assert!(lazy < hive, "{}: lazy {lazy} >= hive {hive} (expected large savings)", tq.id);
    }
}

#[test]
fn b4_lazy_keeps_final_output_compact() {
    // B4's unbound pattern is outside the join: lazy unnesting keeps it
    // nested even in the final output ("saving on final writes", Fig 9b).
    let store = bsbm();
    let b4 = ntga::testbed::b_series().into_iter().find(|q| q.id == "B4").unwrap();
    let engine = ClusterConfig::default().engine_with(&store);
    let lazy = run_query(Approach::NtgaLazyFull, &engine, &b4.query, "b4l", false).unwrap();
    let engine = ClusterConfig::default().engine_with(&store);
    let eager = run_query(Approach::NtgaEager, &engine, &b4.query, "b4e", false).unwrap();
    let lazy_final = lazy.stats.jobs.last().unwrap().output_text_bytes;
    let eager_final = eager.stats.jobs.last().unwrap().output_text_bytes;
    assert!(lazy_final < eager_final, "lazy {lazy_final} >= eager {eager_final}");
}

#[test]
fn testbed_queries_roundtrip_through_text() {
    // Every catalog query renders to text that parses back to an equal
    // query (catalog queries have no constant subjects except C2, whose
    // synthesized variable name is reproduced deterministically).
    let mut all = ntga::testbed::case_study();
    all.extend(ntga::testbed::b_series());
    all.extend(ntga::testbed::a_series());
    all.extend(ntga::testbed::c_series());
    for tq in &all {
        let rendered = tq.query.to_text();
        let reparsed = rdf_query::parse_query(&rendered)
            .unwrap_or_else(|e| panic!("{}: {e}\n{rendered}", tq.id));
        assert_eq!(reparsed, tq.query, "{} changed through text roundtrip", tq.id);
    }
}
