//! End-to-end tests of the `ntga-cli` binary: generate → stats → explain →
//! query → compare, through real files and real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ntga-cli"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ntga-cli-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn ntga-cli");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn generate_stats_query_compare_pipeline() {
    let dir = tempdir("pipeline");
    let data = dir.join("d.nt");
    let query = dir.join("q.rq");

    // generate
    let out = run_ok(cli().args([
        "generate",
        "--dataset",
        "bio2rdf",
        "--scale",
        "40",
        "--out",
        data.to_str().unwrap(),
        "--seed",
        "9",
    ]));
    assert!(stdout(&out).contains("wrote"));
    assert!(data.exists());

    // stats
    let out = run_ok(cli().args(["stats", "--data", data.to_str().unwrap()]));
    let text = stdout(&out);
    assert!(text.contains("triples:"));
    assert!(text.contains("multi-valued props:"));

    // query file
    std::fs::write(
        &query,
        "SELECT * WHERE { ?g <rdfs:label> ?l . ?g ?p ?go . ?go <go:label> ?gl . }",
    )
    .unwrap();

    // explain
    let out = run_ok(cli().args(["explain", "--query", query.to_str().unwrap()]));
    let text = stdout(&out);
    assert!(text.contains("MR1:"), "{text}");
    assert!(text.contains("TG_UnbGrpFilter"), "{text}");

    // query (lazy)
    let out = run_ok(cli().args([
        "query",
        "--data",
        data.to_str().unwrap(),
        "--query",
        query.to_str().unwrap(),
        "--approach",
        "lazy",
        "--limit",
        "2",
    ]));
    let text = stdout(&out);
    assert!(text.contains("solution(s)"), "{text}");
    assert!(text.contains("MR cycles:          2"), "{text}");

    // compare: all approaches agree
    let out = run_ok(cli().args([
        "compare",
        "--data",
        data.to_str().unwrap(),
        "--query",
        query.to_str().unwrap(),
    ]));
    let text = stdout(&out);
    assert!(text.contains("all completed approaches agree"), "{text}");
    assert!(text.contains("Pig"));
    assert!(text.contains("LazyUnnest-auto1024"));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn constrained_disk_reports_failure() {
    let dir = tempdir("diskfail");
    let data = dir.join("d.nt");
    let query = dir.join("q.rq");
    run_ok(cli().args([
        "generate",
        "--dataset",
        "bsbm",
        "--scale",
        "60",
        "--out",
        data.to_str().unwrap(),
    ]));
    std::fs::write(
        &query,
        "SELECT * WHERE { ?p <rdfs:label> ?l . ?p ?u ?x . ?x <rdfs:label> ?l2 . }",
    )
    .unwrap();
    let out = run_ok(cli().args([
        "query",
        "--data",
        data.to_str().unwrap(),
        "--query",
        query.to_str().unwrap(),
        "--approach",
        "hive",
        "--replication",
        "2",
        "--disk-factor",
        "1.3",
    ]));
    let text = stdout(&out);
    assert!(text.contains("FAILED"), "{text}");
    assert!(text.contains("full"), "{text}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = cli().args(["query", "--data"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    let out = cli().args(["frobnicate"]).output().expect("spawn");
    assert!(!out.status.success());

    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_approach_is_an_error() {
    let dir = tempdir("badapproach");
    let data = dir.join("d.nt");
    let query = dir.join("q.rq");
    run_ok(cli().args([
        "generate",
        "--dataset",
        "bsbm",
        "--scale",
        "5",
        "--out",
        data.to_str().unwrap(),
    ]));
    std::fs::write(&query, "SELECT * WHERE { ?s <rdfs:label> ?l . }").unwrap();
    let out = cli()
        .args([
            "query",
            "--data",
            data.to_str().unwrap(),
            "--query",
            query.to_str().unwrap(),
            "--approach",
            "magic",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown approach"));
    std::fs::remove_dir_all(dir).ok();
}
