//! Reproduction of the paper's failure mode: on a disk-constrained
//! cluster (the VCL nodes had 20 GB each; replication 2), the redundant
//! intermediate results of relational plans — and, for double-unbound
//! queries, even eager NTGA — exceed the disk budget and the executions
//! die (the `X` bars of Figures 9(a), 12 and 13). Lazy β-unnesting keeps
//! intermediates concise and completes.

use ntga::prelude::*;

fn bsbm() -> TripleStore {
    datagen::bsbm::generate(&datagen::BsbmConfig {
        products: 80,
        features: 30,
        max_features_per_product: 16,
        ..Default::default()
    })
}

/// Run one approach on a cluster whose total disk is `factor ×` the
/// replicated input size.
fn run_constrained(approach: Approach, query: &Query, factor: f64) -> QueryRun {
    let store = bsbm();
    let cfg = ClusterConfig { replication: 2, ..Default::default() }.tight_disk(&store, factor);
    let engine = cfg.engine_with(&store);
    run_query(approach, &engine, query, "fm", false).unwrap()
}

#[test]
fn relational_fails_where_lazy_succeeds_on_b3() {
    // B3: double unbound-property patterns in one star.
    let b3 = ntga::testbed::b_series().into_iter().find(|q| q.id == "B3").unwrap();
    // Wide enough for lazy (≈2.7× input) and for B1's eager, but not for
    // B3's eager double-unnest or the relational plans.
    let factor = 8.0;
    let pig = run_constrained(Approach::Pig, &b3.query, factor);
    let hive = run_constrained(Approach::Hive, &b3.query, factor);
    let eager = run_constrained(Approach::NtgaEager, &b3.query, factor);
    let lazy = run_constrained(Approach::NtgaAuto(64), &b3.query, factor);
    assert!(!pig.succeeded(), "Pig should exhaust disk on B3");
    assert!(!hive.succeeded(), "Hive should exhaust disk on B3");
    assert!(!eager.succeeded(), "EagerUnnest should exhaust disk on B3 (paper, Fig 9a)");
    assert!(lazy.succeeded(), "LazyUnnest must complete: {:?}", lazy.stats.failure);
    for failed in [&pig, &hive, &eager] {
        assert!(
            failed.stats.failure.as_deref().unwrap_or("").contains("full"),
            "failure must be DiskFull: {:?}",
            failed.stats.failure
        );
    }
}

#[test]
fn eager_survives_single_unbound_where_relational_fails() {
    // B1: single unbound pattern. The paper's Fig 9(a): Pig/Hive fail,
    // EagerUnnest succeeds (concise multi-valued representation), and so
    // does LazyUnnest.
    let b1 = ntga::testbed::b_series().into_iter().find(|q| q.id == "B1").unwrap();
    let factor = 8.0;
    let pig = run_constrained(Approach::Pig, &b1.query, factor);
    let eager = run_constrained(Approach::NtgaEager, &b1.query, factor);
    let lazy = run_constrained(Approach::NtgaAuto(64), &b1.query, factor);
    assert!(!pig.succeeded(), "Pig should exhaust disk on B1");
    assert!(eager.succeeded(), "EagerUnnest should survive B1: {:?}", eager.stats.failure);
    assert!(lazy.succeeded());
}

#[test]
fn everyone_succeeds_with_ample_disk() {
    let b3 = ntga::testbed::b_series().into_iter().find(|q| q.id == "B3").unwrap();
    for approach in [Approach::Pig, Approach::Hive, Approach::NtgaEager, Approach::NtgaAuto(64)] {
        let store = bsbm();
        let engine = ClusterConfig { replication: 2, ..Default::default() }.engine_with(&store);
        let run = run_query(approach, &engine, &b3.query, "ok", false).unwrap();
        assert!(run.succeeded(), "{approach:?}: {:?}", run.stats.failure);
    }
}

#[test]
fn replication_doubles_disk_pressure() {
    // The same workload that fits at replication 1 can die at 2 — the
    // reason the paper repeats Fig 9(a) at replication 1 in Fig 9(b).
    let b1 = ntga::testbed::b_series().into_iter().find(|q| q.id == "B1").unwrap();
    let store = bsbm();
    // Total disk ≈ 20× the input: Hive's B1 footprint (~16× input per
    // replica) fits at replication 1 but not at 2.
    let tight = ClusterConfig { replication: 1, ..Default::default() }.tight_disk(&store, 20.0);
    // Same per-node disk, higher replication.
    let engine1 =
        ClusterConfig { replication: 1, disk_per_node: tight.disk_per_node, ..Default::default() }
            .engine_with(&store);
    let r1 = run_query(Approach::Hive, &engine1, &b1.query, "r1", false).unwrap();
    assert!(r1.succeeded(), "replication 1 should fit: {:?}", r1.stats.failure);

    let engine2 =
        ClusterConfig { replication: 2, disk_per_node: tight.disk_per_node, ..Default::default() }
            .engine_with(&store);
    let r2 = run_query(Approach::Hive, &engine2, &b1.query, "r2", false).unwrap();
    assert!(!r2.succeeded(), "replication 2 should exhaust the same disk");
}

#[test]
fn map_only_jobs_respect_the_aggregate_disk_budget() {
    // Each map-only task checks its own output against the job's disk
    // budget; the engine must also re-check the aggregate across tasks
    // (as the reduce phase does), otherwise N tasks can each stay under
    // budget while together exceeding it.
    use mrsim::{map_only_fn, Engine, JobSpec, SimHdfs, TypedOutEmitter};

    // 3000 × 6-byte rows = 18 000 B of input; at 4 workers the engine
    // splits this into 1024-record tasks, each emitting ~6 kB — every
    // task fits the 10 000 B budget alone, but the 18 000 B aggregate
    // does not. Output compression (0.4 → 7 200 B stored) would let the
    // final write squeak through, so only the aggregate early-abort can
    // fail this job.
    let engine = Engine::new(SimHdfs::new(28_000, 1)).with_workers(4);
    engine.put_records("input", (0..3000).map(|_| "wwwww".to_string())).unwrap();
    let mapper = map_only_fn(|w: String, out: &mut TypedOutEmitter<'_, String>| out.emit(&w));
    let spec = JobSpec::map_only("identity", vec!["input".into()], mapper, "out")
        .with_output_compression(0.4);
    let err = engine.run_job(&spec).unwrap_err();
    assert!(err.is_disk_full(), "{err:?}");
    assert!(!engine.hdfs().lock().exists("out"));
}

#[test]
fn peak_disk_usage_is_reported() {
    let b1 = ntga::testbed::b_series().into_iter().find(|q| q.id == "B1").unwrap();
    let store = bsbm();
    let engine = ClusterConfig::default().engine_with(&store);
    let run = run_query(Approach::Hive, &engine, &b1.query, "peak", false).unwrap();
    assert!(run.stats.peak_disk_bytes > store.text_bytes());
}
