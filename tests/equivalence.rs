//! The workspace's headline correctness invariant: every execution path —
//! Pig-like, Hive-like, NTGA eager, NTGA lazy-full, NTGA lazy-partial —
//! produces exactly the solution set of the naive reference evaluator, on
//! randomized data and across the paper's query shapes.
//!
//! This is the full-pipeline generalization of the paper's Lemma 1
//! (content equivalence of the relational star join and
//! `μ^β(σ^βγ(γ(T)))`).

use ntga::prelude::*;
use proptest::prelude::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig};
use proptest::strategy::Strategy as PropStrategy;

/// Random triple stores over a small vocabulary, dense enough that stars
/// and joins actually match.
fn arb_store() -> impl PropStrategy<Value = TripleStore> {
    let subject = prop::sample::select(vec!["<s0>", "<s1>", "<s2>", "<s3>", "<o0>", "<o1>"]);
    let property = prop::sample::select(vec!["<p0>", "<p1>", "<p2>", "<p3>"]);
    let object =
        prop::sample::select(vec!["<o0>", "<o1>", "<o2>", "\"lit-a\"", "\"lit-b\"", "<s0>"]);
    prop::collection::vec((subject, property, object), 1..40).prop_map(|triples| {
        TripleStore::from_triples(
            triples.into_iter().map(|(s, p, o)| STriple::new(s, p, o)).collect(),
        )
    })
}

/// The query shapes exercised (all planner-supported, covering: bound-only
/// stars, unbound with unbound object joined OS, partially-bound objects,
/// double unbound, OO joins, unbound outside the join).
fn shapes() -> Vec<(&'static str, Query)> {
    let texts: Vec<(&'static str, &'static str)> = vec![
        ("bound-single", "SELECT * WHERE { ?a <p0> ?x . ?a <p1> ?y . }"),
        ("unbound-single", "SELECT * WHERE { ?a <p0> ?x . ?a ?u ?o . }"),
        (
            "partially-bound",
            r#"SELECT * WHERE { ?a <p0> ?x . ?a ?u ?o . FILTER prefix(?o, "\"lit") . }"#,
        ),
        ("double-unbound", "SELECT * WHERE { ?a <p0> ?x . ?a ?u1 ?o1 . ?a ?u2 ?o2 . }"),
        ("os-join-bound", "SELECT * WHERE { ?a <p0> ?b . ?b <p1> ?y . }"),
        ("os-join-unbound", "SELECT * WHERE { ?a <p0> ?x . ?a ?u ?b . ?b <p1> ?y . }"),
        ("oo-join", "SELECT * WHERE { ?a <p0> ?v . ?b <p1> ?v . ?b <p2> ?w . }"),
        ("unbound-outside-join", "SELECT * WHERE { ?a <p0> ?b . ?a ?u ?any . ?b <p1> ?y . }"),
        ("projection", "SELECT ?a WHERE { ?a <p0> ?x . ?a ?u ?b . ?b <p1> ?y . }"),
    ];
    texts
        .into_iter()
        .map(|(id, t)| (id, parse_query(t).unwrap_or_else(|e| panic!("{id}: {e}"))))
        .collect()
}

fn approaches() -> Vec<Approach> {
    vec![
        Approach::Pig,
        Approach::Hive,
        Approach::NtgaEager,
        Approach::NtgaLazyFull,
        Approach::NtgaLazyPartial(1),
        Approach::NtgaLazyPartial(3),
        Approach::NtgaAuto(8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_strategies_equal_naive_on_random_data(store in arb_store()) {
        for (id, query) in shapes() {
            let gold = rdf_query::naive::evaluate(&query, &store);
            for approach in approaches() {
                let engine = ClusterConfig::default().engine_with(&store);
                let run = run_query(approach, &engine, &query, "pt", true)
                    .unwrap_or_else(|e| panic!("{id}/{approach:?}: {e}"));
                prop_assert!(run.succeeded(), "{}/{:?} failed: {:?}", id, approach, run.stats.failure);
                prop_assert_eq!(
                    run.solutions.as_ref().unwrap(),
                    &gold,
                    "{} / {:?}: MR result diverges from naive evaluator",
                    id,
                    approach
                );
            }
        }
    }
}

#[test]
fn deterministic_counters_across_runs() {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(40));
    let query = ntga::testbed::b_series().remove(1).query; // B1
    let run_once = || {
        let engine = ClusterConfig::default().engine_with(&store);
        let run = run_query(Approach::NtgaAuto(64), &engine, &query, "d", false).unwrap();
        (
            run.stats.total_read_bytes(),
            run.stats.total_write_bytes(),
            run.stats.total_shuffle_bytes(),
            run.stats.final_output_records(),
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn counters_differ_between_strategies_but_results_do_not() {
    let store = datagen::bio2rdf::generate(&datagen::Bio2RdfConfig::with_genes(60));
    let query = ntga::testbed::a_series().remove(0).query; // A1
    let gold = rdf_query::naive::evaluate(&query, &store);
    let mut writes = Vec::new();
    for approach in [Approach::Hive, Approach::NtgaEager, Approach::NtgaLazyFull] {
        let engine = ClusterConfig::default().engine_with(&store);
        let run = run_query(approach, &engine, &query, "a1", true).unwrap();
        assert_eq!(run.solutions.unwrap(), gold, "{approach:?}");
        writes.push(run.stats.total_write_bytes());
    }
    // Hive writes flat rows; eager writes perfect TGs; lazy writes nested
    // AnnTGs. Strictly decreasing for A1 (paper: 63K tuples vs 7K vs 3K).
    assert!(writes[0] > writes[1], "Hive {} <= Eager {}", writes[0], writes[1]);
    assert!(writes[1] > writes[2], "Eager {} <= Lazy {}", writes[1], writes[2]);
}
