//! EXPLAIN over the whole testbed catalog: every query must produce a
//! plan whose cycle count matches what execution actually performs, and
//! the Auto strategy's unnest decisions must be visible in the plan text.

use ntga::prelude::*;

fn all_queries() -> Vec<ntga::testbed::TestQuery> {
    let mut all = ntga::testbed::case_study();
    all.extend(ntga::testbed::b_series());
    all.extend(ntga::testbed::a_series());
    all.extend(ntga::testbed::c_series());
    all
}

#[test]
fn explain_cycle_counts_match_execution() {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(15));
    for tq in all_queries() {
        let plan = ntga_core::explain(Strategy::Auto(64), &tq.query)
            .unwrap_or_else(|e| panic!("{}: {e}", tq.id));
        // Plans for BSBM queries can actually be executed against BSBM
        // data; A/C queries still plan (the cycle structure is
        // data-independent), so compare for everything.
        let engine = ClusterConfig::default().engine_with(&store);
        let run = run_query(Approach::NtgaAuto(64), &engine, &tq.query, &tq.id, false)
            .unwrap_or_else(|e| panic!("{}: {e}", tq.id));
        assert_eq!(
            plan.cycles.len() as u64,
            run.stats.mr_cycles,
            "{}: EXPLAIN promises {} cycles, execution did {}",
            tq.id,
            plan.cycles.len(),
            run.stats.mr_cycles
        );
    }
}

#[test]
fn explain_marks_unnest_decisions() {
    for tq in all_queries() {
        let plan = ntga_core::explain(Strategy::Auto(64), &tq.query).unwrap();
        let text = plan.to_string();
        let has_unbound = tq.query.unbound_pattern_count() > 0;
        assert_eq!(
            text.contains("σ^βγ"),
            has_unbound,
            "{}: β group-filter marker wrong\n{text}",
            tq.id
        );
        if !has_unbound {
            assert!(
                !text.contains("UnbJoin"),
                "{}: bound-only query must not plan unbound joins\n{text}",
                tq.id
            );
        }
    }
}

#[test]
fn explain_b2_uses_full_unnest_b1_partial() {
    // The Auto policy's signature decision, visible in the plan text.
    let b1 = ntga::testbed::b_series().remove(1);
    let b2 = ntga::testbed::b_series().remove(2);
    let p1 = ntga_core::explain(Strategy::Auto(64), &b1.query).unwrap().to_string();
    let p2 = ntga_core::explain(Strategy::Auto(64), &b2.query).unwrap().to_string();
    assert!(p1.contains("partial unnest"), "B1 should plan TG_OptUnbJoin:\n{p1}");
    assert!(p2.contains("full unnest"), "B2 should plan TG_UnbJoin:\n{p2}");
}

#[test]
fn estimator_covers_catalog_without_panicking() {
    // The estimator must produce finite, non-negative estimates for every
    // star of every catalog query against each matching dataset's stats.
    let stats = [
        datagen::bsbm::generate(&datagen::BsbmConfig::with_products(20)).stats(),
        datagen::bio2rdf::generate(&datagen::Bio2RdfConfig::with_genes(20)).stats(),
        datagen::dbpedia::generate(&datagen::DbpediaConfig::with_entities(30)).stats(),
    ];
    for tq in all_queries() {
        for s in &stats {
            for star in &tq.query.stars {
                let subj = rdf_query::estimate::star_subject_cardinality(star, s);
                let rows = rdf_query::estimate::star_row_cardinality(star, s);
                assert!(subj.is_finite() && subj >= 0.0, "{}: subj {subj}", tq.id);
                assert!(rows.is_finite() && rows >= 0.0, "{}: rows {rows}", tq.id);
                assert!(
                    rows >= subj || rows == 0.0,
                    "{}: rows {rows} below subjects {subj}",
                    tq.id
                );
            }
            let ranked = rdf_query::estimate::rank_stars_by_selectivity(&tq.query.stars, s);
            assert_eq!(ranked.len(), tq.query.stars.len());
        }
    }
}
