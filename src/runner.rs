//! Uniform runner over every execution approach the paper compares.

use mr_rdf::{load_store, PlanError, QueryRun, TRIPLES_FILE};
use mrsim::{CostModel, Engine, FaultConfig, RecoveryPolicy, SimHdfs, SortStrategy, TraceSink};
use ntga_core::Strategy;
use rdf_model::TripleStore;
use rdf_query::Query;
use relbase::RelFlavor;
use std::sync::Arc;

/// An execution approach from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Apache-Pig-like relational plan.
    Pig,
    /// Apache-Hive-like relational plan.
    Hive,
    /// NTGA with eager β-unnesting.
    NtgaEager,
    /// NTGA with lazy full β-unnesting (`TG_UnbJoin`).
    NtgaLazyFull,
    /// NTGA with lazy partial β-unnesting (`TG_OptUnbJoin`, `φ_m`).
    NtgaLazyPartial(u64),
    /// NTGA with the paper's recommended policy (full for partially-bound
    /// objects, partial otherwise).
    NtgaAuto(u64),
    /// NTGA with cost-based plan selection: per-star unnest placement,
    /// per-cycle exact/partial/broadcast choice and reducer sizing derived
    /// from [`rdf_model::StoreStats`] and the engine's cost model.
    NtgaAutoCost,
}

impl Approach {
    /// Report label.
    pub fn label(self) -> String {
        match self {
            Approach::Pig => "Pig".into(),
            Approach::Hive => "Hive".into(),
            Approach::NtgaEager => "EagerUnnest".into(),
            Approach::NtgaLazyFull => "LazyUnnest-full".into(),
            Approach::NtgaLazyPartial(m) => format!("LazyUnnest-phi{m}"),
            Approach::NtgaAuto(m) => format!("LazyUnnest-auto{m}"),
            Approach::NtgaAutoCost => "CostBased".into(),
        }
    }

    /// The default panel of approaches compared throughout the paper.
    pub fn paper_panel() -> Vec<Approach> {
        vec![Approach::Pig, Approach::Hive, Approach::NtgaEager, Approach::NtgaAuto(1024)]
    }
}

/// Run one query with one approach against a triple relation already
/// loaded at [`TRIPLES_FILE`].
pub fn run_query(
    approach: Approach,
    engine: &Engine,
    query: &Query,
    label: &str,
    extract_solutions: bool,
) -> Result<QueryRun, PlanError> {
    let label = format!("{}-{label}", approach.label());
    match approach {
        Approach::Pig => {
            relbase::execute(RelFlavor::Pig, engine, query, TRIPLES_FILE, &label, extract_solutions)
        }
        Approach::Hive => relbase::execute(
            RelFlavor::Hive,
            engine,
            query,
            TRIPLES_FILE,
            &label,
            extract_solutions,
        ),
        Approach::NtgaEager => ntga_core::execute(
            Strategy::Eager,
            engine,
            query,
            TRIPLES_FILE,
            &label,
            extract_solutions,
        ),
        Approach::NtgaLazyFull => ntga_core::execute(
            Strategy::LazyFull,
            engine,
            query,
            TRIPLES_FILE,
            &label,
            extract_solutions,
        ),
        Approach::NtgaLazyPartial(m) => ntga_core::execute(
            Strategy::LazyPartial(m),
            engine,
            query,
            TRIPLES_FILE,
            &label,
            extract_solutions,
        ),
        Approach::NtgaAuto(m) => ntga_core::execute(
            Strategy::Auto(m),
            engine,
            query,
            TRIPLES_FILE,
            &label,
            extract_solutions,
        ),
        Approach::NtgaAutoCost => {
            // ANALYZE step: derive statistics from the relation the engine
            // actually holds, then plan against them.
            let stats = mr_rdf::read_store(engine, TRIPLES_FILE)
                .map_err(|e| PlanError::Internal(format!("reading {TRIPLES_FILE}: {e}")))?
                .stats();
            ntga_core::execute_cost_based(
                ntga_core::DataPlane::Lexical,
                engine,
                query,
                TRIPLES_FILE,
                &label,
                extract_solutions,
                &stats,
            )
        }
    }
}

/// Describes the simulated cluster for an experiment.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of nodes (the paper uses 5–80).
    pub nodes: u32,
    /// Disk bytes per node (the paper's VCL nodes had only 20 GB).
    pub disk_per_node: u64,
    /// HDFS replication factor (`dfs.replication`; 1 or 2 in the paper).
    pub replication: u32,
    /// Cost model.
    pub cost: CostModel,
    /// Deterministic fault injection applied to every engine this config
    /// builds (default: no faults).
    pub faults: FaultConfig,
    /// Recovery policy workflows inherit (default: fail fast, the paper's
    /// behavior).
    pub recovery: RecoveryPolicy,
    /// Worker-thread override; `None` uses one worker per core.
    pub workers: Option<usize>,
    /// Optional trace sink attached to every engine this config builds;
    /// `None` keeps tracing disabled (and free).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Fill per-job histogram metrics (task durations, partition bytes,
    /// record sizes, group widths) on every engine this config builds.
    /// Off by default: the map-emit hot path stays allocation-free.
    pub profiling: bool,
    /// Shuffle sort strategy every engine this config builds uses
    /// (default: [`SortStrategy::Radix`]; `Comparison` is kept for
    /// differential testing).
    pub sort_strategy: SortStrategy,
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("nodes", &self.nodes)
            .field("disk_per_node", &self.disk_per_node)
            .field("replication", &self.replication)
            .field("cost", &self.cost)
            .field("faults", &self.faults)
            .field("recovery", &self.recovery)
            .field("workers", &self.workers)
            .field("trace", &self.trace.as_ref().map(|_| "<sink>"))
            .field("profiling", &self.profiling)
            .field("sort_strategy", &self.sort_strategy)
            .finish()
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 60,
            disk_per_node: u64::MAX / 60, // effectively unbounded
            replication: 1,
            cost: CostModel::default(),
            faults: FaultConfig::none(),
            recovery: RecoveryPolicy::FailFast,
            workers: None,
            trace: None,
            profiling: false,
            sort_strategy: SortStrategy::default(),
        }
    }
}

impl ClusterConfig {
    /// Build a fresh engine with the triple store loaded at
    /// [`TRIPLES_FILE`].
    pub fn engine_with(&self, store: &TripleStore) -> Engine {
        let capacity = if self.disk_per_node == u64::MAX / u64::from(self.nodes.max(1)) {
            u64::MAX
        } else {
            u64::from(self.nodes) * self.disk_per_node
        };
        let mut engine = Engine::new(SimHdfs::new(capacity, self.replication))
            .with_cost(self.cost.clone())
            .with_faults(self.faults.clone())
            .with_recovery(self.recovery)
            .with_profiling(self.profiling)
            .with_sort_strategy(self.sort_strategy);
        if let Some(workers) = self.workers {
            engine = engine.with_workers(workers);
        }
        if let Some(sink) = &self.trace {
            engine = engine.with_trace(sink.clone());
        }
        load_store(&engine, TRIPLES_FILE, store).expect("input must fit in the cluster");
        engine
    }

    /// Attach a trace sink to every engine built from this config.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Enable histogram profiling on every engine built from this config.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Pick the shuffle sort strategy for every engine built from this
    /// config (`Radix` by default; `Comparison` for differential runs).
    pub fn with_sort_strategy(mut self, strategy: SortStrategy) -> Self {
        self.sort_strategy = strategy;
        self
    }

    /// Enable deterministic fault injection on every engine built from
    /// this config.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Set the recovery policy workflows inherit.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Pin the worker-thread count (simulated runs are deterministic
    /// either way; this exercises scheduling variety in tests).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Constrain the disk to `factor ×` the input's replicated size — the
    /// way the paper's 20 GB-per-node clusters were tight relative to
    /// their datasets.
    pub fn tight_disk(mut self, store: &TripleStore, factor: f64) -> Self {
        let input = store.text_bytes() * u64::from(self.replication);
        let total = (input as f64 * factor) as u64;
        self.disk_per_node = (total / u64::from(self.nodes.max(1))).max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::STriple;

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<xGO>", "<go1>"),
            STriple::new("<go1>", "<gl>", "\"x\""),
        ])
    }

    #[test]
    fn all_approaches_run_and_agree() {
        let q =
            rdf_query::parse_query("SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }")
                .unwrap();
        let store = store();
        let gold = rdf_query::naive::evaluate(&q, &store);
        for approach in [
            Approach::Pig,
            Approach::Hive,
            Approach::NtgaEager,
            Approach::NtgaLazyFull,
            Approach::NtgaLazyPartial(16),
            Approach::NtgaAuto(16),
            Approach::NtgaAutoCost,
        ] {
            let engine = ClusterConfig::default().engine_with(&store);
            let run = run_query(approach, &engine, &q, "t", true).unwrap();
            assert!(run.succeeded(), "{approach:?}");
            assert_eq!(run.solutions.unwrap(), gold, "{approach:?}");
        }
    }

    #[test]
    fn tight_disk_fails_relational_only() {
        let q =
            rdf_query::parse_query("SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }")
                .unwrap();
        let store = store();
        // Just enough room for input + tiny intermediates.
        let cfg = ClusterConfig { replication: 1, ..Default::default() }.tight_disk(&store, 1.6);
        let engine = cfg.engine_with(&store);
        let pig = run_query(Approach::Pig, &engine, &q, "t", false).unwrap();
        assert!(!pig.succeeded());
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<String> = [
            Approach::Pig,
            Approach::Hive,
            Approach::NtgaEager,
            Approach::NtgaLazyFull,
            Approach::NtgaLazyPartial(2),
            Approach::NtgaAuto(2),
            Approach::NtgaAutoCost,
        ]
        .iter()
        .map(|a| a.label())
        .collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 7);
    }
}
