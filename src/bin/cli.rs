//! `ntga-cli` — run unbound-property queries over N-Triples files on the
//! simulated MapReduce cluster.
//!
//! ```text
//! ntga-cli generate --dataset bsbm --scale 100 --out data.nt [--seed 42]
//! ntga-cli stats    --data data.nt
//! ntga-cli explain  --query q.rq [--approach auto:1024]
//! ntga-cli query    --data data.nt --query q.rq [--approach auto:1024]
//!                   [--replication 2] [--disk-factor 6.5] [--limit 20] [--no-solutions]
//! ntga-cli compare  --data data.nt --query q.rq [--replication 2] [--disk-factor F]
//! ```
//!
//! `--approach` is one of `pig`, `hive`, `eager`, `lazy`, `partial:M`,
//! `auto:M`, `auto-cost`. `auto-cost` plans with the statistics-driven
//! optimizer (per-star unnest placement, broadcast joins, reducer sizing)
//! and needs `--data` even for `explain`, since the plan depends on the
//! store's statistics. `--disk-factor F` bounds the cluster's disk to
//! `F ×` the replicated input (reproducing the paper's constrained
//! clusters); without it the disk is unbounded.

use ntga::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Exit quietly when stdout is closed early (e.g. piping into `head`).
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "stats" => cmd_stats(&opts),
        "explain" => cmd_explain(&opts),
        "query" => cmd_query(&opts),
        "compare" => cmd_compare(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "ntga-cli — unbound-property RDF queries on a simulated MapReduce cluster

USAGE:
  ntga-cli generate --dataset bsbm|bio2rdf|dbpedia|btc --scale N --out FILE [--seed S]
  ntga-cli stats    --data FILE
  ntga-cli explain  --query FILE [--approach APPROACH] [--data FILE]
  ntga-cli query    --data FILE --query FILE [--approach APPROACH]
                    [--replication N] [--disk-factor F] [--limit N] [--no-solutions]
  ntga-cli compare  --data FILE --query FILE [--replication N] [--disk-factor F]

APPROACH: pig | hive | eager | lazy | partial:M | auto:M | auto-cost
          (default auto:1024; auto-cost requires --data, also for explain)";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if !flag.starts_with("--") {
            return Err(format!("expected a --flag, found '{flag}'"));
        }
        let key = flag.trim_start_matches("--").to_string();
        if key == "no-solutions" {
            out.insert(key, "true".to_string());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("flag --{key} needs a value"))?.clone();
        out.insert(key, value);
        i += 2;
    }
    Ok(out)
}

fn required<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
}

fn parse_approach(spec: &str) -> Result<Approach, String> {
    let (name, param) = match spec.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (spec, None),
    };
    let m = |p: Option<&str>| -> Result<u64, String> {
        p.unwrap_or("1024").parse().map_err(|_| format!("bad φ range in '{spec}'"))
    };
    match name {
        "pig" => Ok(Approach::Pig),
        "hive" => Ok(Approach::Hive),
        "eager" => Ok(Approach::NtgaEager),
        "lazy" | "lazyfull" => Ok(Approach::NtgaLazyFull),
        "partial" => Ok(Approach::NtgaLazyPartial(m(param)?)),
        "auto" => Ok(Approach::NtgaAuto(m(param)?)),
        "auto-cost" | "cost" => Ok(Approach::NtgaAutoCost),
        other => Err(format!("unknown approach '{other}'")),
    }
}

fn load_data(opts: &HashMap<String, String>) -> Result<TripleStore, String> {
    let path = required(opts, "data")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    TripleStore::from_ntriples(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn load_query(opts: &HashMap<String, String>) -> Result<Query, String> {
    let path = required(opts, "query")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_query(&text).map_err(|e| e.to_string())
}

fn cluster_for(
    opts: &HashMap<String, String>,
    store: &TripleStore,
) -> Result<ClusterConfig, String> {
    let replication: u32 = opts
        .get("replication")
        .map(|r| r.parse().map_err(|_| "bad --replication".to_string()))
        .transpose()?
        .unwrap_or(1);
    let mut cfg = ClusterConfig { replication, ..Default::default() };
    cfg.cost = CostModel::scaled_to(store.text_bytes());
    if let Some(f) = opts.get("disk-factor") {
        let factor: f64 = f.parse().map_err(|_| "bad --disk-factor".to_string())?;
        cfg = cfg.tight_disk(store, factor);
    }
    Ok(cfg)
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let dataset = required(opts, "dataset")?;
    let scale: usize = required(opts, "scale")?.parse().map_err(|_| "bad --scale".to_string())?;
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(42);
    let out = required(opts, "out")?;
    let store = match dataset {
        "bsbm" => {
            datagen::bsbm::generate(&datagen::BsbmConfig::with_products(scale).with_seed(seed))
        }
        "bio2rdf" => {
            datagen::bio2rdf::generate(&datagen::Bio2RdfConfig::with_genes(scale).with_seed(seed))
        }
        "dbpedia" => datagen::dbpedia::generate(
            &datagen::DbpediaConfig::with_entities(scale).with_seed(seed),
        ),
        "btc" => datagen::dbpedia::generate(&datagen::DbpediaConfig::btc_like(scale)),
        other => return Err(format!("unknown dataset '{other}' (bsbm|bio2rdf|dbpedia|btc)")),
    };
    let mut text = String::with_capacity(store.len() * 48);
    for t in store.iter() {
        text.push_str(&t.to_string());
        text.push('\n');
    }
    std::fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} triples ({} B) to {out}", store.len(), store.text_bytes());
    Ok(())
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let store = load_data(opts)?;
    let stats = store.stats();
    println!("triples:             {}", stats.triples);
    println!("distinct subjects:   {}", stats.distinct_subjects);
    println!("distinct properties: {}", stats.distinct_properties);
    println!("text bytes:          {}", stats.text_bytes);
    println!("multi-valued props:  {:.1}%", stats.multi_valued_fraction * 100.0);
    let mut props: Vec<_> = stats.per_property.iter().collect();
    props.sort_by_key(|(_, s)| std::cmp::Reverse(s.max_multiplicity));
    println!("\ntop properties by multiplicity:");
    for (prop, p) in props.iter().take(10) {
        println!("  {:<40} count={:<8} max-multiplicity={}", prop, p.count, p.max_multiplicity);
    }
    Ok(())
}

fn cmd_explain(opts: &HashMap<String, String>) -> Result<(), String> {
    let query = load_query(opts)?;
    let approach = parse_approach(opts.get("approach").map_or("auto:1024", String::as_str))?;
    let strategy = match approach {
        Approach::Pig | Approach::Hive => {
            return Err("explain currently covers the NTGA strategies".into())
        }
        Approach::NtgaEager => Strategy::Eager,
        Approach::NtgaLazyFull => Strategy::LazyFull,
        Approach::NtgaLazyPartial(m) => Strategy::LazyPartial(m),
        Approach::NtgaAuto(m) => Strategy::Auto(m),
        Approach::NtgaAutoCost => {
            // The cost-based plan depends on the data: derive statistics,
            // optimize under the same scaled cost model `query` would use,
            // and render the chosen physical plan with its estimates.
            let store = load_data(opts)
                .map_err(|e| format!("--approach auto-cost needs --data to plan from: {e}"))?;
            let stats = store.stats();
            let cost = CostModel::scaled_to(store.text_bytes());
            let config = ntga_core::OptimizerConfig::default();
            let plan =
                ntga_core::optimize(&query, &stats, &cost, &config).map_err(|e| e.to_string())?;
            let text = ntga_core::explain_plan(&plan, &query).map_err(|e| e.to_string())?;
            print!("{text}");
            return Ok(());
        }
    };
    let plan = ntga_core::explain(strategy, &query).map_err(|e| e.to_string())?;
    print!("{plan}");
    Ok(())
}

fn print_stats(stats: &WorkflowStats) {
    println!("  MR cycles:          {}", stats.mr_cycles);
    println!("  full input scans:   {}", stats.full_scans);
    println!("  HDFS read bytes:    {}", stats.total_read_bytes());
    println!("  HDFS write bytes:   {}", stats.total_write_bytes());
    println!("  shuffle bytes:      {}", stats.total_shuffle_bytes());
    println!("  peak disk bytes:    {}", stats.peak_disk_bytes);
    println!("  simulated seconds:  {:.1}", stats.sim_seconds);
}

fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    let store = load_data(opts)?;
    let query = load_query(opts)?;
    let approach = parse_approach(opts.get("approach").map_or("auto:1024", String::as_str))?;
    let want_solutions = !opts.contains_key("no-solutions");
    let cluster = cluster_for(opts, &store)?;
    let engine = cluster.engine_with(&store);
    let run =
        run_query(approach, &engine, &query, "cli", want_solutions).map_err(|e| e.to_string())?;
    if !run.succeeded() {
        println!("execution FAILED: {}", run.stats.failure.as_deref().unwrap_or("unknown failure"));
        print_stats(&run.stats);
        return Ok(());
    }
    if let Some(solutions) = &run.solutions {
        let limit: usize = opts
            .get("limit")
            .map(|l| l.parse().map_err(|_| "bad --limit".to_string()))
            .transpose()?
            .unwrap_or(20);
        println!(
            "{} solution(s){}:",
            solutions.len(),
            if solutions.len() > limit { format!(", showing {limit}") } else { String::new() }
        );
        for b in solutions.iter().take(limit) {
            println!("  {b}");
        }
    }
    println!("\nexecution profile [{}]:", approach.label());
    print_stats(&run.stats);
    Ok(())
}

fn cmd_compare(opts: &HashMap<String, String>) -> Result<(), String> {
    let store = load_data(opts)?;
    let query = load_query(opts)?;
    let cluster = cluster_for(opts, &store)?;
    println!(
        "{:<22} {:>6} {:>4} {:>14} {:>14} {:>12} {:>10}  status",
        "approach", "cycles", "FS", "read B", "written B", "shuffled B", "sim(s)"
    );
    let mut reference: Option<SolutionSet> = None;
    for approach in [
        Approach::Pig,
        Approach::Hive,
        Approach::NtgaEager,
        Approach::NtgaLazyFull,
        Approach::NtgaAuto(1024),
        Approach::NtgaAutoCost,
    ] {
        let engine = cluster.engine_with(&store);
        let run = run_query(approach, &engine, &query, "cmp", true).map_err(|e| e.to_string())?;
        println!(
            "{:<22} {:>6} {:>4} {:>14} {:>14} {:>12} {:>10.1}  {}",
            approach.label(),
            run.stats.mr_cycles,
            run.stats.full_scans,
            run.stats.total_read_bytes(),
            run.stats.total_write_bytes(),
            run.stats.total_shuffle_bytes(),
            run.stats.sim_seconds,
            if run.succeeded() { "OK" } else { "FAILED" },
        );
        if let Some(sols) = run.solutions {
            match &reference {
                None => reference = Some(sols),
                Some(r) => {
                    if *r != sols {
                        return Err(format!(
                            "approach {} returned different solutions!",
                            approach.label()
                        ));
                    }
                }
            }
        }
    }
    if let Some(r) = reference {
        println!("\nall completed approaches agree on {} solution(s)", r.len());
    }
    Ok(())
}
