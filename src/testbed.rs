//! The paper's testbed queries, expressed against the `datagen`
//! vocabularies.
//!
//! * **Case study Q1a–Q3b** (Figure 3): bound-only two-star queries with
//!   object-subject and object-object joins, ± selective object filters.
//! * **B-series** (Figures 9, 10, 11, 12): BSBM-like scalability queries
//!   with varying numbers and placements of unbound-property patterns.
//! * **A-series** (Figure 13): Bio2RDF-like real-world exploration
//!   queries, extracted shapes of the Bio2RDF demo queries.
//! * **C-series** (Figure 14): DBpedia/BTC-like open-property-space
//!   queries.
//!
//! Every query is written as query text and parsed with
//! [`rdf_query::parse_query`], so the catalog doubles as an end-to-end
//! exercise of the parser.

use datagen::vocab::{bio2rdf, bsbm, dbpedia};
use rdf_query::{parse_query, Query};

/// One testbed query: its paper id, source text, and parsed form.
#[derive(Debug, Clone)]
pub struct TestQuery {
    /// Paper identifier (e.g. "B3").
    pub id: String,
    /// Query text (the SPARQL subset of [`rdf_query::parse_query`]).
    pub text: String,
    /// Parsed, validated query.
    pub query: Query,
}

fn tq(id: &str, text: String) -> TestQuery {
    let query = parse_query(&text)
        .unwrap_or_else(|e| panic!("testbed query {id} failed to parse: {e}\n{text}"));
    TestQuery { id: id.to_string(), text, query }
}

// ---------------------------------------------------------------------------
// Case study (Figure 3): bound-only grouping comparison
// ---------------------------------------------------------------------------

/// Q1a/Q1b, Q2a/Q2b (object-subject joins) and Q3a/Q3b (object-object
/// join); the `b` variants add selective object filters.
pub fn case_study() -> Vec<TestQuery> {
    let q1 = |id: &str, filtered: bool| {
        let filter = if filtered {
            "FILTER (?c = <country0>) . FILTER contains(?l1, \"Product 1\") .".to_string()
        } else {
            String::new()
        };
        tq(
            id,
            format!(
                "SELECT * WHERE {{
                    ?p {label} ?l1 .
                    ?p {feature} ?f .
                    ?p {producer} ?pr .
                    ?pr {label} ?l2 .
                    ?pr {country} ?c .
                    {filter}
                 }}",
                label = bsbm::LABEL,
                feature = bsbm::PRODUCT_FEATURE,
                producer = bsbm::PRODUCER,
                country = bsbm::COUNTRY,
            ),
        )
    };
    let q2 = |id: &str, filtered: bool| {
        let filter = if filtered {
            "FILTER contains(?price, \"1\") . FILTER contains(?l, \"Product 2\") ."
        } else {
            ""
        };
        tq(
            id,
            format!(
                "SELECT * WHERE {{
                    ?o {offer_product} ?p .
                    ?o {price} ?price .
                    ?o {vendor} ?v .
                    ?p {label} ?l .
                    ?p {feature} ?f .
                    {filter}
                 }}",
                offer_product = bsbm::OFFER_PRODUCT,
                price = bsbm::PRICE,
                vendor = bsbm::VENDOR,
                label = bsbm::LABEL,
                feature = bsbm::PRODUCT_FEATURE,
            ),
        )
    };
    let q3 = |id: &str, filtered: bool| {
        let filter = if filtered {
            "FILTER contains(?rating, \"5\") . FILTER contains(?price, \"9\") ."
        } else {
            ""
        };
        tq(
            id,
            format!(
                // Object-object join: offers and reviews about the same
                // product.
                "SELECT * WHERE {{
                    ?o {offer_product} ?x .
                    ?o {price} ?price .
                    ?r {review_for} ?x .
                    ?r {rating} ?rating .
                    {filter}
                 }}",
                offer_product = bsbm::OFFER_PRODUCT,
                price = bsbm::PRICE,
                review_for = bsbm::REVIEW_FOR,
                rating = bsbm::RATING,
            ),
        )
    };
    vec![
        q1("Q1a", false),
        q1("Q1b", true),
        q2("Q2a", false),
        q2("Q2b", true),
        q3("Q3a", false),
        q3("Q3b", true),
    ]
}

// ---------------------------------------------------------------------------
// B-series (BSBM-like)
// ---------------------------------------------------------------------------

/// B0–B6: the scalability queries of Figures 9 and 12.
///
/// * B0 — two stars, all bound (baseline; includes the multi-valued
///   `productFeature`).
/// * B1 — one unbound-property pattern whose (unbound) object is the join
///   variable.
/// * B2 — like B1 but the unbound pattern's object is partially bound
///   (selective prefix filter).
/// * B3 — two unbound patterns in the same star, one with a partially
///   bound object.
/// * B4 — an unbound pattern that does **not** participate in the join
///   (stays nested to the very end under lazy unnesting).
/// * B5 — three stars (product → producer and product → feature).
/// * B6 — unbound patterns in both stars.
pub fn b_series() -> Vec<TestQuery> {
    let label = bsbm::LABEL;
    let feature = bsbm::PRODUCT_FEATURE;
    let producer = bsbm::PRODUCER;
    let country = bsbm::COUNTRY;
    let ty = bsbm::TYPE;
    vec![
        tq(
            "B0",
            format!(
                "SELECT * WHERE {{
                    ?p {label} ?l1 . ?p {feature} ?f . ?p {producer} ?pr .
                    ?pr {label} ?l2 . ?pr {country} ?c .
                 }}"
            ),
        ),
        tq(
            "B1",
            format!(
                "SELECT * WHERE {{
                    ?p {ty} <bsbm:Product> . ?p {label} ?l1 . ?p {feature} ?f . ?p ?u ?x .
                    ?x {label} ?l2 .
                 }}"
            ),
        ),
        tq(
            "B2",
            format!(
                "SELECT * WHERE {{
                    ?p {ty} <bsbm:Product> . ?p {label} ?l1 . ?p {feature} ?f . ?p ?u ?x .
                    ?x {label} ?l2 .
                    FILTER prefix(?x, \"<bsbm:producer\") .
                 }}"
            ),
        ),
        tq(
            "B3",
            format!(
                "SELECT * WHERE {{
                    ?p {label} ?l1 . ?p {feature} ?f . ?p ?u1 ?x . ?p ?u2 ?y .
                    ?x {label} ?l2 .
                    FILTER prefix(?y, \"<bsbm:\") .
                 }}"
            ),
        ),
        tq(
            "B4",
            format!(
                "SELECT * WHERE {{
                    ?p {label} ?l1 . ?p {feature} ?f . ?p {producer} ?pr . ?p ?u ?any .
                    ?pr {label} ?l2 . ?pr {country} ?c .
                 }}"
            ),
        ),
        tq(
            "B5",
            format!(
                "SELECT * WHERE {{
                    ?p {label} ?l1 . ?p {feature} ?f . ?p {producer} ?pr . ?p ?u ?x .
                    ?pr {label} ?l2 . ?pr {country} ?c .
                    ?x {label} ?l3 .
                 }}"
            ),
        ),
        tq(
            "B6",
            format!(
                "SELECT * WHERE {{
                    ?p {ty} <bsbm:Product> . ?p {label} ?l1 . ?p ?u1 ?x .
                    ?x {label} ?l2 . ?x ?u2 ?y .
                 }}"
            ),
        ),
    ]
}

/// B1 with `k ∈ 3..=6` bound-property patterns (Figures 9(c) and 10).
pub fn b1_varying_bound(k: usize) -> TestQuery {
    assert!((3..=6).contains(&k), "paper varies 3..=6 bound patterns");
    let bound_props = [
        (bsbm::TYPE, "?t"),
        (bsbm::LABEL, "?l1"),
        (bsbm::COMMENT, "?cm"),
        (bsbm::NUMERIC[0], "?n1"),
        (bsbm::NUMERIC[1], "?n2"),
        (bsbm::NUMERIC[2], "?n3"),
    ];
    let mut clauses = String::new();
    for (prop, var) in &bound_props[..k] {
        clauses.push_str(&format!("?p {prop} {var} . "));
    }
    tq(
        &format!("B1-{k}bnd"),
        format!(
            "SELECT * WHERE {{
                {clauses} ?p {feature} ?f . ?p ?u ?x .
                ?x {label} ?l2 .
             }}",
            feature = bsbm::PRODUCT_FEATURE,
            label = bsbm::LABEL,
        ),
    )
}

// ---------------------------------------------------------------------------
// A-series (Bio2RDF-like)
// ---------------------------------------------------------------------------

/// A1–A6: shapes of the Bio2RDF demo queries (Figure 13).
pub fn a_series() -> Vec<TestQuery> {
    let label = bio2rdf::LABEL;
    let symbol = bio2rdf::SYMBOL;
    let synonym = bio2rdf::SYNONYM;
    let xgo = bio2rdf::X_GO;
    let go_label = bio2rdf::GO_LABEL;
    let ref_db = bio2rdf::REF_DB;
    let ref_id = bio2rdf::REF_ID;
    vec![
        // A1/A2: single star, unbound pattern with partially-bound object.
        tq(
            "A1",
            format!(
                "SELECT * WHERE {{
                    ?g {label} ?l . ?g ?u ?x .
                    FILTER prefix(?x, \"<ref\") .
                 }}"
            ),
        ),
        tq(
            "A2",
            format!(
                "SELECT * WHERE {{
                    ?g {symbol} ?s . ?g {xgo} ?go . ?g ?u ?x .
                    FILTER prefix(?x, \"<go\") .
                 }}"
            ),
        ),
        // A3/A4: two stars, an unbound pattern in each (one partially
        // bound).
        tq(
            "A3",
            format!(
                "SELECT * WHERE {{
                    ?g {label} ?l . ?g ?u1 ?r .
                    ?r {ref_db} ?db . ?r ?u2 ?z .
                    FILTER contains(?z, \"pubmed\") .
                 }}"
            ),
        ),
        tq(
            "A4",
            format!(
                "SELECT * WHERE {{
                    ?g {label} ?l . ?g {synonym} ?syn . ?g ?u1 ?r .
                    ?r {ref_db} ?db . ?r {ref_id} ?id . ?r ?u2 ?z .
                    FILTER contains(?z, \"pubmed\") .
                 }}"
            ),
        ),
        // A5: two unbound patterns — one matching a gene word, the other
        // connecting to a single-edge star retrieving labels.
        tq(
            "A5",
            format!(
                "SELECT * WHERE {{
                    ?g ?u1 ?n . ?g ?u2 ?go .
                    ?go {go_label} ?gl .
                    FILTER contains(?n, \"nur77\") .
                 }}"
            ),
        ),
        // A6: unbound pattern partially bound to "hexokinase", two stars.
        tq(
            "A6",
            format!(
                "SELECT * WHERE {{
                    ?g {symbol} ?s . ?g {xgo} ?go . ?g ?u ?x .
                    ?go {go_label} ?gl .
                    FILTER contains(?x, \"hexokinase\") .
                 }}"
            ),
        ),
    ]
}

// ---------------------------------------------------------------------------
// C-series (DBpedia / BTC-like)
// ---------------------------------------------------------------------------

/// C1–C4: exploration queries over the open infobox property space
/// (Figure 14).
pub fn c_series() -> Vec<TestQuery> {
    let ty = dbpedia::TYPE;
    let label = dbpedia::LABEL;
    let scientist = dbpedia::CLASS_SCIENTIST;
    let city = dbpedia::CLASS_CITY;
    vec![
        // C1: everything about scientists (selective class + unbound).
        tq("C1", format!("SELECT * WHERE {{ ?s {ty} {scientist} . ?s ?p ?o . }}")),
        // C2: everything about one entity (constant subject).
        tq("C2", "SELECT * WHERE { <entity3> ?p ?o . }".to_string()),
        // C3: unknown relationship between scientists and cities.
        tq(
            "C3",
            format!(
                "SELECT * WHERE {{
                    ?a {ty} {scientist} . ?a ?p ?c .
                    ?c {ty} {city} . ?c {label} ?l .
                 }}"
            ),
        ),
        // C4: unknown relationships on both sides.
        tq(
            "C4",
            format!(
                "SELECT * WHERE {{
                    ?a {ty} {scientist} . ?a ?p1 ?c .
                    ?c {ty} {city} . ?c ?p2 ?o .
                 }}"
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse_and_are_supported_by_planners() {
        let mut all = case_study();
        all.extend(b_series());
        all.extend(a_series());
        all.extend(c_series());
        for k in 3..=6 {
            all.push(b1_varying_bound(k));
        }
        assert_eq!(all.len(), 6 + 7 + 6 + 4 + 4);
        for q in &all {
            q.query.validate().unwrap_or_else(|e| panic!("{}: {e}", q.id));
            mr_rdf::check_query(&q.query).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }

    #[test]
    fn unbound_pattern_counts_match_paper() {
        let b: std::collections::HashMap<String, usize> =
            b_series().iter().map(|q| (q.id.clone(), q.query.unbound_pattern_count())).collect();
        assert_eq!(b["B0"], 0);
        assert_eq!(b["B1"], 1);
        assert_eq!(b["B2"], 1);
        assert_eq!(b["B3"], 2);
        assert_eq!(b["B4"], 1);
        assert_eq!(b["B6"], 2);
        let a: std::collections::HashMap<String, usize> =
            a_series().iter().map(|q| (q.id.clone(), q.query.unbound_pattern_count())).collect();
        assert_eq!(a["A1"], 1);
        assert_eq!(a["A3"], 2);
        assert_eq!(a["A5"], 2);
        let c: std::collections::HashMap<String, usize> =
            c_series().iter().map(|q| (q.id.clone(), q.query.unbound_pattern_count())).collect();
        assert_eq!(c["C4"], 2);
    }

    #[test]
    fn case_study_join_kinds() {
        use rdf_query::JoinKind;
        let qs = case_study();
        for q in &qs {
            let edges = q.query.join_edges();
            assert_eq!(edges.len(), 1, "{}", q.id);
            let expect_oo = q.id.starts_with("Q3");
            let is_oo = edges[0].kind == JoinKind::ObjectObject;
            assert_eq!(is_oo, expect_oo, "{}", q.id);
        }
    }

    #[test]
    fn b4_unbound_object_is_not_the_join_var() {
        let b4 = b_series().into_iter().find(|q| q.id == "B4").unwrap();
        let join_vars: Vec<String> = b4.query.join_edges().iter().map(|e| e.var.clone()).collect();
        assert!(!join_vars.contains(&"any".to_string()));
    }

    #[test]
    fn b1_bound_arity_varies() {
        for k in 3..=6 {
            let q = b1_varying_bound(k);
            // k bound + productFeature + unbound = k+2 patterns in star 1.
            assert_eq!(q.query.stars[0].arity(), k + 2, "{}", q.id);
        }
    }

    #[test]
    #[should_panic(expected = "3..=6")]
    fn b1_rejects_out_of_range() {
        b1_varying_bound(7);
    }
}
