//! # ntga — reproduction of *"Scaling Unbound-Property Queries on Big RDF
//! Data Warehouses using MapReduce"* (EDBT 2015)
//!
//! This facade crate ties the workspace together:
//!
//! * [`rdf_model`] — RDF terms, N-Triples, triple stores;
//! * [`mrsim`] — the deterministic MapReduce engine simulator (simulated
//!   HDFS, replication, bounded disk, byte-accurate counters);
//! * [`rdf_query`] — graph-pattern queries with unbound-property triple
//!   patterns, SPARQL-subset parser, naive reference evaluator;
//! * [`relbase`] — Pig-like and Hive-like relational baselines;
//! * [`ntga_core`] — the paper's TripleGroup algebra with
//!   eager / lazy-full / lazy-partial β-unnesting;
//! * [`datagen`] — structurally-faithful BSBM / Bio2RDF / DBpedia-like
//!   generators;
//! * [`testbed`] — the paper's query catalog (Q1a–Q3b, B0–B6,
//!   B1-3bnd…6bnd, A1–A6, C1–C4);
//! * [`runner`] — one entry point over every approach.
//!
//! ```
//! use ntga::prelude::*;
//!
//! let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(50));
//! let query = ntga::testbed::b_series().remove(1); // B1
//! let engine = ClusterConfig::default().engine_with(&store);
//! let run = run_query(Approach::NtgaAuto(64), &engine, &query.query, "demo", false).unwrap();
//! assert!(run.succeeded());
//! assert_eq!(run.stats.mr_cycles, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod runner;
pub mod testbed;

pub use runner::{run_query, Approach, ClusterConfig};

/// Convenient single import for examples and tests.
pub mod prelude {
    pub use crate::runner::{run_query, Approach, ClusterConfig};
    pub use crate::testbed::{self, TestQuery};
    pub use mr_rdf::{load_store, QueryRun, TRIPLES_FILE};
    pub use mrsim::{CostModel, Engine, SimHdfs, WorkflowStats};
    pub use ntga_core::Strategy;
    pub use rdf_model::{STriple, TripleStore};
    pub use rdf_query::{parse_query, Query, SolutionSet};
    pub use relbase::RelFlavor;
}
