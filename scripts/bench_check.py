#!/usr/bin/env python3
"""Validate and diff the repo's BENCH_*.json benchmark records.

Two modes:

  bench_check.py FILE [FILE ...]
      Validate each record: results are present, timings are positive,
      the per-bench speedup and the recorded mean are self-consistent,
      the mean speedup clears the 1.3x gate, and (when present) the
      shuffle wire-bytes section shows the ID-native plane below the
      lexical plane with a consistent reduction percentage.

      A result may carry its own "min_speedup" floor. Such a record is
      gated against that floor instead of contributing to the 1.3x mean
      gate — the escape hatch for honest no-regression pairs (e.g. a
      workload a new fast path cannot accelerate but must not slow
      down), which would otherwise drag the headline mean.

  bench_check.py --diff OLD NEW [--tolerance PCT]
      Compare two records and fail on a regression larger than PCT
      (default 10%). Benches are matched by name; for each match the
      NEW after_ms may not exceed the OLD after_ms by more than the
      tolerance. When the two records share no bench names (successive
      PRs rename their benches), the mean speedups are compared
      instead, and a wire-bytes section present in both must not grow.

Exit status is non-zero on the first failed check, so CI can call this
directly. Only the standard library is used.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"bench_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_wire(path, rec):
    """Validate the optional shuffle_wire_bytes section; return it or None."""
    wire = rec.get("shuffle_wire_bytes")
    if wire is None:
        return None
    if not wire["id_native"] < wire["lexical"]:
        fail(f"{path}: wire bytes: id_native {wire['id_native']} not below "
             f"lexical {wire['lexical']}")
    pct = (1 - wire["id_native"] / wire["lexical"]) * 100
    if abs(pct - wire["reduction_pct"]) >= 0.1:
        fail(f"{path}: wire bytes: recorded reduction {wire['reduction_pct']}% "
             f"but computed {pct:.2f}%")
    return wire


def validate(path, min_mean_speedup=1.3):
    rec = load(path)
    results = rec.get("results")
    if not results:
        fail(f"{path}: no results")
    for r in results:
        if not (r["before_ms"] > 0 and r["after_ms"] > 0):
            fail(f"{path}: {r['bench']}: non-positive timing")
        ratio = r["before_ms"] / r["after_ms"]
        if abs(r["speedup"] - ratio) >= 0.01:
            fail(f"{path}: {r['bench']}: recorded speedup {r['speedup']} "
                 f"but before/after gives {ratio:.3f}")
        floor = r.get("min_speedup")
        if floor is not None and r["speedup"] < floor:
            fail(f"{path}: {r['bench']}: speedup {r['speedup']} below its "
                 f"own {floor}x floor")
    mean = sum(r["speedup"] for r in results) / len(results)
    if abs(mean - rec["mean_speedup"]) >= 0.01:
        fail(f"{path}: recorded mean_speedup {rec['mean_speedup']} "
             f"but results give {mean:.3f}")
    gated = [r["speedup"] for r in results if "min_speedup" not in r]
    if gated:
        gated_mean = sum(gated) / len(gated)
        if gated_mean < min_mean_speedup:
            fail(f"{path}: mean speedup {gated_mean:.3f} over the "
                 f"{len(gated)} un-floored benches is below the "
                 f"{min_mean_speedup}x gate")
    wire = check_wire(path, rec)
    extra = f", wire -{wire['reduction_pct']}%" if wire else ""
    floored = len(results) - len(gated)
    if floored:
        extra += f", {floored} with their own floor"
    print(f"ok: {path}: {len(results)} benches, "
          f"mean speedup {rec['mean_speedup']}x{extra}")
    return rec


def diff(old_path, new_path, tolerance_pct):
    old, new = load(old_path), load(new_path)
    limit = 1.0 + tolerance_pct / 100.0
    old_by_name = {r["bench"]: r for r in old.get("results", [])}
    common = [r for r in new.get("results", []) if r["bench"] in old_by_name]
    if common:
        for r in common:
            before, after = old_by_name[r["bench"]]["after_ms"], r["after_ms"]
            if after > before * limit:
                fail(f"{r['bench']}: {after}ms is "
                     f"{(after / before - 1) * 100:.1f}% slower than "
                     f"{before}ms (tolerance {tolerance_pct}%)")
        print(f"ok: {len(common)} matched benches within "
              f"{tolerance_pct}% of {old_path}")
    else:
        # Successive PRs rename their benches; fall back to the headline
        # mean so the gate still binds across records.
        old_mean, new_mean = old["mean_speedup"], new["mean_speedup"]
        if new_mean * limit < old_mean:
            fail(f"no common bench names; mean speedup regressed "
                 f"{old_mean}x -> {new_mean}x (tolerance {tolerance_pct}%)")
        print(f"ok: no common bench names; mean speedup {old_mean}x -> "
              f"{new_mean}x within {tolerance_pct}%")
    old_wire, new_wire = old.get("shuffle_wire_bytes"), new.get("shuffle_wire_bytes")
    if old_wire and new_wire:
        before, after = old_wire["id_native"], new_wire["id_native"]
        if after > before * limit:
            fail(f"id-native wire bytes grew {before} -> {after} "
                 f"(tolerance {tolerance_pct}%)")
        print(f"ok: id-native wire bytes {before} -> {after}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", metavar="FILE",
                    help="BENCH_*.json records (with --diff: exactly OLD NEW)")
    ap.add_argument("--diff", action="store_true",
                    help="compare two records instead of validating")
    ap.add_argument("--tolerance", type=float, default=10.0, metavar="PCT",
                    help="maximum allowed regression in percent (default 10)")
    args = ap.parse_args()
    if args.diff:
        if len(args.files) != 2:
            ap.error("--diff takes exactly two files: OLD NEW")
        diff(args.files[0], args.files[1], args.tolerance)
    else:
        for path in args.files:
            validate(path)


if __name__ == "__main__":
    main()
