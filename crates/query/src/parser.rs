//! A SPARQL-subset parser for the query shapes the paper evaluates.
//!
//! Supported grammar (whitespace-insensitive, `#` line comments):
//!
//! ```text
//! query    := SELECT ( '*' | var+ ) WHERE '{' clause* '}'
//! clause   := triple '.' | filter '.'?
//! triple   := term term term          (subject property object)
//! term     := var | iri | literal
//! filter   := FILTER '(' var '=' (iri|literal) ')'
//!           | FILTER contains '(' var ',' string ')'
//!           | FILTER prefix '(' var ',' string ')'
//! ```
//!
//! Variables in the property position produce *unbound-property* triple
//! patterns. Filters on an object variable become
//! [`ObjPattern::Filtered`] (the paper's "partially-bound object").
//! Constant subjects are rewritten to fresh variables with an `Equals`
//! subject filter on the star.

use crate::pattern::{ObjFilter, ObjPattern, PropPattern, SubjPattern, TriplePattern};
use crate::query::Query;
use crate::star::StarPattern;
use rdf_model::atom::atom;
use std::collections::HashMap;
use std::fmt;

/// Error from [`parse_query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn perr<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: msg.into() })
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Keyword(String), // SELECT, WHERE, FILTER, contains, prefix (case-insensitive keywords)
    Var(String),     // ?x
    Iri(String),     // <...> (token includes brackets)
    Literal(String), // "..." (token includes quotes and any suffix)
    Punct(char),     // { } ( ) . , = *
}

fn tokenize(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '?' | '$' => {
                chars.next();
                let mut name = String::new();
                while matches!(chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_') {
                    name.push(chars.next().expect("peeked"));
                }
                if name.is_empty() {
                    return perr("empty variable name");
                }
                toks.push(Tok::Var(name));
            }
            '<' => {
                let mut iri = String::from("<");
                chars.next();
                loop {
                    match chars.next() {
                        Some('>') => {
                            iri.push('>');
                            break;
                        }
                        Some(c) if !c.is_whitespace() => iri.push(c),
                        _ => return perr("unterminated IRI"),
                    }
                }
                toks.push(Tok::Iri(iri));
            }
            '"' => {
                let mut lit = String::from("\"");
                chars.next();
                loop {
                    match chars.next() {
                        Some('\\') => {
                            lit.push('\\');
                            match chars.next() {
                                Some(e) => lit.push(e),
                                None => return perr("dangling escape in literal"),
                            }
                        }
                        Some('"') => {
                            lit.push('"');
                            break;
                        }
                        Some(c) => lit.push(c),
                        None => return perr("unterminated literal"),
                    }
                }
                // Optional ^^<dt> or @lang suffix — kept in the token.
                if let Some('^') = chars.peek() {
                    chars.next();
                    if chars.next() != Some('^') {
                        return perr("expected ^^ after literal");
                    }
                    lit.push_str("^^");
                    if chars.peek() != Some(&'<') {
                        return perr("expected <datatype> after ^^");
                    }
                    chars.next();
                    lit.push('<');
                    loop {
                        match chars.next() {
                            Some('>') => {
                                lit.push('>');
                                break;
                            }
                            Some(c) if !c.is_whitespace() => lit.push(c),
                            _ => return perr("unterminated datatype IRI"),
                        }
                    }
                } else if let Some('@') = chars.peek() {
                    chars.next();
                    lit.push('@');
                    while matches!(chars.peek(), Some(c) if c.is_ascii_alphanumeric() || *c == '-')
                    {
                        lit.push(chars.next().expect("peeked"));
                    }
                }
                toks.push(Tok::Literal(lit));
            }
            '{' | '}' | '(' | ')' | '.' | ',' | '=' | '*' => {
                toks.push(Tok::Punct(c));
                chars.next();
            }
            c if c.is_alphabetic() => {
                let mut word = String::new();
                while matches!(chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_') {
                    word.push(chars.next().expect("peeked"));
                }
                toks.push(Tok::Keyword(word));
            }
            other => return perr(format!("unexpected character '{other}'")),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    fresh: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Keyword(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => perr(format!("expected '{kw}', found {other:?}")),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => perr(format!("expected '{c}', found {other:?}")),
        }
    }
}

/// A raw parsed triple before star grouping.
struct RawTriple {
    subj_var: String,
    subj_const: Option<String>,
    prop: PropPattern,
    obj: ObjPattern,
}

/// Parse a query text into a [`Query`]. The result is validated.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0, fresh: 0 };

    p.expect_keyword("SELECT")?;
    let mut projection: Option<Vec<String>> = None;
    match p.peek() {
        Some(Tok::Punct('*')) => {
            p.next();
        }
        Some(Tok::Var(_)) => {
            let mut vars = Vec::new();
            while let Some(Tok::Var(v)) = p.peek() {
                vars.push(v.clone());
                p.next();
            }
            projection = Some(vars);
        }
        other => return perr(format!("expected '*' or variables after SELECT, found {other:?}")),
    }
    p.expect_keyword("WHERE")?;
    p.expect_punct('{')?;

    let mut triples: Vec<RawTriple> = Vec::new();
    let mut filters: Vec<(String, ObjFilter)> = Vec::new();
    // subject-const token -> synthesized var, so repeated const subjects
    // share one star.
    let mut const_subjects: HashMap<String, String> = HashMap::new();

    loop {
        match p.peek() {
            Some(Tok::Punct('}')) => {
                p.next();
                break;
            }
            Some(Tok::Keyword(w)) if w.eq_ignore_ascii_case("FILTER") => {
                p.next();
                filters.push(parse_filter(&mut p)?);
                if matches!(p.peek(), Some(Tok::Punct('.'))) {
                    p.next();
                }
            }
            Some(_) => {
                triples.push(parse_triple(&mut p, &mut const_subjects)?);
                match p.peek() {
                    Some(Tok::Punct('.')) => {
                        p.next();
                    }
                    Some(Tok::Punct('}')) => {}
                    other => {
                        return perr(format!("expected '.' or '}}' after triple, found {other:?}"))
                    }
                }
            }
            None => return perr("unexpected end of query (missing '}')"),
        }
    }
    if p.peek().is_some() {
        return perr("trailing tokens after '}'");
    }

    // Apply filters to every object position binding that variable.
    let mut filter_used = vec![false; filters.len()];
    for t in &mut triples {
        if let Some(v) = t.obj.var().map(str::to_string) {
            for (i, (fv, f)) in filters.iter().enumerate() {
                if *fv == v {
                    t.obj = ObjPattern::Filtered(v.clone(), f.clone());
                    filter_used[i] = true;
                }
            }
        }
    }
    // Remaining filters may constrain subject variables.
    let mut subj_filters: HashMap<String, ObjFilter> = HashMap::new();
    for (i, (fv, f)) in filters.iter().enumerate() {
        if filter_used[i] {
            continue;
        }
        if triples.iter().any(|t| t.subj_var == *fv) {
            subj_filters.insert(fv.clone(), f.clone());
        } else {
            return perr(format!("filter on unknown variable ?{fv}"));
        }
    }

    // Group into stars, preserving first-appearance order of subjects.
    let mut order: Vec<String> = Vec::new();
    let mut grouped: HashMap<String, Vec<TriplePattern>> = HashMap::new();
    let mut const_of: HashMap<String, String> = HashMap::new();
    for t in triples {
        if !grouped.contains_key(&t.subj_var) {
            order.push(t.subj_var.clone());
        }
        if let Some(c) = &t.subj_const {
            const_of.insert(t.subj_var.clone(), c.clone());
        }
        grouped.entry(t.subj_var.clone()).or_default().push(TriplePattern {
            subject: SubjPattern::Var(t.subj_var.clone()),
            property: t.prop,
            object: t.obj,
        });
    }
    let stars: Vec<StarPattern> = order
        .into_iter()
        .map(|v| {
            let star = StarPattern::new(v.clone(), grouped.remove(&v).expect("grouped"));
            if let Some(c) = const_of.get(&v) {
                star.with_subject_filter(ObjFilter::Equals(atom(c)))
            } else if let Some(f) = subj_filters.get(&v) {
                star.with_subject_filter(f.clone())
            } else {
                star
            }
        })
        .collect();

    let mut query = Query::new(stars);
    if let Some(vars) = projection {
        query = query.with_projection(vars);
    }
    query.validate().map_err(|e| ParseError { message: e.to_string() })?;
    Ok(query)
}

fn parse_triple(
    p: &mut Parser,
    const_subjects: &mut HashMap<String, String>,
) -> Result<RawTriple, ParseError> {
    let (subj_var, subj_const) = match p.next() {
        Some(Tok::Var(v)) => (v, None),
        Some(Tok::Iri(iri)) => {
            let var = const_subjects
                .entry(iri.clone())
                .or_insert_with(|| {
                    p.fresh += 1;
                    format!("_s{}", p.fresh)
                })
                .clone();
            (var, Some(iri))
        }
        other => return perr(format!("expected subject, found {other:?}")),
    };
    let prop = match p.next() {
        Some(Tok::Var(v)) => PropPattern::Unbound(v),
        Some(Tok::Iri(iri)) => PropPattern::Bound(atom(&iri)),
        other => return perr(format!("expected property, found {other:?}")),
    };
    let obj = match p.next() {
        Some(Tok::Var(v)) => ObjPattern::Var(v),
        Some(Tok::Iri(iri)) => ObjPattern::Const(atom(&iri)),
        Some(Tok::Literal(lit)) => ObjPattern::Const(atom(&lit)),
        other => return perr(format!("expected object, found {other:?}")),
    };
    Ok(RawTriple { subj_var, subj_const, prop, obj })
}

fn parse_filter(p: &mut Parser) -> Result<(String, ObjFilter), ParseError> {
    match p.next() {
        // FILTER (?v = term)
        Some(Tok::Punct('(')) => {
            let var = match p.next() {
                Some(Tok::Var(v)) => v,
                other => return perr(format!("expected variable in FILTER, found {other:?}")),
            };
            p.expect_punct('=')?;
            let value = match p.next() {
                Some(Tok::Iri(t)) | Some(Tok::Literal(t)) => t,
                other => return perr(format!("expected constant in FILTER, found {other:?}")),
            };
            p.expect_punct(')')?;
            Ok((var, ObjFilter::Equals(atom(&value))))
        }
        // FILTER contains(?v, "s") | FILTER prefix(?v, "s")
        Some(Tok::Keyword(fun)) => {
            let make: fn(String) -> ObjFilter = if fun.eq_ignore_ascii_case("contains") {
                ObjFilter::Contains
            } else if fun.eq_ignore_ascii_case("prefix") || fun.eq_ignore_ascii_case("strstarts") {
                ObjFilter::Prefix
            } else {
                return perr(format!("unknown filter function '{fun}'"));
            };
            p.expect_punct('(')?;
            let var = match p.next() {
                Some(Tok::Var(v)) => v,
                other => return perr(format!("expected variable, found {other:?}")),
            };
            p.expect_punct(',')?;
            let needle = match p.next() {
                Some(Tok::Literal(lit)) => lit.trim_matches('"').to_string(),
                other => return perr(format!("expected string, found {other:?}")),
            };
            p.expect_punct(')')?;
            Ok((var, make(needle)))
        }
        other => perr(format!("malformed FILTER at {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_star_query() {
        let q = parse_query(
            "SELECT * WHERE {
                ?g <label> ?l .
                ?g <xGO> ?go .
                ?go <go_label> ?gl .
            }",
        )
        .unwrap();
        assert_eq!(q.stars.len(), 2);
        assert_eq!(q.stars[0].arity(), 2);
        assert_eq!(q.stars[1].subject_var, "go");
        assert!(q.projection.is_none());
    }

    #[test]
    fn parses_unbound_property() {
        let q = parse_query("SELECT ?g ?p WHERE { ?g <label> ?l . ?g ?p ?o . }").unwrap();
        assert_eq!(q.unbound_pattern_count(), 1);
        assert_eq!(q.projection, Some(vec!["g".to_string(), "p".to_string()]));
    }

    #[test]
    fn parses_contains_filter_as_partially_bound_object() {
        let q = parse_query(r#"SELECT * WHERE { ?g ?p ?o . FILTER contains(?o, "hexokinase") }"#)
            .unwrap();
        let pat = &q.stars[0].patterns[0];
        match &pat.object {
            ObjPattern::Filtered(v, ObjFilter::Contains(s)) => {
                assert_eq!(v, "o");
                assert_eq!(s, "hexokinase");
            }
            other => panic!("expected filtered object, got {other:?}"),
        }
    }

    #[test]
    fn parses_equality_filter() {
        let q = parse_query("SELECT * WHERE { ?g ?p ?o . FILTER (?o = <nur77>) }").unwrap();
        match &q.stars[0].patterns[0].object {
            ObjPattern::Filtered(_, ObjFilter::Equals(a)) => assert_eq!(&**a, "<nur77>"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_subject_becomes_filtered_star() {
        let q = parse_query("SELECT * WHERE { <sopranos> ?p ?o . }").unwrap();
        assert_eq!(q.stars.len(), 1);
        match &q.stars[0].subject_filter {
            Some(ObjFilter::Equals(a)) => assert_eq!(&**a, "<sopranos>"),
            other => panic!("{other:?}"),
        }
        // Same const subject reused -> same star.
        let q2 = parse_query("SELECT * WHERE { <s> <p> ?a . <s> <q> ?b . }").unwrap();
        assert_eq!(q2.stars.len(), 1);
        assert_eq!(q2.stars[0].arity(), 2);
    }

    #[test]
    fn literal_objects_and_datatypes() {
        let q = parse_query(
            r#"SELECT * WHERE { ?s <p> "v"^^<http://x> . ?s <q> "w"@en . ?s <r> "plain" . }"#,
        )
        .unwrap();
        assert_eq!(q.stars[0].arity(), 3);
        match &q.stars[0].patterns[0].object {
            ObjPattern::Const(c) => assert_eq!(&**c, "\"v\"^^<http://x>"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comments_ignored() {
        let q = parse_query("SELECT * WHERE { # star one\n ?s <p> ?o . # done\n }").unwrap();
        assert_eq!(q.stars.len(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_query("SELECT WHERE { ?s <p> ?o . }").is_err());
        assert!(parse_query("SELECT * { ?s <p> ?o . }").is_err());
        assert!(parse_query("SELECT * WHERE { ?s <p> . }").is_err());
        assert!(parse_query("SELECT * WHERE { ?s <p> ?o . ").is_err());
        assert!(parse_query("SELECT * WHERE { ?s <p> ?o . } trailing").is_err());
        assert!(parse_query(r#"SELECT * WHERE { ?s <p> ?o . FILTER bogus(?o, "x") }"#).is_err());
        assert!(parse_query(r#"SELECT * WHERE { ?s <p> ?o . FILTER contains(?zz, "x") }"#).is_err());
    }

    #[test]
    fn rejects_disconnected_stars() {
        let r = parse_query("SELECT * WHERE { ?a <p> ?x . ?b <q> ?y . }");
        assert!(r.is_err());
    }

    #[test]
    fn filter_on_subject_var() {
        let q =
            parse_query(r#"SELECT * WHERE { ?s <p> ?o . FILTER prefix(?s, "<gene") }"#).unwrap();
        assert!(matches!(q.stars[0].subject_filter, Some(ObjFilter::Prefix(_))));
    }
}
