//! Rendering queries back to query text.
//!
//! [`Query::to_text`] produces text that [`crate::parse_query`] parses
//! back to an equivalent query (`parse(to_text(q)) ≡ q` up to fresh
//! variable names for constant subjects) — tested over the whole testbed
//! catalog.

use crate::pattern::{ObjFilter, ObjPattern, PropPattern, SubjPattern};
use crate::query::Query;
use std::fmt::Write as _;

fn filter_text(var: &str, f: &ObjFilter) -> String {
    match f {
        ObjFilter::Equals(v) => format!("FILTER (?{var} = {v}) ."),
        ObjFilter::Contains(s) => format!("FILTER contains(?{var}, \"{s}\") ."),
        ObjFilter::Prefix(s) => format!("FILTER prefix(?{var}, \"{s}\") ."),
    }
}

impl Query {
    /// Render as parseable query text.
    pub fn to_text(&self) -> String {
        let mut out = String::from("SELECT ");
        match &self.projection {
            None => out.push('*'),
            Some(vars) => {
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    write!(out, "?{v}").expect("write to string");
                }
            }
        }
        out.push_str(" WHERE {\n");
        let mut filters: Vec<String> = Vec::new();
        for star in &self.stars {
            if let Some(f) = &star.subject_filter {
                filters.push(filter_text(&star.subject_var, f));
            }
            for pat in &star.patterns {
                out.push_str("  ");
                match &pat.subject {
                    SubjPattern::Var(v) => write!(out, "?{v} "),
                    SubjPattern::Const(c) => write!(out, "{c} "),
                }
                .expect("write to string");
                match &pat.property {
                    PropPattern::Bound(p) => write!(out, "{p} "),
                    PropPattern::Unbound(v) => write!(out, "?{v} "),
                }
                .expect("write to string");
                match &pat.object {
                    ObjPattern::Var(v) => write!(out, "?{v} ."),
                    ObjPattern::Const(c) => write!(out, "{c} ."),
                    ObjPattern::Filtered(v, f) => {
                        filters.push(filter_text(v, f));
                        write!(out, "?{v} .")
                    }
                }
                .expect("write to string");
                out.push('\n');
            }
        }
        // Dedup filters (one variable may be filtered at several
        // positions; the text form needs each clause once).
        filters.dedup();
        for f in filters {
            out.push_str("  ");
            out.push_str(&f);
            out.push('\n');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    fn roundtrip(text: &str) {
        let q1 = parse_query(text).unwrap();
        let rendered = q1.to_text();
        let q2 =
            parse_query(&rendered).unwrap_or_else(|e| panic!("{e}\n--- rendered:\n{rendered}"));
        assert_eq!(q1, q2, "roundtrip changed the query:\n{rendered}");
    }

    #[test]
    fn roundtrips_basic_shapes() {
        roundtrip("SELECT * WHERE { ?a <p> ?x . ?a <q> ?y . }");
        roundtrip("SELECT ?a ?x WHERE { ?a <p> ?x . ?a ?u ?o . }");
        roundtrip(r#"SELECT * WHERE { ?a <p> ?x . ?a ?u ?o . FILTER contains(?o, "hexo") }"#);
        roundtrip(r#"SELECT * WHERE { ?a ?u ?o . FILTER (?o = <nur77>) }"#);
        roundtrip(r#"SELECT * WHERE { ?a <p> "literal value" . }"#);
        roundtrip("SELECT * WHERE { ?a <p> ?b . ?b <q> ?c . ?b ?u ?d . }");
    }

    #[test]
    fn const_subject_roundtrips_structurally() {
        // Constant subjects become fresh vars with Equals filters; the
        // re-parse reproduces the same structure (modulo the var name,
        // which the parser regenerates identically).
        let q1 = parse_query("SELECT * WHERE { <sopranos> ?p ?o . }").unwrap();
        let q2 = parse_query(&q1.to_text()).unwrap();
        assert_eq!(q1.stars.len(), q2.stars.len());
        assert_eq!(q1.stars[0].subject_filter.is_some(), q2.stars[0].subject_filter.is_some());
    }

    #[test]
    fn rendered_text_is_readable() {
        let q =
            parse_query("SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }").unwrap();
        let text = q.to_text();
        assert!(text.starts_with("SELECT * WHERE {"));
        assert!(text.contains("?g <label> ?l ."));
        assert!(text.contains("?g ?p ?go ."));
        assert!(text.trim_end().ends_with('}'));
    }
}
