//! Query solutions: variable bindings and canonical solution sets.
//!
//! Every evaluation strategy in the workspace (naive reference, Pig-like,
//! Hive-like, NTGA eager/lazy) reduces its final output to a
//! [`SolutionSet`] so results can be compared for exact equality — the
//! workspace's headline correctness invariant.

use rdf_model::Atom;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One solution: a mapping from variable name to the bound token.
///
/// Ordered map so solutions have a canonical form and implement `Ord`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Binding(pub BTreeMap<String, Atom>);

impl Binding {
    /// Empty binding.
    pub fn new() -> Self {
        Binding::default()
    }

    /// Value bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<&Atom> {
        self.0.get(var)
    }

    /// Bind `var` to `value`, returning `false` (and leaving the binding
    /// unchanged) if `var` is already bound to a *different* value.
    pub fn bind(&mut self, var: &str, value: Atom) -> bool {
        match self.0.get(var) {
            Some(existing) => *existing == value,
            None => {
                self.0.insert(var.to_string(), value);
                true
            }
        }
    }

    /// Merge another binding in; `false` on any conflict.
    pub fn merge(&mut self, other: &Binding) -> bool {
        for (k, v) in &other.0 {
            if !self.bind(k, v.clone()) {
                return false;
            }
        }
        true
    }

    /// Restrict to the given variables (missing variables are dropped).
    pub fn project(&self, vars: &[String]) -> Binding {
        let mut out = BTreeMap::new();
        for v in vars {
            if let Some(val) = self.0.get(v) {
                out.insert(v.clone(), val.clone());
            }
        }
        Binding(out)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over `(var, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Atom)> {
        self.0.iter()
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "?{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Atom)> for Binding {
    fn from_iter<I: IntoIterator<Item = (String, Atom)>>(iter: I) -> Self {
        Binding(iter.into_iter().collect())
    }
}

/// A canonical set of solutions (set semantics; duplicates collapse).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SolutionSet(pub BTreeSet<Binding>);

impl SolutionSet {
    /// Empty set.
    pub fn new() -> Self {
        SolutionSet::default()
    }

    /// Insert one solution.
    pub fn insert(&mut self, b: Binding) {
        self.0.insert(b);
    }

    /// Number of distinct solutions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Project every solution onto `vars` (collapsing duplicates).
    pub fn project(&self, vars: &[String]) -> SolutionSet {
        SolutionSet(self.0.iter().map(|b| b.project(vars)).collect())
    }

    /// Iterate in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Binding> {
        self.0.iter()
    }
}

impl FromIterator<Binding> for SolutionSet {
    fn from_iter<I: IntoIterator<Item = Binding>>(iter: I) -> Self {
        SolutionSet(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::atom::atom;

    #[test]
    fn bind_conflicts_detected() {
        let mut b = Binding::new();
        assert!(b.bind("x", atom("<a>")));
        assert!(b.bind("x", atom("<a>"))); // same value ok
        assert!(!b.bind("x", atom("<b>"))); // conflict
        assert_eq!(b.get("x").unwrap().as_ref(), "<a>");
    }

    #[test]
    fn merge_conflict() {
        let mut b1: Binding = [("x".to_string(), atom("<a>"))].into_iter().collect();
        let b2: Binding = [("x".to_string(), atom("<b>"))].into_iter().collect();
        assert!(!b1.merge(&b2));
        let b3: Binding = [("y".to_string(), atom("<c>"))].into_iter().collect();
        assert!(b1.merge(&b3));
        assert_eq!(b1.len(), 2);
    }

    #[test]
    fn projection_drops_and_dedups() {
        let mut set = SolutionSet::new();
        set.insert(
            [("x".to_string(), atom("<a>")), ("y".to_string(), atom("<1>"))].into_iter().collect(),
        );
        set.insert(
            [("x".to_string(), atom("<a>")), ("y".to_string(), atom("<2>"))].into_iter().collect(),
        );
        assert_eq!(set.len(), 2);
        let proj = set.project(&["x".to_string()]);
        assert_eq!(proj.len(), 1);
    }

    #[test]
    fn display_is_stable() {
        let b: Binding =
            [("y".to_string(), atom("<b>")), ("x".to_string(), atom("<a>"))].into_iter().collect();
        assert_eq!(b.to_string(), "{?x=<a>, ?y=<b>}");
    }

    #[test]
    fn solution_set_dedups() {
        let b: Binding = [("x".to_string(), atom("<a>"))].into_iter().collect();
        let set: SolutionSet = vec![b.clone(), b].into_iter().collect();
        assert_eq!(set.len(), 1);
    }
}
