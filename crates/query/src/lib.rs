//! # rdf-query — graph pattern queries with unbound properties
//!
//! The query model of the reproduction: triple patterns whose *property*
//! position may be an unbound variable ([`PropPattern::Unbound`]), star
//! subpatterns grouping patterns by subject variable ([`StarPattern`]),
//! whole queries with inter-star join analysis ([`Query`]), a SPARQL-subset
//! parser ([`parse_query`]), canonical solution sets ([`SolutionSet`]), and
//! a naive reference evaluator ([`naive::evaluate`]) that serves as the
//! gold standard for every MapReduce execution strategy in the workspace.
//!
//! ```
//! use rdf_query::parse_query;
//!
//! let q = parse_query(
//!     "SELECT ?gene ?p WHERE {
//!          ?gene <xGO> ?go .
//!          ?gene ?p ?o .
//!          ?go <go_label> ?gl .
//!      }",
//! ).unwrap();
//! assert_eq!(q.stars.len(), 2);
//! assert_eq!(q.unbound_pattern_count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bindings;
pub mod display;
pub mod estimate;
pub mod naive;
pub mod parser;
pub mod pattern;
pub mod query;
pub mod star;

pub use bindings::{Binding, SolutionSet};
pub use parser::{parse_query, ParseError};
pub use pattern::{ObjFilter, ObjPattern, PropPattern, SubjPattern, TriplePattern};
pub use query::{JoinEdge, JoinKind, Query, QueryError};
pub use star::StarPattern;
