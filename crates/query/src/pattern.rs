//! Triple patterns with unbound properties and (partially-)bound objects.

use rdf_model::{Atom, STriple};
use std::fmt;

/// The subject position of a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SubjPattern {
    /// A variable, e.g. `?gene`.
    Var(String),
    /// A constant subject token.
    Const(Atom),
}

/// The property (predicate) position of a triple pattern.
///
/// `Unbound` is the paper's *unbound-property* case: an edge with a
/// "don't care" label, e.g. `?gene ?p ?o`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropPattern {
    /// A bound property, e.g. `<xGO>`.
    Bound(Atom),
    /// An unbound property variable, e.g. `?p`.
    Unbound(String),
}

impl PropPattern {
    /// True if the property is unbound.
    pub fn is_unbound(&self) -> bool {
        matches!(self, PropPattern::Unbound(_))
    }
}

/// A value-level constraint on an object variable.
///
/// The paper's "partially-bound object" is an unbound-property pattern
/// whose object is constrained (the user knows *something* about the
/// object, e.g. that it mentions "hexokinase"), which makes the pattern
/// selective even though the property is unknown.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ObjFilter {
    /// Object token equals this constant.
    Equals(Atom),
    /// Object token contains this substring.
    Contains(String),
    /// Object token starts with this prefix.
    Prefix(String),
}

impl ObjFilter {
    /// Test a candidate object token against the filter.
    pub fn accepts(&self, token: &str) -> bool {
        match self {
            ObjFilter::Equals(a) => &**a == token,
            ObjFilter::Contains(s) => token.contains(s.as_str()),
            ObjFilter::Prefix(s) => token.starts_with(s.as_str()),
        }
    }
}

/// The object position of a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ObjPattern {
    /// An unconstrained variable, e.g. `?o`.
    Var(String),
    /// A constant object token.
    Const(Atom),
    /// A *partially-bound* variable: matches bind the variable but must
    /// satisfy the filter.
    Filtered(String, ObjFilter),
}

impl ObjPattern {
    /// The variable name, if this position binds one.
    pub fn var(&self) -> Option<&str> {
        match self {
            ObjPattern::Var(v) | ObjPattern::Filtered(v, _) => Some(v),
            ObjPattern::Const(_) => None,
        }
    }

    /// True if a given object token can match this position (ignoring any
    /// variable-consistency constraints).
    pub fn accepts(&self, token: &str) -> bool {
        match self {
            ObjPattern::Var(_) => true,
            ObjPattern::Const(c) => &**c == token,
            ObjPattern::Filtered(_, f) => f.accepts(token),
        }
    }
}

/// One triple pattern of a graph pattern query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: SubjPattern,
    /// Property position.
    pub property: PropPattern,
    /// Object position.
    pub object: ObjPattern,
}

impl TriplePattern {
    /// Shorthand: `?subjvar <prop> ?objvar`.
    pub fn bound(subj_var: &str, prop: &str, obj: ObjPattern) -> Self {
        TriplePattern {
            subject: SubjPattern::Var(subj_var.to_string()),
            property: PropPattern::Bound(rdf_model::atom::atom(prop)),
            object: obj,
        }
    }

    /// Shorthand: `?subjvar ?propvar <obj-pattern>` (unbound property).
    pub fn unbound(subj_var: &str, prop_var: &str, obj: ObjPattern) -> Self {
        TriplePattern {
            subject: SubjPattern::Var(subj_var.to_string()),
            property: PropPattern::Unbound(prop_var.to_string()),
            object: obj,
        }
    }

    /// True if the property position is unbound.
    pub fn is_unbound_property(&self) -> bool {
        self.property.is_unbound()
    }

    /// All variable names this pattern binds, in subject/property/object
    /// order.
    pub fn variables(&self) -> Vec<&str> {
        let mut vars = Vec::with_capacity(3);
        if let SubjPattern::Var(v) = &self.subject {
            vars.push(v.as_str());
        }
        if let PropPattern::Unbound(v) = &self.property {
            vars.push(v.as_str());
        }
        if let Some(v) = self.object.var() {
            vars.push(v);
        }
        vars
    }

    /// Structural match of a triple against this pattern, ignoring
    /// cross-pattern variable consistency: checks constants and filters
    /// only.
    pub fn matches_structurally(&self, t: &STriple) -> bool {
        let s_ok = match &self.subject {
            SubjPattern::Var(_) => true,
            SubjPattern::Const(c) => *c == t.s,
        };
        let p_ok = match &self.property {
            PropPattern::Unbound(_) => true,
            PropPattern::Bound(c) => *c == t.p,
        };
        s_ok && p_ok && self.object.accepts(&t.o)
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.subject {
            SubjPattern::Var(v) => write!(f, "?{v} ")?,
            SubjPattern::Const(c) => write!(f, "{c} ")?,
        }
        match &self.property {
            PropPattern::Bound(c) => write!(f, "{c} ")?,
            PropPattern::Unbound(v) => write!(f, "?{v} ")?,
        }
        match &self.object {
            ObjPattern::Var(v) => write!(f, "?{v}"),
            ObjPattern::Const(c) => write!(f, "{c}"),
            ObjPattern::Filtered(v, filt) => write!(f, "?{v} /*{filt:?}*/"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters() {
        assert!(ObjFilter::Equals(rdf_model::atom::atom("<x>")).accepts("<x>"));
        assert!(!ObjFilter::Equals(rdf_model::atom::atom("<x>")).accepts("<y>"));
        assert!(ObjFilter::Contains("exo".into()).accepts("\"hexokinase\""));
        assert!(!ObjFilter::Contains("zzz".into()).accepts("\"hexokinase\""));
        assert!(ObjFilter::Prefix("\"hexo".into()).accepts("\"hexokinase\""));
        assert!(!ObjFilter::Prefix("kinase".into()).accepts("\"hexokinase\""));
    }

    #[test]
    fn structural_match_bound() {
        let p = TriplePattern::bound("x", "<label>", ObjPattern::Var("l".into()));
        assert!(p.matches_structurally(&STriple::new("<s>", "<label>", "\"a\"")));
        assert!(!p.matches_structurally(&STriple::new("<s>", "<other>", "\"a\"")));
    }

    #[test]
    fn structural_match_unbound() {
        let p = TriplePattern::unbound("x", "p", ObjPattern::Var("o".into()));
        assert!(p.matches_structurally(&STriple::new("<s>", "<anything>", "<o>")));
        assert!(p.is_unbound_property());
    }

    #[test]
    fn structural_match_const_subject_and_object() {
        let p = TriplePattern {
            subject: SubjPattern::Const(rdf_model::atom::atom("<s>")),
            property: PropPattern::Bound(rdf_model::atom::atom("<p>")),
            object: ObjPattern::Const(rdf_model::atom::atom("<o>")),
        };
        assert!(p.matches_structurally(&STriple::new("<s>", "<p>", "<o>")));
        assert!(!p.matches_structurally(&STriple::new("<z>", "<p>", "<o>")));
        assert!(!p.matches_structurally(&STriple::new("<s>", "<p>", "<z>")));
    }

    #[test]
    fn partially_bound_object() {
        let p = TriplePattern::unbound(
            "x",
            "p",
            ObjPattern::Filtered("o".into(), ObjFilter::Contains("hexo".into())),
        );
        assert!(p.matches_structurally(&STriple::new("<s>", "<p>", "\"hexokinase\"")));
        assert!(!p.matches_structurally(&STriple::new("<s>", "<p>", "\"amylase\"")));
    }

    #[test]
    fn variables_listed_in_order() {
        let p = TriplePattern::unbound("x", "p", ObjPattern::Var("o".into()));
        assert_eq!(p.variables(), vec!["x", "p", "o"]);
        let q = TriplePattern::bound("x", "<l>", ObjPattern::Const(rdf_model::atom::atom("<c>")));
        assert_eq!(q.variables(), vec!["x"]);
    }
}
