//! Cardinality estimation from store statistics.
//!
//! The paper's Sel-SJ-first grouping evaluates "the most selective" star
//! join first; real planners decide that from data statistics. This module
//! provides the standard independence-assumption estimator over
//! [`StoreStats`]: per-pattern match counts (property counts × filter
//! selectivity), star match counts (intersecting subject sets), and a
//! comparable selectivity score per star.

use crate::pattern::{ObjFilter, ObjPattern, PropPattern, TriplePattern};
use crate::star::StarPattern;
use rdf_model::StoreStats;

/// Default selectivity assumed for a `Contains`/`Prefix` object filter
/// (the classic 1/10 guess for unanalyzed predicates).
pub const FILTER_SELECTIVITY: f64 = 0.1;

/// Selectivity of "object equals one constant" for a pattern: one value
/// out of the property's distinct objects (or the store's, for unbound
/// properties) — the classic `1/V(R, a)` estimate.
fn equals_selectivity(property: &PropPattern, stats: &StoreStats) -> f64 {
    let distinct = match property {
        PropPattern::Bound(p) => stats.per_property.get(p).map_or(0, |ps| ps.distinct_objects),
        PropPattern::Unbound(_) => stats.distinct_objects,
    };
    if distinct == 0 {
        1.0
    } else {
        1.0 / distinct as f64
    }
}

fn object_selectivity(pattern: &TriplePattern, stats: &StoreStats) -> f64 {
    match &pattern.object {
        ObjPattern::Var(_) => 1.0,
        ObjPattern::Const(_) | ObjPattern::Filtered(_, ObjFilter::Equals(_)) => {
            equals_selectivity(&pattern.property, stats)
        }
        ObjPattern::Filtered(_, _) => FILTER_SELECTIVITY,
    }
}

/// Estimated number of triples matching one pattern.
pub fn pattern_cardinality(pattern: &TriplePattern, stats: &StoreStats) -> f64 {
    let base = match &pattern.property {
        PropPattern::Bound(p) => stats.per_property.get(p).map_or(0.0, |ps| ps.count as f64),
        // Unbound property: the whole relation.
        PropPattern::Unbound(_) => stats.triples as f64,
    };
    base * object_selectivity(pattern, stats)
}

/// Estimated number of *subjects* matching a whole star (the size of its
/// triplegroup equivalence class).
///
/// Uses the **containment assumption** (the tighter pattern's subject set
/// is contained in the looser one's), which fits RDF schemas far better
/// than independence: in entity-centric data, subjects carrying a rare
/// property almost always carry the common ones too (every product with
/// `productFeature` also has `rdf:type` and `rdfs:label`), so the star's
/// subject count is governed by its most selective pattern.
pub fn star_subject_cardinality(star: &StarPattern, stats: &StoreStats) -> f64 {
    let total_subjects = stats.distinct_subjects as f64;
    if total_subjects == 0.0 {
        return 0.0;
    }
    let mut estimate = total_subjects;
    for pat in &star.patterns {
        let subjects = match &pat.property {
            PropPattern::Bound(p) => {
                stats.per_property.get(p).map_or(0.0, |ps| ps.distinct_subjects as f64)
            }
            PropPattern::Unbound(_) => total_subjects,
        };
        let bound = subjects * object_selectivity(pat, stats);
        estimate = estimate.min(bound);
    }
    if star.subject_filter.is_some() {
        estimate *= FILTER_SELECTIVITY;
    }
    estimate
}

/// Estimated number of flat rows a relational star join would produce:
/// product of per-pattern multiplicities over the matching subjects.
pub fn star_row_cardinality(star: &StarPattern, stats: &StoreStats) -> f64 {
    let subjects = star_subject_cardinality(star, stats);
    if subjects == 0.0 {
        return 0.0;
    }
    let mut per_subject = 1.0;
    for pat in &star.patterns {
        let mult = match &pat.property {
            PropPattern::Bound(p) => {
                stats.per_property.get(p).map_or(0.0, |ps| ps.mean_multiplicity)
            }
            PropPattern::Unbound(_) => {
                // Mean pairs per subject across the store.
                if stats.distinct_subjects == 0 {
                    0.0
                } else {
                    stats.triples as f64 / stats.distinct_subjects as f64
                }
            }
        };
        per_subject *= (mult * object_selectivity(pat, stats)).max(
            // A matching subject has at least one match per pattern.
            1.0,
        );
    }
    subjects * per_subject
}

/// Estimated number of `(property, object)` pairs across all triplegroups
/// matching a star — the size of the star's *nested* (lazy) equivalence
/// class, where each matching subject carries the union of its candidate
/// pairs instead of their cross product.
///
/// Where [`star_row_cardinality`] multiplies per-pattern multiplicities
/// (the flat/eager footprint), this sums them: a nested triplegroup stores
/// each candidate once. The ratio of the two is exactly the redundancy a
/// lazy plan avoids shipping, which is what a cost-based planner prices.
pub fn star_pair_cardinality(star: &StarPattern, stats: &StoreStats) -> f64 {
    let subjects = star_subject_cardinality(star, stats);
    if subjects == 0.0 {
        return 0.0;
    }
    let mut per_subject = 0.0;
    for pat in &star.patterns {
        let mult = match &pat.property {
            PropPattern::Bound(p) => {
                stats.per_property.get(p).map_or(0.0, |ps| ps.mean_multiplicity)
            }
            PropPattern::Unbound(_) => {
                if stats.distinct_subjects == 0 {
                    0.0
                } else {
                    stats.triples as f64 / stats.distinct_subjects as f64
                }
            }
        };
        per_subject += (mult * object_selectivity(pat, stats)).max(1.0);
    }
    subjects * per_subject
}

/// Rank a query's stars from most to least selective (ascending estimated
/// row cardinality) — the ordering Sel-SJ-first wants.
pub fn rank_stars_by_selectivity(stars: &[StarPattern], stats: &StoreStats) -> Vec<(usize, f64)> {
    let mut ranked: Vec<(usize, f64)> =
        stars.iter().enumerate().map(|(i, s)| (i, star_row_cardinality(s, stats))).collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite estimates"));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{STriple, TripleStore};

    fn stats() -> StoreStats {
        let mut triples = vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<g3>", "<label>", "\"c\""),
            STriple::new("<g1>", "<rare>", "<x>"),
        ];
        for i in 0..10 {
            triples.push(STriple::new("<g1>", "<xRef>", format!("<r{i}>")));
        }
        TripleStore::from_triples(triples).stats()
    }

    #[test]
    fn bound_pattern_uses_property_count() {
        let s = stats();
        let label = TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into()));
        assert_eq!(pattern_cardinality(&label, &s), 3.0);
        let rare = TriplePattern::bound("g", "<rare>", ObjPattern::Var("o".into()));
        assert_eq!(pattern_cardinality(&rare, &s), 1.0);
        let missing = TriplePattern::bound("g", "<nope>", ObjPattern::Var("o".into()));
        assert_eq!(pattern_cardinality(&missing, &s), 0.0);
    }

    #[test]
    fn unbound_pattern_is_the_whole_relation() {
        let s = stats();
        let unb = TriplePattern::unbound("g", "p", ObjPattern::Var("o".into()));
        assert_eq!(pattern_cardinality(&unb, &s), s.triples as f64);
    }

    #[test]
    fn filters_reduce_estimates() {
        let s = stats();
        let filtered = TriplePattern::unbound(
            "g",
            "p",
            ObjPattern::Filtered("o".into(), ObjFilter::Contains("x".into())),
        );
        let unfiltered = TriplePattern::unbound("g", "p", ObjPattern::Var("o".into()));
        assert!(pattern_cardinality(&filtered, &s) < pattern_cardinality(&unfiltered, &s));
    }

    #[test]
    fn rare_star_ranks_more_selective() {
        let s = stats();
        let common = StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound("g", "p", ObjPattern::Var("o".into())),
            ],
        );
        let rare = StarPattern::new(
            "h",
            vec![
                TriplePattern::bound("h", "<rare>", ObjPattern::Var("x".into())),
                TriplePattern::bound("h", "<label>", ObjPattern::Var("l2".into())),
            ],
        );
        let ranked = rank_stars_by_selectivity(&[common, rare], &s);
        assert_eq!(ranked[0].0, 1, "the <rare> star must rank first: {ranked:?}");
        assert!(ranked[0].1 <= ranked[1].1);
    }

    #[test]
    fn multiplicity_inflates_row_estimates() {
        let s = stats();
        let with_xref = StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::bound("g", "<xRef>", ObjPattern::Var("r".into())),
            ],
        );
        let without = StarPattern::new(
            "g",
            vec![TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into()))],
        );
        assert!(star_row_cardinality(&with_xref, &s) > star_row_cardinality(&without, &s));
    }

    #[test]
    fn nested_pairs_grow_slower_than_flat_rows() {
        let s = stats();
        let star = StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::bound("g", "<xRef>", ObjPattern::Var("r".into())),
                TriplePattern::unbound("g", "p", ObjPattern::Var("o".into())),
            ],
        );
        let pairs = star_pair_cardinality(&star, &s);
        let rows = star_row_cardinality(&star, &s);
        // Sum-of-multiplicities (nested) under product-of-multiplicities
        // (flat): the redundancy gap lazy plans avoid.
        assert!(pairs > 0.0);
        assert!(pairs < rows, "pairs {pairs} >= rows {rows}");
        assert_eq!(star_pair_cardinality(&star, &TripleStore::new().stats()), 0.0);
    }

    #[test]
    fn empty_store_estimates_zero() {
        let empty = TripleStore::new().stats();
        let star = StarPattern::new(
            "g",
            vec![TriplePattern::bound("g", "<p>", ObjPattern::Var("o".into()))],
        );
        assert_eq!(star_subject_cardinality(&star, &empty), 0.0);
        assert_eq!(star_row_cardinality(&star, &empty), 0.0);
    }

    #[test]
    fn subject_filter_tightens_estimate() {
        let s = stats();
        let plain = StarPattern::new(
            "g",
            vec![TriplePattern::unbound("g", "p", ObjPattern::Var("o".into()))],
        );
        let filtered = plain.clone().with_subject_filter(ObjFilter::Prefix("<g1".into()));
        assert!(star_subject_cardinality(&filtered, &s) < star_subject_cardinality(&plain, &s));
    }
}
