//! Whole graph-pattern queries: stars plus the join structure between them.

use crate::pattern::TriplePattern;
use crate::star::StarPattern;
use std::collections::HashSet;
use std::fmt;

/// How two stars share a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Object of the left star = subject of the right star (the common
    /// "OS" join of the paper's test queries Q1a/Q1b/Q2a/Q2b, B-series).
    ObjectSubject,
    /// Subject of the left star = object of the right star.
    SubjectObject,
    /// Object variable on both sides ("OO" join, Q3a/Q3b).
    ObjectObject,
}

/// A join edge between two stars of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Index of the left star in [`Query::stars`].
    pub left: usize,
    /// Index of the right star.
    pub right: usize,
    /// The shared variable.
    pub var: String,
    /// Join shape.
    pub kind: JoinKind,
}

/// Errors raised by [`Query::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query has no star patterns.
    Empty,
    /// Two stars use the same subject variable.
    DuplicateSubjectVar(String),
    /// The join graph does not connect all stars (cross products are not
    /// supported by the planners).
    Disconnected,
    /// A projection variable does not occur in any pattern.
    UnknownProjectionVar(String),
    /// A star has no triple patterns.
    EmptyStar(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "query has no star patterns"),
            QueryError::DuplicateSubjectVar(v) => {
                write!(f, "two stars share the subject variable ?{v}")
            }
            QueryError::Disconnected => {
                write!(f, "stars are not connected by shared variables (cross product)")
            }
            QueryError::UnknownProjectionVar(v) => {
                write!(f, "projection variable ?{v} not bound by any pattern")
            }
            QueryError::EmptyStar(v) => write!(f, "star on ?{v} has no patterns"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A graph pattern query: star subpatterns plus an optional projection.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The star subpatterns (join order follows planner decisions, not
    /// this order).
    pub stars: Vec<StarPattern>,
    /// Variables to project in results; `None` means all variables.
    pub projection: Option<Vec<String>>,
}

impl Query {
    /// A query over the given stars, projecting all variables.
    pub fn new(stars: Vec<StarPattern>) -> Self {
        Query { stars, projection: None }
    }

    /// Set the projection list.
    pub fn with_projection(mut self, vars: Vec<String>) -> Self {
        self.projection = Some(vars);
        self
    }

    /// All triple patterns across all stars.
    pub fn all_patterns(&self) -> Vec<&TriplePattern> {
        self.stars.iter().flat_map(|s| s.patterns.iter()).collect()
    }

    /// All variables across all stars, in first-occurrence order.
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in &self.stars {
            for v in s.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Number of unbound-property triple patterns in the whole query.
    pub fn unbound_pattern_count(&self) -> usize {
        self.stars.iter().map(|s| s.unbound_patterns().len()).sum()
    }

    /// Compute the join edges between stars (pairs sharing a variable).
    ///
    /// Object-subject sharing yields `ObjectSubject`/`SubjectObject`;
    /// object-object sharing yields `ObjectObject`. A variable shared in
    /// more ways than one produces one edge per way.
    pub fn join_edges(&self) -> Vec<JoinEdge> {
        let mut edges = Vec::new();
        for i in 0..self.stars.len() {
            for j in (i + 1)..self.stars.len() {
                let left = &self.stars[i];
                let right = &self.stars[j];
                let l_obj: HashSet<String> = left.object_vars().into_iter().collect();
                let r_obj: HashSet<String> = right.object_vars().into_iter().collect();
                if l_obj.contains(&right.subject_var) {
                    edges.push(JoinEdge {
                        left: i,
                        right: j,
                        var: right.subject_var.clone(),
                        kind: JoinKind::ObjectSubject,
                    });
                }
                if r_obj.contains(&left.subject_var) {
                    edges.push(JoinEdge {
                        left: i,
                        right: j,
                        var: left.subject_var.clone(),
                        kind: JoinKind::SubjectObject,
                    });
                }
                for v in l_obj.intersection(&r_obj) {
                    edges.push(JoinEdge {
                        left: i,
                        right: j,
                        var: v.clone(),
                        kind: JoinKind::ObjectObject,
                    });
                }
            }
        }
        edges
    }

    /// Validate structural well-formedness. Planners call this before
    /// compiling.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.stars.is_empty() {
            return Err(QueryError::Empty);
        }
        let mut seen = HashSet::new();
        for s in &self.stars {
            if s.patterns.is_empty() {
                return Err(QueryError::EmptyStar(s.subject_var.clone()));
            }
            if !seen.insert(s.subject_var.clone()) {
                return Err(QueryError::DuplicateSubjectVar(s.subject_var.clone()));
            }
        }
        // Connectivity over join edges.
        if self.stars.len() > 1 {
            let edges = self.join_edges();
            let mut reached = HashSet::from([0usize]);
            let mut changed = true;
            while changed {
                changed = false;
                for e in &edges {
                    if reached.contains(&e.left) && reached.insert(e.right) {
                        changed = true;
                    }
                    if reached.contains(&e.right) && reached.insert(e.left) {
                        changed = true;
                    }
                }
            }
            if reached.len() != self.stars.len() {
                return Err(QueryError::Disconnected);
            }
        }
        if let Some(proj) = &self.projection {
            let vars = self.variables();
            for v in proj {
                if !vars.contains(v) {
                    return Err(QueryError::UnknownProjectionVar(v.clone()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ObjPattern;

    fn two_star_os() -> Query {
        // ?g <xGO> ?go ; ?g <label> ?l . ?go <go_label> ?gl
        Query::new(vec![
            StarPattern::new(
                "g",
                vec![
                    TriplePattern::bound("g", "<xGO>", ObjPattern::Var("go".into())),
                    TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                ],
            ),
            StarPattern::new(
                "go",
                vec![TriplePattern::bound("go", "<go_label>", ObjPattern::Var("gl".into()))],
            ),
        ])
    }

    #[test]
    fn os_join_detected() {
        let q = two_star_os();
        let edges = q.join_edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, JoinKind::ObjectSubject);
        assert_eq!(edges[0].var, "go");
        q.validate().unwrap();
    }

    #[test]
    fn oo_join_detected() {
        let q = Query::new(vec![
            StarPattern::new(
                "a",
                vec![TriplePattern::bound("a", "<p>", ObjPattern::Var("x".into()))],
            ),
            StarPattern::new(
                "b",
                vec![TriplePattern::bound("b", "<q>", ObjPattern::Var("x".into()))],
            ),
        ]);
        let edges = q.join_edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].kind, JoinKind::ObjectObject);
        q.validate().unwrap();
    }

    #[test]
    fn disconnected_rejected() {
        let q = Query::new(vec![
            StarPattern::new(
                "a",
                vec![TriplePattern::bound("a", "<p>", ObjPattern::Var("x".into()))],
            ),
            StarPattern::new(
                "b",
                vec![TriplePattern::bound("b", "<q>", ObjPattern::Var("y".into()))],
            ),
        ]);
        assert_eq!(q.validate(), Err(QueryError::Disconnected));
    }

    #[test]
    fn duplicate_subject_var_rejected() {
        let q = Query::new(vec![
            StarPattern::new(
                "a",
                vec![TriplePattern::bound("a", "<p>", ObjPattern::Var("x".into()))],
            ),
            StarPattern::new(
                "a",
                vec![TriplePattern::bound("a", "<q>", ObjPattern::Var("y".into()))],
            ),
        ]);
        assert!(matches!(q.validate(), Err(QueryError::DuplicateSubjectVar(_))));
    }

    #[test]
    fn empty_query_and_star_rejected() {
        assert_eq!(Query::new(vec![]).validate(), Err(QueryError::Empty));
        let q = Query::new(vec![StarPattern {
            subject_var: "a".into(),
            patterns: vec![],
            subject_filter: None,
        }]);
        assert!(matches!(q.validate(), Err(QueryError::EmptyStar(_))));
    }

    #[test]
    fn projection_validation() {
        let q = two_star_os().with_projection(vec!["g".into(), "gl".into()]);
        q.validate().unwrap();
        let bad = two_star_os().with_projection(vec!["nope".into()]);
        assert!(matches!(bad.validate(), Err(QueryError::UnknownProjectionVar(_))));
    }

    #[test]
    fn unbound_count() {
        let mut q = two_star_os();
        assert_eq!(q.unbound_pattern_count(), 0);
        q.stars[0].patterns.push(TriplePattern::unbound("g", "p", ObjPattern::Var("o".into())));
        assert_eq!(q.unbound_pattern_count(), 1);
    }

    #[test]
    fn single_star_valid() {
        let q = Query::new(vec![StarPattern::new(
            "a",
            vec![TriplePattern::bound("a", "<p>", ObjPattern::Var("x".into()))],
        )]);
        q.validate().unwrap();
        assert!(q.join_edges().is_empty());
    }
}
