//! Star subpatterns: groups of triple patterns sharing a subject variable.
//!
//! The paper's algebra is organized around star subpatterns
//! `St = {P_bnd, P_unbnd}`: the set of *bound* properties plus zero or more
//! *unbound*-property triple patterns. Every planner in this workspace
//! (relational and NTGA) consumes queries decomposed into stars.

use crate::pattern::{PropPattern, SubjPattern, TriplePattern};
use rdf_model::Atom;

/// A star subpattern: all triple patterns sharing one subject variable.
#[derive(Debug, Clone, PartialEq)]
pub struct StarPattern {
    /// The shared subject variable name.
    pub subject_var: String,
    /// The triple patterns of this star (bound and unbound).
    pub patterns: Vec<TriplePattern>,
    /// Optional constraint on the subject token itself. Queries like
    /// "everything about `<Hexokinase>`" are a star on a fresh variable
    /// with an `Equals` subject filter; planners push it into the scan.
    pub subject_filter: Option<crate::pattern::ObjFilter>,
}

impl StarPattern {
    /// Build a star, checking that all patterns use `subject_var` as a
    /// variable subject.
    ///
    /// # Panics
    /// Panics if a pattern has a different subject.
    pub fn new(subject_var: impl Into<String>, patterns: Vec<TriplePattern>) -> Self {
        let subject_var = subject_var.into();
        for p in &patterns {
            match &p.subject {
                SubjPattern::Var(v) if *v == subject_var => {}
                other => {
                    panic!("star pattern on ?{subject_var} contains pattern with subject {other:?}")
                }
            }
        }
        StarPattern { subject_var, patterns, subject_filter: None }
    }

    /// Attach a subject-token filter (selection pushed into the scan).
    pub fn with_subject_filter(mut self, f: crate::pattern::ObjFilter) -> Self {
        self.subject_filter = Some(f);
        self
    }

    /// True if a subject token passes this star's subject filter (or there
    /// is none).
    pub fn subject_accepts(&self, token: &str) -> bool {
        self.subject_filter.as_ref().is_none_or(|f| f.accepts(token))
    }

    /// The set of bound properties `P_bnd`, in pattern order (duplicates
    /// removed).
    pub fn bound_properties(&self) -> Vec<Atom> {
        let mut out: Vec<Atom> = Vec::new();
        for p in &self.patterns {
            if let PropPattern::Bound(prop) = &p.property {
                if !out.contains(prop) {
                    out.push(prop.clone());
                }
            }
        }
        out
    }

    /// The bound-property triple patterns.
    pub fn bound_patterns(&self) -> Vec<&TriplePattern> {
        self.patterns.iter().filter(|p| !p.is_unbound_property()).collect()
    }

    /// The unbound-property triple patterns `P_unbnd`.
    pub fn unbound_patterns(&self) -> Vec<&TriplePattern> {
        self.patterns.iter().filter(|p| p.is_unbound_property()).collect()
    }

    /// True if the star contains at least one unbound-property pattern.
    pub fn has_unbound(&self) -> bool {
        self.patterns.iter().any(TriplePattern::is_unbound_property)
    }

    /// Number of triple patterns (the star's arity).
    pub fn arity(&self) -> usize {
        self.patterns.len()
    }

    /// All variables bound anywhere in this star, in first-occurrence
    /// order.
    pub fn variables(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in &self.patterns {
            for v in p.variables() {
                if !out.iter().any(|x| x == v) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }

    /// Object variables of this star (the positions through which stars
    /// join), in pattern order.
    pub fn object_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.patterns {
            if let Some(v) = p.object.var() {
                if !out.iter().any(|x: &String| x == v) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ObjPattern;

    fn star() -> StarPattern {
        StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::bound("g", "<xGO>", ObjPattern::Var("go".into())),
                TriplePattern::unbound("g", "p", ObjPattern::Var("o".into())),
            ],
        )
    }

    #[test]
    fn bound_and_unbound_partition() {
        let s = star();
        assert_eq!(s.bound_properties().len(), 2);
        assert_eq!(s.bound_patterns().len(), 2);
        assert_eq!(s.unbound_patterns().len(), 1);
        assert!(s.has_unbound());
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn duplicate_bound_properties_deduped() {
        let s = StarPattern::new(
            "x",
            vec![
                TriplePattern::bound("x", "<p>", ObjPattern::Var("a".into())),
                TriplePattern::bound("x", "<p>", ObjPattern::Var("b".into())),
            ],
        );
        assert_eq!(s.bound_properties().len(), 1);
    }

    #[test]
    fn variables_in_order() {
        let s = star();
        assert_eq!(s.variables(), vec!["g", "l", "go", "p", "o"]);
        assert_eq!(s.object_vars(), vec!["l", "go", "o"]);
    }

    #[test]
    #[should_panic(expected = "contains pattern with subject")]
    fn rejects_foreign_subject() {
        StarPattern::new("x", vec![TriplePattern::bound("y", "<p>", ObjPattern::Var("a".into()))]);
    }

    #[test]
    fn bound_only_star() {
        let s = StarPattern::new(
            "x",
            vec![TriplePattern::bound("x", "<p>", ObjPattern::Var("a".into()))],
        );
        assert!(!s.has_unbound());
        assert!(s.unbound_patterns().is_empty());
    }
}
