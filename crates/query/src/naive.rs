//! Naive reference evaluator.
//!
//! A direct backtracking matcher over an in-memory [`TripleStore`]. It is
//! deliberately simple — correctness over speed — and serves as the gold
//! standard every MapReduce strategy (relational and NTGA) is tested
//! against: all five execution paths must produce exactly this
//! [`SolutionSet`].
//!
//! Semantics notes mirroring the paper:
//!
//! * A triple may play **multiple roles**: it can match a bound-property
//!   pattern and an unbound-property pattern of the same star
//!   simultaneously (Section 3, "triples playing multiple roles").
//! * Set semantics: duplicate bindings collapse.

use crate::bindings::{Binding, SolutionSet};
use crate::pattern::{ObjFilter, ObjPattern, PropPattern, SubjPattern, TriplePattern};
use crate::query::Query;
use rdf_model::{STriple, TripleStore};
use std::collections::HashMap;

/// Evaluate `query` against `store` by brute-force backtracking.
///
/// The result honours the query's projection, if any.
pub fn evaluate(query: &Query, store: &TripleStore) -> SolutionSet {
    // Index triples by property for bound patterns; unbound patterns scan
    // everything.
    let mut by_prop: HashMap<&str, Vec<&STriple>> = HashMap::new();
    for t in store.iter() {
        by_prop.entry(&t.p).or_default().push(t);
    }
    let all: Vec<&STriple> = store.iter().collect();

    // Pair every pattern with its star's subject filter so constant-subject
    // stars ("everything about <X>") restrict matches.
    let patterns: Vec<(&TriplePattern, Option<&ObjFilter>)> = query
        .stars
        .iter()
        .flat_map(|star| star.patterns.iter().map(move |p| (p, star.subject_filter.as_ref())))
        .collect();
    let mut solutions = SolutionSet::new();
    let mut binding = Binding::new();
    backtrack(&patterns, 0, &by_prop, &all, &mut binding, &mut solutions);

    match &query.projection {
        Some(vars) => solutions.project(vars),
        None => solutions,
    }
}

fn backtrack(
    patterns: &[(&TriplePattern, Option<&ObjFilter>)],
    i: usize,
    by_prop: &HashMap<&str, Vec<&STriple>>,
    all: &[&STriple],
    binding: &mut Binding,
    out: &mut SolutionSet,
) {
    if i == patterns.len() {
        out.insert(binding.clone());
        return;
    }
    let (pat, subj_filter) = patterns[i];
    let candidates: &[&STriple] = match &pat.property {
        PropPattern::Bound(p) => by_prop.get(&**p).map_or(&[][..], Vec::as_slice),
        PropPattern::Unbound(_) => all,
    };
    for t in candidates {
        if !pat.matches_structurally(t) {
            continue;
        }
        if let Some(f) = subj_filter {
            if !f.accepts(&t.s) {
                continue;
            }
        }
        let snapshot = binding.clone();
        if try_bind(pat, t, binding) {
            backtrack(patterns, i + 1, by_prop, all, binding, out);
        }
        *binding = snapshot;
    }
}

/// Extend `binding` with the variable assignments a triple induces for a
/// pattern; `false` on conflict with existing assignments.
fn try_bind(pat: &TriplePattern, t: &STriple, binding: &mut Binding) -> bool {
    if let SubjPattern::Var(v) = &pat.subject {
        if !binding.bind(v, t.s.clone()) {
            return false;
        }
    }
    if let PropPattern::Unbound(v) = &pat.property {
        if !binding.bind(v, t.p.clone()) {
            return false;
        }
    }
    match &pat.object {
        ObjPattern::Var(v) | ObjPattern::Filtered(v, _) => {
            if !binding.bind(v, t.o.clone()) {
                return false;
            }
        }
        ObjPattern::Const(_) => {}
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{ObjFilter, ObjPattern, TriplePattern};
    use crate::star::StarPattern;
    use rdf_model::atom::atom;

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<gene9>", "<label>", "\"retinoid\""),
            STriple::new("<gene9>", "<xGO>", "<go1>"),
            STriple::new("<gene9>", "<xGO>", "<go9>"),
            STriple::new("<gene9>", "<synonym>", "\"RCoR-1\""),
            STriple::new("<homod2>", "<label>", "\"homeo2\""),
            STriple::new("<go1>", "<go_label>", "\"nucleus\""),
            STriple::new("<go9>", "<go_label>", "\"membrane\""),
        ])
    }

    fn star(subject: &str, pats: Vec<TriplePattern>) -> StarPattern {
        StarPattern::new(subject, pats)
    }

    #[test]
    fn bound_star_join() {
        // ?g <label> ?l ; ?g <xGO> ?go
        let q = Query::new(vec![star(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::bound("g", "<xGO>", ObjPattern::Var("go".into())),
            ],
        )]);
        let sols = evaluate(&q, &store());
        // gene9 has 1 label × 2 xGO = 2 solutions; homod2 has no xGO.
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn unbound_property_star() {
        // ?g <label> ?l ; ?g ?p ?o — every triple of a labelled subject
        // matches the unbound pattern (including the label triple itself:
        // multiple roles).
        let q = Query::new(vec![star(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound("g", "p", ObjPattern::Var("o".into())),
            ],
        )]);
        let sols = evaluate(&q, &store());
        // gene9: 4 triples -> 4; homod2: 1 triple -> 1.
        assert_eq!(sols.len(), 5);
        // The label triple itself appears as an unbound match.
        assert!(sols.iter().any(|b| {
            b.get("p").map(|p| &**p == "<label>").unwrap_or(false)
                && b.get("o").map(|o| &**o == "\"retinoid\"").unwrap_or(false)
        }));
    }

    #[test]
    fn partially_bound_object() {
        // ?g ?p ?o FILTER contains(?o, "go") — IRIs <go1>, <go9>.
        let q = Query::new(vec![star(
            "g",
            vec![TriplePattern::unbound(
                "g",
                "p",
                ObjPattern::Filtered("o".into(), ObjFilter::Contains("go".into())),
            )],
        )]);
        let sols = evaluate(&q, &store());
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn two_star_os_join_on_unbound_object() {
        // ?g <label> ?l ; ?g ?p ?go . ?go <go_label> ?gl
        let q = Query::new(vec![
            star("g", vec![TriplePattern::bound("g", "<label>", ObjPattern::Var("go".into()))]),
            star(
                "go",
                vec![TriplePattern::bound("go", "<go_label>", ObjPattern::Var("gl".into()))],
            ),
        ]);
        // label objects are literals, no go_label -> empty
        assert!(evaluate(&q, &store()).is_empty());

        let q2 = Query::new(vec![
            star(
                "g",
                vec![
                    TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                    TriplePattern::unbound("g", "p", ObjPattern::Var("go".into())),
                ],
            ),
            star(
                "go",
                vec![TriplePattern::bound("go", "<go_label>", ObjPattern::Var("gl".into()))],
            ),
        ]);
        let sols = evaluate(&q2, &store());
        // gene9's unbound matches that have go_label: <go1>, <go9> -> 2.
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn projection_applies() {
        let q = Query::new(vec![star(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::bound("g", "<xGO>", ObjPattern::Var("go".into())),
            ],
        )])
        .with_projection(vec!["g".into()]);
        let sols = evaluate(&q, &store());
        assert_eq!(sols.len(), 1); // both go-solutions collapse to gene9
    }

    #[test]
    fn shared_object_var_within_star() {
        // ?g <xGO> ?x ; ?g ?p ?x — ?x must be the same value.
        let q = Query::new(vec![star(
            "g",
            vec![
                TriplePattern::bound("g", "<xGO>", ObjPattern::Var("x".into())),
                TriplePattern::unbound("g", "p", ObjPattern::Var("x".into())),
            ],
        )]);
        let sols = evaluate(&q, &store());
        // For each xGO value, the unbound pattern must also hit that value:
        // only the xGO triple itself does. 2 solutions, p = <xGO>.
        assert_eq!(sols.len(), 2);
        for b in sols.iter() {
            assert_eq!(&**b.get("p").unwrap(), "<xGO>");
        }
    }

    #[test]
    fn double_unbound_same_star() {
        // ?h <label> ?l ; ?h ?p1 ?o1 ; ?h ?p2 ?o2 on homod2 (1 triple):
        // p1 and p2 can both bind to <label>.
        let q = Query::new(vec![star(
            "h",
            vec![
                TriplePattern::bound("h", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound("h", "p1", ObjPattern::Var("o1".into())),
                TriplePattern::unbound("h", "p2", ObjPattern::Var("o2".into())),
            ],
        )]);
        let sols = evaluate(&q, &store());
        // gene9: 4×4 = 16; homod2: 1×1 = 1.
        assert_eq!(sols.len(), 17);
    }

    #[test]
    fn empty_store_empty_result() {
        let q = Query::new(vec![star(
            "g",
            vec![TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into()))],
        )]);
        assert!(evaluate(&q, &TripleStore::new()).is_empty());
    }

    #[test]
    fn const_object_filtering() {
        let q = Query::new(vec![star(
            "g",
            vec![TriplePattern::bound("g", "<xGO>", ObjPattern::Const(atom("<go1>")))],
        )]);
        let sols = evaluate(&q, &store());
        assert_eq!(sols.len(), 1);
    }
}
