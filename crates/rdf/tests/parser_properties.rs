//! Property-based tests for the N-Triples parser/serializer: every term
//! the model can represent round-trips through its textual form, and
//! store statistics behave as set-theoretic functions of the triples.

use proptest::prelude::{prop, prop_assert, prop_assert_eq, proptest};
use proptest::strategy::Strategy;
use rdf_model::{parse_line, write_triple, STriple, Term, TripleStore};

fn arb_iri() -> impl Strategy<Value = Term> {
    "[a-zA-Z][a-zA-Z0-9:/#._-]{0,30}".prop_map(Term::iri)
}

fn arb_bnode() -> impl Strategy<Value = Term> {
    "[a-zA-Z0-9][a-zA-Z0-9_-]{0,15}".prop_map(Term::bnode)
}

fn arb_literal() -> impl Strategy<Value = Term> {
    // Lexical forms include the characters that need escaping.
    let lex = prop::collection::vec(
        prop::sample::select(vec!['a', 'b', 'Z', '0', ' ', '"', '\\', '\n', '\t', '\r', 'é', '中']),
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect::<String>());
    let kind = prop::sample::select(vec![0u8, 1, 2]);
    (lex, kind, "[a-z][a-z0-9]{0,8}").prop_map(|(lex, kind, tag)| match kind {
        0 => Term::plain_literal(lex),
        1 => Term::typed_literal(lex, format!("http://dt/{tag}")),
        _ => Term::lang_literal(lex, tag),
    })
}

fn arb_subject() -> impl Strategy<Value = Term> {
    prop::strategy::Union::new([arb_iri().boxed(), arb_bnode().boxed()])
}

fn arb_object() -> impl Strategy<Value = Term> {
    prop::strategy::Union::new([arb_iri().boxed(), arb_bnode().boxed(), arb_literal().boxed()])
}

proptest! {
    #[test]
    fn term_roundtrip(s in arb_subject(), p in arb_iri(), o in arb_object()) {
        let line = write_triple(&s, &p, &o);
        let (s2, p2, o2) = parse_line(&line)
            .expect("serialized triple must parse")
            .expect("not a comment");
        prop_assert_eq!((s, p, o), (s2, p2, o2), "line was: {}", line);
    }

    #[test]
    fn text_size_matches_rendered_length(s in arb_subject(), p in arb_iri(), o in arb_object()) {
        let st = STriple::from_terms(&s, &p, &o);
        prop_assert_eq!(st.text_size(), st.to_string().len() as u64 + 1);
    }

    #[test]
    fn store_stats_are_consistent(
        triples in prop::collection::vec((arb_subject(), arb_iri(), arb_object()), 0..25)
    ) {
        let store: TripleStore = triples
            .iter()
            .map(|(s, p, o)| STriple::from_terms(s, p, o))
            .collect();
        let stats = store.stats();
        prop_assert_eq!(stats.triples, store.len() as u64);
        // Per-property counts must sum to the total.
        let sum: u64 = stats.per_property.values().map(|p| p.count).sum();
        prop_assert_eq!(sum, stats.triples);
        // Every property's distinct subjects is bounded by the store's.
        for p in stats.per_property.values() {
            prop_assert!(p.distinct_subjects <= stats.distinct_subjects);
            prop_assert!(p.max_multiplicity as f64 >= p.mean_multiplicity);
            prop_assert!(p.mean_multiplicity >= 1.0);
        }
        prop_assert_eq!(stats.text_bytes, store.text_bytes());
    }

    #[test]
    fn document_roundtrip(
        triples in prop::collection::vec((arb_subject(), arb_iri(), arb_object()), 0..15)
    ) {
        let doc: String = triples
            .iter()
            .map(|(s, p, o)| format!("{}\n", write_triple(s, p, o)))
            .collect();
        let parsed = rdf_model::parse_str(&doc).expect("document must parse");
        prop_assert_eq!(parsed.len(), triples.len());
        // Serialize again: byte-identical document.
        let doc2: String = parsed.iter().map(|t| format!("{t}\n")).collect();
        prop_assert_eq!(doc, doc2);
    }

    #[test]
    fn garbage_never_panics(line in "[ -~]{0,60}") {
        // Parsing arbitrary printable ASCII must return Ok/Err, not panic.
        let _ = parse_line(&line);
    }
}
