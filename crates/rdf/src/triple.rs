//! Lexical triples — the workhorse record of the whole workspace.

use crate::atom::{atom, Atom};
use crate::term::Term;
use std::fmt;

/// A triple of lexical tokens (canonical N-Triples token per position).
///
/// This is the representation that flows through every MapReduce pipeline.
/// Cloning is cheap (three `Arc` bumps). [`STriple::text_size`] is the
/// basis for all simulated HDFS/shuffle byte accounting: it is the length
/// of the triple as one whitespace-separated text row, which is how
/// Pig/Hive move triples through Hadoop.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct STriple {
    /// Subject token.
    pub s: Atom,
    /// Property (predicate) token.
    pub p: Atom,
    /// Object token.
    pub o: Atom,
}

impl STriple {
    /// Build a triple from raw token strings (no interning).
    pub fn new(s: impl AsRef<str>, p: impl AsRef<str>, o: impl AsRef<str>) -> Self {
        STriple { s: atom(s.as_ref()), p: atom(p.as_ref()), o: atom(o.as_ref()) }
    }

    /// Build a triple from already-interned atoms.
    pub fn from_atoms(s: Atom, p: Atom, o: Atom) -> Self {
        STriple { s, p, o }
    }

    /// Build the lexical triple for three parsed [`Term`]s.
    pub fn from_terms(s: &Term, p: &Term, o: &Term) -> Self {
        STriple::new(s.to_token(), p.to_token(), o.to_token())
    }

    /// Size in bytes of this triple as a text row: the three tokens,
    /// two separating spaces, ` .` terminator and newline (N-Triples row).
    pub fn text_size(&self) -> u64 {
        self.s.len() as u64 + self.p.len() as u64 + self.o.len() as u64 + 5
    }
}

impl fmt::Display for STriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_size_counts_row_bytes() {
        let t = STriple::new("<a>", "<b>", "<c>");
        // "<a> <b> <c> .\n" = 3 + 1 + 3 + 1 + 3 + 2 + 1 = 14
        assert_eq!(t.text_size(), 14);
        assert_eq!(t.to_string().len() as u64 + 1, t.text_size());
    }

    #[test]
    fn display_is_ntriples_row() {
        let t = STriple::new("<s>", "<p>", "\"o\"");
        assert_eq!(t.to_string(), "<s> <p> \"o\" .");
    }

    #[test]
    fn ordering_is_spo_lexicographic() {
        let a = STriple::new("<a>", "<p>", "<x>");
        let b = STriple::new("<a>", "<q>", "<x>");
        let c = STriple::new("<b>", "<a>", "<a>");
        assert!(a < b);
        assert!(b < c);
    }
}
