//! Streaming N-Triples file I/O.
//!
//! [`read_ntriples`] parses from any [`BufRead`] with a reused line buffer
//! (no per-line allocation beyond the triples themselves), reporting the
//! line number of the first syntax error. [`write_ntriples`] streams a
//! store back out. Used by `ntga-cli` and anything ingesting real files.

use crate::ntriples::parse_line;
use crate::store::TripleStore;
use crate::triple::STriple;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::Path;

/// Error while reading an N-Triples stream.
#[derive(Debug)]
pub enum NtIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Syntax error with its 1-based line number.
    Parse {
        /// Line number (1-based).
        line: u64,
        /// The parser's message.
        message: String,
    },
}

impl fmt::Display for NtIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NtIoError::Io(e) => write!(f, "I/O error: {e}"),
            NtIoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for NtIoError {}

impl From<std::io::Error> for NtIoError {
    fn from(e: std::io::Error) -> Self {
        NtIoError::Io(e)
    }
}

/// Read an N-Triples stream into a [`TripleStore`].
pub fn read_ntriples<R: BufRead>(mut reader: R) -> Result<TripleStore, NtIoError> {
    let mut store = TripleStore::new();
    let mut line = String::new();
    let mut lineno: u64 = 0;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(store);
        }
        lineno += 1;
        match parse_line(&line) {
            Ok(Some((s, p, o))) => store.insert(STriple::from_terms(&s, &p, &o)),
            Ok(None) => {}
            Err(e) => return Err(NtIoError::Parse { line: lineno, message: e.to_string() }),
        }
    }
}

/// Read an N-Triples file into a [`TripleStore`].
pub fn read_ntriples_file(path: impl AsRef<Path>) -> Result<TripleStore, NtIoError> {
    let file = std::fs::File::open(path)?;
    read_ntriples(std::io::BufReader::new(file))
}

/// Stream a store as N-Triples rows.
pub fn write_ntriples<W: Write>(mut writer: W, store: &TripleStore) -> std::io::Result<()> {
    for t in store.iter() {
        writeln!(writer, "{t}")?;
    }
    Ok(())
}

/// Write a store to an N-Triples file.
pub fn write_ntriples_file(path: impl AsRef<Path>, store: &TripleStore) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut buf = std::io::BufWriter::new(file);
    write_ntriples(&mut buf, store)?;
    std::io::Write::flush(&mut buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<a>", "<p>", "<b>"),
            STriple::new("<a>", "<q>", "\"x y\""),
            STriple::new("_:b1", "<p>", "\"esc\\\"aped\""),
        ])
    }

    #[test]
    fn stream_roundtrip() {
        let store = sample();
        let mut buf = Vec::new();
        write_ntriples(&mut buf, &store).unwrap();
        let back = read_ntriples(buf.as_slice()).unwrap();
        assert_eq!(back.triples(), store.triples());
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!("ntio-{}.nt", std::process::id()));
        let store = sample();
        write_ntriples_file(&path, &store).unwrap();
        let back = read_ntriples_file(&path).unwrap();
        assert_eq!(back.triples(), store.triples());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_error_reports_line_number() {
        let doc = "<a> <p> <b> .\n# fine\nnot a triple\n";
        match read_ntriples(doc.as_bytes()) {
            Err(NtIoError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(read_ntriples_file("/definitely/not/here.nt"), Err(NtIoError::Io(_))));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let doc = "\n# c\n<a> <p> <b> .\n\n";
        let store = read_ntriples(doc.as_bytes()).unwrap();
        assert_eq!(store.len(), 1);
    }
}
