//! Streaming N-Triples parser and serializer.
//!
//! Implements the subset of W3C N-Triples needed for the workloads in this
//! workspace: IRIs, blank nodes, plain / typed / language-tagged literals
//! with the standard string escapes, `#` comments and blank lines.

use crate::term::Term;
use crate::triple::STriple;
use std::fmt;

/// Error produced when a line is not valid N-Triples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input line where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for NtParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N-Triples parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for NtParseError {}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, NtParseError> {
    Err(NtParseError { message: message.into(), offset })
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), NtParseError> {
        match self.peek() {
            Some(got) if got == c => {
                self.bump();
                Ok(())
            }
            Some(got) => err(self.pos, format!("expected '{c}', found '{got}'")),
            None => err(self.pos, format!("expected '{c}', found end of line")),
        }
    }

    fn parse_iri(&mut self) -> Result<String, NtParseError> {
        self.expect('<')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some('>') => {
                    let iri = self.input[start..self.pos].to_string();
                    self.bump();
                    return Ok(iri);
                }
                Some(c) if c == ' ' || c == '\n' => {
                    return err(self.pos, "whitespace inside IRI");
                }
                Some(_) => {
                    self.bump();
                }
                None => return err(self.pos, "unterminated IRI"),
            }
        }
    }

    fn parse_bnode(&mut self) -> Result<String, NtParseError> {
        self.expect('_')?;
        self.expect(':')?;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            self.bump();
        }
        if self.pos == start {
            return err(self.pos, "empty blank node label");
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_literal(&mut self) -> Result<Term, NtParseError> {
        self.expect('"')?;
        let mut lex = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('"') => lex.push('"'),
                    Some('\\') => lex.push('\\'),
                    Some('n') => lex.push('\n'),
                    Some('r') => lex.push('\r'),
                    Some('t') => lex.push('\t'),
                    Some('u') => lex.push(self.parse_unicode_escape(4)?),
                    Some('U') => lex.push(self.parse_unicode_escape(8)?),
                    Some(c) => return err(self.pos, format!("bad escape '\\{c}'")),
                    None => return err(self.pos, "dangling backslash"),
                },
                Some(c) => lex.push(c),
                None => return err(self.pos, "unterminated literal"),
            }
        }
        match self.peek() {
            Some('^') => {
                self.bump();
                self.expect('^')?;
                let dt = self.parse_iri()?;
                Ok(Term::Literal { lexical: lex, datatype: Some(dt), language: None })
            }
            Some('@') => {
                self.bump();
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                    self.bump();
                }
                if self.pos == start {
                    return err(self.pos, "empty language tag");
                }
                let lang = self.input[start..self.pos].to_string();
                Ok(Term::Literal { lexical: lex, datatype: None, language: Some(lang) })
            }
            _ => Ok(Term::Literal { lexical: lex, datatype: None, language: None }),
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, NtParseError> {
        let start = self.pos;
        let mut value: u32 = 0;
        for _ in 0..digits {
            match self.bump() {
                Some(c) if c.is_ascii_hexdigit() => {
                    value = value * 16 + c.to_digit(16).expect("hexdigit");
                }
                _ => return err(start, "bad unicode escape"),
            }
        }
        char::from_u32(value).map_or_else(|| err(start, "invalid code point"), Ok)
    }

    fn parse_subject(&mut self) -> Result<Term, NtParseError> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            Some('_') => Ok(Term::BNode(self.parse_bnode()?)),
            _ => err(self.pos, "subject must be an IRI or blank node"),
        }
    }

    fn parse_predicate(&mut self) -> Result<Term, NtParseError> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            _ => err(self.pos, "predicate must be an IRI"),
        }
    }

    fn parse_object(&mut self) -> Result<Term, NtParseError> {
        match self.peek() {
            Some('<') => Ok(Term::Iri(self.parse_iri()?)),
            Some('_') => Ok(Term::BNode(self.parse_bnode()?)),
            Some('"') => self.parse_literal(),
            _ => err(self.pos, "object must be an IRI, blank node or literal"),
        }
    }
}

/// Parse one N-Triples line into parsed [`Term`]s.
///
/// Returns `Ok(None)` for blank lines and `#` comment lines.
pub fn parse_line(line: &str) -> Result<Option<(Term, Term, Term)>, NtParseError> {
    let trimmed = line.trim_end_matches(['\r', '\n']);
    let mut cur = Cursor::new(trimmed);
    cur.skip_ws();
    match cur.peek() {
        None | Some('#') => return Ok(None),
        _ => {}
    }
    let s = cur.parse_subject()?;
    cur.skip_ws();
    let p = cur.parse_predicate()?;
    cur.skip_ws();
    let o = cur.parse_object()?;
    cur.skip_ws();
    cur.expect('.')?;
    cur.skip_ws();
    if cur.peek().is_some() {
        return err(cur.pos, "trailing content after '.'");
    }
    Ok(Some((s, p, o)))
}

/// Parse a whole N-Triples document into lexical triples.
///
/// ```
/// let doc = "<http://a> <http://p> \"v\" .\n# comment\n";
/// let triples = rdf_model::parse_str(doc).unwrap();
/// assert_eq!(triples.len(), 1);
/// assert_eq!(&*triples[0].p, "<http://p>");
/// ```
pub fn parse_str(doc: &str) -> Result<Vec<STriple>, NtParseError> {
    let mut out = Vec::new();
    for line in doc.lines() {
        if let Some((s, p, o)) = parse_line(line)? {
            out.push(STriple::from_terms(&s, &p, &o));
        }
    }
    Ok(out)
}

/// Serialize one triple of terms as an N-Triples row (without newline).
pub fn write_triple(s: &Term, p: &Term, o: &Term) -> String {
    format!("{s} {p} {o} .")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_iri_triple() {
        let (s, p, o) = parse_line("<http://a> <http://b> <http://c> .").unwrap().unwrap();
        assert_eq!(s, Term::iri("http://a"));
        assert_eq!(p, Term::iri("http://b"));
        assert_eq!(o, Term::iri("http://c"));
    }

    #[test]
    fn parses_literal_objects() {
        let (_, _, o) = parse_line(r#"<a> <b> "hi there" ."#).unwrap().unwrap();
        assert_eq!(o, Term::plain_literal("hi there"));
        let (_, _, o) = parse_line(r#"<a> <b> "5"^^<http://www.w3.org/2001/XMLSchema#int> ."#)
            .unwrap()
            .unwrap();
        assert_eq!(o, Term::typed_literal("5", "http://www.w3.org/2001/XMLSchema#int"));
        let (_, _, o) = parse_line(r#"<a> <b> "chat"@fr-BE ."#).unwrap().unwrap();
        assert_eq!(o, Term::lang_literal("chat", "fr-BE"));
    }

    #[test]
    fn parses_bnodes() {
        let (s, _, o) = parse_line("_:x1 <p> _:y-2 .").unwrap().unwrap();
        assert_eq!(s, Term::bnode("x1"));
        assert_eq!(o, Term::bnode("y-2"));
    }

    #[test]
    fn parses_escapes() {
        let (_, _, o) = parse_line(r#"<a> <b> "line1\nline2\t\"q\"" ."#).unwrap().unwrap();
        assert_eq!(o, Term::plain_literal("line1\nline2\t\"q\""));
    }

    #[test]
    fn parses_unicode_escapes() {
        let (_, _, o) = parse_line(r#"<a> <b> "A\U00000042" ."#).unwrap().unwrap();
        assert_eq!(o, Term::plain_literal("AB"));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        assert_eq!(parse_line("# a comment").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("").unwrap(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("<a> <b> .").is_err());
        assert!(parse_line("<a> <b> <c>").is_err());
        assert!(parse_line("\"lit\" <b> <c> .").is_err());
        assert!(parse_line("<a> \"lit\" <c> .").is_err());
        assert!(parse_line("<a> <b> <c> . extra").is_err());
        assert!(parse_line("<a <b> <c> .").is_err());
        assert!(parse_line(r#"<a> <b> "unterminated ."#).is_err());
    }

    #[test]
    fn roundtrip_terms() {
        let cases = [
            "<http://a> <http://b> <http://c> .",
            r#"<http://a> <http://b> "plain" ."#,
            r#"<http://a> <http://b> "5"^^<http://x> ."#,
            r#"<http://a> <http://b> "tag"@en ."#,
            r#"_:b1 <http://b> _:b2 ."#,
            r#"<http://a> <http://b> "esc\\ape\n\"x\"" ."#,
        ];
        for case in cases {
            let (s, p, o) = parse_line(case).unwrap().unwrap();
            let rendered = write_triple(&s, &p, &o);
            let (s2, p2, o2) = parse_line(&rendered).unwrap().unwrap();
            assert_eq!((s, p, o), (s2, p2, o2), "case {case}");
        }
    }

    #[test]
    fn parse_str_collects_lexical_triples() {
        let doc = "<a> <p> <b> .\n\n# c\n<a> <p> \"x\" .\n";
        let ts = parse_str(doc).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(&*ts[0].s, "<a>");
        assert_eq!(&*ts[1].o, "\"x\"");
    }
}
