//! Shared deterministic hashing.
//!
//! Everything in the workspace that needs a *reproducible* hash — shuffle
//! partitioning in `mrsim`, the `φ_m` partition function of the partial
//! unnest, fault-draw streams, and the build sides of the triplegroup
//! joins — goes through this one FNV-1a implementation, so the constants
//! live in exactly one place. `std`'s default `HashMap` hasher is
//! randomly seeded per process and would make workloads non-reproducible
//! (and it is also measurably slower than FNV on the short RDF tokens
//! these maps key on).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic 64-bit FNV-1a hash of a byte string.
///
/// This is the *spec-stable* hash: reducer partitioning and `φ_m` depend
/// on its exact output, and the known-answer test below pins it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming [`Hasher`] over the same FNV-1a function, for use as a
/// deterministic drop-in `HashMap` hasher.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` with deterministic (FNV-1a) hashing — the map type for
/// join build sides and any other lookup structure whose behaviour must
/// not depend on the process's random hasher seed.
pub type DetHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_is_stable() {
        // Known-answer test so a refactor cannot silently change
        // partitioning of existing workloads.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn streaming_matches_oneshot() {
        for input in [&b""[..], b"a", b"<http://example.org/resource/s1>"] {
            let mut h = FnvHasher::default();
            h.write(input);
            assert_eq!(h.finish(), fnv1a(input), "input {input:?}");
        }
        // Split writes accumulate identically to one write.
        let mut h = FnvHasher::default();
        h.write(b"<sub");
        h.write(b"ject>");
        assert_eq!(h.finish(), fnv1a(b"<subject>"));
    }

    #[test]
    fn det_hash_map_basic() {
        let mut m: DetHashMap<String, u64> = DetHashMap::default();
        m.insert("k".into(), 1);
        assert_eq!(m.get("k"), Some(&1));
    }
}
