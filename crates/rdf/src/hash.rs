//! Shared deterministic hashing.
//!
//! Everything in the workspace that needs a *reproducible* hash — shuffle
//! partitioning in `mrsim`, the `φ_m` partition function of the partial
//! unnest, fault-draw streams, and the build sides of the triplegroup
//! joins — goes through this one FNV-1a implementation, so the constants
//! live in exactly one place. `std`'s default `HashMap` hasher is
//! randomly seeded per process and would make workloads non-reproducible
//! (and it is also measurably slower than FNV on the short RDF tokens
//! these maps key on).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic 64-bit FNV-1a hash of a byte string.
///
/// This is the *spec-stable* hash: reducer partitioning and `φ_m` depend
/// on its exact output, and the known-answer test below pins it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streaming [`Hasher`] over the same FNV-1a function, for use as a
/// deterministic drop-in `HashMap` hasher.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// Streaming FNV-style *block checksum*: folds eight input bytes per
/// multiply instead of one, so checksumming a spill buffer costs roughly
/// an eighth of the byte-at-a-time [`FnvHasher`]. This is **not** FNV-1a
/// (the dispersion per byte is weaker and the output differs) — it is a
/// data-integrity checksum in the spirit of HDFS's CRC32C block
/// checksums, where the requirement is detecting bit flips cheaply, not
/// uniform key dispersion. Never use it for partitioning.
///
/// Framing: each [`update`](Self::update) call folds its slice as
/// little-endian `u64` words plus a byte-at-a-time tail, then folds the
/// slice length, so `update(a); update(b)` differs from `update(ab)` —
/// record boundaries are part of the checksum, as with CRC-framed blocks.
#[derive(Debug, Clone)]
pub struct BlockChecksum(u64);

impl Default for BlockChecksum {
    fn default() -> Self {
        BlockChecksum(FNV_OFFSET)
    }
}

impl BlockChecksum {
    /// Fold one framed block into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            h ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h = h.wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= bytes.len() as u64;
        self.0 = h.wrapping_mul(FNV_PRIME);
    }

    /// The checksum over everything folded so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` with deterministic (FNV-1a) hashing — the map type for
/// join build sides and any other lookup structure whose behaviour must
/// not depend on the process's random hasher seed.
pub type DetHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_is_stable() {
        // Known-answer test so a refactor cannot silently change
        // partitioning of existing workloads.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn streaming_matches_oneshot() {
        for input in [&b""[..], b"a", b"<http://example.org/resource/s1>"] {
            let mut h = FnvHasher::default();
            h.write(input);
            assert_eq!(h.finish(), fnv1a(input), "input {input:?}");
        }
        // Split writes accumulate identically to one write.
        let mut h = FnvHasher::default();
        h.write(b"<sub");
        h.write(b"ject>");
        assert_eq!(h.finish(), fnv1a(b"<subject>"));
    }

    #[test]
    fn block_checksum_detects_flips_and_frames_blocks() {
        let base = {
            let mut c = BlockChecksum::default();
            c.update(b"hello spill arena bytes!!");
            c.finish()
        };
        // Deterministic.
        let mut again = BlockChecksum::default();
        again.update(b"hello spill arena bytes!!");
        assert_eq!(again.finish(), base);
        // Any single-bit flip, at word-aligned or tail positions, changes
        // the checksum.
        let data = b"hello spill arena bytes!!";
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.to_vec();
                flipped[i] ^= 1 << bit;
                let mut c = BlockChecksum::default();
                c.update(&flipped);
                assert_ne!(c.finish(), base, "flip at byte {i} bit {bit} undetected");
            }
        }
        // Framing: block boundaries are part of the checksum.
        let mut split = BlockChecksum::default();
        split.update(b"hello");
        split.update(b" world");
        let mut joined = BlockChecksum::default();
        joined.update(b"hello world");
        assert_ne!(split.finish(), joined.finish());
        // Empty-vs-absent blocks also differ.
        let mut one_empty = BlockChecksum::default();
        one_empty.update(b"");
        assert_ne!(one_empty.finish(), BlockChecksum::default().finish());
    }

    #[test]
    fn det_hash_map_basic() {
        let mut m: DetHashMap<String, u64> = DetHashMap::default();
        m.insert("k".into(), 1);
        assert_eq!(m.get("k"), Some(&1));
    }
}
