//! Vertical partitioning (VP) — the storage model of the relational
//! baselines.
//!
//! VP splits the triple relation `T` into one two-column relation per
//! property type. Bound-property star joins become joins of the matching VP
//! relations; an *unbound*-property pattern, however, must touch the union
//! of **all** VP relations (i.e. the whole of `T`) — the inefficiency that
//! motivates the paper (Section 1.1, "Optimizing unbound-property
//! queries").

use crate::atom::Atom;
use crate::store::TripleStore;
use crate::triple::STriple;
use std::collections::BTreeMap;

/// A vertically-partitioned view of a triple store: property token →
/// triples carrying that property.
#[derive(Debug, Default, Clone)]
pub struct VerticalPartitions {
    parts: BTreeMap<Atom, Vec<STriple>>,
}

impl VerticalPartitions {
    /// Partition a store by property.
    pub fn build(store: &TripleStore) -> Self {
        let mut parts: BTreeMap<Atom, Vec<STriple>> = BTreeMap::new();
        for t in store.iter() {
            parts.entry(t.p.clone()).or_default().push(t.clone());
        }
        VerticalPartitions { parts }
    }

    /// The relation for one property, if present.
    pub fn relation(&self, prop: &str) -> Option<&[STriple]> {
        self.parts.get(prop).map(Vec::as_slice)
    }

    /// Number of property relations.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Iterate over `(property, relation)` pairs in property order.
    pub fn iter(&self) -> impl Iterator<Item = (&Atom, &[STriple])> {
        self.parts.iter().map(|(p, v)| (p, v.as_slice()))
    }

    /// The union of all VP relations — what an unbound-property pattern
    /// must scan. Returned in property order; total size equals the store.
    pub fn union_all(&self) -> Vec<STriple> {
        self.parts.values().flatten().cloned().collect()
    }

    /// Total text bytes across a subset of relations (used to cost
    /// selective VP scans versus a full union scan).
    pub fn text_bytes_of(&self, props: &[&str]) -> u64 {
        props.iter().filter_map(|p| self.parts.get(*p)).flatten().map(STriple::text_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<s1>", "<p1>", "<a>"),
            STriple::new("<s1>", "<p2>", "<b>"),
            STriple::new("<s2>", "<p1>", "<c>"),
        ])
    }

    #[test]
    fn partitions_by_property() {
        let vp = VerticalPartitions::build(&store());
        assert_eq!(vp.len(), 2);
        assert_eq!(vp.relation("<p1>").unwrap().len(), 2);
        assert_eq!(vp.relation("<p2>").unwrap().len(), 1);
        assert!(vp.relation("<p3>").is_none());
    }

    #[test]
    fn union_all_recovers_store_size() {
        let s = store();
        let vp = VerticalPartitions::build(&s);
        assert_eq!(vp.union_all().len(), s.len());
    }

    #[test]
    fn text_bytes_of_subsets() {
        let s = store();
        let vp = VerticalPartitions::build(&s);
        let all = vp.text_bytes_of(&["<p1>", "<p2>"]);
        assert_eq!(all, s.text_bytes());
        assert!(vp.text_bytes_of(&["<p1>"]) < all);
        assert_eq!(vp.text_bytes_of(&["<missing>"]), 0);
    }
}
