//! Vertical partitioning (VP) — the storage model of the relational
//! baselines.
//!
//! VP splits the triple relation `T` into one two-column relation per
//! property type. Bound-property star joins become joins of the matching VP
//! relations; an *unbound*-property pattern, however, must touch the union
//! of **all** VP relations (i.e. the whole of `T`) — the inefficiency that
//! motivates the paper (Section 1.1, "Optimizing unbound-property
//! queries").

use crate::atom::Atom;
use crate::dict::{Dictionary, UnknownId};
use crate::store::{PropertyStats, StoreStats, TripleStore};
use crate::triple::STriple;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A vertically-partitioned view of a triple store: property token →
/// triples carrying that property.
#[derive(Debug, Default, Clone)]
pub struct VerticalPartitions {
    parts: BTreeMap<Atom, Vec<STriple>>,
}

impl VerticalPartitions {
    /// Partition a store by property.
    pub fn build(store: &TripleStore) -> Self {
        let mut parts: BTreeMap<Atom, Vec<STriple>> = BTreeMap::new();
        for t in store.iter() {
            parts.entry(t.p.clone()).or_default().push(t.clone());
        }
        VerticalPartitions { parts }
    }

    /// The relation for one property, if present.
    pub fn relation(&self, prop: &str) -> Option<&[STriple]> {
        self.parts.get(prop).map(Vec::as_slice)
    }

    /// Number of property relations.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Iterate over `(property, relation)` pairs in property order.
    pub fn iter(&self) -> impl Iterator<Item = (&Atom, &[STriple])> {
        self.parts.iter().map(|(p, v)| (p, v.as_slice()))
    }

    /// The union of all VP relations — what an unbound-property pattern
    /// must scan. Yields borrows in property order (total count equals the
    /// store); the full-`T` scan is the paper's hot case, so it must not
    /// clone every triple into a second resident copy.
    pub fn union_all(&self) -> impl Iterator<Item = &STriple> {
        self.parts.values().flatten()
    }

    /// Total text bytes across a subset of relations (used to cost
    /// selective VP scans versus a full union scan).
    pub fn text_bytes_of(&self, props: &[&str]) -> u64 {
        props.iter().filter_map(|p| self.parts.get(*p)).flatten().map(STriple::text_size).sum()
    }
}

/// Columnar, dictionary-ID-encoded vertical partitions: per property id,
/// parallel `(u32 s, u32 o)` columns instead of owned [`STriple`]s.
///
/// This is the ID-native storage layout of the data plane: scans and
/// β-unnest compare `u32` ids, and lexical tokens reappear only at output
/// boundaries via [`resolve`](Self::resolve) against the shared
/// [`Dictionary`] snapshot captured at build time. Twelve bytes per triple
/// (property key amortized) replace three heap tokens.
#[derive(Debug, Clone)]
pub struct IdVerticalPartitions {
    /// property id → (subject column, object column), index-aligned.
    parts: BTreeMap<u32, (Vec<u32>, Vec<u32>)>,
    dict: Arc<Dictionary>,
}

impl IdVerticalPartitions {
    /// Partition a store by property, interning every term into `dict`
    /// and keeping a shared snapshot of it for decode.
    pub fn build(store: &TripleStore, dict: &mut Dictionary) -> Self {
        let mut parts: BTreeMap<u32, (Vec<u32>, Vec<u32>)> = BTreeMap::new();
        for t in store.iter() {
            let p = dict.encode(&t.p);
            let s = dict.encode(&t.s);
            let o = dict.encode(&t.o);
            let (ss, os) = parts.entry(p).or_default();
            ss.push(s);
            os.push(o);
        }
        IdVerticalPartitions { parts, dict: Arc::new(dict.clone()) }
    }

    /// The dictionary snapshot every id in this view decodes against.
    pub fn dict(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// The `(subjects, objects)` columns for one property id, if present.
    /// Both slices are empty or equal-length, never ragged.
    pub fn relation_by_id(&self, prop: u32) -> Option<(&[u32], &[u32])> {
        self.parts.get(&prop).map(|(s, o)| (s.as_slice(), o.as_slice()))
    }

    /// The columns for one property *token*: `None` when the token is not
    /// in the dictionary or carries no triples.
    pub fn relation(&self, prop: &str) -> Option<(&[u32], &[u32])> {
        self.relation_by_id(self.dict.get(prop)?)
    }

    /// Number of property relations.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Iterate `(property id, subject column, object column)` in property
    /// id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32], &[u32])> {
        self.parts.iter().map(|(p, (s, o))| (*p, s.as_slice(), o.as_slice()))
    }

    /// The union of all ID relations as `(s, p, o)` id rows — the
    /// unbound-property full-`T` scan over the columnar layout. No token
    /// materializes; each row is three `u32` copies.
    pub fn union_all(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.parts
            .iter()
            .flat_map(|(p, (ss, os))| ss.iter().zip(os.iter()).map(|(s, o)| (*s, *p, *o)))
    }

    /// Resolve one `(s, p, o)` id row back to an owned [`STriple`] at an
    /// output boundary. A foreign id is a typed error, not a panic.
    pub fn resolve(&self, row: (u32, u32, u32)) -> Result<STriple, UnknownId> {
        Ok(STriple {
            s: self.dict.resolve_atom(row.0)?,
            p: self.dict.resolve_atom(row.1)?,
            o: self.dict.resolve_atom(row.2)?,
        })
    }

    /// Total triples across all relations.
    pub fn triple_count(&self) -> usize {
        self.parts.values().map(|(s, _)| s.len()).sum()
    }

    /// Compute full store statistics over the columnar layout, without
    /// materializing a lexical [`TripleStore`]. Equal to
    /// [`TripleStore::stats`] on the source data: the dictionary is
    /// injective, so distinct-id counts are distinct-token counts, and
    /// `text_bytes` resolves each row back to its N-Triples size. This is
    /// what lets the cost-based planner price ID-native plans with the
    /// same statistics it uses for lexical ones.
    pub fn stats(&self) -> StoreStats {
        let mut subjects: HashSet<u32> = HashSet::new();
        let mut objects: HashSet<u32> = HashSet::new();
        let mut text_bytes = 0u64;
        let mut per_property = BTreeMap::new();
        let mut multi = 0u64;
        for (p, (ss, os)) in &self.parts {
            let prop = self.dict.resolve_atom(*p).expect("property id was interned at build time");
            let mut subs: HashMap<u32, u64> = HashMap::new();
            let mut objs: HashSet<u32> = HashSet::new();
            for (s, o) in ss.iter().zip(os.iter()) {
                subjects.insert(*s);
                objects.insert(*o);
                *subs.entry(*s).or_insert(0) += 1;
                objs.insert(*o);
                text_bytes += self
                    .resolve((*s, *p, *o))
                    .expect("row ids were interned at build time")
                    .text_size();
            }
            let count = ss.len() as u64;
            let distinct_subjects = subs.len() as u64;
            let max_multiplicity = subs.values().copied().max().unwrap_or(0);
            if max_multiplicity > 1 {
                multi += 1;
            }
            per_property.insert(
                prop,
                PropertyStats {
                    count,
                    distinct_subjects,
                    distinct_objects: objs.len() as u64,
                    max_multiplicity,
                    mean_multiplicity: if distinct_subjects == 0 {
                        0.0
                    } else {
                        count as f64 / distinct_subjects as f64
                    },
                },
            );
        }
        let distinct_properties = self.parts.len() as u64;
        StoreStats {
            triples: self.triple_count() as u64,
            distinct_subjects: subjects.len() as u64,
            distinct_objects: objects.len() as u64,
            distinct_properties,
            text_bytes,
            multi_valued_fraction: if distinct_properties == 0 {
                0.0
            } else {
                multi as f64 / distinct_properties as f64
            },
            per_property,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<s1>", "<p1>", "<a>"),
            STriple::new("<s1>", "<p2>", "<b>"),
            STriple::new("<s2>", "<p1>", "<c>"),
        ])
    }

    #[test]
    fn partitions_by_property() {
        let vp = VerticalPartitions::build(&store());
        assert_eq!(vp.len(), 2);
        assert_eq!(vp.relation("<p1>").unwrap().len(), 2);
        assert_eq!(vp.relation("<p2>").unwrap().len(), 1);
        assert!(vp.relation("<p3>").is_none());
    }

    #[test]
    fn union_all_recovers_store_size() {
        let s = store();
        let vp = VerticalPartitions::build(&s);
        assert_eq!(vp.union_all().count(), s.len());
        // Borrowing scan: the yielded triples live in the partitions, not
        // in a fresh clone.
        let first = vp.union_all().next().unwrap();
        assert!(std::ptr::eq(first, &vp.relation("<p1>").unwrap()[0]));
    }

    #[test]
    fn text_bytes_of_subsets() {
        let s = store();
        let vp = VerticalPartitions::build(&s);
        let all = vp.text_bytes_of(&["<p1>", "<p2>"]);
        assert_eq!(all, s.text_bytes());
        assert!(vp.text_bytes_of(&["<p1>"]) < all);
        assert_eq!(vp.text_bytes_of(&["<missing>"]), 0);
    }

    #[test]
    fn id_vp_columns_match_lexical_partitions() {
        let s = store();
        let mut dict = Dictionary::new();
        let idvp = IdVerticalPartitions::build(&s, &mut dict);
        let vp = VerticalPartitions::build(&s);
        assert_eq!(idvp.len(), vp.len());
        assert_eq!(idvp.triple_count(), s.len());
        for (prop, rel) in vp.iter() {
            let (ss, os) = idvp.relation(prop).unwrap();
            assert_eq!(ss.len(), rel.len());
            assert_eq!(os.len(), rel.len());
            for (i, t) in rel.iter().enumerate() {
                assert_eq!(idvp.dict().resolve(ss[i]).unwrap(), &*t.s);
                assert_eq!(idvp.dict().resolve(os[i]).unwrap(), &*t.o);
            }
        }
    }

    #[test]
    fn id_vp_union_all_resolves_to_store_triples() {
        let s = store();
        let mut dict = Dictionary::new();
        let idvp = IdVerticalPartitions::build(&s, &mut dict);
        let mut resolved: Vec<STriple> =
            idvp.union_all().map(|row| idvp.resolve(row).unwrap()).collect();
        resolved.sort();
        let mut expected: Vec<STriple> = s.iter().cloned().collect();
        expected.sort();
        assert_eq!(resolved, expected);
    }

    #[test]
    fn id_vp_empty_relation_scans() {
        // Empty store: no relations, empty union scan.
        let empty = TripleStore::from_triples(vec![]);
        let mut dict = Dictionary::new();
        let idvp = IdVerticalPartitions::build(&empty, &mut dict);
        assert!(idvp.is_empty());
        assert_eq!(idvp.len(), 0);
        assert_eq!(idvp.triple_count(), 0);
        assert_eq!(idvp.union_all().count(), 0);
        assert_eq!(idvp.relation("<p1>"), None);

        // Non-empty store: a property that is in the dictionary (as an
        // object token) but heads no relation scans as absent, not as a
        // ragged empty column pair.
        let mut dict = Dictionary::new();
        let s = store();
        let idvp = IdVerticalPartitions::build(&s, &mut dict);
        let obj_id = dict.get("<a>").unwrap();
        assert_eq!(idvp.relation_by_id(obj_id), None);
        assert_eq!(idvp.relation("<a>"), None);
        assert_eq!(idvp.relation("<never-seen>"), None);
    }

    #[test]
    fn id_vp_stats_match_lexical_store_stats() {
        // Multi-valued property, repeated objects, and literal tokens so
        // every StoreStats field is exercised, not just the counts.
        let s = TripleStore::from_triples(vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<xGO>", "<go1>"),
            STriple::new("<g1>", "<xGO>", "<go2>"),
            STriple::new("<g2>", "<label>", "\"a\""),
            STriple::new("<g2>", "<xGO>", "<go1>"),
            STriple::new("<g3>", "<organism>", "<human>"),
        ]);
        let mut dict = Dictionary::new();
        let idvp = IdVerticalPartitions::build(&s, &mut dict);
        assert_eq!(idvp.stats(), s.stats());

        let empty = TripleStore::new();
        let mut dict = Dictionary::new();
        let idvp = IdVerticalPartitions::build(&empty, &mut dict);
        assert_eq!(idvp.stats(), empty.stats());
    }

    #[test]
    fn id_vp_resolve_rejects_foreign_ids() {
        let mut dict = Dictionary::new();
        let idvp = IdVerticalPartitions::build(&store(), &mut dict);
        let bogus = u32::MAX;
        assert_eq!(idvp.resolve((bogus, 0, 0)), Err(crate::dict::UnknownId(bogus)));
    }
}
