//! In-memory triple store with the statistics that drive the paper's
//! redundancy analysis.
//!
//! The phenomenon the paper studies — intermediate-result redundancy under
//! unbound-property joins — is governed by *property multiplicity*: how many
//! triples a subject has for a given property (and in total). Real
//! warehouses like Uniprot have properties with multiplicity up to 13K.
//! [`TripleStore::stats`] computes these distributions so experiments can
//! verify their synthetic data matches the paper's regimes.

use crate::atom::Atom;
use crate::ntriples::{parse_str, NtParseError};
use crate::triple::STriple;
use std::collections::{BTreeMap, HashMap, HashSet};

/// An in-memory collection of lexical triples.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    triples: Vec<STriple>,
}

/// Per-property statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyStats {
    /// Total triples with this property.
    pub count: u64,
    /// Distinct subjects having this property.
    pub distinct_subjects: u64,
    /// Distinct object tokens this property takes.
    pub distinct_objects: u64,
    /// Maximum number of triples one subject has for this property.
    pub max_multiplicity: u64,
    /// Mean triples-per-subject for subjects that have the property at all.
    pub mean_multiplicity: f64,
}

impl PropertyStats {
    /// True if at least one subject carries this property more than once.
    pub fn is_multi_valued(&self) -> bool {
        self.max_multiplicity > 1
    }
}

/// Whole-store statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreStats {
    /// Number of triples.
    pub triples: u64,
    /// Number of distinct subjects.
    pub distinct_subjects: u64,
    /// Number of distinct object tokens.
    pub distinct_objects: u64,
    /// Number of distinct properties.
    pub distinct_properties: u64,
    /// Total text size of the store in bytes (as N-Triples rows).
    pub text_bytes: u64,
    /// Fraction of properties that are multi-valued (the paper reports
    /// >45 % for DBpedia Infobox and BTC-09).
    pub multi_valued_fraction: f64,
    /// Per-property statistics, keyed by property token.
    pub per_property: BTreeMap<Atom, PropertyStats>,
}

impl TripleStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a store from a vector of triples.
    pub fn from_triples(triples: Vec<STriple>) -> Self {
        TripleStore { triples }
    }

    /// Parse an N-Triples document into a store.
    pub fn from_ntriples(doc: &str) -> Result<Self, NtParseError> {
        Ok(TripleStore { triples: parse_str(doc)? })
    }

    /// Append one triple.
    pub fn insert(&mut self, t: STriple) {
        self.triples.push(t);
    }

    /// Append many triples.
    pub fn extend(&mut self, ts: impl IntoIterator<Item = STriple>) {
        self.triples.extend(ts);
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Borrow the triples.
    pub fn triples(&self) -> &[STriple] {
        &self.triples
    }

    /// Consume the store, returning its triples.
    pub fn into_triples(self) -> Vec<STriple> {
        self.triples
    }

    /// Iterate over triples.
    pub fn iter(&self) -> std::slice::Iter<'_, STriple> {
        self.triples.iter()
    }

    /// Total text size (N-Triples rows) in bytes.
    pub fn text_bytes(&self) -> u64 {
        self.triples.iter().map(STriple::text_size).sum()
    }

    /// The set of distinct property tokens, sorted.
    pub fn properties(&self) -> Vec<Atom> {
        let set: HashSet<&Atom> = self.triples.iter().map(|t| &t.p).collect();
        let mut v: Vec<Atom> = set.into_iter().cloned().collect();
        v.sort();
        v
    }

    /// Compute full store statistics in a single pass.
    pub fn stats(&self) -> StoreStats {
        /// Accumulator per property: count, subject multiplicities, objects.
        type PropAcc<'a> = (u64, HashMap<&'a Atom, u64>, HashSet<&'a Atom>);
        let mut subjects: HashSet<&Atom> = HashSet::new();
        let mut objects: HashSet<&Atom> = HashSet::new();
        let mut per_prop: HashMap<&Atom, PropAcc<'_>> = HashMap::new();
        let mut text_bytes = 0u64;
        for t in &self.triples {
            subjects.insert(&t.s);
            objects.insert(&t.o);
            text_bytes += t.text_size();
            let entry = per_prop.entry(&t.p).or_default();
            entry.0 += 1;
            *entry.1.entry(&t.s).or_insert(0) += 1;
            entry.2.insert(&t.o);
        }
        let mut per_property = BTreeMap::new();
        let mut multi = 0u64;
        for (p, (count, subs, objs)) in &per_prop {
            let max_multiplicity = subs.values().copied().max().unwrap_or(0);
            let distinct_subjects = subs.len() as u64;
            let distinct_objects = objs.len() as u64;
            let mean_multiplicity =
                if distinct_subjects == 0 { 0.0 } else { *count as f64 / distinct_subjects as f64 };
            if max_multiplicity > 1 {
                multi += 1;
            }
            per_property.insert(
                (*p).clone(),
                PropertyStats {
                    count: *count,
                    distinct_subjects,
                    distinct_objects,
                    max_multiplicity,
                    mean_multiplicity,
                },
            );
        }
        let distinct_properties = per_prop.len() as u64;
        StoreStats {
            triples: self.triples.len() as u64,
            distinct_subjects: subjects.len() as u64,
            distinct_objects: objects.len() as u64,
            distinct_properties,
            text_bytes,
            multi_valued_fraction: if distinct_properties == 0 {
                0.0
            } else {
                multi as f64 / distinct_properties as f64
            },
            per_property,
        }
    }
}

impl IntoIterator for TripleStore {
    type Item = STriple;
    type IntoIter = std::vec::IntoIter<STriple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

impl<'a> IntoIterator for &'a TripleStore {
    type Item = &'a STriple;
    type IntoIter = std::slice::Iter<'a, STriple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

impl FromIterator<STriple> for TripleStore {
    fn from_iter<I: IntoIterator<Item = STriple>>(iter: I) -> Self {
        TripleStore { triples: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<xGO>", "<go1>"),
            STriple::new("<g1>", "<xGO>", "<go2>"),
            STriple::new("<g2>", "<label>", "\"b\""),
        ])
    }

    #[test]
    fn stats_counts() {
        let s = sample().stats();
        assert_eq!(s.triples, 4);
        assert_eq!(s.distinct_subjects, 2);
        assert_eq!(s.distinct_properties, 2);
    }

    #[test]
    fn stats_multiplicity() {
        let s = sample().stats();
        let go = &s.per_property[&crate::atom::atom("<xGO>")];
        assert_eq!(go.count, 2);
        assert_eq!(go.distinct_subjects, 1);
        assert_eq!(go.distinct_objects, 2);
        assert_eq!(go.max_multiplicity, 2);
        assert!((go.mean_multiplicity - 2.0).abs() < 1e-9);
        assert!(go.is_multi_valued());
        let label = &s.per_property[&crate::atom::atom("<label>")];
        assert_eq!(label.max_multiplicity, 1);
        assert!(!label.is_multi_valued());
    }

    #[test]
    fn stats_multi_valued_fraction() {
        let s = sample().stats();
        assert!((s.multi_valued_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn text_bytes_matches_serialization() {
        let store = sample();
        let manual: u64 = store.iter().map(|t| t.to_string().len() as u64 + 1).sum();
        assert_eq!(store.text_bytes(), manual);
        assert_eq!(store.stats().text_bytes, manual);
    }

    #[test]
    fn empty_store_stats() {
        let s = TripleStore::new().stats();
        assert_eq!(s.triples, 0);
        assert_eq!(s.multi_valued_fraction, 0.0);
    }

    #[test]
    fn properties_sorted_distinct() {
        let props = sample().properties();
        assert_eq!(props.len(), 2);
        assert!(props[0] < props[1]);
    }

    #[test]
    fn from_ntriples_roundtrip() {
        let doc = "<a> <p> <b> .\n<a> <q> \"x\" .\n";
        let store = TripleStore::from_ntriples(doc).unwrap();
        assert_eq!(store.len(), 2);
    }
}
