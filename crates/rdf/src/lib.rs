//! # rdf-model — RDF data-model substrate
//!
//! This crate provides the RDF plumbing that every other crate in the
//! workspace builds on:
//!
//! * [`Term`] — a parsed RDF term (IRI / literal / blank node) with
//!   N-Triples-conformant display and parsing;
//! * [`Atom`] and [`AtomTable`] — cheap reference-counted interned strings
//!   used for the lexical (token) representation of terms that flows through
//!   the MapReduce pipelines;
//! * [`STriple`] — a triple of atoms (the workhorse record type);
//! * [`ntriples`] — a streaming N-Triples parser and serializer;
//! * [`TripleStore`] — an in-memory triple collection with property
//!   statistics (multiplicity distributions drive the redundancy phenomenon
//!   studied by the paper);
//! * [`vp`] — vertical partitioning (the storage model of the relational
//!   baselines);
//! * [`Dictionary`] — a numeric string dictionary for compact encodings.
//!
//! The paper operates on lexical triples (Pig/Hive move text through HDFS),
//! so the pipeline-facing representation here is lexical too: an [`STriple`]
//! holds the canonical N-Triples token for each position, and
//! [`STriple::text_size`] is the number of bytes the triple occupies in a
//! text row — the quantity all HDFS/shuffle counters in `mrsim` are built
//! from.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atom;
pub mod dict;
pub mod hash;
pub mod io;
pub mod ntriples;
pub mod store;
pub mod term;
pub mod triple;
pub mod vp;

pub use atom::{Atom, AtomTable};
pub use dict::Dictionary;
pub use hash::{fnv1a, DetHashMap, FnvBuildHasher, FnvHasher};
pub use io::{read_ntriples, read_ntriples_file, write_ntriples, write_ntriples_file, NtIoError};
pub use ntriples::{parse_line, parse_str, write_triple, NtParseError};
pub use store::{PropertyStats, StoreStats, TripleStore};
pub use term::Term;
pub use triple::STriple;
pub use vp::VerticalPartitions;
