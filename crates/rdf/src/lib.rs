//! # rdf-model — RDF data-model substrate
//!
//! This crate provides the RDF plumbing that every other crate in the
//! workspace builds on:
//!
//! * [`Term`] — a parsed RDF term (IRI / literal / blank node) with
//!   N-Triples-conformant display and parsing;
//! * [`Atom`] and [`AtomTable`] — cheap reference-counted interned strings
//!   used for the lexical (token) representation of terms that flows through
//!   the MapReduce pipelines;
//! * [`STriple`] — a triple of atoms (the workhorse record type);
//! * [`ntriples`] — a streaming N-Triples parser and serializer;
//! * [`TripleStore`] — an in-memory triple collection with property
//!   statistics (multiplicity distributions drive the redundancy phenomenon
//!   studied by the paper);
//! * [`vp`] — vertical partitioning (the storage model of the relational
//!   baselines), in both lexical ([`VerticalPartitions`]) and columnar
//!   ID-encoded ([`IdVerticalPartitions`]) layouts;
//! * [`Dictionary`] — a numeric string dictionary for compact encodings,
//!   with typed [`UnknownId`] errors on the production decode paths.
//!
//! The paper operates on lexical triples (Pig/Hive move text through HDFS),
//! and the text-cost model keeps that framing: an [`STriple`] holds the
//! canonical N-Triples token for each position, and [`STriple::text_size`]
//! is the number of bytes the triple occupies in a text row — the quantity
//! the text-model HDFS/shuffle counters in `mrsim` are built from. The
//! ID-native data plane layered on top of this crate's [`Dictionary`]
//! instead moves LEB128-varint dictionary ids through the shuffle and
//! resolves them back to [`Atom`]s only at output boundaries; its wire
//! bytes are counted post-encoding, not via the text model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atom;
pub mod dict;
pub mod hash;
pub mod io;
pub mod ntriples;
pub mod store;
pub mod term;
pub mod triple;
pub mod vp;

pub use atom::{Atom, AtomTable};
pub use dict::{Dictionary, UnknownId};
pub use hash::{fnv1a, DetHashMap, FnvBuildHasher, FnvHasher};
pub use io::{read_ntriples, read_ntriples_file, write_ntriples, write_ntriples_file, NtIoError};
pub use ntriples::{parse_line, parse_str, write_triple, NtParseError};
pub use store::{PropertyStats, StoreStats, TripleStore};
pub use term::Term;
pub use triple::STriple;
pub use vp::{IdVerticalPartitions, VerticalPartitions};
