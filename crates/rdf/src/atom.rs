//! Interned, cheaply-clonable lexical tokens.
//!
//! MapReduce pipelines clone subject/property/object tokens constantly
//! (every triplegroup, every n-tuple). Using `Arc<str>` makes a clone a
//! reference-count bump instead of a heap copy, while [`AtomTable`]
//! deduplicates the backing allocations for repeated tokens (properties in
//! RDF data are drawn from a tiny vocabulary, so interning them is a large
//! win).

use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// An interned lexical token: subject, property or object in canonical
/// N-Triples token form (e.g. `<http://ex.org/p>` or `"42"`).
///
/// Cloning an `Atom` is O(1). Equality and ordering are by string content,
/// *not* by pointer, so atoms from different tables compare correctly.
pub type Atom = Arc<str>;

/// Create an atom directly from a string without interning.
///
/// Use this for one-off tokens; use [`AtomTable::intern`] inside loops that
/// see the same token many times.
pub fn atom(s: &str) -> Atom {
    Arc::from(s)
}

/// A concurrent string-interning table.
///
/// `intern` returns a canonical [`Atom`] for the given string: repeated
/// calls with equal content return clones of the same allocation.
///
/// ```
/// use rdf_model::AtomTable;
/// let table = AtomTable::new();
/// let a = table.intern("<http://ex.org/p>");
/// let b = table.intern("<http://ex.org/p>");
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// ```
#[derive(Debug, Default)]
pub struct AtomTable {
    // Sharded to reduce contention when many map workers intern at once.
    shards: [Mutex<HashSet<Atom>>; SHARDS],
}

const SHARDS: usize = 16;

impl AtomTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the canonical atom for `s`, inserting it if absent.
    pub fn intern(&self, s: &str) -> Atom {
        let shard = &self.shards[Self::shard_of(s)];
        let mut set = shard.lock();
        if let Some(existing) = set.get(s) {
            return existing.clone();
        }
        let a: Atom = Arc::from(s);
        set.insert(a.clone());
        a
    }

    /// Number of distinct atoms currently interned.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no atom has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(s: &str) -> usize {
        // FNV-1a over the bytes; deterministic across runs and platforms.
        (fnv1a(s.as_bytes()) as usize) % SHARDS
    }
}

/// Deterministic 64-bit FNV-1a hash.
///
/// Used for interning shards and (in `mrsim`) for reducer partitioning,
/// where determinism across runs is required — `std`'s default hasher is
/// randomly seeded and would make workloads non-reproducible.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let t = AtomTable::new();
        let a = t.intern("hello");
        let b = t.intern("hello");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn intern_distinguishes() {
        let t = AtomTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn atoms_compare_by_content_across_tables() {
        let t1 = AtomTable::new();
        let t2 = AtomTable::new();
        assert_eq!(t1.intern("x"), t2.intern("x"));
    }

    #[test]
    fn fnv1a_is_stable() {
        // Known-answer test so a refactor cannot silently change
        // partitioning of existing workloads.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn empty_table() {
        let t = AtomTable::new();
        assert!(t.is_empty());
        t.intern("x");
        assert!(!t.is_empty());
    }
}
