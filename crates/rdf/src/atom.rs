//! Interned, cheaply-clonable lexical tokens.
//!
//! MapReduce pipelines clone subject/property/object tokens constantly
//! (every triplegroup, every n-tuple). Using `Arc<str>` makes a clone a
//! reference-count bump instead of a heap copy, while [`AtomTable`]
//! deduplicates the backing allocations for repeated tokens (properties in
//! RDF data are drawn from a tiny vocabulary, so interning them is a large
//! win).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// An interned lexical token: subject, property or object in canonical
/// N-Triples token form (e.g. `<http://ex.org/p>` or `"42"`).
///
/// Cloning an `Atom` is O(1). Equality and ordering are by string content,
/// *not* by pointer, so atoms from different tables compare correctly.
pub type Atom = Arc<str>;

/// Create an atom directly from a string without interning.
///
/// Use this for one-off tokens; use [`AtomTable::intern`] inside loops that
/// see the same token many times.
pub fn atom(s: &str) -> Atom {
    Arc::from(s)
}

/// A concurrent string-interning table.
///
/// `intern` returns a canonical [`Atom`] for the given string: repeated
/// calls with equal content return clones of the same allocation.
///
/// ```
/// use rdf_model::AtomTable;
/// let table = AtomTable::new();
/// let a = table.intern("<http://ex.org/p>");
/// let b = table.intern("<http://ex.org/p>");
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// ```
#[derive(Debug, Default)]
pub struct AtomTable {
    // Sharded to reduce contention when many map workers intern at once.
    // Each shard maps a precomputed 64-bit token hash to its atom through
    // an identity hasher, so `intern` hashes the token bytes exactly once
    // (word-at-a-time) — the decode hot path of every map/reduce task.
    shards: [Mutex<HashMap<u64, Atom, IdentityBuild>>; SHARDS],
}

const SHARDS: usize = 16;

/// `BuildHasher` that passes an already-computed `u64` key through.
#[derive(Debug, Clone, Copy, Default)]
struct IdentityBuild;

impl std::hash::BuildHasher for IdentityBuild {
    type Hasher = IdentityHasher;
    fn build_hasher(&self) -> IdentityHasher {
        IdentityHasher(0)
    }
}

/// Identity state for `u64` keys (only `write_u64` is ever fed).
#[derive(Debug)]
struct IdentityHasher(u64);

impl std::hash::Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("identity hasher only accepts u64 keys");
    }

    fn write_u64(&mut self, h: u64) {
        self.0 = h;
    }
}

/// Deterministic word-at-a-time token hash for the interner: processes
/// 8-byte chunks with a rotate-xor-multiply round, far cheaper per byte
/// than byte-serial FNV on typical 10–60-byte RDF tokens. Internal to the
/// table — shuffle partitioning keeps the spec-stable [`fnv1a`].
fn token_hash(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;
    let mut h = bytes.len() as u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h.rotate_left(5) ^ u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .wrapping_mul(SEED);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(tail)).wrapping_mul(SEED);
    }
    h
}

impl AtomTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the canonical atom for `s`, inserting it if absent.
    pub fn intern(&self, s: &str) -> Atom {
        let h = token_hash(s.as_bytes());
        // Shard on middle bits: the map's bucket index consumes the low
        // bits of the same hash, and reusing them would cluster every
        // shard's keys into every 16th bucket.
        let shard = &self.shards[((h >> 24) as usize) % SHARDS];
        let mut map = shard.lock();
        match map.entry(h) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let atom = e.get();
                if **atom == *s {
                    atom.clone()
                } else {
                    // 64-bit hash collision between distinct tokens: stay
                    // content-correct and just skip deduplication.
                    Arc::from(s)
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => e.insert(Arc::from(s)).clone(),
        }
    }

    /// Number of distinct atoms currently interned.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no atom has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The spec-stable deterministic hash now lives in [`crate::hash`] (one
// home for the constants); re-exported here for the existing callers.
pub use crate::hash::fnv1a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let t = AtomTable::new();
        let a = t.intern("hello");
        let b = t.intern("hello");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn intern_distinguishes() {
        let t = AtomTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn atoms_compare_by_content_across_tables() {
        let t1 = AtomTable::new();
        let t2 = AtomTable::new();
        assert_eq!(t1.intern("x"), t2.intern("x"));
    }

    #[test]
    fn fnv1a_is_stable() {
        // Known-answer test (duplicated in `crate::hash`) so the re-export
        // cannot silently change partitioning of existing workloads.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn empty_table() {
        let t = AtomTable::new();
        assert!(t.is_empty());
        t.intern("x");
        assert!(!t.is_empty());
    }

    #[test]
    fn concurrent_interning_converges_to_one_allocation_per_token() {
        // Simulates many map workers interning the same small property
        // vocabulary plus worker-private tokens through one shared table.
        let table = AtomTable::new();
        let vocab: Vec<String> = (0..32).map(|i| format!("<p{i}>")).collect();
        let per_worker: Vec<Vec<Atom>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|w| {
                    let table = &table;
                    let vocab = &vocab;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        for round in 0..50 {
                            for v in vocab {
                                got.push(table.intern(v));
                            }
                            got.push(table.intern(&format!("<worker{w}-{round}>")));
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Shared vocab (32) + 8 workers × 50 private tokens.
        assert_eq!(table.len(), 32 + 8 * 50);
        // Every clone of a given token points at the same allocation, even
        // across workers that raced on the first insert.
        let canon: Vec<Atom> = vocab.iter().map(|v| table.intern(v)).collect();
        for atoms in &per_worker {
            for a in atoms {
                if let Some(i) = vocab.iter().position(|v| **v == **a) {
                    assert!(Arc::ptr_eq(a, &canon[i]), "duplicate allocation for {a}");
                }
            }
        }
    }

    #[test]
    fn separate_tables_share_content_not_allocations() {
        // Each map task owns its own table: tokens agree by content across
        // tables (shuffle ordering is unaffected) without sharing memory.
        let t1 = AtomTable::new();
        let t2 = AtomTable::new();
        let a = t1.intern("<gene9>");
        let b = t2.intern("<gene9>");
        assert_eq!(a, b);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }
}
