//! Numeric string dictionary (token ↔ dense id).
//!
//! Used wherever a compact fixed-width encoding of terms is needed: the
//! ID-native data plane ships LEB128 varints of these ids through the
//! shuffle and stores `(u32, u32)` column pairs in
//! [`IdVerticalPartitions`](crate::vp::IdVerticalPartitions), resolving
//! back to [`Atom`]s only at output boundaries. Production decode paths
//! go through [`Dictionary::resolve`] / [`Dictionary::resolve_atom`],
//! whose typed [`UnknownId`] error lets a corrupt or foreign id fail the
//! *task* (and trigger recovery) instead of aborting the process.

use crate::atom::Atom;
use std::collections::HashMap;
use std::fmt;

/// A dictionary id that has no entry — the typed error of the
/// non-panicking decode paths. Carries the offending id so task-failure
/// diagnostics can report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownId(pub u32);

impl fmt::Display for UnknownId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown dictionary id {}", self.0)
    }
}

impl std::error::Error for UnknownId {}

/// A dense-id string dictionary. Ids are assigned in first-seen order
/// starting from 0 and never change.
///
/// Both directions share one [`Atom`] allocation per entry: the forward
/// map's key and the reverse table's entry are clones of the same
/// `Arc<str>`.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    forward: HashMap<Atom, u32>,
    reverse: Vec<Atom>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the id for `s`, assigning the next dense id if unseen.
    /// Misses cost one hash lookup and one shared allocation.
    pub fn encode(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.forward.get(s) {
            return id;
        }
        let id = u32::try_from(self.reverse.len()).expect("dictionary overflow (> 4Gi entries)");
        let entry: Atom = Atom::from(s);
        self.forward.insert(entry.clone(), id);
        self.reverse.push(entry);
        id
    }

    /// Look up an id without inserting.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.forward.get(s).copied()
    }

    /// Decode an id back to its string.
    ///
    /// Test/assertion convenience only: production decode paths (task
    /// reducers, output materialization) must use [`resolve`] or
    /// [`resolve_atom`], whose typed error fails the task instead of
    /// aborting the process.
    ///
    /// [`resolve`]: Self::resolve
    /// [`resolve_atom`]: Self::resolve_atom
    ///
    /// # Panics
    /// Panics if `id` was never assigned.
    pub fn decode(&self, id: u32) -> &str {
        self.resolve(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Decode an id, returning `None` when unassigned.
    pub fn try_decode(&self, id: u32) -> Option<&str> {
        self.reverse.get(id as usize).map(|a| &**a)
    }

    /// Decode an id, with a typed error naming the offending id. This is
    /// the production decode path: an [`UnknownId`] (a corrupt or foreign
    /// id) propagates as a task failure, which the engine's recovery
    /// policy handles like any other failed task.
    pub fn resolve(&self, id: u32) -> Result<&str, UnknownId> {
        self.try_decode(id).ok_or(UnknownId(id))
    }

    /// Decode an id to a cheaply-clonable [`Atom`] sharing the
    /// dictionary's allocation, or `None` when unassigned.
    pub fn decode_atom(&self, id: u32) -> Option<Atom> {
        self.reverse.get(id as usize).cloned()
    }

    /// Decode an id to a shared [`Atom`], with the same typed error as
    /// [`resolve`](Self::resolve).
    pub fn resolve_atom(&self, id: u32) -> Result<Atom, UnknownId> {
        self.decode_atom(id).ok_or(UnknownId(id))
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// True if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode("x");
        let b = d.encode("x");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("a"), 0);
        assert_eq!(d.encode("b"), 1);
        assert_eq!(d.encode("c"), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.encode("hello");
        assert_eq!(d.decode(id), "hello");
        assert_eq!(d.try_decode(id), Some("hello"));
        assert_eq!(d.try_decode(99), None);
    }

    #[test]
    fn resolve_returns_typed_error_instead_of_panicking() {
        let mut d = Dictionary::new();
        let id = d.encode("hello");
        assert_eq!(d.resolve(id), Ok("hello"));
        assert_eq!(d.resolve(99), Err(UnknownId(99)));
        assert_eq!(d.resolve(99).unwrap_err().to_string(), "unknown dictionary id 99");
        assert_eq!(d.resolve_atom(id).unwrap(), Atom::from("hello"));
        assert_eq!(d.resolve_atom(12345), Err(UnknownId(12345)));
    }

    #[test]
    fn forward_and_reverse_share_one_allocation() {
        let mut d = Dictionary::new();
        let id = d.encode("shared");
        let (key, _) = d.forward.get_key_value("shared").unwrap();
        assert!(Atom::ptr_eq(key, &d.reverse[id as usize]));
        assert!(Atom::ptr_eq(&d.decode_atom(id).unwrap(), &d.reverse[id as usize]));
        assert_eq!(d.decode_atom(99), None);
    }

    #[test]
    fn get_does_not_insert() {
        let d = Dictionary::new();
        assert_eq!(d.get("nope"), None);
        assert!(d.is_empty());
    }
}
