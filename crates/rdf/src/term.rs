//! Parsed RDF terms.

use std::fmt;

/// A parsed RDF term.
///
/// The lexical (token) form used throughout the pipelines is produced by
/// [`Term::to_token`] / `Display`, which emits canonical N-Triples syntax:
///
/// ```
/// use rdf_model::Term;
/// assert_eq!(Term::iri("http://ex.org/a").to_token(), "<http://ex.org/a>");
/// assert_eq!(Term::plain_literal("hi").to_token(), "\"hi\"");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without the surrounding angle brackets.
    Iri(String),
    /// An RDF literal.
    Literal {
        /// The lexical form, unescaped.
        lexical: String,
        /// Optional datatype IRI (without angle brackets).
        datatype: Option<String>,
        /// Optional language tag (without the leading `@`).
        language: Option<String>,
    },
    /// A blank node, stored without the `_:` prefix.
    BNode(String),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(i: impl Into<String>) -> Self {
        Term::Iri(i.into())
    }

    /// Construct a plain (untyped, untagged) literal.
    pub fn plain_literal(lex: impl Into<String>) -> Self {
        Term::Literal { lexical: lex.into(), datatype: None, language: None }
    }

    /// Construct a typed literal.
    pub fn typed_literal(lex: impl Into<String>, dt: impl Into<String>) -> Self {
        Term::Literal { lexical: lex.into(), datatype: Some(dt.into()), language: None }
    }

    /// Construct a language-tagged literal.
    pub fn lang_literal(lex: impl Into<String>, lang: impl Into<String>) -> Self {
        Term::Literal { lexical: lex.into(), datatype: None, language: Some(lang.into()) }
    }

    /// Construct a blank node.
    pub fn bnode(label: impl Into<String>) -> Self {
        Term::BNode(label.into())
    }

    /// True if this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True if this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// True if this term is a blank node.
    pub fn is_bnode(&self) -> bool {
        matches!(self, Term::BNode(_))
    }

    /// Canonical N-Triples token for this term.
    pub fn to_token(&self) -> String {
        self.to_string()
    }
}

/// Escape a literal's lexical form per N-Triples rules.
fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            _ => fmt::Write::write_char(out, c)?,
        }
    }
    Ok(())
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::BNode(b) => write!(f, "_:{b}"),
            Term::Literal { lexical, datatype, language } => {
                f.write_str("\"")?;
                escape_into(f, lexical)?;
                f.write_str("\"")?;
                if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                } else if let Some(lang) = language {
                    write!(f, "@{lang}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_iri() {
        assert_eq!(Term::iri("http://a/b").to_token(), "<http://a/b>");
    }

    #[test]
    fn display_bnode() {
        assert_eq!(Term::bnode("x1").to_token(), "_:x1");
    }

    #[test]
    fn display_plain_literal() {
        assert_eq!(Term::plain_literal("abc").to_token(), "\"abc\"");
    }

    #[test]
    fn display_typed_literal() {
        assert_eq!(
            Term::typed_literal("5", "http://www.w3.org/2001/XMLSchema#int").to_token(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#int>"
        );
    }

    #[test]
    fn display_lang_literal() {
        assert_eq!(Term::lang_literal("chat", "fr").to_token(), "\"chat\"@fr");
    }

    #[test]
    fn escapes_special_chars() {
        assert_eq!(Term::plain_literal("a\"b\\c\nd").to_token(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn kind_predicates() {
        assert!(Term::iri("x").is_iri());
        assert!(Term::plain_literal("x").is_literal());
        assert!(Term::bnode("x").is_bnode());
        assert!(!Term::iri("x").is_literal());
    }
}
