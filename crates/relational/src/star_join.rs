//! Relational star-join jobs (one star subpattern per MR cycle).
//!
//! This is the baseline evaluation the paper compares against: the map
//! phase routes triples matching any of the star's patterns by subject
//! (performing vertical partitioning in-map, plus the full union scan for
//! unbound-property patterns); the reduce phase materializes the star's
//! matches as **flat 3k-arity n-tuples** ([`Row`]s) — every combination of
//! bound matches with every unbound match, the redundant representation
//! whose cost the paper quantifies.

use mr_rdf::{IdStarTest, IdTaggedPo, IdTripleRec, Row, RowSchema, TripleRec};
use mrsim::{
    map_fn, map_fn_ctx, reduce_fn, reduce_fn_ctx, InputBinding, JobSpec, MrError, Rec,
    TypedMapEmitter, TypedOutEmitter, VarId,
};
use rdf_model::atom::Atom;
use rdf_model::Dictionary;
use rdf_query::{ObjPattern, PropPattern, StarPattern, SubjPattern};
use std::sync::Arc;

/// Default reducer count for relational jobs.
pub const REDUCERS: usize = 8;

/// Which pattern subset a mapper handles — Pig issues one LOAD per
/// relation group (bound VP relations in one pass, the unbound union in
/// another), so its star jobs bind two mappers to the same input file and
/// read it twice; Hive shares one scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSet {
    /// All patterns in one scan (Hive shared scan).
    All,
    /// Only bound-property patterns (Pig's VP load).
    BoundOnly,
    /// Only unbound-property patterns (Pig's union-of-all load).
    UnboundOnly,
}

/// Shuffle value of star-join jobs: `(pattern index, (property, object))`.
pub type TaggedPo = (u64, (Atom, Atom));

/// Build the map operator for a star over a triple input.
pub fn star_mapper(star: StarPattern, which: PatternSet) -> Arc<dyn mrsim::RawMapOp> {
    map_fn(move |rec: TripleRec, out: &mut TypedMapEmitter<'_, Atom, TaggedPo>| {
        let t = &rec.0;
        if !star.subject_accepts(&t.s) {
            return Ok(());
        }
        for (idx, pat) in star.patterns.iter().enumerate() {
            let selected = match which {
                PatternSet::All => true,
                PatternSet::BoundOnly => !pat.is_unbound_property(),
                PatternSet::UnboundOnly => pat.is_unbound_property(),
            };
            if selected && pat.matches_structurally(t) {
                out.emit(&t.s, &(idx as u64, (t.p.clone(), t.o.clone())));
            }
        }
        Ok(())
    })
}

/// Build the reduce operator: per subject, cross product of per-pattern
/// matches into flat rows.
pub fn star_reducer(star: StarPattern) -> Arc<dyn mrsim::RawReduceOp> {
    reduce_fn(move |subject: Atom, values: Vec<TaggedPo>, out: &mut TypedOutEmitter<'_, Row>| {
        let k = star.patterns.len();
        let mut matches: Vec<Vec<(Atom, Atom)>> = vec![Vec::new(); k];
        for (idx, po) in values {
            let idx = idx as usize;
            if idx >= k {
                return Err(MrError::Op(format!("pattern index {idx} out of range")));
            }
            matches[idx].push(po);
        }
        if matches.iter().any(Vec::is_empty) {
            return Ok(()); // star structure violated for this subject
        }
        // Odometer cross product; emission is budget-checked so an
        // explosion aborts the job like a disk-full Hadoop task.
        let mut cursor = vec![0usize; k];
        loop {
            let mut row: Row = Vec::with_capacity(3 * k);
            for (i, c) in cursor.iter().enumerate() {
                let (p, o) = &matches[i][*c];
                row.push(subject.clone());
                row.push(p.clone());
                row.push(o.clone());
            }
            out.emit(&row)?;
            // increment odometer
            let mut pos = k;
            loop {
                if pos == 0 {
                    return Ok(());
                }
                pos -= 1;
                cursor[pos] += 1;
                if cursor[pos] < matches[pos].len() {
                    break;
                }
                cursor[pos] = 0;
            }
        }
    })
}

/// The schema of a star-join output: 3 columns per pattern.
pub fn star_schema(star: &StarPattern) -> RowSchema {
    let mut cols = Vec::with_capacity(star.patterns.len() * 3);
    for pat in &star.patterns {
        cols.push(match &pat.subject {
            SubjPattern::Var(v) => Some(v.clone()),
            SubjPattern::Const(_) => None,
        });
        cols.push(match &pat.property {
            PropPattern::Unbound(v) => Some(v.clone()),
            PropPattern::Bound(_) => None,
        });
        cols.push(match &pat.object {
            ObjPattern::Var(v) | ObjPattern::Filtered(v, _) => Some(v.clone()),
            ObjPattern::Const(_) => None,
        });
    }
    RowSchema::new(cols)
}

/// Build a full star-join job.
///
/// `pig_loads = true` binds separate bound/unbound mappers to the input
/// (double scan); otherwise one shared-scan mapper is used.
pub fn star_join_job(
    name: impl Into<String>,
    star: &StarPattern,
    input: &str,
    output: impl Into<String>,
    pig_loads: bool,
) -> (JobSpec, RowSchema) {
    let schema = star_schema(star);
    let mut inputs = Vec::new();
    if pig_loads {
        if !star.bound_patterns().is_empty() {
            inputs.push(InputBinding {
                file: input.to_string(),
                mapper: star_mapper(star.clone(), PatternSet::BoundOnly),
            });
        }
        if !star.unbound_patterns().is_empty() {
            inputs.push(InputBinding {
                file: input.to_string(),
                mapper: star_mapper(star.clone(), PatternSet::UnboundOnly),
            });
        }
    } else {
        inputs.push(InputBinding {
            file: input.to_string(),
            mapper: star_mapper(star.clone(), PatternSet::All),
        });
    }
    let spec = JobSpec::map_reduce(name, inputs, star_reducer(star.clone()), REDUCERS, output)
        .with_full_scan();
    (spec, schema)
}

/// ID-native map operator: integer-compare pattern matching over
/// [`IdTripleRec`]s, shipping varint `(tag, p, o)` values keyed by the
/// subject id.
pub fn star_mapper_ids(
    star: &StarPattern,
    which: PatternSet,
    dict: &Dictionary,
) -> Arc<dyn mrsim::RawMapOp> {
    let compiled = IdStarTest::compile(star, dict);
    map_fn_ctx(
        move |ctx: &mrsim::TaskContext,
              rec: IdTripleRec,
              out: &mut TypedMapEmitter<'_, VarId, IdTaggedPo>| {
            if !compiled.subject.accepts(rec.s, ctx)? {
                return Ok(());
            }
            for (idx, pat) in compiled.patterns.iter().enumerate() {
                let selected = match which {
                    PatternSet::All => true,
                    PatternSet::BoundOnly => !pat.unbound_property,
                    PatternSet::UnboundOnly => pat.unbound_property,
                };
                if selected && pat.matches(&rec, ctx)? {
                    out.emit(&VarId(rec.s), &IdTaggedPo { tag: idx as u32, p: rec.p, o: rec.o });
                }
            }
            Ok(())
        },
    )
}

/// ID-native reduce operator: ids resolve to [`Atom`]s at the output
/// boundary (via the engine's dictionary snapshot), then the same
/// odometer cross product as [`star_reducer`] emits lexical [`Row`]s.
pub fn star_reducer_ids(star: StarPattern) -> Arc<dyn mrsim::RawReduceOp> {
    reduce_fn_ctx(
        move |ctx: &mrsim::TaskContext,
              subject: VarId,
              values: Vec<IdTaggedPo>,
              out: &mut TypedOutEmitter<'_, Row>| {
            let k = star.patterns.len();
            let subject = ctx.resolve_atom(subject.0)?;
            let mut matches: Vec<Vec<(Atom, Atom)>> = vec![Vec::new(); k];
            for v in values {
                let idx = v.tag as usize;
                if idx >= k {
                    return Err(MrError::Op(format!("pattern index {idx} out of range")));
                }
                matches[idx].push((ctx.resolve_atom(v.p)?, ctx.resolve_atom(v.o)?));
            }
            if matches.iter().any(Vec::is_empty) {
                return Ok(()); // star structure violated for this subject
            }
            // The lexical reducer sees each pattern's matches in encoded
            // token order (the shuffle sorts by value bytes); restore it
            // after resolution so row order within a group is identical.
            for bucket in &mut matches {
                bucket.sort_by_cached_key(Rec::to_bytes);
            }
            let mut cursor = vec![0usize; k];
            loop {
                let mut row: Row = Vec::with_capacity(3 * k);
                for (i, c) in cursor.iter().enumerate() {
                    let (p, o) = &matches[i][*c];
                    row.push(subject.clone());
                    row.push(p.clone());
                    row.push(o.clone());
                }
                out.emit(&row)?;
                let mut pos = k;
                loop {
                    if pos == 0 {
                        return Ok(());
                    }
                    pos -= 1;
                    cursor[pos] += 1;
                    if cursor[pos] < matches[pos].len() {
                        break;
                    }
                    cursor[pos] = 0;
                }
            }
        },
    )
}

/// ID-native [`star_join_job`]: the shuffle carries LEB128-varint
/// dictionary ids; star constants are compiled to ids against `dict` at
/// plan time. The input must be an [`IdTripleRec`] relation (see
/// [`mr_rdf::load_store_ids`]) and the engine must carry a dictionary
/// snapshot (`Engine::with_dict`). Emits the same lexical [`Row`]s as the
/// lexical job.
pub fn star_join_job_ids(
    name: impl Into<String>,
    star: &StarPattern,
    input: &str,
    output: impl Into<String>,
    pig_loads: bool,
    dict: &Dictionary,
) -> (JobSpec, RowSchema) {
    let schema = star_schema(star);
    let mut inputs = Vec::new();
    if pig_loads {
        if !star.bound_patterns().is_empty() {
            inputs.push(InputBinding {
                file: input.to_string(),
                mapper: star_mapper_ids(star, PatternSet::BoundOnly, dict),
            });
        }
        if !star.unbound_patterns().is_empty() {
            inputs.push(InputBinding {
                file: input.to_string(),
                mapper: star_mapper_ids(star, PatternSet::UnboundOnly, dict),
            });
        }
    } else {
        inputs.push(InputBinding {
            file: input.to_string(),
            mapper: star_mapper_ids(star, PatternSet::All, dict),
        });
    }
    let spec = JobSpec::map_reduce(name, inputs, star_reducer_ids(star.clone()), REDUCERS, output)
        .with_full_scan();
    (spec, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_rdf::load_store;
    use mrsim::Engine;
    use rdf_model::{STriple, TripleStore};
    use rdf_query::TriplePattern;

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<xGO>", "<go1>"),
            STriple::new("<g1>", "<xGO>", "<go2>"),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<g2>", "<other>", "<x>"),
        ])
    }

    fn bound_star() -> StarPattern {
        StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::bound("g", "<xGO>", ObjPattern::Var("go".into())),
            ],
        )
    }

    fn unbound_star() -> StarPattern {
        StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound("g", "p", ObjPattern::Var("o".into())),
            ],
        )
    }

    fn run(star: StarPattern, pig: bool) -> (Vec<Row>, RowSchema, mrsim::JobStats) {
        let engine = Engine::unbounded();
        load_store(&engine, "t", &store()).unwrap();
        let (spec, schema) = star_join_job("sj", &star, "t", "out", pig);
        let stats = engine.run_job(&spec).unwrap();
        let mut rows: Vec<Row> = engine.read_records("out").unwrap();
        rows.sort();
        (rows, schema, stats)
    }

    #[test]
    fn bound_star_cross_product() {
        let (rows, schema, _) = run(bound_star(), false);
        // g1: 1 label × 2 xGO; g2 filtered out (no xGO).
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.len(), 6);
            let b = schema.binding(r).unwrap();
            assert_eq!(&**b.get("g").unwrap(), "<g1>");
        }
    }

    #[test]
    fn unbound_star_produces_all_combinations() {
        let (rows, schema, _) = run(unbound_star(), false);
        // g1: 1 label × 3 triples (multiple roles!) = 3
        // g2: 1 label × 2 triples = 2
        assert_eq!(rows.len(), 5);
        // the label triple itself appears as unbound match
        assert!(rows.iter().any(|r| {
            let b = schema.binding(r).unwrap();
            &**b.get("p").unwrap() == "<label>"
        }));
    }

    #[test]
    fn pig_loads_double_the_input_scan() {
        let (rows_shared, _, stats_shared) = run(unbound_star(), false);
        let (rows_pig, _, stats_pig) = run(unbound_star(), true);
        assert_eq!(rows_shared, rows_pig, "results must not depend on scan mode");
        assert_eq!(stats_pig.hdfs_read_bytes, 2 * stats_shared.hdfs_read_bytes);
    }

    #[test]
    fn redundancy_grows_with_multiplicity() {
        // Add more xGO triples -> unbound rows repeat the bound component
        // once per triple.
        let mut s = store();
        for i in 3..10 {
            s.insert(STriple::new("<g1>", "<xGO>", format!("<go{i}>")));
        }
        let engine = Engine::unbounded();
        load_store(&engine, "t", &s).unwrap();
        let (spec, _) = star_join_job("sj", &unbound_star(), "t", "out", false);
        engine.run_job(&spec).unwrap();
        let rows: Vec<Row> = engine.read_records("out").unwrap();
        // g1 now has 10 triples -> 10 combos; g2 2.
        assert_eq!(rows.len(), 12);
    }

    #[test]
    fn subject_filter_pushed_into_map() {
        let star = unbound_star()
            .with_subject_filter(rdf_query::ObjFilter::Equals(rdf_model::atom::atom("<g2>")));
        let (rows, schema, _) = run(star, false);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(&**schema.binding(r).unwrap().get("g").unwrap(), "<g2>");
        }
    }

    fn run_ids(star: StarPattern, pig: bool) -> (Vec<Row>, RowSchema, mrsim::JobStats) {
        let mut dict = Dictionary::new();
        let engine = Engine::unbounded();
        mr_rdf::load_store_ids(&engine, "t_ids", &store(), &mut dict).unwrap();
        let engine = engine.with_dict(std::sync::Arc::new(dict.clone()));
        let (spec, schema) = star_join_job_ids("sj-ids", &star, "t_ids", "out", pig, &dict);
        let stats = engine.run_job(&spec).unwrap();
        let mut rows: Vec<Row> = engine.read_records("out").unwrap();
        rows.sort();
        (rows, schema, stats)
    }

    #[test]
    fn id_star_join_matches_lexical_and_ships_fewer_bytes() {
        for (star, pig) in [
            (bound_star(), false),
            (unbound_star(), false),
            (unbound_star(), true),
            (
                unbound_star().with_subject_filter(rdf_query::ObjFilter::Equals(
                    rdf_model::atom::atom("<g2>"),
                )),
                false,
            ),
        ] {
            let (lex_rows, lex_schema, lex_stats) = run(star.clone(), pig);
            let (id_rows, id_schema, id_stats) = run_ids(star, pig);
            assert_eq!(lex_rows, id_rows, "pig {pig}");
            assert_eq!(lex_schema.cols, id_schema.cols);
            assert!(
                id_stats.shuffle_wire_bytes() < lex_stats.shuffle_wire_bytes(),
                "id wire {} >= lexical wire {} (pig {pig})",
                id_stats.shuffle_wire_bytes(),
                lex_stats.shuffle_wire_bytes()
            );
        }
    }

    #[test]
    fn id_star_join_without_snapshot_fails_with_codec_error() {
        let mut dict = Dictionary::new();
        let engine = Engine::unbounded();
        mr_rdf::load_store_ids(&engine, "t_ids", &store(), &mut dict).unwrap();
        let (spec, _) = star_join_job_ids("sj-ids", &bound_star(), "t_ids", "out", false, &dict);
        let err = engine.run_job(&spec).unwrap_err();
        assert!(matches!(err, MrError::Codec(_)), "unexpected error: {err:?}");
    }

    #[test]
    fn schema_marks_constants_none() {
        let star = StarPattern::new(
            "g",
            vec![TriplePattern::bound(
                "g",
                "<label>",
                ObjPattern::Const(rdf_model::atom::atom("\"a\"")),
            )],
        );
        let schema = star_schema(&star);
        assert_eq!(schema.cols, vec![Some("g".to_string()), None, None]);
    }
}
