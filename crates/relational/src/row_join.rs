//! Join of two materialized row relations on one shared variable — the
//! "join between stars" MR cycle of the relational plans.

use mr_rdf::{IdRow, PlanError, Row, RowSchema, SidedIdRow};
use mrsim::{
    map_fn, map_only_fn_ctx, reduce_fn, reduce_fn_ctx, InputBinding, JobSpec, MrError, Rec,
    TaskContext, TypedMapEmitter, TypedOutEmitter, VarId,
};
use rdf_model::atom::Atom;
use rdf_model::hash::DetHashMap;
use std::sync::Arc;

use crate::star_join::REDUCERS;

/// Shuffle value: `(side, row)` with side 0 = left, 1 = right.
type SidedRow = (u64, Row);

fn side_mapper(side: u64, key_col: usize) -> Arc<dyn mrsim::RawMapOp> {
    map_fn(move |row: Row, out: &mut TypedMapEmitter<'_, Atom, SidedRow>| {
        let key = row
            .get(key_col)
            .ok_or_else(|| {
                MrError::Op(format!("row arity {} too small for key column {key_col}", row.len()))
            })?
            .clone();
        out.emit(&key, &(side, row));
        Ok(())
    })
}

/// Build a join job of `left ⋈_var right`.
///
/// Returns the job and the output schema (left columns ++ right columns).
pub fn row_join_job(
    name: impl Into<String>,
    left: (&str, &RowSchema),
    right: (&str, &RowSchema),
    var: &str,
    output: impl Into<String>,
) -> Result<(JobSpec, RowSchema), PlanError> {
    let lcol = left
        .1
        .index_of(var)
        .ok_or_else(|| PlanError::Internal(format!("left relation lacks join var ?{var}")))?;
    let rcol = right
        .1
        .index_of(var)
        .ok_or_else(|| PlanError::Internal(format!("right relation lacks join var ?{var}")))?;
    let schema = left.1.concat(right.1);
    let reducer =
        reduce_fn(move |_key: Atom, values: Vec<SidedRow>, out: &mut TypedOutEmitter<'_, Row>| {
            let mut lefts: Vec<&Row> = Vec::new();
            let mut rights: Vec<&Row> = Vec::new();
            for (side, row) in &values {
                match side {
                    0 => lefts.push(row),
                    1 => rights.push(row),
                    _ => return Err(MrError::Op("bad join side tag".into())),
                }
            }
            for l in &lefts {
                for r in &rights {
                    let mut joined: Row = Vec::with_capacity(l.len() + r.len());
                    joined.extend_from_slice(l);
                    joined.extend_from_slice(r);
                    out.emit(&joined)?;
                }
            }
            Ok(())
        });
    let spec = JobSpec::map_reduce(
        name,
        vec![
            InputBinding { file: left.0.to_string(), mapper: side_mapper(0, lcol) },
            InputBinding { file: right.0.to_string(), mapper: side_mapper(1, rcol) },
        ],
        reducer,
        REDUCERS,
        output,
    );
    Ok((spec, schema))
}

/// Build a **map-side broadcast** join of `left ⋈_var right`: the smaller
/// (`broadcast_left`-selected) relation ships to every map task through
/// the engine's distributed cache and the other streams through a map-only
/// scan — the relational counterpart of NTGA's `TG_BcastJoin`, collapsing
/// the join's shuffle and reduce phase entirely.
///
/// Output rows are left columns ++ right columns, exactly like
/// [`row_join_job`]; map-only output is concatenated in input order, so
/// the result is byte-identical across worker counts.
///
/// Returns the job and the output schema.
pub fn row_broadcast_join_job(
    name: impl Into<String>,
    left: (&str, &RowSchema),
    right: (&str, &RowSchema),
    var: &str,
    broadcast_left: bool,
    output: impl Into<String>,
) -> Result<(JobSpec, RowSchema), PlanError> {
    let lcol = left
        .1
        .index_of(var)
        .ok_or_else(|| PlanError::Internal(format!("left relation lacks join var ?{var}")))?;
    let rcol = right
        .1
        .index_of(var)
        .ok_or_else(|| PlanError::Internal(format!("right relation lacks join var ?{var}")))?;
    let schema = left.1.concat(right.1);
    let (build_file, probe_file) = if broadcast_left {
        (left.0.to_string(), right.0.to_string())
    } else {
        (right.0.to_string(), left.0.to_string())
    };
    let build_col = if broadcast_left { lcol } else { rcol };
    let probe_col = if broadcast_left { rcol } else { lcol };
    let mapper =
        map_only_fn_ctx(move |ctx: &TaskContext, row: Row, out: &mut TypedOutEmitter<'_, Row>| {
            let table = ctx.task_state(|| {
                let file = ctx.broadcast(0)?;
                let mut map: DetHashMap<Atom, Vec<Row>> = DetHashMap::default();
                for raw in &file.records {
                    let r = Row::from_bytes_with(raw, &ctx.atoms)?;
                    let key = r
                        .get(build_col)
                        .ok_or_else(|| {
                            MrError::Op(format!(
                                "row arity {} too small for key column {build_col}",
                                r.len()
                            ))
                        })?
                        .clone();
                    map.entry(key).or_default().push(r);
                }
                Ok(map)
            })?;
            let key = row.get(probe_col).ok_or_else(|| {
                MrError::Op(format!("row arity {} too small for key column {probe_col}", row.len()))
            })?;
            if let Some(matches) = table.get(key) {
                for b in matches {
                    // Reduce-side joins emit left columns then right columns;
                    // preserve that regardless of which side was broadcast.
                    let (l, r) = if broadcast_left { (b, &row) } else { (&row, b) };
                    let mut joined: Row = Vec::with_capacity(l.len() + r.len());
                    joined.extend_from_slice(l);
                    joined.extend_from_slice(r);
                    out.emit(&joined)?;
                }
            }
            Ok(())
        });
    let spec = JobSpec::map_only(name, vec![probe_file], mapper, output).with_broadcast(build_file);
    Ok((spec, schema))
}

fn side_mapper_ids(side: u32, key_col: usize) -> Arc<dyn mrsim::RawMapOp> {
    map_fn(move |row: IdRow, out: &mut TypedMapEmitter<'_, VarId, SidedIdRow>| {
        let key = *row.0.get(key_col).ok_or_else(|| {
            MrError::Op(format!("row arity {} too small for key column {key_col}", row.0.len()))
        })?;
        out.emit(&VarId(key), &SidedIdRow { side, row });
        Ok(())
    })
}

/// ID-native [`row_join_job`]: joins two [`IdRow`] relations, shipping
/// varint ids through the shuffle and resolving to lexical [`Row`]s at
/// the output boundary via the engine's dictionary snapshot
/// (`Engine::with_dict`).
pub fn row_join_job_ids(
    name: impl Into<String>,
    left: (&str, &RowSchema),
    right: (&str, &RowSchema),
    var: &str,
    output: impl Into<String>,
) -> Result<(JobSpec, RowSchema), PlanError> {
    let lcol = left
        .1
        .index_of(var)
        .ok_or_else(|| PlanError::Internal(format!("left relation lacks join var ?{var}")))?;
    let rcol = right
        .1
        .index_of(var)
        .ok_or_else(|| PlanError::Internal(format!("right relation lacks join var ?{var}")))?;
    let schema = left.1.concat(right.1);
    let reducer = reduce_fn_ctx(
        move |ctx: &mrsim::TaskContext,
              _key: VarId,
              values: Vec<SidedIdRow>,
              out: &mut TypedOutEmitter<'_, Row>| {
            let mut lefts: Vec<Row> = Vec::new();
            let mut rights: Vec<Row> = Vec::new();
            for v in &values {
                let row = v
                    .row
                    .0
                    .iter()
                    .map(|&id| ctx.resolve_atom(id))
                    .collect::<Result<Row, MrError>>()?;
                match v.side {
                    0 => lefts.push(row),
                    1 => rights.push(row),
                    _ => return Err(MrError::Op("bad join side tag".into())),
                }
            }
            // The lexical reducer sees each side's rows in encoded token
            // order; restore it after resolution so the cross product
            // emits in the same order.
            lefts.sort_by_cached_key(Rec::to_bytes);
            rights.sort_by_cached_key(Rec::to_bytes);
            for l in &lefts {
                for r in &rights {
                    let mut joined: Row = Vec::with_capacity(l.len() + r.len());
                    joined.extend_from_slice(l);
                    joined.extend_from_slice(r);
                    out.emit(&joined)?;
                }
            }
            Ok(())
        },
    );
    let spec = JobSpec::map_reduce(
        name,
        vec![
            InputBinding { file: left.0.to_string(), mapper: side_mapper_ids(0, lcol) },
            InputBinding { file: right.0.to_string(), mapper: side_mapper_ids(1, rcol) },
        ],
        reducer,
        REDUCERS,
        output,
    );
    Ok((spec, schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsim::Engine;

    fn put_rows(engine: &Engine, name: &str, rows: Vec<Row>) {
        engine.put_records(name, rows).unwrap();
    }

    #[test]
    fn joins_on_shared_var() {
        let engine = Engine::unbounded();
        let lschema = RowSchema::new(vec![Some("a".into()), Some("x".into())]);
        let rschema = RowSchema::new(vec![Some("x".into()), Some("b".into())]);
        put_rows(
            &engine,
            "L",
            vec![
                vec!["<a1>".into(), "<k1>".into()],
                vec!["<a2>".into(), "<k1>".into()],
                vec!["<a3>".into(), "<k2>".into()],
            ],
        );
        put_rows(
            &engine,
            "R",
            vec![vec!["<k1>".into(), "<b1>".into()], vec!["<k3>".into(), "<b3>".into()]],
        );
        let (spec, schema) =
            row_join_job("join", ("L", &lschema), ("R", &rschema), "x", "out").unwrap();
        engine.run_job(&spec).unwrap();
        let mut rows: Vec<Row> = engine.read_records("out").unwrap();
        rows.sort();
        // k1 matches: 2 lefts × 1 right.
        assert_eq!(rows.len(), 2);
        assert_eq!(schema.arity(), 4);
        for r in &rows {
            let b = schema.binding(r).unwrap();
            assert_eq!(&**b.get("x").unwrap(), "<k1>");
            assert_eq!(&**b.get("b").unwrap(), "<b1>");
        }
    }

    #[test]
    fn id_row_join_matches_lexical_and_ships_fewer_bytes() {
        let lschema = RowSchema::new(vec![Some("a".into()), Some("x".into())]);
        let rschema = RowSchema::new(vec![Some("x".into()), Some("b".into())]);
        let lefts: Vec<Row> = vec![
            vec!["<a1>".into(), "<k1>".into()],
            vec!["<a2>".into(), "<k1>".into()],
            vec!["<a3>".into(), "<k2>".into()],
        ];
        let rights: Vec<Row> =
            vec![vec!["<k1>".into(), "<b1>".into()], vec!["<k3>".into(), "<b3>".into()]];

        let lex = Engine::unbounded();
        put_rows(&lex, "L", lefts.clone());
        put_rows(&lex, "R", rights.clone());
        let (spec, schema) =
            row_join_job("join", ("L", &lschema), ("R", &rschema), "x", "out").unwrap();
        let lex_stats = lex.run_job(&spec).unwrap();
        let mut lex_rows: Vec<Row> = lex.read_records("out").unwrap();
        lex_rows.sort();

        let mut dict = rdf_model::Dictionary::new();
        let encode_rows = |rows: &[Row], dict: &mut rdf_model::Dictionary| -> Vec<IdRow> {
            rows.iter().map(|r| IdRow(r.iter().map(|a| dict.encode(a)).collect())).collect()
        };
        let id_lefts = encode_rows(&lefts, &mut dict);
        let id_rights = encode_rows(&rights, &mut dict);
        let ids = Engine::unbounded().with_dict(Arc::new(dict.clone()));
        ids.put_records("L", id_lefts).unwrap();
        ids.put_records("R", id_rights).unwrap();
        let (spec, id_schema) =
            row_join_job_ids("join-ids", ("L", &lschema), ("R", &rschema), "x", "out").unwrap();
        let id_stats = ids.run_job(&spec).unwrap();
        let mut id_rows: Vec<Row> = ids.read_records("out").unwrap();
        id_rows.sort();

        assert_eq!(lex_rows, id_rows);
        assert_eq!(schema.cols, id_schema.cols);
        assert!(
            id_stats.shuffle_wire_bytes() < lex_stats.shuffle_wire_bytes(),
            "id wire {} >= lexical wire {}",
            id_stats.shuffle_wire_bytes(),
            lex_stats.shuffle_wire_bytes()
        );
    }

    #[test]
    fn id_row_join_rejects_foreign_ids() {
        // A row mentioning an id outside the snapshot fails the task
        // instead of fabricating output.
        let lschema = RowSchema::new(vec![Some("x".into())]);
        let rschema = RowSchema::new(vec![Some("x".into())]);
        let mut dict = rdf_model::Dictionary::new();
        let k = dict.encode(&rdf_model::atom::atom("<k>"));
        let engine = Engine::unbounded().with_dict(Arc::new(dict));
        engine.put_records("L", vec![IdRow(vec![k])]).unwrap();
        engine.put_records("R", vec![IdRow(vec![k + 1])]).unwrap();
        let (spec, _) =
            row_join_job_ids("join-ids", ("L", &lschema), ("R", &rschema), "x", "out").unwrap();
        let err = engine.run_job(&spec).unwrap_err();
        assert!(matches!(err, MrError::Codec(_)), "unexpected error: {err:?}");
    }

    #[test]
    fn broadcast_join_matches_reduce_join_across_workers() {
        let lschema = RowSchema::new(vec![Some("a".into()), Some("x".into())]);
        let rschema = RowSchema::new(vec![Some("x".into()), Some("b".into())]);
        let lefts: Vec<Row> = vec![
            vec!["<a1>".into(), "<k1>".into()],
            vec!["<a2>".into(), "<k1>".into()],
            vec!["<a3>".into(), "<k2>".into()],
        ];
        let rights: Vec<Row> =
            vec![vec!["<k1>".into(), "<b1>".into()], vec!["<k2>".into(), "<b2>".into()]];

        let gold_engine = Engine::unbounded();
        put_rows(&gold_engine, "L", lefts.clone());
        put_rows(&gold_engine, "R", rights.clone());
        let (spec, gold_schema) =
            row_join_job("join", ("L", &lschema), ("R", &rschema), "x", "out").unwrap();
        gold_engine.run_job(&spec).unwrap();
        let mut gold: Vec<Row> = gold_engine.read_records("out").unwrap();
        gold.sort();

        for broadcast_left in [true, false] {
            let mut raw_outputs = Vec::new();
            for workers in [1usize, 4, 8] {
                let engine = Engine::unbounded().with_workers(workers);
                put_rows(&engine, "L", lefts.clone());
                put_rows(&engine, "R", rights.clone());
                let (spec, schema) = row_broadcast_join_job(
                    "bjoin",
                    ("L", &lschema),
                    ("R", &rschema),
                    "x",
                    broadcast_left,
                    "out",
                )
                .unwrap();
                let stats = engine.run_job(&spec).unwrap();
                assert_eq!(stats.reduce_tasks, 0, "broadcast join must be map-only");
                assert_eq!(stats.broadcast_files, 1);
                assert_eq!(schema.cols, gold_schema.cols);
                let mut rows: Vec<Row> = engine.read_records("out").unwrap();
                raw_outputs.push(engine.hdfs().lock().get("out").unwrap().records.clone());
                rows.sort();
                assert_eq!(rows, gold, "broadcast_left={broadcast_left} workers={workers}");
            }
            assert!(
                raw_outputs.windows(2).all(|w| w[0] == w[1]),
                "map-only output must be byte-identical across worker counts"
            );
        }
    }

    #[test]
    fn missing_join_var_is_plan_error() {
        let lschema = RowSchema::new(vec![Some("a".into())]);
        let rschema = RowSchema::new(vec![Some("b".into())]);
        let r = row_join_job("j", ("L", &lschema), ("R", &rschema), "zz", "out");
        assert!(matches!(r, Err(PlanError::Internal(_))));
    }

    #[test]
    fn cross_product_within_key_group() {
        let engine = Engine::unbounded();
        let lschema = RowSchema::new(vec![Some("x".into()), Some("l".into())]);
        let rschema = RowSchema::new(vec![Some("x".into()), Some("r".into())]);
        let lefts: Vec<Row> =
            (0..3).map(|i| vec!["<k>".into(), format!("<l{i}>").into()]).collect();
        let rights: Vec<Row> =
            (0..4).map(|i| vec!["<k>".into(), format!("<r{i}>").into()]).collect();
        put_rows(&engine, "L", lefts);
        put_rows(&engine, "R", rights);
        let (spec, _) = row_join_job("j", ("L", &lschema), ("R", &rschema), "x", "out").unwrap();
        engine.run_job(&spec).unwrap();
        let rows: Vec<Row> = engine.read_records("out").unwrap();
        assert_eq!(rows.len(), 12);
    }
}
