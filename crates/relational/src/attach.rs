//! Attach jobs: evaluate a star (or a single pattern) from the base triple
//! relation *and* join it with an existing row relation in the same MR
//! cycle.
//!
//! These are the building blocks of the paper's **Sel-SJ-first** grouping
//! (Figure 3): "most selective grouping of joins first but preserving star
//! structure as much as possible to minimize MR cycles". For
//! object-subject joins, one attach cycle computes the second star-join
//! AND the inter-star join together (2 cycles total, both scanning the
//! triple relation); for object-object joins a pattern-attach plus a
//! star-attach are needed (3 cycles, all full scans) — exactly the MR/FS
//! counts the paper's case study reports.

use mr_rdf::{PlanError, Row, RowSchema, TripleRec};
use mrsim::{map_fn, reduce_fn, InputBinding, JobSpec, MrError, TypedMapEmitter, TypedOutEmitter};
use rdf_model::atom::Atom;
use rdf_query::{StarPattern, TriplePattern};

use crate::star_join::{star_schema, REDUCERS};

/// Shuffle value: tag 0 carries a row; tag `1+i` carries the
/// `(property, object)` of a match for pattern `i`.
type AttachVal = (u64, Vec<Atom>);

/// Join a row relation (keyed by `key_var`, which must equal the star's
/// subject) with the star's matches computed from the base triple relation
/// in the same cycle.
pub fn star_attach_job(
    name: impl Into<String>,
    rows: (&str, &RowSchema),
    key_var: &str,
    star: &StarPattern,
    triples: &str,
    output: impl Into<String>,
) -> Result<(JobSpec, RowSchema), PlanError> {
    let key_col = rows
        .1
        .index_of(key_var)
        .ok_or_else(|| PlanError::Internal(format!("rows lack attach key ?{key_var}")))?;
    let schema = rows.1.concat(&star_schema(star));

    let row_mapper = map_fn(move |row: Row, out: &mut TypedMapEmitter<'_, Atom, AttachVal>| {
        let key = row
            .get(key_col)
            .ok_or_else(|| MrError::Op("row too short for attach key".into()))?
            .clone();
        out.emit(&key, &(0, row));
        Ok(())
    });
    let star_m = star.clone();
    let triple_mapper =
        map_fn(move |rec: TripleRec, out: &mut TypedMapEmitter<'_, Atom, AttachVal>| {
            let t = &rec.0;
            if !star_m.subject_accepts(&t.s) {
                return Ok(());
            }
            for (idx, pat) in star_m.patterns.iter().enumerate() {
                if pat.matches_structurally(t) {
                    out.emit(&t.s, &(1 + idx as u64, vec![t.p.clone(), t.o.clone()]));
                }
            }
            Ok(())
        });

    let star_r = star.clone();
    let reducer = reduce_fn(
        move |subject: Atom, values: Vec<AttachVal>, out: &mut TypedOutEmitter<'_, Row>| {
            let k = star_r.patterns.len();
            let mut rows: Vec<Vec<Atom>> = Vec::new();
            let mut matches: Vec<Vec<(Atom, Atom)>> = vec![Vec::new(); k];
            for (tag, payload) in values {
                if tag == 0 {
                    rows.push(payload);
                } else {
                    let idx = (tag - 1) as usize;
                    if idx >= k || payload.len() != 2 {
                        return Err(MrError::Op("malformed attach value".into()));
                    }
                    matches[idx].push((payload[0].clone(), payload[1].clone()));
                }
            }
            if rows.is_empty() || matches.iter().any(Vec::is_empty) {
                return Ok(());
            }
            // Cross product of star matches, appended to each row.
            let mut cursor = vec![0usize; k];
            loop {
                let mut star_cols: Vec<Atom> = Vec::with_capacity(3 * k);
                for (i, c) in cursor.iter().enumerate() {
                    let (p, o) = &matches[i][*c];
                    star_cols.push(subject.clone());
                    star_cols.push(p.clone());
                    star_cols.push(o.clone());
                }
                for row in &rows {
                    let mut joined = row.clone();
                    joined.extend(star_cols.iter().cloned());
                    out.emit(&joined)?;
                }
                let mut pos = k;
                loop {
                    if pos == 0 {
                        return Ok(());
                    }
                    pos -= 1;
                    cursor[pos] += 1;
                    if cursor[pos] < matches[pos].len() {
                        break;
                    }
                    cursor[pos] = 0;
                }
            }
        },
    );
    let spec = JobSpec::map_reduce(
        name,
        vec![
            InputBinding { file: rows.0.to_string(), mapper: row_mapper },
            InputBinding { file: triples.to_string(), mapper: triple_mapper },
        ],
        reducer,
        REDUCERS,
        output,
    )
    .with_full_scan();
    Ok((spec, schema))
}

/// Join a row relation (keyed by `key_var`) with the matches of a single
/// triple pattern from the base relation, keyed by the pattern's
/// **object** — the first step of Sel-SJ-first's object-object handling.
pub fn pattern_attach_job(
    name: impl Into<String>,
    rows: (&str, &RowSchema),
    key_var: &str,
    pattern: &TriplePattern,
    triples: &str,
    output: impl Into<String>,
) -> Result<(JobSpec, RowSchema), PlanError> {
    let key_col = rows
        .1
        .index_of(key_var)
        .ok_or_else(|| PlanError::Internal(format!("rows lack attach key ?{key_var}")))?;
    // Output schema: rows ++ (subject, property, object) of the pattern.
    let mini = StarPattern::new(
        match &pattern.subject {
            rdf_query::SubjPattern::Var(v) => v.clone(),
            rdf_query::SubjPattern::Const(_) => {
                return Err(PlanError::Internal("pattern attach needs a variable subject".into()))
            }
        },
        vec![pattern.clone()],
    );
    let schema = rows.1.concat(&star_schema(&mini));

    let row_mapper = map_fn(move |row: Row, out: &mut TypedMapEmitter<'_, Atom, AttachVal>| {
        let key = row
            .get(key_col)
            .ok_or_else(|| MrError::Op("row too short for attach key".into()))?
            .clone();
        out.emit(&key, &(0, row));
        Ok(())
    });
    let pat = pattern.clone();
    let triple_mapper =
        map_fn(move |rec: TripleRec, out: &mut TypedMapEmitter<'_, Atom, AttachVal>| {
            let t = &rec.0;
            if pat.matches_structurally(t) {
                out.emit(&t.o, &(1, vec![t.s.clone(), t.p.clone(), t.o.clone()]));
            }
            Ok(())
        });
    let reducer =
        reduce_fn(move |_key: Atom, values: Vec<AttachVal>, out: &mut TypedOutEmitter<'_, Row>| {
            let mut rows: Vec<Vec<Atom>> = Vec::new();
            let mut matches: Vec<Vec<Atom>> = Vec::new();
            for (tag, payload) in values {
                if tag == 0 {
                    rows.push(payload);
                } else {
                    matches.push(payload);
                }
            }
            for row in &rows {
                for m in &matches {
                    let mut joined = row.clone();
                    joined.extend(m.iter().cloned());
                    out.emit(&joined)?;
                }
            }
            Ok(())
        });
    let spec = JobSpec::map_reduce(
        name,
        vec![
            InputBinding { file: rows.0.to_string(), mapper: row_mapper },
            InputBinding { file: triples.to_string(), mapper: triple_mapper },
        ],
        reducer,
        REDUCERS,
        output,
    )
    .with_full_scan();
    Ok((spec, schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star_join::star_join_job;
    use mr_rdf::load_store;
    use mrsim::Engine;
    use rdf_model::{STriple, TripleStore};
    use rdf_query::{ObjPattern, SolutionSet};

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<p1>", "<producer>", "<m1>"),
            STriple::new("<p1>", "<label>", "\"prod1\""),
            STriple::new("<p2>", "<producer>", "<m1>"),
            STriple::new("<p2>", "<label>", "\"prod2\""),
            STriple::new("<m1>", "<label>", "\"maker\""),
            STriple::new("<m1>", "<country>", "<c1>"),
        ])
    }

    fn query_text() -> &'static str {
        "SELECT * WHERE {
            ?p <producer> ?pr . ?p <label> ?l1 .
            ?pr <label> ?l2 . ?pr <country> ?c .
         }"
    }

    #[test]
    fn star_attach_equals_two_phase_plan() {
        let q = rdf_query::parse_query(query_text()).unwrap();
        let store = store();
        let gold = rdf_query::naive::evaluate(&q, &store);
        assert_eq!(gold.len(), 2);

        let engine = Engine::unbounded();
        load_store(&engine, "t", &store).unwrap();
        // Cycle 1: star join of the product star.
        let (j1, s1) = star_join_job("s1", &q.stars[0], "t", "r1", false);
        engine.run_job(&j1).unwrap();
        // Cycle 2: attach the producer star by its subject (join var pr).
        let (j2, s2) =
            star_attach_job("attach", ("r1", &s1), "pr", &q.stars[1], "t", "out").unwrap();
        engine.run_job(&j2).unwrap();
        let rows: Vec<Row> = engine.read_records("out").unwrap();
        let got: SolutionSet = rows.iter().map(|r| s2.binding(r).expect("consistent")).collect();
        assert_eq!(got, gold);
    }

    #[test]
    fn pattern_attach_joins_on_object() {
        // rows keyed by ?x joined with pattern (?r <reviewFor> ?x) on its
        // object.
        let store = TripleStore::from_triples(vec![
            STriple::new("<o1>", "<offerFor>", "<prod>"),
            STriple::new("<r1>", "<reviewFor>", "<prod>"),
            STriple::new("<r2>", "<reviewFor>", "<prod>"),
            STriple::new("<r3>", "<reviewFor>", "<other>"),
        ]);
        let engine = Engine::unbounded();
        load_store(&engine, "t", &store).unwrap();
        let rows_schema = RowSchema::new(vec![Some("o".into()), Some("x".into())]);
        engine.put_records::<Row>("rows", vec![vec!["<o1>".into(), "<prod>".into()]]).unwrap();
        let pattern = TriplePattern::bound("r", "<reviewFor>", ObjPattern::Var("x".into()));
        let (job, schema) =
            pattern_attach_job("pa", ("rows", &rows_schema), "x", &pattern, "t", "out").unwrap();
        engine.run_job(&job).unwrap();
        let rows: Vec<Row> = engine.read_records("out").unwrap();
        assert_eq!(rows.len(), 2); // r1, r2 match <prod>
        for r in &rows {
            let b = schema.binding(r).unwrap();
            assert_eq!(&**b.get("x").unwrap(), "<prod>");
            assert!(b.get("r").is_some());
        }
    }

    #[test]
    fn attach_missing_key_is_plan_error() {
        let schema = RowSchema::new(vec![Some("a".into())]);
        let star = StarPattern::new(
            "b",
            vec![TriplePattern::bound("b", "<p>", ObjPattern::Var("x".into()))],
        );
        assert!(star_attach_job("x", ("rows", &schema), "zz", &star, "t", "o").is_err());
    }
}
