//! Pig-like and Hive-like relational planners.
//!
//! Both evaluate queries the way the paper describes its baselines:
//! **one star-join per MR cycle**, then one MR cycle per join between
//! star results. The differences the paper calls out are modeled
//! faithfully:
//!
//! * **Hive** runs its cycles sequentially and *shares the input scan*
//!   within a star-join cycle (one pass over the triple relation feeds
//!   all VP relations and the unbound union).
//! * **Pig** runs independent star-join cycles *concurrently* (counted as
//!   one MR cycle, as the paper counts them), but issues one LOAD per
//!   relation group — so a star with both bound and unbound patterns reads
//!   the input twice ("Pig processes two copies of the input relation") —
//!   and prefixes multi-star queries with an extra map-only job that
//!   passes the input through (the paper's "initial map-only job to read
//!   entire input and compress it").

use mr_rdf::{check_query, PlanError, QueryRun, RowSchema, TripleRec};
use mrsim::{map_only_fn, Engine, JobSpec, TypedOutEmitter, Workflow};
use rdf_query::{Query, SolutionSet};
use std::collections::HashSet;

use crate::row_join::row_join_job;
use crate::star_join::star_join_job;

/// Which relational system to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelFlavor {
    /// Apache-Pig-like execution.
    Pig,
    /// Apache-Hive-like execution.
    Hive,
}

impl RelFlavor {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RelFlavor::Pig => "Pig",
            RelFlavor::Hive => "Hive",
        }
    }
}

/// Tunables of the relational planners.
#[derive(Debug, Clone)]
pub struct RelOptions {
    /// Compression ratio applied by Pig's initial pass-through job (the
    /// paper: "map-only job to read entire input and compress it").
    /// `1.0` = no compression (keeps the pass-through's extra cycle and
    /// write cost without changing scan volumes, the conservative
    /// default).
    pub pig_compression: f64,
}

impl Default for RelOptions {
    fn default() -> Self {
        RelOptions { pig_compression: 1.0 }
    }
}

/// Execute `query` over the triple relation stored in DFS file `input`.
///
/// `label` prefixes all intermediate/output file names (use a unique label
/// per run). Runtime failures (DiskFull) are reported in the returned
/// [`QueryRun`]'s stats; `Err` is reserved for planning problems.
pub fn execute(
    flavor: RelFlavor,
    engine: &Engine,
    query: &Query,
    input: &str,
    label: &str,
    extract_solutions: bool,
) -> Result<QueryRun, PlanError> {
    execute_with(flavor, RelOptions::default(), engine, query, input, label, extract_solutions)
}

/// [`execute`] with explicit [`RelOptions`].
pub fn execute_with(
    flavor: RelFlavor,
    options: RelOptions,
    engine: &Engine,
    query: &Query,
    input: &str,
    label: &str,
    extract_solutions: bool,
) -> Result<QueryRun, PlanError> {
    query.validate()?;
    check_query(query)?;

    let mut wf = Workflow::new(engine, format!("{}/{label}", flavor.label()));
    let fail = |wf: Workflow<'_>, e: &mrsim::MrError| {
        Ok(QueryRun { stats: wf.finish_failed(e), solutions: None })
    };

    // Pig's preliminary pass-through job for multi-star queries.
    let base: String = if flavor == RelFlavor::Pig && query.stars.len() > 1 {
        let copy = format!("{label}.copy");
        let mapper =
            map_only_fn(|t: TripleRec, out: &mut TypedOutEmitter<'_, TripleRec>| out.emit(&t));
        let job =
            JobSpec::map_only(format!("{label}.load"), vec![input.to_string()], mapper, &copy)
                .with_full_scan()
                .with_output_compression(options.pig_compression);
        if let Err(e) = wf.run_job(job) {
            return fail(wf, &e);
        }
        copy
    } else {
        input.to_string()
    };

    // Star-join cycles.
    let mut star_files: Vec<String> = Vec::new();
    let mut star_schemas: Vec<RowSchema> = Vec::new();
    let mut star_jobs: Vec<JobSpec> = Vec::new();
    for (i, star) in query.stars.iter().enumerate() {
        let out = format!("{label}.star{i}");
        let pig_loads = flavor == RelFlavor::Pig;
        let (spec, schema) =
            star_join_job(format!("{label}.star{i}"), star, &base, &out, pig_loads);
        star_files.push(out);
        star_schemas.push(schema);
        star_jobs.push(spec);
    }
    match flavor {
        RelFlavor::Pig => {
            // Independent star joins run concurrently: one stage.
            if let Err(e) = wf.run_stage(star_jobs) {
                return fail(wf, &e);
            }
        }
        RelFlavor::Hive => {
            for job in star_jobs {
                if let Err(e) = wf.run_job(job) {
                    return fail(wf, &e);
                }
            }
        }
    }

    // Join cycles: left-deep over the join graph.
    let edges = query.join_edges();
    let mut joined: HashSet<usize> = HashSet::from([0]);
    let mut current_file = star_files[0].clone();
    let mut current_schema = star_schemas[0].clone();
    let mut join_no = 0;
    while joined.len() < query.stars.len() {
        let edge = edges
            .iter()
            .find(|e| joined.contains(&e.left) != joined.contains(&e.right))
            .ok_or_else(|| PlanError::Internal("join graph not connected".into()))?;
        let other = if joined.contains(&edge.left) { edge.right } else { edge.left };
        let out = format!("{label}.join{join_no}");
        let (spec, schema) = row_join_job(
            format!("{label}.join{join_no}"),
            (&current_file, &current_schema),
            (&star_files[other], &star_schemas[other]),
            &edge.var,
            &out,
        )?;
        if let Err(e) = wf.run_job(spec) {
            return fail(wf, &e);
        }
        joined.insert(other);
        current_file = out;
        current_schema = schema;
        join_no += 1;
    }

    let stats = wf.finish(&[&current_file]);
    let solutions = if extract_solutions {
        let rows: Vec<mr_rdf::Row> = engine
            .read_records(&current_file)
            .map_err(|e| PlanError::Internal(format!("reading final output: {e}")))?;
        let mut set = SolutionSet::new();
        for row in &rows {
            let b = current_schema
                .binding(row)
                .ok_or_else(|| PlanError::Internal("inconsistent output row".into()))?;
            set.insert(b);
        }
        Some(match &query.projection {
            Some(vars) => set.project(vars),
            None => set,
        })
    } else {
        None
    };
    Ok(QueryRun { stats, solutions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_rdf::load_store;
    use mrsim::SimHdfs;
    use rdf_model::{STriple, TripleStore};
    use rdf_query::parse_query;

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<xGO>", "<go1>"),
            STriple::new("<g1>", "<xGO>", "<go2>"),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<go1>", "<gl>", "\"nucleus\""),
            STriple::new("<go2>", "<gl>", "\"membrane\""),
        ])
    }

    fn run(flavor: RelFlavor, q: &str) -> QueryRun {
        let engine = Engine::unbounded();
        load_store(&engine, "t", &store()).unwrap();
        let query = parse_query(q).unwrap();
        execute(flavor, &engine, &query, "t", "q", true).unwrap()
    }

    const TWO_STAR: &str = "SELECT * WHERE { ?g <label> ?l . ?g <xGO> ?go . ?go <gl> ?x . }";
    const UNBOUND: &str = "SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }";

    #[test]
    fn matches_naive_bound_two_star() {
        let query = parse_query(TWO_STAR).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &store());
        for flavor in [RelFlavor::Pig, RelFlavor::Hive] {
            let run = run(flavor, TWO_STAR);
            assert!(run.succeeded());
            assert_eq!(run.solutions.unwrap(), gold, "{flavor:?}");
        }
    }

    #[test]
    fn matches_naive_unbound_join() {
        let query = parse_query(UNBOUND).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &store());
        assert!(!gold.is_empty());
        for flavor in [RelFlavor::Pig, RelFlavor::Hive] {
            let run = run(flavor, UNBOUND);
            assert_eq!(run.solutions.unwrap(), gold, "{flavor:?}");
        }
    }

    #[test]
    fn cycle_counts_match_paper() {
        // Two stars: Hive = 2 star cycles + 1 join = 3; Pig = load + one
        // concurrent star stage + join = 3 (stars counted once).
        let hive = run(RelFlavor::Hive, TWO_STAR);
        assert_eq!(hive.stats.mr_cycles, 3);
        assert_eq!(hive.stats.full_scans, 2);
        let pig = run(RelFlavor::Pig, TWO_STAR);
        assert_eq!(pig.stats.mr_cycles, 3);
        assert_eq!(pig.stats.jobs.len(), 4); // load + 2 stars + join
    }

    #[test]
    fn pig_reads_more_than_hive_on_unbound_stars() {
        let pig = run(RelFlavor::Pig, UNBOUND);
        let hive = run(RelFlavor::Hive, UNBOUND);
        assert!(pig.stats.total_read_bytes() > hive.stats.total_read_bytes());
    }

    #[test]
    fn single_star_query_is_one_cycle() {
        let r = run(RelFlavor::Hive, "SELECT * WHERE { ?g <label> ?l . ?g ?p ?o . }");
        assert_eq!(r.stats.mr_cycles, 1);
        let query = parse_query("SELECT * WHERE { ?g <label> ?l . ?g ?p ?o . }").unwrap();
        let gold = rdf_query::naive::evaluate(&query, &store());
        assert_eq!(r.solutions.unwrap(), gold);
    }

    #[test]
    fn disk_full_reported_not_panicked() {
        // Tiny DFS: input fits, star-join output does not.
        let store = store();
        let cap = store.text_bytes() + 60;
        let engine = Engine::new(SimHdfs::new(cap, 1));
        load_store(&engine, "t", &store).unwrap();
        let query = parse_query(UNBOUND).unwrap();
        let run = execute(RelFlavor::Hive, &engine, &query, "t", "q", true).unwrap();
        assert!(!run.succeeded());
        assert!(run.stats.failure.as_deref().unwrap_or("").contains("full"));
        assert!(run.solutions.is_none());
    }

    #[test]
    fn pig_compression_halves_downstream_reads() {
        let engine = Engine::unbounded();
        load_store(&engine, "t", &store()).unwrap();
        let query = parse_query(TWO_STAR).unwrap();
        let plain = execute(RelFlavor::Pig, &engine, &query, "t", "plain", true).unwrap();

        let engine = Engine::unbounded();
        load_store(&engine, "t", &store()).unwrap();
        let compressed = execute_with(
            RelFlavor::Pig,
            RelOptions { pig_compression: 0.5 },
            &engine,
            &query,
            "t",
            "comp",
            true,
        )
        .unwrap();
        assert_eq!(plain.solutions, compressed.solutions);
        // Star jobs scan the compressed copy: fewer bytes read overall.
        assert!(compressed.stats.total_read_bytes() < plain.stats.total_read_bytes());
    }

    #[test]
    fn projection_respected() {
        let r = run(
            RelFlavor::Hive,
            "SELECT ?g WHERE { ?g <label> ?l . ?g <xGO> ?go . ?go <gl> ?x . }",
        );
        let sols = r.solutions.unwrap();
        assert_eq!(sols.len(), 1); // only g1, collapsed over go values
        for b in sols.iter() {
            assert_eq!(b.len(), 1);
        }
    }
}
