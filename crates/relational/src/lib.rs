//! # relbase — relational-style MapReduce baselines (Pig-like / Hive-like)
//!
//! The comparison systems of the paper's evaluation, rebuilt on `mrsim`:
//! star subpatterns evaluated one-per-MR-cycle as joins of vertically
//! partitioned relations, materializing flat 3k-arity n-tuples, followed by
//! one MR cycle per inter-star join. Unbound-property patterns force a
//! union over all VP relations (a full scan) and multiply every bound
//! match with every unbound match — the redundancy whose cost NTGA's lazy
//! β-unnesting avoids.
//!
//! Entry point: [`execute`] with a [`RelFlavor`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attach;
pub mod grouping;
pub mod planner;
pub mod row_join;
pub mod star_join;

pub use grouping::{execute_grouping, Grouping};
pub use planner::{execute, execute_with, RelFlavor, RelOptions};
pub use row_join::{row_broadcast_join_job, row_join_job, row_join_job_ids};
pub use star_join::{star_join_job, star_join_job_ids, star_schema, PatternSet};
