//! Star-join groupings for the paper's Figure 3 case study.
//!
//! Three ways to group the joins of a two-star query:
//!
//! * **SJ-per-cycle** — one star-join per MR cycle, then the inter-star
//!   join: 3 cycles, 2 of which scan the full triple relation;
//! * **Sel-SJ-first** — evaluate one star first, then *combine* the second
//!   star-join with the inter-star join: 2 cycles (both full scans) for
//!   object-subject joins, 3 cycles (all full scans) for object-object
//!   joins;
//! * the NTGA grouping (all star joins in one grouping cycle) lives in
//!   `ntga-core` and is included in the case-study harness for comparison.

use mr_rdf::{check_query, PlanError, QueryRun, Row};
use mrsim::{Engine, Workflow};
use rdf_query::{JoinKind, Query, SolutionSet};

use crate::attach::{pattern_attach_job, star_attach_job};
use crate::row_join::row_join_job;
use crate::star_join::star_join_job;

/// The grouping under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grouping {
    /// One star-join per cycle, then the join (the Hive/Pig default).
    SjPerCycle,
    /// Most-selective star first, second star fused with the inter-star
    /// join.
    SelSjFirst,
}

impl Grouping {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Grouping::SjPerCycle => "SJ-per-cycle",
            Grouping::SelSjFirst => "Sel-SJ-first",
        }
    }
}

/// Execute a **two-star** query under the chosen grouping.
pub fn execute_grouping(
    grouping: Grouping,
    engine: &Engine,
    query: &Query,
    input: &str,
    label: &str,
    extract_solutions: bool,
) -> Result<QueryRun, PlanError> {
    query.validate()?;
    check_query(query)?;
    if query.stars.len() != 2 {
        return Err(PlanError::Internal("groupings are defined for two-star queries".into()));
    }
    let edges = query.join_edges();
    let edge = edges
        .first()
        .ok_or_else(|| PlanError::Internal("two-star query without a join edge".into()))?;

    let mut wf = Workflow::new(engine, format!("{}/{label}", grouping.label()));
    let fail = |wf: Workflow<'_>, e: &mrsim::MrError| {
        Ok(QueryRun { stats: wf.finish_failed(e), solutions: None })
    };

    let (final_file, final_schema) = match grouping {
        Grouping::SjPerCycle => {
            let (j0, s0) = star_join_job(
                format!("{label}.star0"),
                &query.stars[0],
                input,
                format!("{label}.star0"),
                false,
            );
            let (j1, s1) = star_join_job(
                format!("{label}.star1"),
                &query.stars[1],
                input,
                format!("{label}.star1"),
                false,
            );
            if let Err(e) = wf.run_job(j0) {
                return fail(wf, &e);
            }
            if let Err(e) = wf.run_job(j1) {
                return fail(wf, &e);
            }
            let out = format!("{label}.join");
            let (jj, sj) = row_join_job(
                format!("{label}.join"),
                (&format!("{label}.star0"), &s0),
                (&format!("{label}.star1"), &s1),
                &edge.var,
                &out,
            )?;
            if let Err(e) = wf.run_job(jj) {
                return fail(wf, &e);
            }
            (out, sj)
        }
        Grouping::SelSjFirst => match edge.kind {
            JoinKind::ObjectSubject | JoinKind::SubjectObject => {
                // Start from the star holding the join var as an object;
                // attach the subject-side star in the same cycle as the
                // join.
                let (first, second) = if edge.kind == JoinKind::ObjectSubject {
                    (edge.left, edge.right)
                } else {
                    (edge.right, edge.left)
                };
                let (j0, s0) = star_join_job(
                    format!("{label}.star{first}"),
                    &query.stars[first],
                    input,
                    format!("{label}.star{first}"),
                    false,
                );
                if let Err(e) = wf.run_job(j0) {
                    return fail(wf, &e);
                }
                let out = format!("{label}.attach");
                let (j1, s1) = star_attach_job(
                    format!("{label}.attach"),
                    (&format!("{label}.star{first}"), &s0),
                    &edge.var,
                    &query.stars[second],
                    input,
                    &out,
                )?;
                if let Err(e) = wf.run_job(j1) {
                    return fail(wf, &e);
                }
                (out, s1)
            }
            JoinKind::ObjectObject => {
                // Cycle 1: first star. Cycle 2: attach the second star's
                // join pattern by object. Cycle 3: attach the rest of the
                // second star by subject.
                let (first, second) = (edge.left, edge.right);
                let star2 = &query.stars[second];
                let join_pat_idx = star2
                    .patterns
                    .iter()
                    .position(|p| p.object.var() == Some(edge.var.as_str()))
                    .ok_or_else(|| PlanError::Internal("OO join var not in second star".into()))?;
                let (j0, s0) = star_join_job(
                    format!("{label}.star{first}"),
                    &query.stars[first],
                    input,
                    format!("{label}.star{first}"),
                    false,
                );
                if let Err(e) = wf.run_job(j0) {
                    return fail(wf, &e);
                }
                let (j1, s1) = pattern_attach_job(
                    format!("{label}.pattach"),
                    (&format!("{label}.star{first}"), &s0),
                    &edge.var,
                    &star2.patterns[join_pat_idx],
                    input,
                    format!("{label}.pattach"),
                )?;
                if let Err(e) = wf.run_job(j1) {
                    return fail(wf, &e);
                }
                let rest: Vec<_> = star2
                    .patterns
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != join_pat_idx)
                    .map(|(_, p)| p.clone())
                    .collect();
                if rest.is_empty() {
                    (format!("{label}.pattach"), s1)
                } else {
                    let rest_star = rdf_query::StarPattern::new(star2.subject_var.clone(), rest);
                    let out = format!("{label}.sattach");
                    let (j2, s2) = star_attach_job(
                        format!("{label}.sattach"),
                        (&format!("{label}.pattach"), &s1),
                        &star2.subject_var,
                        &rest_star,
                        input,
                        &out,
                    )?;
                    if let Err(e) = wf.run_job(j2) {
                        return fail(wf, &e);
                    }
                    (out, s2)
                }
            }
        },
    };

    let stats = wf.finish(&[&final_file]);
    let solutions = if extract_solutions {
        let rows: Vec<Row> = engine
            .read_records(&final_file)
            .map_err(|e| PlanError::Internal(format!("reading final output: {e}")))?;
        let mut set = SolutionSet::new();
        for row in &rows {
            let b = final_schema
                .binding(row)
                .ok_or_else(|| PlanError::Internal("inconsistent output row".into()))?;
            set.insert(b);
        }
        Some(match &query.projection {
            Some(vars) => set.project(vars),
            None => set,
        })
    } else {
        None
    };
    Ok(QueryRun { stats, solutions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_rdf::load_store;
    use rdf_model::{STriple, TripleStore};

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<p1>", "<producer>", "<m1>"),
            STriple::new("<p1>", "<label>", "\"prod1\""),
            STriple::new("<p2>", "<producer>", "<m1>"),
            STriple::new("<p2>", "<label>", "\"prod2\""),
            STriple::new("<m1>", "<label>", "\"maker\""),
            STriple::new("<m1>", "<country>", "<c1>"),
            // OO-join data: offers and reviews for the same product.
            STriple::new("<o1>", "<offerFor>", "<p1>"),
            STriple::new("<o1>", "<price>", "\"9\""),
            STriple::new("<r1>", "<reviewFor>", "<p1>"),
            STriple::new("<r1>", "<rating>", "\"5\""),
            STriple::new("<r2>", "<reviewFor>", "<p1>"),
            STriple::new("<r2>", "<rating>", "\"3\""),
        ])
    }

    const OS: &str = "SELECT * WHERE {
        ?p <producer> ?pr . ?p <label> ?l1 .
        ?pr <label> ?l2 . ?pr <country> ?c . }";
    const OO: &str = "SELECT * WHERE {
        ?o <offerFor> ?x . ?o <price> ?price .
        ?r <reviewFor> ?x . ?r <rating> ?rating . }";

    fn run(grouping: Grouping, q: &str) -> QueryRun {
        let engine = Engine::unbounded();
        load_store(&engine, "t", &store()).unwrap();
        let query = rdf_query::parse_query(q).unwrap();
        execute_grouping(grouping, &engine, &query, "t", "g", true).unwrap()
    }

    #[test]
    fn os_join_counts_match_figure3() {
        let q = rdf_query::parse_query(OS).unwrap();
        let gold = rdf_query::naive::evaluate(&q, &store());
        let sj = run(Grouping::SjPerCycle, OS);
        assert_eq!(sj.stats.mr_cycles, 3);
        assert_eq!(sj.stats.full_scans, 2);
        assert_eq!(sj.solutions.unwrap(), gold);
        let sel = run(Grouping::SelSjFirst, OS);
        assert_eq!(sel.stats.mr_cycles, 2);
        assert_eq!(sel.stats.full_scans, 2);
        assert_eq!(sel.solutions.unwrap(), gold);
    }

    #[test]
    fn oo_join_counts_match_figure3() {
        let q = rdf_query::parse_query(OO).unwrap();
        let gold = rdf_query::naive::evaluate(&q, &store());
        assert!(!gold.is_empty());
        let sj = run(Grouping::SjPerCycle, OO);
        assert_eq!(sj.stats.mr_cycles, 3);
        assert_eq!(sj.stats.full_scans, 2);
        assert_eq!(sj.solutions.unwrap(), gold);
        let sel = run(Grouping::SelSjFirst, OO);
        assert_eq!(sel.stats.mr_cycles, 3);
        assert_eq!(sel.stats.full_scans, 3);
        assert_eq!(sel.solutions.unwrap(), gold);
    }

    #[test]
    fn rejects_non_two_star_queries() {
        let engine = Engine::unbounded();
        let q = rdf_query::parse_query("SELECT * WHERE { ?a <p> ?x . }").unwrap();
        assert!(matches!(
            execute_grouping(Grouping::SelSjFirst, &engine, &q, "t", "g", false),
            Err(PlanError::Internal(_))
        ));
    }
}
