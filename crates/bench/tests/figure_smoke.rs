//! Smoke tests for the figure binaries: each must run to completion and
//! print the structural markers its paper exhibit is defined by. Keeps the
//! harness itself under `cargo test` coverage (the full outputs are
//! exercised manually / in EXPERIMENTS.md at release scale).

use std::process::Command;

fn run_fig(bin: &str) -> String {
    let out = Command::new(bin)
        .env("NTGA_SCALE", "small")
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).to_string()
}

#[test]
fn fig3_reports_grouping_counts() {
    let text = run_fig(env!("CARGO_BIN_EXE_fig3"));
    // The paper's table shape: every grouping appears, NTGA has 2MR/1FS.
    assert!(text.contains("SJ-per-cycle"));
    assert!(text.contains("Sel-SJ-first"));
    for q in ["Q1a", "Q1b", "Q2a", "Q2b", "Q3a", "Q3b"] {
        assert!(text.contains(q), "missing {q}");
    }
    assert!(text.contains("NTGA=2/1"), "NTGA must report 2 cycles / 1 full scan");
    assert!(text.contains("Sel-SJ-first=2/2"), "OS joins: 2 cycles / 2 scans");
    assert!(text.contains("Sel-SJ-first=3/3"), "OO joins: 3 cycles / 3 scans");
}

#[test]
fn fig9a_reproduces_failure_pattern() {
    let text = run_fig(env!("CARGO_BIN_EXE_fig9a"));
    assert!(text.contains("LazyUnnest completed all queries: true"));
    for expected_failure in ["B1/Pig", "B3/EagerUnnest", "B4/Hive"] {
        assert!(
            text.contains(expected_failure),
            "expected {expected_failure} in failed executions:\n{text}"
        );
    }
    assert!(!text.contains("B3/LazyUnnest"), "lazy must not fail B3");
}

#[test]
fn fig10_shows_flat_ntga_writes() {
    let text = run_fig(env!("CARGO_BIN_EXE_fig10"));
    for q in ["B1-3bnd", "B1-4bnd", "B1-5bnd", "B1-6bnd"] {
        assert!(text.contains(q), "missing {q}");
    }
    assert!(text.contains("write growth from 3 to 6 bound patterns"));
    // The paper's 80-86% less: accept anything above 60% at smoke scale.
    let reductions: Vec<f64> = text
        .lines()
        .filter(|l| l.contains("less than Hive ("))
        .filter_map(|l| l.split("writes ").nth(1)?.split('%').next()?.trim().parse().ok())
        .collect();
    assert_eq!(reductions.len(), 4, "{text}");
    for r in reductions {
        assert!(r > 60.0, "write reduction {r}% below the paper's regime");
    }
}

#[test]
fn fig11_shows_partial_unnest_dichotomy() {
    let text = run_fig(env!("CARGO_BIN_EXE_fig11"));
    assert!(text.contains("LazyUnnest(full)"));
    assert!(text.contains("LazyUnnest(phi_16)"));
    for q in ["B1", "B2", "B3"] {
        assert!(text.contains(q));
    }
}

#[test]
fn fig3_trace_and_json_flags_emit_valid_json() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("fig3-smoke-{}.trace.json", std::process::id()));
    let jsonl = trace.with_extension("jsonl");
    let rows_path = dir.join(format!("fig3-smoke-{}.rows.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .env("NTGA_SCALE", "small")
        .args(["--trace", trace.to_str().unwrap(), "--json", rows_path.to_str().unwrap()])
        .output()
        .expect("spawn fig3");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Chrome trace: one JSON document with "X" span events.
    let chrome = std::fs::read_to_string(&trace).unwrap();
    mrsim::trace::validate_json(&chrome).unwrap_or_else(|e| panic!("chrome trace invalid: {e}"));
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"ph\":\"X\""));

    // JSONL event log: every line parses; workflow lifecycles present.
    let log = std::fs::read_to_string(&jsonl).unwrap();
    assert!(log.lines().count() > 50, "expected a rich event log");
    for line in log.lines() {
        mrsim::trace::validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
    assert!(log.contains("\"event\":\"workflow_end\""));
    assert!(log.contains("\"event\":\"task_span\""));

    // Report rows: valid JSON carrying the headline counters.
    let rows = std::fs::read_to_string(&rows_path).unwrap();
    mrsim::trace::validate_json(&rows).unwrap_or_else(|e| panic!("rows invalid: {e}"));
    assert!(rows.contains("\"beta_expansion\""));
    assert!(rows.contains("\"sim_seconds\""));

    for p in [&trace, &jsonl, &rows_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn fig_binaries_reject_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .env("NTGA_SCALE", "small")
        .arg("--frobnicate")
        .output()
        .expect("spawn fig3");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}

#[test]
fn fig14_reports_redundancy_factor() {
    let text = run_fig(env!("CARGO_BIN_EXE_fig14"));
    assert!(text.contains("DBInfobox-like"));
    assert!(text.contains("BTC-09-like"));
    assert!(text.contains("redundancy factor"));
    for q in ["C1", "C2", "C3", "C4"] {
        assert!(text.contains(q));
    }
}
