//! Regression guard for the ID-native shuffle's wire-byte savings: the
//! benchmark workload (`benches/shuffle.rs`) shipped through varint
//! dictionary ids must put strictly fewer post-encoding bytes through the
//! shuffle than its lexical twin. Run with `--nocapture` to see the
//! numbers recorded in `BENCH_PR6.json`.

use mrsim::{
    combine_fn, map_fn, map_fn_ctx, reduce_fn, reduce_fn_ctx, Engine, InputBinding, JobSpec,
    TaskContext, TypedMapEmitter, TypedOutEmitter, VarId,
};
use rdf_model::atom::atom;
use rdf_model::Dictionary;
use std::sync::Arc;

const ROWS: usize = 30_000;
const FANOUT: usize = 4;
const PARTITIONS: usize = 8;

fn row(i: usize) -> (String, String) {
    let subject = format!("<http://example.org/resource/s{}>", i % 5_000);
    let object = match i % 3 {
        0 => format!("<http://example.org/vocab/class{}>", i % 97),
        1 => format!("\"literal value number {}\"", i % 977),
        _ => format!("<http://example.org/resource/s{}>", (i * 7) % 5_000),
    };
    (subject, object)
}

fn lexical_wire_bytes(with_combiner: bool) -> u64 {
    let engine = Engine::unbounded().with_workers(8);
    engine.put_records("in", (0..ROWS).map(row)).unwrap();
    let mapper =
        map_fn(move |(s, o): (String, String), out: &mut TypedMapEmitter<'_, String, String>| {
            for k in 0..FANOUT {
                let key = if k == 0 { o.clone() } else { format!("{o}#{k}") };
                out.emit(&key, &s);
            }
            Ok(())
        });
    let reducer = reduce_fn(
        |key: String, values: Vec<String>, out: &mut TypedOutEmitter<'_, (String, u64)>| {
            let total: u64 = values.iter().map(|v| v.len() as u64).sum();
            out.emit(&(key, total))
        },
    );
    let mut job = JobSpec::map_reduce(
        "lex",
        vec![InputBinding { file: "in".into(), mapper }],
        reducer,
        PARTITIONS,
        "out",
    );
    if with_combiner {
        job = job.with_combiner(combine_fn(
            |key: String, values: Vec<String>, out: &mut TypedMapEmitter<'_, String, String>| {
                let mut values = values;
                values.sort_unstable();
                values.dedup();
                for v in values {
                    out.emit(&key, &v);
                }
                Ok(())
            },
        ));
    }
    engine.run_job(&job).unwrap().shuffle_wire_bytes()
}

fn id_wire_bytes(with_combiner: bool) -> u64 {
    let engine = Engine::unbounded().with_workers(8);
    let mut dict = Dictionary::new();
    let rows: Vec<(VarId, VarId)> = (0..ROWS)
        .map(|i| {
            let (s, o) = row(i);
            (VarId(dict.encode(&atom(&s))), VarId(dict.encode(&atom(&o))))
        })
        .collect();
    engine.put_records("in", rows).unwrap();
    let engine = engine.with_dict(Arc::new(dict));
    let mapper = map_fn_ctx(
        move |_ctx: &TaskContext,
              (s, o): (VarId, VarId),
              out: &mut TypedMapEmitter<'_, (VarId, VarId), VarId>| {
            for k in 0..FANOUT {
                out.emit(&(o, VarId(k as u32)), &s);
            }
            Ok(())
        },
    );
    let reducer = reduce_fn_ctx(
        |ctx: &TaskContext,
         (o, k): (VarId, VarId),
         values: Vec<VarId>,
         out: &mut TypedOutEmitter<'_, (String, u64)>| {
            let key = ctx.resolve_atom(o.0)?;
            let mut total = 0u64;
            for v in &values {
                total += ctx.resolve_atom(v.0)?.len() as u64;
            }
            out.emit(&(format!("{key}#{}", k.0), total))
        },
    );
    let mut job = JobSpec::map_reduce(
        "ids",
        vec![InputBinding { file: "in".into(), mapper }],
        reducer,
        PARTITIONS,
        "out",
    );
    if with_combiner {
        job = job.with_combiner(combine_fn(
            |key: (VarId, VarId),
             values: Vec<VarId>,
             out: &mut TypedMapEmitter<'_, (VarId, VarId), VarId>| {
                let mut values = values;
                values.sort_unstable_by_key(|v| v.0);
                values.dedup();
                for v in values {
                    out.emit(&key, &v);
                }
                Ok(())
            },
        ));
    }
    engine.run_job(&job).unwrap().shuffle_wire_bytes()
}

#[test]
fn id_shuffle_ships_a_fraction_of_lexical_wire_bytes() {
    for with_combiner in [false, true] {
        let lex = lexical_wire_bytes(with_combiner);
        let ids = id_wire_bytes(with_combiner);
        println!(
            "combiner={with_combiner}: lexical {lex} B, id {ids} B, reduction {:.1}%",
            (1.0 - ids as f64 / lex as f64) * 100.0
        );
        // The tokens average ~35 bytes each (plus 4-byte length prefixes);
        // the varint encoding fits a pair in ≤ 8 bytes. Demand at least a
        // 5× reduction so codec regressions can't hide in noise.
        assert!(
            ids * 5 < lex,
            "id wire {ids} not <5x below lexical {lex} (combiner={with_combiner})"
        );
    }
}
