//! Estimator accuracy regression — the cardinality estimates that drive
//! cost-based plan selection must stay within a bounded q-error of the
//! truth on generated BSBM and Bio2RDF data.
//!
//! Truth comes from the naive reference evaluator: each star is evaluated
//! as a standalone query, giving the exact flat row count
//! (cross-product semantics, matching [`estimate::star_row_cardinality`])
//! and the exact distinct-subject count (matching
//! [`estimate::star_subject_cardinality`]). The q-error
//! `max(est/true, true/est)` is the standard symmetric metric: 1.0 is a
//! perfect estimate, and plan choice stays sane while it is bounded.
//!
//! The bounds are regression tripwires calibrated against the current
//! generators, not aspirations: if an estimator change pushes the worst
//! star past them, plan quality on the fig workloads is at risk (the
//! optimizer exhibit's margin is real but not unlimited).

use rdf_model::TripleStore;
use rdf_query::{estimate, naive, Query};

/// Worst tolerated per-star q-error for subject-cardinality estimates.
/// The containment assumption under-counts subjects of filtered unbound
/// stars (observed worst ≈ 4.2 on Bio2RDF A1).
const MAX_SUBJECT_Q_ERROR: f64 = 6.0;

/// Worst tolerated per-star q-error for flat-row estimates. Rows compound
/// per-pattern multiplicity errors, and the naive truth counts triples
/// playing multiple roles (one triple matching a bound pattern AND the
/// unbound pattern) which the independence estimator cannot see, so the
/// bound is much looser (observed worst ≈ 45 on BSBM B3).
const MAX_ROW_Q_ERROR: f64 = 64.0;

/// Worst tolerated per-job q-error of an executed cost-based plan (the
/// estimate the optimizer priced vs the records the job actually wrote).
const MAX_PLAN_Q_ERROR: f64 = 64.0;

fn q_error(est: f64, truth: f64) -> f64 {
    // Clamp both sides to one record: an estimator that says "none" when
    // the truth is "none" is perfect, and sub-record fractions are noise.
    let est = est.max(1.0);
    let truth = truth.max(1.0);
    (est / truth).max(truth / est)
}

fn bsbm() -> TripleStore {
    datagen::bsbm::generate(&datagen::BsbmConfig {
        products: 60,
        features: 40,
        max_features_per_product: 12,
        ..Default::default()
    })
}

fn bio2rdf() -> TripleStore {
    datagen::bio2rdf::generate(&datagen::Bio2RdfConfig {
        genes: 60,
        go_terms: 24,
        references: 60,
        max_xref: 16,
        max_xgo: 4,
        multi_fraction: 0.8,
        seed: 42,
    })
}

/// Every star of every workload query, checked against the naive truth.
fn check_workload(name: &str, store: &TripleStore, queries: Vec<ntga::testbed::TestQuery>) {
    let stats = store.stats();
    let mut worst_subj = 1.0f64;
    let mut worst_rows = 1.0f64;
    for tq in queries {
        for (i, star) in tq.query.stars.iter().enumerate() {
            let solo = Query::new(vec![star.clone()]);
            let truth = naive::evaluate(&solo, store);
            let true_rows = truth.len() as f64;
            let true_subjects = truth.project(std::slice::from_ref(&star.subject_var)).len() as f64;

            let est_subjects = estimate::star_subject_cardinality(star, &stats);
            let est_rows = estimate::star_row_cardinality(star, &stats);

            let qe_subj = q_error(est_subjects, true_subjects);
            let qe_rows = q_error(est_rows, true_rows);
            assert!(
                qe_subj <= MAX_SUBJECT_Q_ERROR,
                "{name}/{}/star{i}: subject estimate {est_subjects:.1} vs true \
                 {true_subjects} — q-error {qe_subj:.2} exceeds {MAX_SUBJECT_Q_ERROR}",
                tq.id,
            );
            assert!(
                qe_rows <= MAX_ROW_Q_ERROR,
                "{name}/{}/star{i}: row estimate {est_rows:.1} vs true {true_rows} — \
                 q-error {qe_rows:.2} exceeds {MAX_ROW_Q_ERROR}",
                tq.id,
            );
            // Nested pairs sum per-pattern multiplicities where flat rows
            // multiply them; with every term clamped to ≥ 1 the sum is at
            // most n times the product, so pairs ≤ n·rows always — the
            // shape lazy pricing rests on.
            let est_pairs = estimate::star_pair_cardinality(star, &stats);
            let bound = est_rows * star.patterns.len() as f64;
            assert!(
                est_pairs <= bound + 1e-9,
                "{name}/{}/star{i}: pair estimate {est_pairs:.1} above {bound:.1} \
                 (rows {est_rows:.1} × {} patterns)",
                tq.id,
                star.patterns.len(),
            );
            worst_subj = worst_subj.max(qe_subj);
            worst_rows = worst_rows.max(qe_rows);
        }
    }
    println!("{name}: worst subject q-error {worst_subj:.2}, worst row q-error {worst_rows:.2}");
}

#[test]
fn star_estimates_track_naive_truth_on_bsbm() {
    let store = bsbm();
    let mut queries = ntga::testbed::case_study();
    queries.extend(ntga::testbed::b_series());
    check_workload("bsbm", &store, queries);
}

#[test]
fn star_estimates_track_naive_truth_on_bio2rdf() {
    let store = bio2rdf();
    check_workload("bio2rdf", &store, ntga::testbed::a_series());
}

/// End-to-end: executing the cost-based plan must report a bounded
/// per-job q-error (estimate the optimizer priced vs records the job
/// actually produced) and return exactly the naive evaluator's answers.
#[test]
fn executed_plans_report_bounded_q_error() {
    for (name, store, queries) in [
        ("bsbm", bsbm(), ntga::testbed::b_series()),
        ("bio2rdf", bio2rdf(), ntga::testbed::a_series()),
    ] {
        let stats = store.stats();
        let cluster = ntga::ClusterConfig {
            cost: mrsim::CostModel::scaled_to(store.text_bytes()),
            ..Default::default()
        };
        for tq in queries {
            let engine = cluster.engine_with(&store);
            let run = ntga_core::execute_cost_based(
                ntga_core::DataPlane::Lexical,
                &engine,
                &tq.query,
                mr_rdf::TRIPLES_FILE,
                &format!("qerr-{name}-{}", tq.id),
                true,
                &stats,
            )
            .unwrap_or_else(|e| panic!("{name}/{}: planning failed: {e}", tq.id));
            assert!(run.succeeded(), "{name}/{}: run failed", tq.id);
            assert_eq!(
                run.solutions.as_ref(),
                Some(&naive::evaluate(&tq.query, &store)),
                "{name}/{}: cost-based plan must return the naive answers",
                tq.id,
            );
            let qe = run
                .stats
                .max_q_error()
                .unwrap_or_else(|| panic!("{name}/{}: cost-based run must carry q-error", tq.id));
            assert!(
                qe <= MAX_PLAN_Q_ERROR,
                "{name}/{}: executed-plan q-error {qe:.2} exceeds {MAX_PLAN_Q_ERROR}",
                tq.id,
            );
        }
    }
}
