//! Figure 13 — Bio2RDF-like real-world unbound-property queries A1–A6
//! (80-node cluster in the paper).
//!
//! Paper shape: on A1 the relational result is ~63 K tuples versus ~7 K
//! eager triplegroups and ~3 K lazy ones; on A3 Pig/Hive materialize
//! 26 GB of star-join intermediates versus 1.3 GB for NTGA (32 % faster
//! than Hive, lazy another 18 % over eager); on A4 Pig fails, Hive writes
//! 152 GB versus 1.8 GB (eager) / 0.6 GB (lazy), 48–53 % faster; A5/A6
//! save a full-table scan (22 % / 48 % gains).

use ntga_bench::{report, run_panel, BenchOpts, Runner, Scale};

fn main() {
    let opts = BenchOpts::from_env();
    let scale = Scale::from_env();
    let store = datagen::bio2rdf::generate(&datagen::Bio2RdfConfig {
        genes: scale.entities(150),
        go_terms: scale.entities(60),
        references: scale.entities(150),
        max_xref: 64,
        max_xgo: 8,
        multi_fraction: 0.8,
        seed: 42,
    });
    let stats = store.stats();
    println!(
        "dataset: Bio2RDF-like, {} triples ({}); max xRef multiplicity {}",
        store.len(),
        report::human_bytes(store.text_bytes()),
        stats.per_property[&rdf_model::atom::atom(datagen::vocab::bio2rdf::X_REF)].max_multiplicity,
    );
    // 80-node cluster with enough disk for the lazily-unnested plans but
    // not for runaway relational intermediates.
    let mut cluster = ntga::ClusterConfig { nodes: 80, replication: 2, ..Default::default() }
        .tight_disk(&store, 12.7);
    cluster.cost = mrsim::CostModel::scaled_to(store.text_bytes());
    let cluster = opts.cluster(cluster);
    let queries: Vec<(String, rdf_query::Query)> =
        ntga::testbed::a_series().into_iter().map(|t| (t.id, t.query)).collect();
    let rows = run_panel(&cluster, &store, &queries, &opts.panel_or(Runner::paper_panel(1024)));
    report::print_table(
        "Figure 13: Bio2RDF A1-A6",
        "paper shape: NTGA writes orders of magnitude less; Pig fails A4; lazy < eager < Hive/Pig everywhere",
        &rows,
    );
    if opts.strategy.is_none() {
        for q in ["A1", "A3", "A4"] {
            let hive = rows.iter().find(|r| r.query == q && r.approach == "Hive").unwrap();
            let eager = rows.iter().find(|r| r.query == q && r.approach == "EagerUnnest").unwrap();
            let lazy = rows.iter().find(|r| r.query == q && r.approach.contains("Lazy")).unwrap();
            println!(
                "{q}: writes Hive={} Eager={} Lazy={}  (lazy {:.0}% less than Hive)",
                if hive.ok { report::human_bytes(hive.write_bytes) } else { "FAILED".into() },
                if eager.ok { report::human_bytes(eager.write_bytes) } else { "FAILED".into() },
                report::human_bytes(lazy.write_bytes),
                report::pct_less(hive.write_bytes, lazy.write_bytes),
            );
        }
    }
    opts.write_profile(&cluster, &store, &queries);
    opts.finish(&rows);
}
