//! Optimizer exhibit — cost-based plan selection versus every hand-picked
//! strategy, on every fig workload, on both data planes.
//!
//! Not a figure of the paper: the acceptance exhibit for `--strategy
//! auto-cost`. For each testbed workload (case study, B-series, B1 with
//! varying bound arity, A-series, C-series) and each query, it runs all
//! hand-picked strategies plus the cost-based optimizer on the lexical
//! and ID-native data planes, and asserts in-process that
//!
//! * the cost-based plan returns the same solutions as the hand-picked
//!   strategies;
//! * its simulated time matches or beats the best hand-picked strategy on
//!   every (query, plane) cell;
//! * a broadcast-join plan produces bit-identical output across worker
//!   counts {1, 4, 8} (rows with query id `bcast/w{N}`).
//!
//! Row query ids carry the plane (`B3[lex]`, `B3[id]`); the `CostBased`
//! rows carry `max_q_error` — the worst per-job cardinality estimation
//! error behind the plan choice.

use ntga_bench::{report, BenchOpts, Scale};
use ntga_core::{DataPlane, Strategy};
use rdf_model::TripleStore;
use rdf_query::SolutionSet;
use std::sync::Arc;

const HAND_PICKED: [Strategy; 5] = [
    Strategy::Eager,
    Strategy::LazyFull,
    Strategy::LazyPartial(16),
    Strategy::LazyPartial(1024),
    Strategy::Auto(1024),
];

/// Fresh engine for one run: the lexical relation is always loaded; the
/// ID plane additionally loads the dictionary-encoded relation and
/// attaches the dictionary snapshot.
fn engine_for(
    cluster: &ntga::ClusterConfig,
    store: &TripleStore,
    plane: DataPlane,
) -> (mrsim::Engine, &'static str) {
    let engine = cluster.engine_with(store);
    match plane {
        DataPlane::Lexical => (engine, mr_rdf::TRIPLES_FILE),
        DataPlane::Ids => {
            let mut dict = rdf_model::Dictionary::default();
            mr_rdf::load_store_ids(&engine, mr_rdf::ID_TRIPLES_FILE, store, &mut dict)
                .expect("id relation must fit");
            (engine.with_dict(Arc::new(dict)), mr_rdf::ID_TRIPLES_FILE)
        }
    }
}

fn main() {
    let opts = BenchOpts::from_env();
    if opts.strategy.is_some() {
        eprintln!("note: fig_optimizer compares all strategies by design; --strategy is ignored");
    }
    let scale = Scale::from_env();

    let bsbm = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: scale.entities(60),
        features: 40,
        max_features_per_product: 12,
        ..Default::default()
    });
    let bio = datagen::bio2rdf::generate(&datagen::Bio2RdfConfig {
        genes: scale.entities(60),
        go_terms: scale.entities(24),
        references: scale.entities(60),
        max_xref: 16,
        max_xgo: 4,
        multi_fraction: 0.8,
        seed: 42,
    });
    let dbp =
        datagen::dbpedia::generate(&datagen::DbpediaConfig::with_entities(scale.entities(100)));

    let b1_varying: Vec<ntga::testbed::TestQuery> =
        (3..=6).map(ntga::testbed::b1_varying_bound).collect();
    let workloads: Vec<(&str, &TripleStore, Vec<ntga::testbed::TestQuery>)> = vec![
        ("case study (BSBM)", &bsbm, ntga::testbed::case_study()),
        ("B-series (BSBM)", &bsbm, ntga::testbed::b_series()),
        ("B1 varying bound (BSBM)", &bsbm, b1_varying),
        ("A-series (Bio2RDF)", &bio, ntga::testbed::a_series()),
        ("C-series (DBpedia)", &dbp, ntga::testbed::c_series()),
    ];

    let mut rows = Vec::new();
    let mut cells = 0usize;
    let mut wins = 0usize;
    let mut worst_q_error = 1.0f64;
    for (wl, store, queries) in workloads {
        let stats = store.stats();
        let cluster = opts.cluster(ntga::ClusterConfig {
            cost: mrsim::CostModel::scaled_to(store.text_bytes()),
            ..Default::default()
        });
        println!(
            "\nworkload: {wl} — {} triples ({}), {} queries × 2 planes",
            store.len(),
            report::human_bytes(store.text_bytes()),
            queries.len(),
        );
        let mut wl_rows = Vec::new();
        for tq in &queries {
            for (plane, tag) in [(DataPlane::Lexical, "lex"), (DataPlane::Ids, "id")] {
                let qid = format!("{}[{tag}]", tq.id);
                let mut best: Option<(f64, String)> = None;
                let mut reference: Option<SolutionSet> = None;
                for strategy in HAND_PICKED {
                    let (engine, input) = engine_for(&cluster, store, plane);
                    // Extract solutions once per cell (they agree across
                    // strategies; the planner tests prove that).
                    let extract = strategy == Strategy::Auto(1024);
                    let label = format!("{qid}-{}", strategy.label());
                    let run = ntga_core::execute_on(
                        plane, strategy, &engine, &tq.query, input, &label, extract,
                    )
                    .unwrap_or_else(|e| panic!("{label}: planning failed: {e}"));
                    assert!(run.succeeded(), "{label}: hand-picked run failed");
                    if let Some(s) = run.solutions.clone() {
                        reference = Some(s);
                    }
                    let t = run.stats.sim_seconds;
                    if best.as_ref().is_none_or(|(b, _)| t < *b) {
                        best = Some((t, strategy.label()));
                    }
                    wl_rows.push(report::Row::from_run(&qid, &strategy.label(), &run));
                }
                let (best_t, best_label) = best.expect("hand-picked panel is non-empty");

                let (engine, input) = engine_for(&cluster, store, plane);
                let label = format!("{qid}-CostBased");
                let run = ntga_core::execute_cost_based(
                    plane, &engine, &tq.query, input, &label, true, &stats,
                )
                .unwrap_or_else(|e| panic!("{label}: planning failed: {e}"));
                assert!(run.succeeded(), "{label}: cost-based run failed");
                assert_eq!(
                    run.solutions.as_ref(),
                    reference.as_ref(),
                    "{label}: cost-based plan must return the hand-picked answers"
                );
                assert!(
                    run.stats.sim_seconds <= best_t + 1e-9,
                    "{label}: cost plan took {:.3}s but {best_label} took {best_t:.3}s",
                    run.stats.sim_seconds,
                );
                cells += 1;
                if run.stats.sim_seconds < best_t - 1e-9 {
                    wins += 1;
                }
                if let Some(q) = run.stats.max_q_error() {
                    worst_q_error = worst_q_error.max(q);
                }
                wl_rows.push(report::Row::from_run(&qid, "CostBased", &run));
            }
        }
        report::print_table(
            &format!("Optimizer exhibit: {wl}"),
            "CostBased must match or beat the best hand-picked strategy in every cell",
            &wl_rows,
        );
        rows.extend(wl_rows);
    }
    println!(
        "cost-based plan matched-or-beat the best hand-picked strategy in {cells}/{cells} cells \
         (strictly faster in {wins}); worst cardinality q-error {worst_q_error:.2}"
    );

    rows.extend(broadcast_identity(&opts, &bsbm));
    let queries: Vec<(String, rdf_query::Query)> =
        ntga::testbed::b_series().into_iter().map(|t| (t.id, t.query)).collect();
    let cluster = opts.cluster(ntga::ClusterConfig {
        cost: mrsim::CostModel::scaled_to(bsbm.text_bytes()),
        ..Default::default()
    });
    opts.write_profile(&cluster, &bsbm, &queries);
    opts.finish(&rows);
}

/// Broadcast-join determinism: plan once with an unbounded broadcast
/// budget (so the optimizer picks the map-side join), execute the same
/// plan at workers {1, 4, 8}, and require bit-identical output.
fn broadcast_identity(opts: &BenchOpts, store: &TripleStore) -> Vec<report::Row> {
    let tq = ntga::testbed::b_series()
        .into_iter()
        .find(|t| t.id == "B2")
        .expect("B2 is part of the B series");
    let stats = store.stats();
    let cost = mrsim::CostModel::scaled_to(store.text_bytes());
    let config =
        ntga_core::OptimizerConfig { broadcast_budget_bytes: u64::MAX, ..Default::default() };
    let plan = ntga_core::optimize(&tq.query, &stats, &cost, &config).expect("plan B2");
    assert!(
        plan.broadcast_cycles() > 0,
        "with an unbounded budget the optimizer must broadcast B2's selective side"
    );

    let mut rows = Vec::new();
    let mut baseline: Option<(u64, u64)> = None;
    for workers in [1usize, 4, 8] {
        let cluster =
            opts.cluster(ntga::ClusterConfig { cost: cost.clone(), ..Default::default() });
        let engine =
            cluster.with_workers(workers).engine_with(store).with_broadcast_budget(u64::MAX);
        let label = format!("bcast-w{workers}");
        let run =
            ntga_core::execute_plan(&plan, &engine, &tq.query, mr_rdf::TRIPLES_FILE, &label, false)
                .unwrap_or_else(|e| panic!("{label}: planning failed: {e}"));
        assert!(run.succeeded(), "{label}: broadcast run failed");
        assert!(
            run.stats.jobs.iter().any(|j| j.reduce_tasks == 0),
            "{label}: the broadcast cycle must run map-only"
        );
        let row = report::Row::from_run(&format!("bcast/w{workers}"), "CostBased", &run);
        let key = (row.result_records, row.result_bytes);
        match baseline {
            None => baseline = Some(key),
            Some(expected) => assert_eq!(
                key, expected,
                "bcast/w{workers}: broadcast output must be bit-identical across worker counts"
            ),
        }
        rows.push(row);
    }
    let (records, bytes) = baseline.unwrap();
    println!(
        "broadcast join: {} cells returned {records} records / {} at workers {{1,4,8}} — \
         bit-identical",
        rows.len(),
        report::human_bytes(bytes),
    );
    rows
}
