//! Figure 3 — case study: groupings of star-joins on bound-property
//! two-star queries (BSBM).
//!
//! Paper's table: SJ-per-cycle needs 3 MR cycles (2 full scans);
//! Sel-SJ-first needs 2 cycles / 2 full scans for object-subject joins
//! (Q1*, Q2*) but 3 cycles / 3 full scans for object-object joins (Q3*);
//! NTGA needs 2 cycles with a single full scan and wins everywhere.

use ntga_bench::{report, run_panel, BenchOpts, Runner, Scale};
use ntga_core::Strategy;
use relbase::Grouping;

fn main() {
    let opts = BenchOpts::from_env();
    let scale = Scale::from_env();
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(scale.entities(120)));
    println!(
        "dataset: BSBM-like, {} triples ({})",
        store.len(),
        report::human_bytes(store.text_bytes())
    );
    let queries: Vec<(String, rdf_query::Query)> =
        ntga::testbed::case_study().into_iter().map(|t| (t.id, t.query)).collect();
    let runners = opts.panel_or(vec![
        Runner::Grouping(Grouping::SjPerCycle),
        Runner::Grouping(Grouping::SelSjFirst),
        Runner::Ntga(Strategy::Auto(1024)),
    ]);
    let cluster = opts.cluster(ntga::ClusterConfig {
        cost: mrsim::CostModel::scaled_to(store.text_bytes()),
        ..Default::default()
    });
    let rows = run_panel(&cluster, &store, &queries, &runners);
    report::print_table(
        "Figure 3: groupings of star-joins (MR = cycles, FS = full scans)",
        "paper shape: SJ-per-cycle 3MR/2FS; Sel-SJ-first 2MR/2FS (OS: Q1,Q2) or 3MR/3FS (OO: Q3); NTGA 2MR/1FS",
        &rows,
    );

    // Shape assertions printed for EXPERIMENTS.md.
    for &q in if opts.strategy.is_none() { ["Q1a", "Q2a", "Q3a"].as_slice() } else { &[] } {
        let get = |a: &str| rows.iter().find(|r| r.query == q && r.approach == a).unwrap();
        let sj = get("SJ-per-cycle");
        let sel = get("Sel-SJ-first");
        let ntga = rows.iter().find(|r| r.query == q && r.approach.contains("Lazy")).unwrap();
        println!(
            "{q}: MR/FS  SJ-per-cycle={}/{}  Sel-SJ-first={}/{}  NTGA={}/{}   NTGA reads {:.0}% less than SJ-per-cycle",
            sj.mr_cycles, sj.full_scans, sel.mr_cycles, sel.full_scans,
            ntga.mr_cycles, ntga.full_scans,
            report::pct_less(sj.read_bytes, ntga.read_bytes)
        );
    }
    opts.write_profile(&cluster, &store, &queries);
    opts.finish(&rows);
}
