//! Figure 11 — lazy *full* versus lazy *partial* β-unnesting, measured on
//! the last MR cycle (the join on the unbound-property pattern).
//!
//! Paper shape: for unbound-object patterns (B1) partial unnesting shrinks
//! the shuffle and wins; for partially-bound-object patterns (B2, B3) the
//! candidate sets are already small and a full unnest is sufficient —
//! partial adds reduce-side overhead for nothing. This is the ablation
//! behind the paper's Auto policy.

use ntga_bench::{report, BenchOpts, Runner, Scale};
use ntga_core::Strategy;

fn main() {
    let opts = BenchOpts::from_env();
    if opts.strategy.is_some() {
        eprintln!("note: fig11 is a fixed full-vs-partial ablation; --strategy is ignored");
    }
    let scale = Scale::from_env();
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: scale.entities(150),
        features: 120,
        max_features_per_product: 48,
        multi_feature_fraction: 0.97,
        ..Default::default()
    });
    let cluster = opts.cluster(ntga::ClusterConfig {
        cost: mrsim::CostModel::scaled_to(store.text_bytes()),
        ..Default::default()
    });
    println!(
        "dataset: BSBM-2M analog, {} triples ({})",
        store.len(),
        report::human_bytes(store.text_bytes()),
    );
    let queries: Vec<(String, rdf_query::Query)> = ntga::testbed::b_series()
        .into_iter()
        .filter(|t| ["B1", "B2", "B3"].contains(&t.id.as_str()))
        .map(|t| (t.id, t.query))
        .collect();

    println!(
        "\n=== Figure 11: last MR cycle (join on unbound pattern), lazy full vs partial ===\n\
         paper shape: partial unnest wins for unbound objects (B1); full is sufficient for partially-bound objects (B2, B3)\n"
    );
    println!(
        "{:<6} {:<22} {:>12} {:>12} {:>12} {:>6} {:>10} {:>12} {:>12}",
        "query",
        "strategy",
        "map-out",
        "shuffle",
        "max-part",
        "skew",
        "last(s)",
        "nested.B",
        "expanded.B"
    );
    let mut rows = Vec::new();
    for (qid, query) in &queries {
        for (label, strategy) in [
            ("LazyUnnest(full)", Strategy::LazyFull),
            ("LazyUnnest(phi_16)", Strategy::LazyPartial(16)),
            ("LazyUnnest(phi_64)", Strategy::LazyPartial(64)),
            ("LazyUnnest(phi_1K)", Strategy::LazyPartial(1024)),
        ] {
            let runner = Runner::Ntga(strategy);
            let run = runner.run(&cluster, &store, query, &format!("{qid}-{label}"));
            let last = run.stats.jobs.last().expect("join cycle");
            println!(
                "{:<6} {:<22} {:>12} {:>12} {:>12} {:>6.2} {:>10.1} {:>12} {:>12}",
                qid,
                label,
                report::human_bytes(last.map_output_bytes),
                report::human_bytes(last.shuffle_bytes()),
                report::human_bytes(last.max_partition_shuffle_bytes()),
                last.reduce_skew(),
                last.sim_seconds,
                report::human_bytes(last.ops.get(ntga_core::physical::op::PARTIAL_NESTED_BYTES)),
                report::human_bytes(last.ops.get(ntga_core::physical::op::PARTIAL_EXPANDED_BYTES)),
            );
            rows.push(report::Row::from_run(qid, label, &run));
        }
        println!("{}", "-".repeat(110));
    }
    opts.write_profile(&cluster, &store, &queries);
    opts.finish(&rows);
}
