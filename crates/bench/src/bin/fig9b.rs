//! Figure 9(b) — BSBM-2M analog, replication factor 1 (ample disk):
//! execution times for B0–B4.
//!
//! Paper shape: Hive/Pig still fail B3 and B4; on B0 Hive ≈ NTGA > Pig
//! (scan sharing); on B1 lazy partial unnesting is ~21 % faster than
//! eager and ~26-27 % faster than Pig/Hive; B2's object filter makes all
//! approaches behave like B0; on B3/B4 LazyUnnest massively reduces
//! writes (80 %+ less than eager on B3, 61 % less on B4).

use ntga_bench::{report, run_panel, BenchOpts, Runner, Scale};

fn main() {
    let opts = BenchOpts::from_env();
    let scale = Scale::from_env();
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: scale.entities(150),
        features: 40,
        max_features_per_product: 16,
        ..Default::default()
    });
    // Replication 1: disk is still the paper's 1.2 TB total, which the
    // relational B3/B4 intermediate explosions exceed anyway. 25×
    // headroom: enough for everything except those explosions.
    let mut cluster =
        ntga::ClusterConfig { replication: 1, ..Default::default() }.tight_disk(&store, 25.0);
    cluster.cost = mrsim::CostModel::scaled_to(store.text_bytes());
    let cluster = opts.cluster(cluster);
    println!(
        "dataset: BSBM-2M analog, {} triples ({}); replication 1",
        store.len(),
        report::human_bytes(store.text_bytes()),
    );
    let queries: Vec<(String, rdf_query::Query)> = ntga::testbed::b_series()
        .into_iter()
        .filter(|t| ["B0", "B1", "B2", "B3", "B4"].contains(&t.id.as_str()))
        .map(|t| (t.id, t.query))
        .collect();
    let rows = run_panel(&cluster, &store, &queries, &opts.panel_or(Runner::paper_panel(1024)));
    report::print_table(
        "Figure 9(b): BSBM-2M, replication 1 — execution times",
        "paper shape: NTGA fastest everywhere; Pig/Hive still fail B3/B4; lazy beats eager on B1/B3/B4",
        &rows,
    );
    if opts.strategy.is_none() {
        for q in ["B1", "B3", "B4"] {
            let lazy = rows.iter().find(|r| r.query == q && r.approach.contains("Lazy")).unwrap();
            let eager = rows.iter().find(|r| r.query == q && r.approach == "EagerUnnest").unwrap();
            if eager.ok && lazy.ok {
                println!(
                    "{q}: LazyUnnest writes {:.0}% less HDFS than EagerUnnest (paper: 80% on B3, 61% on B4), sim time {:.0}s vs {:.0}s",
                    report::pct_less(eager.write_bytes, lazy.write_bytes),
                    lazy.sim_seconds,
                    eager.sim_seconds,
                );
            }
        }
    }
    opts.write_profile(&cluster, &store, &queries);
    opts.finish(&rows);
}
