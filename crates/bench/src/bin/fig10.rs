//! Figure 10 — total HDFS writes with a growing number of bound-property
//! patterns (B1-3bnd … B1-6bnd).
//!
//! Paper shape: relational writes grow with bound arity (the flat n-tuple
//! repeats the whole bound component per unbound match — "10 combinations
//! of the bound component"); NTGA's reduce output stays almost constant;
//! LazyUnnest writes ~80–86 % less than Hive/Pig.

use ntga_bench::{report, run_panel, BenchOpts, Runner, Scale};

fn main() {
    let opts = BenchOpts::from_env();
    let scale = Scale::from_env();
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: scale.entities(150),
        features: 40,
        max_features_per_product: 16,
        ..Default::default()
    });
    // Unbounded disk: measure every approach to completion.
    let cluster = opts.cluster(ntga::ClusterConfig {
        cost: mrsim::CostModel::scaled_to(store.text_bytes()),
        ..Default::default()
    });
    println!(
        "dataset: BSBM-2M analog, {} triples ({})",
        store.len(),
        report::human_bytes(store.text_bytes()),
    );
    let queries: Vec<(String, rdf_query::Query)> = (3..=6)
        .map(|k| {
            let t = ntga::testbed::b1_varying_bound(k);
            (t.id, t.query)
        })
        .collect();
    let rows = run_panel(&cluster, &store, &queries, &opts.panel_or(Runner::paper_panel(1024)));
    report::print_table(
        "Figure 10: total HDFS writes, varying bound-property count",
        "paper shape: LazyUnnest 80-86% less writes than Hive/Pig; NTGA writes ~flat in bound arity",
        &rows,
    );
    if opts.strategy.is_none() {
        let mut lazy_writes = Vec::new();
        for k in 3..=6 {
            let q = format!("B1-{k}bnd");
            let hive = rows.iter().find(|r| r.query == q && r.approach == "Hive").unwrap();
            let lazy = rows.iter().find(|r| r.query == q && r.approach.contains("Lazy")).unwrap();
            lazy_writes.push(lazy.write_bytes);
            println!(
                "{q}: LazyUnnest writes {:.0}% less than Hive ({} vs {})",
                report::pct_less(hive.write_bytes, lazy.write_bytes),
                report::human_bytes(lazy.write_bytes),
                report::human_bytes(hive.write_bytes),
            );
        }
        let growth = *lazy_writes.last().unwrap() as f64 / lazy_writes[0] as f64;
        println!(
            "LazyUnnest write growth from 3 to 6 bound patterns: {growth:.2}x (paper: ~constant)"
        );
    }
    opts.write_profile(&cluster, &store, &queries);
    opts.finish(&rows);
}
