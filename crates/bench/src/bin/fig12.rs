//! Figure 12 — BSBM-1M analog, replication 2: execution times for B0–B6.
//!
//! Paper shape: NTGA completes all queries with up to 80 % less HDFS
//! writes after the star-join phase (B1); Pig/Hive fail B3 and B4 (and
//! the more complex B5/B6); on B2 LazyUnnest is ~75 % faster than
//! Pig/Hive; LazyUnnest improves on EagerUnnest by ~54 % (B3) and
//! ~65 % (B4).

use ntga_bench::{report, run_panel, BenchOpts, Runner, Scale};

fn main() {
    let opts = BenchOpts::from_env();
    let scale = Scale::from_env();
    // Half the fig9 scale: the paper's BSBM-1M (85 GB) vs BSBM-2M (172 GB).
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: scale.entities(75),
        features: 40,
        max_features_per_product: 16,
        ..Default::default()
    });
    let mut cluster =
        ntga::ClusterConfig { replication: 2, ..Default::default() }.tight_disk(&store, 20.0);
    cluster.cost = mrsim::CostModel::scaled_to(store.text_bytes());
    let cluster = opts.cluster(cluster);
    println!(
        "dataset: BSBM-1M analog, {} triples ({}); replication 2, disk budget {}",
        store.len(),
        report::human_bytes(store.text_bytes()),
        report::human_bytes(cluster.disk_per_node * u64::from(cluster.nodes)),
    );
    let queries: Vec<(String, rdf_query::Query)> =
        ntga::testbed::b_series().into_iter().map(|t| (t.id, t.query)).collect();
    let rows = run_panel(&cluster, &store, &queries, &opts.panel_or(Runner::paper_panel(1024)));
    report::print_table(
        "Figure 12: BSBM-1M analog, replication 2 — B0-B6",
        "paper shape: NTGA completes everything; Pig/Hive fail B3/B4 and the complex B5/B6; lazy beats eager",
        &rows,
    );
    if opts.strategy.is_none() {
        let b1_hive = rows.iter().find(|r| r.query == "B1" && r.approach == "Hive").unwrap();
        let b1_lazy = rows.iter().find(|r| r.query == "B1" && r.approach.contains("Lazy")).unwrap();
        if b1_hive.ok {
            println!(
                "B1: LazyUnnest intermediate writes {:.0}% less than Hive (paper: ~80%)",
                report::pct_less(
                    b1_hive.intermediate_write_bytes,
                    b1_lazy.intermediate_write_bytes
                )
            );
        }
    }
    opts.write_profile(&cluster, &store, &queries);
    opts.finish(&rows);
}
