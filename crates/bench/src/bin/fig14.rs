//! Figure 14 — DBpedia-Infobox-like (5-node cluster) and BTC-09-like
//! (40-node cluster) exploration queries C1–C4.
//!
//! Paper shape: on the small DBInfobox data the simple C1/C2 show little
//! NTGA benefit (and Pig beats Hive thanks to its doubled mappers /
//! overlapped startup); C3 gains 20–22 % over Hive and ~50 % over Pig
//! with ~80 % fewer writes; C4 (unbound in both stars, redundancy factor
//! ≈ 0.89–0.98) gains ~50 % over both. On BTC the scan-sharing saves 50 %
//! of reads and lazy unnesting writes 98 % less on C4.

use ntga_bench::{report, run_panel, BenchOpts, Runner, Scale};
use ntga_core::metrics;

fn run_dataset(
    opts: &BenchOpts,
    name: &str,
    store: &rdf_model::TripleStore,
    nodes: u32,
    note: &str,
) -> Vec<report::Row> {
    let stats = store.stats();
    println!(
        "\ndataset: {name}, {} triples ({}); {:.0}% of {} properties multi-valued",
        store.len(),
        report::human_bytes(store.text_bytes()),
        stats.multi_valued_fraction * 100.0,
        stats.distinct_properties,
    );
    let mut cluster = ntga::ClusterConfig { nodes, replication: 2, ..Default::default() };
    cluster.cost = mrsim::CostModel::scaled_to(store.text_bytes());
    let cluster = opts.cluster(cluster);
    let queries: Vec<(String, rdf_query::Query)> =
        ntga::testbed::c_series().into_iter().map(|t| (t.id, t.query)).collect();
    let rows = run_panel(&cluster, store, &queries, &opts.panel_or(Runner::paper_panel(1024)));
    report::print_table(&format!("Figure 14 ({name}): C1-C4"), note, &rows);
    if opts.strategy.is_none() {
        for q in ["C3", "C4"] {
            let hive = rows.iter().find(|r| r.query == q && r.approach == "Hive").unwrap();
            let pig = rows.iter().find(|r| r.query == q && r.approach == "Pig").unwrap();
            let lazy = rows.iter().find(|r| r.query == q && r.approach.contains("Lazy")).unwrap();
            println!(
                "{q}: lazy writes {:.0}% less than Hive; sim time {:.0}s vs Hive {:.0}s / Pig {:.0}s",
                report::pct_less(hive.write_bytes, lazy.write_bytes),
                lazy.sim_seconds,
                hive.sim_seconds,
                pig.sim_seconds,
            );
        }
    }
    rows
}

fn main() {
    let opts = BenchOpts::from_env();
    let scale = Scale::from_env();
    let dbp =
        datagen::dbpedia::generate(&datagen::DbpediaConfig::with_entities(scale.entities(250)));
    let mut rows = run_dataset(
        &opts,
        "DBInfobox-like",
        &dbp,
        5,
        "paper shape: little NTGA benefit on C1/C2 (small data); 20-50% gains and ~80% fewer writes on C3/C4",
    );
    let btc = datagen::dbpedia::generate(&datagen::DbpediaConfig::btc_like(scale.entities(500)));
    rows.extend(run_dataset(
        &opts,
        "BTC-09-like",
        &btc,
        40,
        "paper shape: scan sharing halves reads; lazy unnesting writes up to 98% less on C4",
    ));

    // Redundancy factors of the star-join intermediates (paper: >0.6 for
    // all four queries, ~0.89-0.93 for C4).
    let engine = ntga::ClusterConfig::default().engine_with(&dbp);
    let c4 = ntga::testbed::c_series().into_iter().find(|t| t.id == "C4").unwrap();
    let job1 = ntga_core::physical::group_filter_job(
        "c4-group",
        &c4.query,
        mr_rdf::TRIPLES_FILE,
        vec!["rf.ec0".into(), "rf.ec1".into()],
        false,
    );
    engine.run_job(&job1).expect("group cycle");
    let mut tgs = Vec::new();
    for file in ["rf.ec0", "rf.ec1"] {
        let tuples: Vec<ntga_core::TgTuple> = engine.read_records(file).expect("ec file");
        tgs.extend(tuples.into_iter().flat_map(|t| t.0));
    }
    println!(
        "\nC4 star-join redundancy factor on DBInfobox-like data: {:.2} (paper: ~0.89)",
        metrics::tg_redundancy(&tgs)
    );
    let queries: Vec<(String, rdf_query::Query)> =
        ntga::testbed::c_series().into_iter().map(|t| (t.id, t.query)).collect();
    let cluster = opts.cluster(ntga::ClusterConfig {
        nodes: 5,
        replication: 2,
        cost: mrsim::CostModel::scaled_to(dbp.text_bytes()),
        ..Default::default()
    });
    opts.write_profile(&cluster, &dbp, &queries);
    opts.finish(&rows);
}
