//! Chaos figure — fault regimes never change results, only cost.
//!
//! Not a figure of the paper: a robustness exhibit for the simulated
//! substrate every figure rests on. Sweeps deterministic fault regimes
//! {none, task failures, node loss, stragglers, combined, data corruption,
//! corruption+faults} × worker counts {1, 4, 8} over one unbound-property
//! query and asserts in-process that
//!
//! * the result (records and bytes) is bit-identical to the fault-free
//!   run in every cell — faults are charged simulated time, never allowed
//!   to corrupt output;
//! * every faulted cell reports nonzero fault counters and a strictly
//!   larger simulated makespan.
//!
//! A second section demonstrates the workflow recovery policies: a
//! stage-killing fault regime that `FailFast` reports as "X" but
//! `RetryStage` survives, and a disk-full failure that
//! `DegradeOnDiskFull` converts into a degraded-but-complete run. Those
//! rows carry the query id `policy` so downstream checks can separate
//! them from the bit-identity sweep.

use mrsim::{CostModel, FaultConfig, RecoveryPolicy};
use ntga::{run_query, Approach, ClusterConfig};
use ntga_bench::{report, BenchOpts, Scale};

/// The fault regimes of the sweep, by report label.
fn regimes(seed: u64) -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("none", FaultConfig::none()),
        ("taskfail", FaultConfig::with_probability(0.25, seed)),
        ("nodeloss", FaultConfig::with_probability(0.0, seed).with_node_loss(0.6)),
        (
            "straggler",
            FaultConfig::with_probability(0.0, seed)
                .with_stragglers(0.3, 6.0)
                .with_speculation(2.0),
        ),
        (
            "combined",
            FaultConfig::with_probability(0.15, seed)
                .with_node_loss(0.4)
                .with_stragglers(0.2, 6.0)
                .with_speculation(2.0),
        ),
        ("corrupt", FaultConfig::with_probability(0.0, seed).with_corruption(0.3)),
        (
            "corrupt+faults",
            FaultConfig::with_probability(0.15, seed).with_node_loss(0.4).with_corruption(0.3),
        ),
    ]
}

fn main() {
    let opts = BenchOpts::from_env();
    if opts.strategy.is_some() {
        eprintln!("note: fig_chaos sweeps fault regimes, not strategies; --strategy is ignored");
    }
    let scale = Scale::from_env();
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: scale.entities(40),
        features: 30,
        max_features_per_product: 12,
        ..Default::default()
    });
    let query = ntga::testbed::b_series()
        .into_iter()
        .find(|t| t.id == "B1")
        .expect("B1 is part of the B series");
    let base =
        ClusterConfig { cost: CostModel::scaled_to(store.text_bytes()), ..Default::default() };
    println!(
        "dataset: {} triples ({}); query {}; regimes × workers {{1,4,8}}",
        store.len(),
        report::human_bytes(store.text_bytes()),
        query.id,
    );

    // The run label feeds the job names, and job names seed the fault
    // draws — so it must NOT vary with the worker count, or the regimes
    // would face different faults per cell. Only the report label does.
    let run_cell = |faults: FaultConfig, workers: usize, run_label: &str, row_label: &str| {
        let cluster = opts.cluster(base.clone().with_faults(faults).with_workers(workers));
        let engine = cluster.engine_with(&store);
        let run = run_query(Approach::NtgaAuto(1024), &engine, &query.query, run_label, false)
            .unwrap_or_else(|e| panic!("{run_label}: planning failed: {e}"));
        report::Row::from_run(&query.id, row_label, &run)
    };

    // Pick the first seed whose faulted regimes all complete (no task
    // exhausts its attempt budget) and all actually inject something.
    let seed = (0..100)
        .find(|&seed| {
            regimes(seed).into_iter().skip(1).all(|(name, faults)| {
                let row = run_cell(faults, 4, name, name);
                row.ok
                    && match name {
                        "taskfail" => row.task_retries > 0,
                        "nodeloss" => row.node_losses > 0,
                        "straggler" => row.speculative_tasks > 0,
                        "corrupt" => row.corruptions_detected > 0,
                        "corrupt+faults" => row.corruptions_detected > 0 && row.task_retries > 0,
                        _ => row.task_retries > 0 && row.node_losses > 0,
                    }
            })
        })
        .expect("some seed under 100 must inject every regime without exhaustion");
    println!("chaos seed: {seed}");

    let mut rows = Vec::new();
    let mut baseline: Option<(u64, u64)> = None;
    for (name, faults) in regimes(seed) {
        for workers in [1usize, 4, 8] {
            let label = format!("{name}/w{workers}");
            let row = run_cell(faults.clone(), workers, name, &label);
            assert!(row.ok, "{label}: chaos sweep cells must complete");
            let key = (row.result_records, row.result_bytes);
            match baseline {
                None => baseline = Some(key),
                Some(expected) => assert_eq!(
                    key, expected,
                    "{label}: result must be bit-identical to the fault-free run"
                ),
            }
            if name != "none" {
                assert!(
                    row.retry_seconds > 0.0 || row.speculative_tasks > 0,
                    "{label}: injected faults must be visible in the counters"
                );
                let clean = rows.iter().find(|r: &&report::Row| r.approach == "none/w1").unwrap();
                assert!(
                    row.sim_seconds > clean.sim_seconds,
                    "{label}: faults must slow the simulated clock"
                );
            }
            rows.push(row);
        }
    }
    report::print_table(
        "Chaos sweep: fault regimes × workers — identical results, higher cost",
        "every row's result is bit-identical to none/w1; rtry/rty(s) show the charged fault work",
        &rows,
    );
    let (records, bytes) = baseline.unwrap();
    println!(
        "all {} cells returned {records} records / {} — determinism holds under chaos",
        rows.len(),
        report::human_bytes(bytes),
    );

    // --- Recovery policies -------------------------------------------------
    // A regime harsh enough to kill a stage under FailFast: one attempt per
    // task, so any drawn failure is fatal. RetryStage re-runs the stage
    // with fresh deterministic draws and recovers.
    let policy_rows = policy_demo(&opts, &base, &store, &query);
    report::print_table(
        "Recovery policies: the same failures, three outcomes",
        "FailFast reports the paper's X; RetryStage and DegradeOnDiskFull recover",
        &policy_rows,
    );

    rows.extend(policy_rows);
    opts.write_profile(
        &opts.cluster(base.clone()),
        &store,
        &[(query.id.clone(), query.query.clone())],
    );
    opts.finish(&rows);
}

/// The recovery-policy exhibit: rows with query id `policy`.
fn policy_demo(
    opts: &BenchOpts,
    base: &ClusterConfig,
    store: &rdf_model::TripleStore,
    query: &ntga::testbed::TestQuery,
) -> Vec<report::Row> {
    let mut rows = Vec::new();

    // One shared run label per exhibit: both policies must face the SAME
    // deterministic faults (job names seed the draws), so only the
    // recovery decision differs between the paired rows.
    let retry = RecoveryPolicy::RetryStage { max_retries: 3, backoff_s: 30.0 };
    let exhaust_cell = |seed: u64, recovery: RecoveryPolicy, row_label: &str| {
        let faults = FaultConfig::with_probability(0.04, seed).with_max_attempts(1);
        let cluster =
            opts.cluster(base.clone().with_faults(faults).with_workers(4).with_recovery(recovery));
        let engine = cluster.engine_with(store);
        let run = run_query(Approach::NtgaAuto(1024), &engine, &query.query, "exhaust", false)
            .unwrap_or_else(|e| panic!("{row_label}: planning failed: {e}"));
        report::Row::from_run("policy", row_label, &run)
    };
    let seed = (0..500)
        .find(|&s| {
            !exhaust_cell(s, RecoveryPolicy::FailFast, "probe").ok && {
                let rs = exhaust_cell(s, retry, "probe");
                rs.ok && rs.stage_retries > 0
            }
        })
        .expect("some seed under 500 must kill FailFast and be survivable by RetryStage");
    let ff = exhaust_cell(seed, RecoveryPolicy::FailFast, "exhaust/failfast");
    let rs = exhaust_cell(seed, retry, "exhaust/retrystage");
    assert!(!ff.ok && rs.ok && rs.stage_retries > 0);
    println!(
        "exhaustion seed {seed}: FailFast X, RetryStage recovered after {} stage retries \
         (+{:.0}s backoff)",
        rs.stage_retries, rs.sim_seconds
    );
    rows.push(ff);
    rows.push(rs);

    // A disk one byte too small for the workflow's replicated footprint:
    // FailFast dies of DiskFull at the peak write; DegradeOnDiskFull
    // drops that stage's output replication to 1 and completes. The
    // budget comes from measuring a successful run, so the exhibit holds
    // at every scale.
    let disk_cell = |capacity: Option<u64>, recovery: RecoveryPolicy, row_label: &str| {
        let mut cluster = base.clone();
        cluster.replication = 2;
        if let Some(capacity) = capacity {
            cluster.nodes = 1;
            cluster.disk_per_node = capacity;
        }
        let cluster = opts.cluster(cluster.with_workers(4).with_recovery(recovery));
        let engine = cluster.engine_with(store);
        let run = run_query(Approach::Pig, &engine, &query.query, "diskfull", false)
            .unwrap_or_else(|e| panic!("{row_label}: planning failed: {e}"));
        report::Row::from_run("policy", row_label, &run)
    };
    let peak = {
        let mut cluster = base.clone();
        cluster.replication = 2;
        let engine = cluster.with_workers(4).engine_with(store);
        let run = run_query(Approach::Pig, &engine, &query.query, "diskfull", false).unwrap();
        assert!(run.succeeded(), "Pig must complete unconstrained to measure its footprint");
        run.stats.peak_disk_bytes
    };
    let capacity = Some(peak - 1);
    let ff = disk_cell(capacity, RecoveryPolicy::FailFast, "diskfull/failfast");
    let deg = disk_cell(capacity, RecoveryPolicy::DegradeOnDiskFull, "diskfull/degrade");
    assert!(!ff.ok && deg.ok && deg.degraded);
    println!(
        "disk budget {} (peak − 1): FailFast X (DiskFull), DegradeOnDiskFull completed at \
         replication 1",
        report::human_bytes(peak - 1),
    );
    rows.push(ff);
    rows.push(deg);
    rows
}
