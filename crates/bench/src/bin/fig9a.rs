//! Figure 9(a) — BSBM-2M analog on a disk-constrained cluster,
//! replication factor 2: execution outcomes for B0–B4.
//!
//! Paper shape: Pig and Hive FAIL (disk full) for all five queries;
//! EagerUnnest completes B0–B2 but fails B3 (double unbound) and B4;
//! LazyUnnest completes everything.

use ntga_bench::{report, run_panel, BenchOpts, Runner, Scale};

fn main() {
    let opts = BenchOpts::from_env();
    let scale = Scale::from_env();
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: scale.entities(150),
        features: 40,
        max_features_per_product: 16,
        ..Default::default()
    });
    // The paper's 60-node cluster had 20 GB/node against a 172 GB dataset
    // at replication 2 — single-digit headroom over the replicated input.
    // 6.5× reproduces the failure pattern: every approach whose
    // intermediates carry unbound-match redundancy dies.
    let mut cluster =
        ntga::ClusterConfig { replication: 2, ..Default::default() }.tight_disk(&store, 6.5);
    cluster.cost = mrsim::CostModel::scaled_to(store.text_bytes());
    let cluster = opts.cluster(cluster);
    println!(
        "dataset: BSBM-2M analog, {} triples ({}); disk budget {} (replication 2)",
        store.len(),
        report::human_bytes(store.text_bytes()),
        report::human_bytes(cluster.disk_per_node * u64::from(cluster.nodes)),
    );
    let queries: Vec<(String, rdf_query::Query)> = ntga::testbed::b_series()
        .into_iter()
        .filter(|t| ["B0", "B1", "B2", "B3", "B4"].contains(&t.id.as_str()))
        .map(|t| (t.id, t.query))
        .collect();
    let rows = run_panel(&cluster, &store, &queries, &opts.panel_or(Runner::paper_panel(1024)));
    report::print_table(
        "Figure 9(a): BSBM-2M, replication 2, constrained disk — failures marked X",
        "paper shape: Pig/Hive fail the unbound queries; EagerUnnest fails B3,B4; LazyUnnest completes all\n(deviation: our B0/B2 relational footprints are milder than BSBM's, so they fit; see EXPERIMENTS.md)",
        &rows,
    );
    let failures: Vec<String> =
        rows.iter().filter(|r| !r.ok).map(|r| format!("{}/{}", r.query, r.approach)).collect();
    println!("failed executions: {}", failures.join(", "));
    if opts.strategy.is_none() {
        let lazy_ok = rows.iter().filter(|r| r.approach.contains("Lazy")).all(|r| r.ok);
        println!("LazyUnnest completed all queries: {lazy_ok}");
    }
    opts.write_profile(&cluster, &store, &queries);
    opts.finish(&rows);
}
