//! Figure 9(c) — execution times with a growing number of bound-property
//! patterns (B1-3bnd … B1-6bnd).
//!
//! Paper shape: Pig fails beyond three bound patterns; LazyUnnest (φ_1K)
//! consistently wins, about 25 % faster than Hive; NTGA times stay nearly
//! flat as bound arity grows while relational times grow.

use ntga_bench::{report, run_panel, BenchOpts, Runner, Scale};

fn main() {
    let opts = BenchOpts::from_env();
    let scale = Scale::from_env();
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: scale.entities(150),
        features: 40,
        max_features_per_product: 16,
        ..Default::default()
    });
    // Moderate disk pressure: relational intermediates for wide unbound
    // stars blow past it, lazy stays inside.
    let mut cluster =
        ntga::ClusterConfig { replication: 1, ..Default::default() }.tight_disk(&store, 36.0);
    cluster.cost = mrsim::CostModel::scaled_to(store.text_bytes());
    let cluster = opts.cluster(cluster);
    println!(
        "dataset: BSBM-2M analog, {} triples ({})",
        store.len(),
        report::human_bytes(store.text_bytes()),
    );
    let queries: Vec<(String, rdf_query::Query)> = (3..=6)
        .map(|k| {
            let t = ntga::testbed::b1_varying_bound(k);
            (t.id, t.query)
        })
        .collect();
    let rows = run_panel(&cluster, &store, &queries, &opts.panel_or(Runner::paper_panel(1024)));
    report::print_table(
        "Figure 9(c): execution times, varying bound-property count",
        "paper shape: Pig fails beyond 3 bound patterns (here: beyond 4 — our Pig/Hive footprints differ\nless than the real systems'); NTGA untroubled and ~flat as bound arity grows",
        &rows,
    );
    if opts.strategy.is_none() {
        for k in 3..=6 {
            let q = format!("B1-{k}bnd");
            let hive = rows.iter().find(|r| r.query == q && r.approach == "Hive").unwrap();
            let lazy = rows.iter().find(|r| r.query == q && r.approach.contains("Lazy")).unwrap();
            if hive.ok && lazy.ok {
                println!(
                    "{q}: LazyUnnest {:.0}s vs Hive {:.0}s ({:.0}% faster)",
                    lazy.sim_seconds,
                    hive.sim_seconds,
                    (1.0 - lazy.sim_seconds / hive.sim_seconds) * 100.0
                );
            }
        }
    }
    opts.write_profile(&cluster, &store, &queries);
    opts.finish(&rows);
}
