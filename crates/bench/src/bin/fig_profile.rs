//! Profiler exhibit — EXPLAIN ANALYZE on the cost-based optimizer.
//!
//! Not a figure of the paper: the acceptance exhibit for the workflow
//! profiler. For each B-series query it runs every hand-picked strategy on
//! a profiling engine, then the cost-based plan, joins the plan against the
//! measured run with `explain_analyze`, prints the annotated plan-vs-actual
//! tree, and asserts in-process that
//!
//! * the per-operator q-errors of the profile agree with
//!   `WorkflowStats::max_q_error` on the same run;
//! * the profile's actual seconds reconcile with the per-job `JobStats`
//!   totals to 1e-6;
//! * the optimizer's chosen plan matches or beats the best hand-picked
//!   strategy (columns `est(s)`/`actual(s)` make the comparison visible);
//! * two profiled runs of the same plan serialize byte-identically.

use ntga_bench::{profile_queries, report, BenchOpts, Scale};
use ntga_core::Strategy;

const HAND_PICKED: [Strategy; 4] =
    [Strategy::Eager, Strategy::LazyFull, Strategy::LazyPartial(1024), Strategy::Auto(1024)];

fn main() {
    let opts = BenchOpts::from_env();
    if opts.strategy.is_some() {
        eprintln!("note: fig_profile compares all strategies by design; --strategy is ignored");
    }
    let scale = Scale::from_env();
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: scale.entities(60),
        features: 40,
        max_features_per_product: 12,
        ..Default::default()
    });
    let queries: Vec<(String, rdf_query::Query)> =
        ntga::testbed::b_series().into_iter().map(|t| (t.id, t.query)).collect();
    let cluster = opts
        .cluster(ntga::ClusterConfig {
            cost: mrsim::CostModel::scaled_to(store.text_bytes()),
            ..Default::default()
        })
        .with_profiling(true);
    println!(
        "dataset: BSBM-like, {} triples ({}); {} queries",
        store.len(),
        report::human_bytes(store.text_bytes()),
        queries.len(),
    );

    // Hand-picked panel, for the best-strategy baseline per query.
    let mut rows = Vec::new();
    let mut best: Vec<(String, f64, String)> = Vec::new();
    for (qid, query) in &queries {
        let mut cell: Option<(f64, String)> = None;
        for strategy in HAND_PICKED {
            let engine = cluster.engine_with(&store);
            let label = format!("{qid}-{}", strategy.label());
            let run =
                ntga_core::execute(strategy, &engine, query, mr_rdf::TRIPLES_FILE, &label, false)
                    .unwrap_or_else(|e| panic!("{label}: planning failed: {e}"));
            assert!(run.succeeded(), "{label}: hand-picked run failed");
            let t = run.stats.sim_seconds;
            if cell.as_ref().is_none_or(|(b, _)| t < *b) {
                cell = Some((t, strategy.label()));
            }
            rows.push(report::Row::from_run(qid, &strategy.label(), &run));
        }
        let (t, label) = cell.expect("hand-picked panel is non-empty");
        best.push((qid.clone(), t, label));
    }

    // The optimizer's plan, profiled: one EXPLAIN ANALYZE tree per query.
    let profiles = profile_queries(&cluster, &store, &queries).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let again = profile_queries(&cluster, &store, &queries).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    for ((profile, rerun), (qid, best_t, best_label)) in profiles.iter().zip(&again).zip(&best) {
        print!("\n{}", profile.render());
        // Per-operator q-errors agree with the workflow-level figure.
        let op_max =
            profile.operators.iter().filter_map(|o| o.q_error).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(
            Some(op_max),
            profile.max_q_error,
            "{qid}: per-operator q-errors must be consistent with max_q_error"
        );
        // Actual seconds reconcile with the per-job JobStats totals.
        let op_seconds: f64 = profile.operators.iter().map(|o| o.actual_seconds).sum();
        assert!(
            (op_seconds - profile.actual_total_seconds).abs()
                <= 1e-6 * profile.actual_total_seconds.max(1.0),
            "{qid}: per-operator seconds {op_seconds} must reconcile with the workflow total {}",
            profile.actual_total_seconds
        );
        // Deterministic: a second profiled run serializes byte-identically.
        assert_eq!(
            profile.to_json(),
            rerun.to_json(),
            "{qid}: repeated profiled runs must serialize identically"
        );
        // The chosen plan matches or beats the best hand-picked strategy.
        assert!(
            profile.actual_total_seconds <= best_t + 1e-9,
            "{qid}: cost plan took {:.3}s but {best_label} took {best_t:.3}s",
            profile.actual_total_seconds,
        );
        println!(
            "{qid}: CostBased {:.1}s (estimated {:.1}s, q-error {}) vs best hand-picked \
             {best_label} {best_t:.1}s",
            profile.actual_total_seconds,
            profile.estimated_total_seconds,
            profile.max_q_error.map_or("-".into(), |q| format!("{q:.2}")),
        );
    }
    println!(
        "\nall {} profiles: plan-vs-actual q-errors consistent, seconds reconciled to 1e-6, \
         serialization deterministic",
        profiles.len(),
    );
    report::print_table(
        "Profiler exhibit: hand-picked baselines (CostBased trees above)",
        "the EXPLAIN ANALYZE trees show the optimizer's est-vs-actual per operator",
        &rows,
    );
    opts.write_profile(&cluster, &store, &queries);
    opts.finish(&rows);
}
