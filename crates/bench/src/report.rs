//! Plain-text report tables for the figure binaries.

use mr_rdf::QueryRun;
use serde::Serialize;

/// One report row: a (query, approach) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Query id (e.g. "B3").
    pub query: String,
    /// Approach label (e.g. "LazyUnnest(auto,phi_1024)").
    pub approach: String,
    /// MR cycles.
    pub mr_cycles: u64,
    /// Full scans of the base relation.
    pub full_scans: u64,
    /// Total HDFS read bytes.
    pub read_bytes: u64,
    /// Total HDFS write bytes (× replication).
    pub write_bytes: u64,
    /// Intermediate HDFS write bytes (all jobs but the last).
    pub intermediate_write_bytes: u64,
    /// Total shuffle bytes.
    pub shuffle_bytes: u64,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Worst reduce skew over the workflow's jobs (heaviest partition ÷
    /// mean partition load; 1.0 = perfectly balanced shuffles).
    pub reduce_skew: f64,
    /// Completed without failure.
    pub ok: bool,
}

impl Row {
    /// Build a row from a run.
    pub fn from_run(query: &str, approach: &str, run: &QueryRun) -> Row {
        Row {
            query: query.to_string(),
            approach: approach.to_string(),
            mr_cycles: run.stats.mr_cycles,
            full_scans: run.stats.full_scans,
            read_bytes: run.stats.total_read_bytes(),
            write_bytes: run.stats.total_write_bytes(),
            intermediate_write_bytes: run.stats.intermediate_write_bytes(),
            shuffle_bytes: run.stats.total_shuffle_bytes(),
            sim_seconds: run.stats.sim_seconds,
            reduce_skew: run.stats.max_reduce_skew(),
            ok: run.succeeded(),
        }
    }
}

/// Render bytes with binary units.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Print a figure table: header, one block per query, aligned columns.
pub fn print_table(title: &str, note: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    if !note.is_empty() {
        println!("{note}");
    }
    println!(
        "{:<10} {:<26} {:>3} {:>3} {:>12} {:>12} {:>12} {:>12} {:>10} {:>6}  status",
        "query", "approach", "MR", "FS", "read", "write", "interm.w", "shuffle", "sim(s)", "skew"
    );
    let mut last_query = String::new();
    for r in rows {
        if r.query != last_query && !last_query.is_empty() {
            println!("{}", "-".repeat(117));
        }
        last_query = r.query.clone();
        println!(
            "{:<10} {:<26} {:>3} {:>3} {:>12} {:>12} {:>12} {:>12} {:>10.1} {:>6.2}  {}",
            r.query,
            r.approach,
            r.mr_cycles,
            r.full_scans,
            human_bytes(r.read_bytes),
            human_bytes(r.write_bytes),
            human_bytes(r.intermediate_write_bytes),
            human_bytes(r.shuffle_bytes),
            r.sim_seconds,
            r.reduce_skew,
            if r.ok { "OK" } else { "FAILED (X)" },
        );
    }
    println!();
}

/// Percentage reduction of `ours` versus `theirs` (positive = we wrote
/// less), for the "N % less HDFS writes" comparisons of the paper.
pub fn pct_less(theirs: u64, ours: u64) -> f64 {
    if theirs == 0 {
        return 0.0;
    }
    (1.0 - ours as f64 / theirs as f64) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.00 KiB");
        assert_eq!(human_bytes(1536), "1.50 KiB");
        assert_eq!(human_bytes(1024 * 1024 * 3), "3.00 MiB");
    }

    #[test]
    fn pct_less_basics() {
        assert!((pct_less(100, 20) - 80.0).abs() < 1e-9);
        assert_eq!(pct_less(0, 5), 0.0);
        assert!((pct_less(50, 50) - 0.0).abs() < 1e-9);
    }
}
