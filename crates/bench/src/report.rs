//! Plain-text report tables for the figure binaries, plus the
//! machine-readable JSON rendering behind the shared `--json` flag.

use mr_rdf::QueryRun;
use mrsim::OpCounters;
use ntga_core::physical::op;

/// One report row: a (query, approach) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Query id (e.g. "B3").
    pub query: String,
    /// Approach label (e.g. "LazyUnnest(auto,phi_1024)").
    pub approach: String,
    /// MR cycles.
    pub mr_cycles: u64,
    /// Full scans of the base relation.
    pub full_scans: u64,
    /// Total HDFS read bytes.
    pub read_bytes: u64,
    /// Total HDFS write bytes (× replication).
    pub write_bytes: u64,
    /// Intermediate HDFS write bytes (all jobs but the last).
    pub intermediate_write_bytes: u64,
    /// Total shuffle bytes under the text-row cost model.
    pub shuffle_bytes: u64,
    /// Total post-encoding shuffle bytes (the varint wire format actually
    /// buffered by the spill arenas). Diverges from `shuffle_bytes` on
    /// ID-encoded jobs, whose text model charges per-pair separators.
    pub shuffle_wire_bytes: u64,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Worst per-job cardinality q-error across the workflow
    /// (`max(est/actual, actual/est)`); `None` when no job carried an
    /// optimizer estimate.
    pub max_q_error: Option<f64>,
    /// Worst reduce skew over the workflow's jobs (heaviest partition ÷
    /// mean partition load; 1.0 = perfectly balanced shuffles).
    pub reduce_skew: f64,
    /// Heaviest single reduce partition across the workflow, in shuffle
    /// bytes — the absolute figure behind `reduce_skew`'s ratio.
    pub max_partition_shuffle_bytes: u64,
    /// Peak bytes held by any one task's spill arenas (always accounted,
    /// profiling or not).
    pub peak_arena_bytes: u64,
    /// Peak live bytes attributed to a single task across the workflow.
    pub peak_task_live_bytes: u64,
    /// β-unnest expansion factor: records leaving the unnest operators ÷
    /// records entering them ([`op::UNNEST_OUT`]` + `[`op::PARTIAL_OUT`]
    /// over [`op::UNNEST_IN`]` + `[`op::PARTIAL_IN`]); 1.0 when the plan
    /// never unnested.
    pub beta_expansion: f64,
    /// Final-output record count (for chaos bit-identity checks).
    pub result_records: u64,
    /// Final-output text bytes (for chaos bit-identity checks).
    pub result_bytes: u64,
    /// Task retries across all jobs (injected faults).
    pub task_retries: u64,
    /// Node losses across all jobs (injected faults).
    pub node_losses: u64,
    /// Speculative backup tasks launched across all jobs.
    pub speculative_tasks: u64,
    /// Checksum mismatches detected (shuffle + DFS) across all jobs.
    pub corruptions_detected: u64,
    /// Undecodable input records quarantined by skip mode across all jobs.
    pub records_skipped: u64,
    /// Simulated seconds charged to retries/re-execution/speculation.
    pub retry_seconds: f64,
    /// Workflow-level stage re-runs under a recovery policy.
    pub stage_retries: u64,
    /// Stages skipped by a checkpoint resume (outputs already committed).
    pub stages_skipped: u64,
    /// True if `DegradeOnDiskFull` dropped output replication to 1.
    pub degraded: bool,
    /// Operator-level counters merged across the workflow's jobs.
    pub ops: OpCounters,
    /// Completed without failure.
    pub ok: bool,
}

impl Row {
    /// Build a row from a run.
    pub fn from_run(query: &str, approach: &str, run: &QueryRun) -> Row {
        let ops = run.op_counters();
        let unnest_in = ops.get(op::UNNEST_IN) + ops.get(op::PARTIAL_IN);
        let unnest_out = ops.get(op::UNNEST_OUT) + ops.get(op::PARTIAL_OUT);
        Row {
            query: query.to_string(),
            approach: approach.to_string(),
            mr_cycles: run.stats.mr_cycles,
            full_scans: run.stats.full_scans,
            read_bytes: run.stats.total_read_bytes(),
            write_bytes: run.stats.total_write_bytes(),
            intermediate_write_bytes: run.stats.intermediate_write_bytes(),
            shuffle_bytes: run.stats.total_shuffle_bytes(),
            shuffle_wire_bytes: run.stats.total_shuffle_wire_bytes(),
            sim_seconds: run.stats.sim_seconds,
            max_q_error: run.stats.max_q_error(),
            reduce_skew: run.stats.max_reduce_skew(),
            max_partition_shuffle_bytes: run.stats.max_partition_shuffle_bytes(),
            peak_arena_bytes: run.stats.peak_arena_bytes(),
            peak_task_live_bytes: run.stats.peak_task_live_bytes(),
            beta_expansion: if unnest_in > 0 { unnest_out as f64 / unnest_in as f64 } else { 1.0 },
            result_records: run.stats.final_output_records(),
            result_bytes: run.stats.final_output_text_bytes(),
            task_retries: run.stats.total_task_retries(),
            node_losses: run.stats.total_node_losses(),
            speculative_tasks: run.stats.total_speculative_tasks(),
            corruptions_detected: run.stats.total_corruptions_detected(),
            records_skipped: run.stats.total_records_skipped(),
            retry_seconds: run.stats.total_retry_seconds(),
            stage_retries: run.stats.stage_retries,
            stages_skipped: run.stats.stages_skipped,
            degraded: run.stats.degraded_replication,
            ops,
            ok: run.succeeded(),
        }
    }
}

/// Render bytes with binary units.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

/// Print a figure table: header, one block per query, aligned columns.
pub fn print_table(title: &str, note: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    if !note.is_empty() {
        println!("{note}");
    }
    let header = format!(
        "{:<10} {:<26} {:>3} {:>3} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10} {:>6} {:>12} {:>7} {:>4} {:>8}  status",
        "query",
        "approach",
        "MR",
        "FS",
        "read",
        "write",
        "interm.w",
        "shuffle",
        "wire",
        "sim(s)",
        "skew",
        "maxpart",
        "βx",
        "rtry",
        "rty(s)"
    );
    // Separator width follows the rendered header, so column changes never
    // leave a stale hardcoded width behind.
    let separator = "-".repeat(header.chars().count());
    println!("{header}");
    let mut last_query = String::new();
    for r in rows {
        if r.query != last_query && !last_query.is_empty() {
            println!("{separator}");
        }
        last_query = r.query.clone();
        println!(
            "{:<10} {:<26} {:>3} {:>3} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10.1} {:>6.2} {:>12} {:>7.1} {:>4} {:>8.1}  {}",
            r.query,
            r.approach,
            r.mr_cycles,
            r.full_scans,
            human_bytes(r.read_bytes),
            human_bytes(r.write_bytes),
            human_bytes(r.intermediate_write_bytes),
            human_bytes(r.shuffle_bytes),
            human_bytes(r.shuffle_wire_bytes),
            r.sim_seconds,
            r.reduce_skew,
            human_bytes(r.max_partition_shuffle_bytes),
            r.beta_expansion,
            r.task_retries + r.stage_retries,
            r.retry_seconds,
            if r.ok { "OK" } else { "FAILED (X)" },
        );
    }
    println!();
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Render rows as a JSON array — the payload of the figure binaries'
/// `--json <path>` flag. Hand-rolled (no serde in this workspace); kept
/// valid by `mrsim::trace::validate_json` in the tests and the CI smoke.
pub fn rows_json(rows: &[Row]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"query\":");
        push_json_str(&mut out, &r.query);
        out.push_str(",\"approach\":");
        push_json_str(&mut out, &r.approach);
        out.push_str(&format!(",\"mr_cycles\":{}", r.mr_cycles));
        out.push_str(&format!(",\"full_scans\":{}", r.full_scans));
        out.push_str(&format!(",\"read_bytes\":{}", r.read_bytes));
        out.push_str(&format!(",\"write_bytes\":{}", r.write_bytes));
        out.push_str(&format!(",\"intermediate_write_bytes\":{}", r.intermediate_write_bytes));
        out.push_str(&format!(",\"shuffle_bytes\":{}", r.shuffle_bytes));
        out.push_str(&format!(",\"shuffle_wire_bytes\":{}", r.shuffle_wire_bytes));
        out.push_str(",\"sim_seconds\":");
        push_json_f64(&mut out, r.sim_seconds);
        out.push_str(",\"max_q_error\":");
        match r.max_q_error {
            Some(q) => push_json_f64(&mut out, q),
            None => out.push_str("null"),
        }
        out.push_str(",\"reduce_skew\":");
        push_json_f64(&mut out, r.reduce_skew);
        out.push_str(&format!(
            ",\"max_partition_shuffle_bytes\":{}",
            r.max_partition_shuffle_bytes
        ));
        out.push_str(&format!(",\"peak_arena_bytes\":{}", r.peak_arena_bytes));
        out.push_str(&format!(",\"peak_task_live_bytes\":{}", r.peak_task_live_bytes));
        out.push_str(",\"beta_expansion\":");
        push_json_f64(&mut out, r.beta_expansion);
        out.push_str(&format!(",\"result_records\":{}", r.result_records));
        out.push_str(&format!(",\"result_bytes\":{}", r.result_bytes));
        out.push_str(&format!(",\"task_retries\":{}", r.task_retries));
        out.push_str(&format!(",\"node_losses\":{}", r.node_losses));
        out.push_str(&format!(",\"speculative_tasks\":{}", r.speculative_tasks));
        out.push_str(&format!(",\"corruptions_detected\":{}", r.corruptions_detected));
        out.push_str(&format!(",\"records_skipped\":{}", r.records_skipped));
        out.push_str(",\"retry_seconds\":");
        push_json_f64(&mut out, r.retry_seconds);
        out.push_str(&format!(",\"stage_retries\":{}", r.stage_retries));
        out.push_str(&format!(",\"stages_skipped\":{}", r.stages_skipped));
        out.push_str(&format!(",\"degraded\":{}", r.degraded));
        out.push_str(",\"ops\":");
        out.push_str(&r.ops.to_json());
        out.push_str(&format!(",\"ok\":{}}}", r.ok));
    }
    out.push(']');
    out
}

/// Percentage reduction of `ours` versus `theirs` (positive = we wrote
/// less), for the "N % less HDFS writes" comparisons of the paper.
pub fn pct_less(theirs: u64, ours: u64) -> f64 {
    if theirs == 0 {
        return 0.0;
    }
    (1.0 - ours as f64 / theirs as f64) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.00 KiB");
        assert_eq!(human_bytes(1536), "1.50 KiB");
        assert_eq!(human_bytes(1024 * 1024 * 3), "3.00 MiB");
    }

    #[test]
    fn pct_less_basics() {
        assert!((pct_less(100, 20) - 80.0).abs() < 1e-9);
        assert_eq!(pct_less(0, 5), 0.0);
        assert!((pct_less(50, 50) - 0.0).abs() < 1e-9);
    }

    fn sample_row() -> Row {
        let mut ops = OpCounters::new();
        ops.add(op::UNNEST_IN, 2);
        ops.add(op::UNNEST_OUT, 10);
        Row {
            query: "B\"1".into(),
            approach: "Lazy\\Unnest".into(),
            mr_cycles: 2,
            full_scans: 1,
            read_bytes: 100,
            write_bytes: 200,
            intermediate_write_bytes: 50,
            shuffle_bytes: 75,
            shuffle_wire_bytes: 80,
            sim_seconds: f64::NAN,
            max_q_error: Some(2.5),
            reduce_skew: 1.25,
            max_partition_shuffle_bytes: 40,
            peak_arena_bytes: 512,
            peak_task_live_bytes: 768,
            beta_expansion: 5.0,
            result_records: 7,
            result_bytes: 70,
            task_retries: 3,
            node_losses: 1,
            speculative_tasks: 2,
            corruptions_detected: 2,
            records_skipped: 5,
            retry_seconds: 4.5,
            stage_retries: 1,
            stages_skipped: 1,
            degraded: false,
            ops,
            ok: true,
        }
    }

    #[test]
    fn rows_json_is_valid_and_complete() {
        let json = rows_json(&[sample_row()]);
        mrsim::trace::validate_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        // Strings are escaped, non-finite floats become null, operator
        // counters ride along.
        assert!(json.contains("\"query\":\"B\\\"1\""), "{json}");
        assert!(json.contains("\"approach\":\"Lazy\\\\Unnest\""), "{json}");
        assert!(json.contains("\"sim_seconds\":null"), "{json}");
        assert!(json.contains("\"max_q_error\":2.5"), "{json}");
        assert!(json.contains("\"shuffle_wire_bytes\":80"), "{json}");
        assert!(json.contains("\"max_partition_shuffle_bytes\":40"), "{json}");
        assert!(json.contains("\"peak_arena_bytes\":512"), "{json}");
        assert!(json.contains("\"peak_task_live_bytes\":768"), "{json}");
        assert!(json.contains("\"ntga.unnest.in\":2"), "{json}");
        assert!(json.contains("\"result_bytes\":70"), "{json}");
        assert!(json.contains("\"retry_seconds\":4.5"), "{json}");
        assert!(json.contains("\"corruptions_detected\":2"), "{json}");
        assert!(json.contains("\"records_skipped\":5"), "{json}");
        assert!(json.contains("\"stages_skipped\":1"), "{json}");
        assert!(json.contains("\"degraded\":false"), "{json}");
        assert!(json.contains("\"ok\":true"), "{json}");
        assert_eq!(rows_json(&[]), "[]");
    }
}
