//! # ntga-bench — benchmark harness for the paper's figures
//!
//! One binary per figure/table of the paper's evaluation section
//! (`cargo run -p ntga-bench --release --bin fig<N>`), plus Criterion
//! micro-benchmarks for the core operators (`cargo bench`).
//!
//! The binaries print tables shaped like the paper's exhibits: per (query,
//! approach) the MR-cycle count, full scans, HDFS read/write bytes,
//! shuffle bytes, simulated seconds and OK/FAILED status. Absolute values
//! differ from the paper (simulated substrate, scaled-down datasets); the
//! *shape* — who wins, by what factor, who dies of DiskFull — is the
//! reproduction target recorded in `EXPERIMENTS.md`.
//!
//! Scale is controlled by the `NTGA_SCALE` environment variable:
//! `small` (default; seconds per figure), `medium`, or `large`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod report;

use mr_rdf::QueryRun;
use mrsim::{ChromeTraceSink, JsonlSink, MultiSink, TraceSink};
use ntga_core::Strategy;
use rdf_model::TripleStore;
use rdf_query::Query;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Shared command-line options of every figure binary:
///
/// * `--trace <path>` — write a Chrome trace-event file (loadable in
///   `chrome://tracing` / Perfetto) at `<path>` plus a JSONL event log at
///   `<path>` with the extension replaced by `.jsonl`, both on the
///   simulated timeline;
/// * `--json <path>` — write the report rows as a JSON array;
/// * `--strategy <name>` — replace the figure's approach panel with a
///   single named approach: `auto-cost` (the statistics-driven optimizer),
///   `eager`, `lazy-full`, `lazy-partial:<m>`, or `auto:<m>`;
/// * `--profile <path>` — run EXPLAIN ANALYZE for the figure's queries
///   (cost-based plan executed on a profiling engine, joined against the
///   measured run) and write the profile documents as a JSON array at
///   `<path>`, printing the annotated plan trees to stdout.
///
/// With no flags, tracing and profiling stay disabled and cost nothing.
pub struct BenchOpts {
    /// Chrome trace output path (`--trace`).
    pub trace: Option<PathBuf>,
    /// Report-row JSON output path (`--json`).
    pub json: Option<PathBuf>,
    /// EXPLAIN ANALYZE JSON output path (`--profile`).
    pub profile: Option<PathBuf>,
    /// Panel override (`--strategy`).
    pub strategy: Option<Runner>,
    sink: Option<Arc<dyn TraceSink>>,
}

impl BenchOpts {
    /// Parse from an argument list (program name already stripped).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<BenchOpts, String> {
        let mut trace = None;
        let mut json = None;
        let mut profile = None;
        let mut strategy = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--trace" => {
                    trace = Some(PathBuf::from(
                        it.next().ok_or_else(|| "--trace requires a path".to_string())?,
                    ));
                }
                "--json" => {
                    json = Some(PathBuf::from(
                        it.next().ok_or_else(|| "--json requires a path".to_string())?,
                    ));
                }
                "--profile" => {
                    profile = Some(PathBuf::from(
                        it.next().ok_or_else(|| "--profile requires a path".to_string())?,
                    ));
                }
                "--strategy" => {
                    let name = it.next().ok_or_else(|| "--strategy requires a name".to_string())?;
                    strategy = Some(parse_strategy(&name)?);
                }
                other => {
                    return Err(format!(
                        "unknown argument `{other}` (expected --trace <path>, --json <path>, \
                         --profile <path> and/or --strategy <name>)"
                    ))
                }
            }
        }
        let sink = match &trace {
            Some(path) => Some(build_trace_sink(path)?),
            None => None,
        };
        Ok(BenchOpts { trace, json, profile, strategy, sink })
    }

    /// Parse the process arguments; print usage and exit on error.
    pub fn from_env() -> BenchOpts {
        BenchOpts::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!(
                "usage: fig<N> [--trace <path>] [--json <path>] [--profile <path>] \
                 [--strategy <name>]\n\
                 strategies: auto-cost | eager | lazy-full | lazy-partial:<m> | auto:<m>"
            );
            std::process::exit(2);
        })
    }

    /// The figure's approach panel: the `--strategy` override when given,
    /// otherwise `default`.
    pub fn panel_or(&self, default: Vec<Runner>) -> Vec<Runner> {
        match self.strategy {
            Some(runner) => vec![runner],
            None => default,
        }
    }

    /// Attach the trace sink (if any) to a cluster config.
    pub fn cluster(&self, mut cluster: ntga::ClusterConfig) -> ntga::ClusterConfig {
        if let Some(sink) = &self.sink {
            cluster.trace = Some(sink.clone());
        }
        cluster
    }

    /// Write the `--json` rows file (if requested) and flush the trace
    /// sinks. Call once, after the figure's tables are printed.
    pub fn finish(&self, rows: &[report::Row]) {
        if let Some(path) = &self.json {
            let payload = report::rows_json(rows);
            if let Err(e) = std::fs::write(path, payload) {
                eprintln!("error: writing {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {} report rows to {}", rows.len(), path.display());
        }
        if let Some(sink) = &self.sink {
            sink.finish();
            let trace = self.trace.as_ref().expect("sink implies --trace");
            println!(
                "wrote Chrome trace to {} and event log to {}",
                trace.display(),
                trace.with_extension("jsonl").display()
            );
        }
    }

    /// Run EXPLAIN ANALYZE for the figure's queries and write the
    /// `--profile` JSON array (if requested). Each query is optimized under
    /// the cluster's cost model, executed on a fresh profiling engine, and
    /// joined plan-vs-actual; the annotated trees go to stdout and the
    /// stable JSON documents to the `--profile` path. No-op without the
    /// flag. Call once, after the figure's tables are printed.
    pub fn write_profile(
        &self,
        cluster: &ntga::ClusterConfig,
        store: &TripleStore,
        queries: &[(String, Query)],
    ) {
        let Some(path) = &self.profile else { return };
        let profiles = profile_queries(cluster, store, queries).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        for profile in &profiles {
            print!("{}", profile.render());
        }
        let payload =
            format!("[{}]", profiles.iter().map(|p| p.to_json()).collect::<Vec<_>>().join(","));
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("error: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {} EXPLAIN ANALYZE profiles to {}", profiles.len(), path.display());
    }
}

/// Optimize each query under the cluster's cost model, execute the plan on
/// a fresh profiling engine, and join it against the measured run — the
/// engine behind the `--profile` flag and the `fig_profile` exhibit.
pub fn profile_queries(
    cluster: &ntga::ClusterConfig,
    store: &TripleStore,
    queries: &[(String, Query)],
) -> Result<Vec<ntga_core::Profile>, String> {
    let stats = store.stats();
    let cluster = cluster.clone().with_profiling(true);
    queries
        .iter()
        .map(|(qid, query)| {
            let engine = cluster.engine_with(store);
            let config = ntga_core::OptimizerConfig::for_engine(&engine);
            let plan = ntga_core::optimize(query, &stats, &engine.cost, &config)
                .map_err(|e| format!("{qid}: planning failed: {e}"))?;
            let (run, stars) = ntga_core::execute_plan_profiled(
                ntga_core::DataPlane::Lexical,
                &plan,
                &engine,
                query,
                mr_rdf::TRIPLES_FILE,
                qid,
                false,
            )
            .map_err(|e| format!("{qid}: execution failed: {e}"))?;
            if !run.succeeded() {
                return Err(format!(
                    "{qid}: profiled run failed: {}",
                    run.stats.failure.as_deref().unwrap_or("unknown")
                ));
            }
            ntga_core::explain_analyze(&plan, &run.stats, &stars)
                .map_err(|e| format!("{qid}: profile join failed: {e}"))
        })
        .collect()
}

fn parse_strategy(name: &str) -> Result<Runner, String> {
    fn phi(name: &str, arg: &str) -> Result<u64, String> {
        arg.parse().map_err(|_| format!("{name} needs an integer threshold, got `{arg}`"))
    }
    match name {
        "auto-cost" => Ok(Runner::NtgaCost),
        "eager" => Ok(Runner::Ntga(Strategy::Eager)),
        "lazy-full" => Ok(Runner::Ntga(Strategy::LazyFull)),
        other => {
            if let Some(arg) = other.strip_prefix("lazy-partial:") {
                Ok(Runner::Ntga(Strategy::LazyPartial(phi("lazy-partial", arg)?)))
            } else if let Some(arg) = other.strip_prefix("auto:") {
                Ok(Runner::Ntga(Strategy::Auto(phi("auto", arg)?)))
            } else {
                Err(format!(
                    "unknown strategy `{other}` (expected auto-cost, eager, lazy-full, \
                     lazy-partial:<m> or auto:<m>)"
                ))
            }
        }
    }
}

fn build_trace_sink(path: &Path) -> Result<Arc<dyn TraceSink>, String> {
    let jsonl = JsonlSink::create(path.with_extension("jsonl"))
        .map_err(|e| format!("cannot create JSONL event log: {e}"))?;
    Ok(Arc::new(MultiSink::new(vec![Arc::new(jsonl), Arc::new(ChromeTraceSink::create(path))])))
}

/// Benchmark scale, from `NTGA_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per figure; CI-friendly.
    Small,
    /// Tens of seconds.
    Medium,
    /// Minutes; closest to the paper's relative regimes.
    Large,
}

impl Scale {
    /// Read the scale from the environment (default `small`).
    pub fn from_env() -> Scale {
        match std::env::var("NTGA_SCALE").as_deref() {
            Ok("medium") => Scale::Medium,
            Ok("large") => Scale::Large,
            _ => Scale::Small,
        }
    }

    /// Multiply a base entity count by the scale.
    pub fn entities(self, small: usize) -> usize {
        match self {
            Scale::Small => small,
            Scale::Medium => small * 4,
            Scale::Large => small * 16,
        }
    }
}

/// An execution approach paired with its report label — thin wrapper so
/// figure binaries can mix relational flavors, NTGA strategies and the
/// Figure 3 groupings in one panel.
#[derive(Debug, Clone, Copy)]
pub enum Runner {
    /// Pig-like or Hive-like relational execution.
    Relational(relbase::RelFlavor),
    /// A Figure 3 grouping.
    Grouping(relbase::Grouping),
    /// An NTGA strategy.
    Ntga(Strategy),
    /// The cost-based optimizer: per-star / per-cycle choices derived from
    /// [`rdf_model::StoreStats`] and the engine's [`mrsim::CostModel`]
    /// (`--strategy auto-cost`).
    NtgaCost,
}

impl Runner {
    /// Report label.
    pub fn label(&self) -> String {
        match self {
            Runner::Relational(f) => f.label().to_string(),
            Runner::Grouping(g) => g.label().to_string(),
            Runner::Ntga(s) => s.label(),
            Runner::NtgaCost => "CostBased".to_string(),
        }
    }

    /// The panel used by most figures: Pig, Hive, EagerUnnest, LazyUnnest.
    pub fn paper_panel(phi: u64) -> Vec<Runner> {
        vec![
            Runner::Relational(relbase::RelFlavor::Pig),
            Runner::Relational(relbase::RelFlavor::Hive),
            Runner::Ntga(Strategy::Eager),
            Runner::Ntga(Strategy::Auto(phi)),
        ]
    }

    /// Execute one query on a fresh engine built from `cluster`.
    pub fn run(
        &self,
        cluster: &ntga::ClusterConfig,
        store: &TripleStore,
        query: &Query,
        label: &str,
    ) -> QueryRun {
        let engine = cluster.engine_with(store);
        let result = match self {
            Runner::Relational(f) => {
                relbase::execute(*f, &engine, query, mr_rdf::TRIPLES_FILE, label, false)
            }
            Runner::Grouping(g) => {
                relbase::execute_grouping(*g, &engine, query, mr_rdf::TRIPLES_FILE, label, false)
            }
            Runner::Ntga(s) => {
                ntga_core::execute(*s, &engine, query, mr_rdf::TRIPLES_FILE, label, false)
            }
            Runner::NtgaCost => {
                let stats = store.stats();
                ntga_core::execute_cost_based(
                    ntga_core::DataPlane::Lexical,
                    &engine,
                    query,
                    mr_rdf::TRIPLES_FILE,
                    label,
                    false,
                    &stats,
                )
            }
        };
        result.unwrap_or_else(|e| panic!("{label}: planning failed: {e}"))
    }
}

/// Run a panel of runners over a set of queries, returning report rows.
pub fn run_panel(
    cluster: &ntga::ClusterConfig,
    store: &TripleStore,
    queries: &[(String, Query)],
    runners: &[Runner],
) -> Vec<report::Row> {
    let mut rows = Vec::new();
    for (qid, query) in queries {
        for runner in runners {
            let label = format!("{qid}-{}", runner.label());
            let run = runner.run(cluster, store, query, &label);
            rows.push(report::Row::from_run(qid, &runner.label(), &run));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_entities() {
        assert_eq!(Scale::Small.entities(10), 10);
        assert_eq!(Scale::Medium.entities(10), 40);
        assert_eq!(Scale::Large.entities(10), 160);
    }

    #[test]
    fn panel_runs_and_reports() {
        let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(20));
        let q = rdf_query::parse_query(
            "SELECT * WHERE { ?p <rdfs:label> ?l . ?p ?u ?x . ?x <rdfs:label> ?l2 . }",
        )
        .unwrap();
        let rows = run_panel(
            &ntga::ClusterConfig::default(),
            &store,
            &[("B1ish".to_string(), q)],
            &Runner::paper_panel(64),
        );
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.ok));
        // NTGA rows should show fewer cycles than relational rows.
        let ntga_cycles = rows.iter().find(|r| r.approach.contains("Lazy")).unwrap().mr_cycles;
        let hive_cycles = rows.iter().find(|r| r.approach == "Hive").unwrap().mr_cycles;
        assert!(ntga_cycles < hive_cycles);
        // The NTGA rows carry operator counters; relational plans record
        // none (their operators don't count yet).
        for r in &rows {
            if r.approach.contains("Lazy") || r.approach == "EagerUnnest" {
                assert!(!r.ops.is_empty(), "{} rows must carry ntga.* counters", r.approach);
                assert!(r.ops.get(ntga_core::physical::op::GROUPS_IN) > 0);
            }
        }
        let json = report::rows_json(&rows);
        mrsim::trace::validate_json(&json).unwrap();
    }

    #[test]
    fn bench_opts_parse() {
        let opts = BenchOpts::parse(Vec::new()).unwrap();
        assert!(opts.trace.is_none() && opts.json.is_none() && opts.sink.is_none());

        let dir = std::env::temp_dir();
        let trace = dir.join(format!("bench-opts-{}.trace.json", std::process::id()));
        let json = dir.join(format!("bench-opts-{}.rows.json", std::process::id()));
        let opts = BenchOpts::parse(
            ["--trace", trace.to_str().unwrap(), "--json", json.to_str().unwrap()]
                .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.trace.as_deref(), Some(trace.as_path()));
        assert!(opts.sink.is_some());
        // The traced cluster config carries the sink.
        let cluster = opts.cluster(ntga::ClusterConfig::default());
        assert!(cluster.trace.is_some());
        opts.finish(&[]);
        assert_eq!(std::fs::read_to_string(&json).unwrap(), "[]");
        for p in [&json, &trace, &trace.with_extension("jsonl")] {
            let _ = std::fs::remove_file(p);
        }

        assert!(BenchOpts::parse(["--trace".to_string()]).is_err());
        assert!(BenchOpts::parse(["--profile".to_string()]).is_err());
        assert!(BenchOpts::parse(["--bogus".to_string()]).is_err());
    }

    #[test]
    fn profile_flag_writes_explain_analyze() {
        let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(20));
        let q = rdf_query::parse_query(
            "SELECT * WHERE { ?p <rdfs:label> ?l . ?p ?u ?x . ?x <rdfs:label> ?l2 . }",
        )
        .unwrap();
        let queries = vec![("B1ish".to_string(), q)];
        let path = std::env::temp_dir().join(format!("bench-profile-{}.json", std::process::id()));
        let opts =
            BenchOpts::parse(["--profile", path.to_str().unwrap()].map(String::from)).unwrap();
        assert_eq!(opts.profile.as_deref(), Some(path.as_path()));
        let cluster = ntga::ClusterConfig::default();
        opts.write_profile(&cluster, &store, &queries);
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        mrsim::trace::validate_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        assert!(json.contains("\"operators\":["), "{json}");
        assert!(json.contains("TG_GroupFilter"), "{json}");
        assert!(json.contains("\"reconciliation\":"), "{json}");

        // Without the flag, write_profile is a no-op.
        let opts = BenchOpts::parse(Vec::new()).unwrap();
        opts.write_profile(&cluster, &store, &queries);
        assert!(!path.exists());

        // The library entry point returns the same profiles directly, and
        // their q-errors stay consistent with the runs' workflow stats.
        let profiles = profile_queries(&cluster, &store, &queries).unwrap();
        assert_eq!(profiles.len(), 1);
        let op_max = profiles[0]
            .operators
            .iter()
            .filter_map(|o| o.q_error)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(Some(op_max), profiles[0].max_q_error);
    }

    #[test]
    fn strategy_flag_overrides_panel() {
        let opts = BenchOpts::parse(["--strategy", "auto-cost"].map(String::from)).unwrap();
        assert!(matches!(opts.strategy, Some(Runner::NtgaCost)));
        let panel = opts.panel_or(Runner::paper_panel(64));
        assert_eq!(panel.len(), 1);
        assert_eq!(panel[0].label(), "CostBased");

        let opts = BenchOpts::parse(["--strategy", "lazy-partial:32"].map(String::from)).unwrap();
        assert!(matches!(opts.strategy, Some(Runner::Ntga(Strategy::LazyPartial(32)))));
        let opts = BenchOpts::parse(["--strategy", "auto:8"].map(String::from)).unwrap();
        assert!(matches!(opts.strategy, Some(Runner::Ntga(Strategy::Auto(8)))));
        let opts = BenchOpts::parse(["--strategy", "eager"].map(String::from)).unwrap();
        assert!(matches!(opts.strategy, Some(Runner::Ntga(Strategy::Eager))));

        // No override: the default panel passes through untouched.
        let opts = BenchOpts::parse(Vec::new()).unwrap();
        assert_eq!(opts.panel_or(Runner::paper_panel(64)).len(), 4);

        assert!(BenchOpts::parse(["--strategy".to_string()]).is_err());
        assert!(BenchOpts::parse(["--strategy", "bogus"].map(String::from)).is_err());
        assert!(BenchOpts::parse(["--strategy", "lazy-partial:x"].map(String::from)).is_err());
    }

    #[test]
    fn cost_based_runner_reports_q_error() {
        let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(20));
        let q = rdf_query::parse_query(
            "SELECT * WHERE { ?p <rdfs:label> ?l . ?p ?u ?x . ?x <rdfs:label> ?l2 . }",
        )
        .unwrap();
        let rows = run_panel(
            &ntga::ClusterConfig::default(),
            &store,
            &[("B1ish".to_string(), q)],
            &[Runner::NtgaCost, Runner::Ntga(Strategy::Auto(64))],
        );
        assert!(rows.iter().all(|r| r.ok));
        let cost = rows.iter().find(|r| r.approach == "CostBased").unwrap();
        let auto = rows.iter().find(|r| r.approach.contains("auto")).unwrap();
        // Same answer, and the cost-based rows carry the estimator's
        // q-error while hand-picked strategies have no estimates.
        assert_eq!(cost.result_records, auto.result_records);
        assert!(cost.max_q_error.is_some());
        assert!(auto.max_q_error.is_none());
        let json = report::rows_json(&rows);
        mrsim::trace::validate_json(&json).unwrap();
        assert!(json.contains("\"max_q_error\":null"), "{json}");
    }
}
