//! Criterion end-to-end benchmarks: query B1 under every approach on a
//! small BSBM-like dataset — the per-strategy cost the figure binaries
//! measure, as a tracked regression benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntga::prelude::*;
use std::hint::black_box;

fn bench_b1_all_approaches(c: &mut Criterion) {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(60));
    let b1 = ntga::testbed::b_series().remove(1);
    let mut group = c.benchmark_group("endtoend_b1");
    group.sample_size(10);
    for approach in [
        Approach::Pig,
        Approach::Hive,
        Approach::NtgaEager,
        Approach::NtgaLazyFull,
        Approach::NtgaAuto(1024),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(approach.label()),
            &approach,
            |b, &approach| {
                b.iter(|| {
                    let engine = ClusterConfig::default().engine_with(&store);
                    black_box(run_query(approach, &engine, &b1.query, "bench", false).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_grouping_cycle(c: &mut Criterion) {
    // Job 1 alone: the all-stars-in-one-cycle grouping that is NTGA's
    // structural advantage.
    let store = datagen::bio2rdf::generate(&datagen::Bio2RdfConfig::with_genes(100));
    let a6 = ntga::testbed::a_series().remove(5);
    let mut group = c.benchmark_group("grouping_cycle_a6");
    group.sample_size(10);
    for (label, eager) in [("lazy", false), ("eager", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let engine = ClusterConfig::default().engine_with(&store);
                let job = ntga_core::physical::group_filter_job(
                    "j1",
                    &a6.query,
                    TRIPLES_FILE,
                    vec!["e0".into(), "e1".into()],
                    eager,
                );
                black_box(engine.run_job(&job).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_b1_all_approaches, bench_grouping_cycle);
criterion_main!(benches);
