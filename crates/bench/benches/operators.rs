//! Criterion micro-benchmarks for the NTGA core operators: grouping,
//! group-filtering, β-unnest (full and partial), join expansions, record
//! codecs and the query parser.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrsim::Rec;
use ntga_core::logical::{beta_group_filter, beta_unnest, group_by_subject, partial_beta_unnest};
use ntga_core::physical::{join_expansions, phi, JoinRole};
use std::hint::black_box;

fn bench_grouping(c: &mut Criterion) {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(500));
    let triples: Vec<_> = store.triples().to_vec();
    c.bench_function("gamma/group_by_subject/18k_triples", |b| {
        b.iter(|| group_by_subject(black_box(&triples)))
    });
}

fn bench_group_filter(c: &mut Criterion) {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(500));
    let tgs = group_by_subject(store.triples());
    let star = rdf_query::parse_query(
        "SELECT * WHERE { ?p <rdfs:label> ?l . ?p <bsbm:productFeature> ?f . ?p ?u ?x . }",
    )
    .unwrap()
    .stars
    .remove(0);
    c.bench_function("sigma_beta_gamma/group_filter", |b| {
        b.iter(|| beta_group_filter(black_box(&tgs), black_box(&star), 0))
    });
}

fn anntg_with_candidates(n: usize) -> ntga_core::AnnTg {
    ntga_core::AnnTg {
        subject: "<gene9>".into(),
        ec: 0,
        bound: vec![("<rdfs:label>".into(), vec!["\"retinoid receptor\"".into()])],
        unbound: vec![(0..n)
            .map(|i| ("<bio:xRef>".to_string(), format!("<ref{i}>")))
            .collect()],
    }
}

fn bench_unnest(c: &mut Criterion) {
    let mut group = c.benchmark_group("beta_unnest");
    for n in [4usize, 64, 1024] {
        let tg = anntg_with_candidates(n);
        group.bench_with_input(BenchmarkId::new("full", n), &tg, |b, tg| {
            b.iter(|| beta_unnest(black_box(tg)))
        });
        group.bench_with_input(BenchmarkId::new("partial_phi64", n), &tg, |b, tg| {
            b.iter(|| partial_beta_unnest(black_box(tg), 0, |o| phi(o, 64)))
        });
    }
    group.finish();
}

fn bench_join_expansions(c: &mut Criterion) {
    let tg = anntg_with_candidates(256);
    c.bench_function("join_expansions/unbound_256", |b| {
        b.iter(|| join_expansions(black_box(&tg), JoinRole::UnboundObj(0)))
    });
    c.bench_function("join_expansions/subject", |b| {
        b.iter(|| join_expansions(black_box(&tg), JoinRole::Subject))
    });
}

fn bench_codecs(c: &mut Criterion) {
    let tg = anntg_with_candidates(64);
    let tuple = ntga_core::TgTuple(vec![tg]);
    let bytes = tuple.to_bytes();
    c.bench_function("codec/anntg_encode_64cand", |b| {
        b.iter(|| black_box(&tuple).to_bytes())
    });
    c.bench_function("codec/anntg_decode_64cand", |b| {
        b.iter(|| ntga_core::TgTuple::from_bytes(black_box(&bytes)).unwrap())
    });
    c.bench_function("codec/anntg_text_size", |b| b.iter(|| black_box(&tuple).text_size()));
}

fn bench_parser(c: &mut Criterion) {
    let text = "SELECT ?g ?p WHERE {
        ?g <rdfs:label> ?l . ?g <bio:xGO> ?go . ?g ?p ?x .
        ?go <go:label> ?gl .
        FILTER contains(?x, \"hexokinase\") . }";
    c.bench_function("parser/two_star_unbound", |b| {
        b.iter(|| rdf_query::parse_query(black_box(text)).unwrap())
    });
    let doc = {
        let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(100));
        store.iter().map(|t| format!("{t}\n")).collect::<String>()
    };
    c.bench_function("parser/ntriples_3k_rows", |b| {
        b.iter(|| rdf_model::parse_str(black_box(&doc)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_grouping,
    bench_group_filter,
    bench_unnest,
    bench_join_expansions,
    bench_codecs,
    bench_parser
);
criterion_main!(benches);
