//! Criterion micro-benchmarks for the NTGA core operators: grouping,
//! group-filtering, β-unnest (full and partial), join expansions, record
//! codecs, the query parser, and the engine's map→reduce shuffle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrsim::Rec;
use ntga_core::logical::{beta_group_filter, beta_unnest, group_by_subject, partial_beta_unnest};
use ntga_core::physical::{join_expansions, phi, JoinRole};
use std::hint::black_box;

fn bench_grouping(c: &mut Criterion) {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(500));
    let triples: Vec<_> = store.triples().to_vec();
    c.bench_function("gamma/group_by_subject/18k_triples", |b| {
        b.iter(|| group_by_subject(black_box(&triples)))
    });
}

fn bench_group_filter(c: &mut Criterion) {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(500));
    let tgs = group_by_subject(store.triples());
    let star = rdf_query::parse_query(
        "SELECT * WHERE { ?p <rdfs:label> ?l . ?p <bsbm:productFeature> ?f . ?p ?u ?x . }",
    )
    .unwrap()
    .stars
    .remove(0);
    c.bench_function("sigma_beta_gamma/group_filter", |b| {
        b.iter(|| beta_group_filter(black_box(&tgs), black_box(&star), 0))
    });
}

fn anntg_with_candidates(n: usize) -> ntga_core::AnnTg {
    ntga_core::AnnTg {
        subject: "<gene9>".into(),
        ec: 0,
        bound: vec![("<rdfs:label>".into(), vec!["\"retinoid receptor\"".into()])],
        unbound: vec![(0..n).map(|i| ("<bio:xRef>".into(), format!("<ref{i}>").into())).collect()],
    }
}

fn bench_unnest(c: &mut Criterion) {
    let mut group = c.benchmark_group("beta_unnest");
    for n in [4usize, 64, 1024] {
        let tg = anntg_with_candidates(n);
        group.bench_with_input(BenchmarkId::new("full", n), &tg, |b, tg| {
            b.iter(|| beta_unnest(black_box(tg)))
        });
        group.bench_with_input(BenchmarkId::new("partial_phi64", n), &tg, |b, tg| {
            b.iter(|| partial_beta_unnest(black_box(tg), 0, |o| phi(o, 64)))
        });
    }
    group.finish();
}

fn bench_join_expansions(c: &mut Criterion) {
    let tg = anntg_with_candidates(256);
    c.bench_function("join_expansions/unbound_256", |b| {
        b.iter(|| join_expansions(black_box(&tg), JoinRole::UnboundObj(0)))
    });
    c.bench_function("join_expansions/subject", |b| {
        b.iter(|| join_expansions(black_box(&tg), JoinRole::Subject))
    });
}

fn bench_codecs(c: &mut Criterion) {
    let tg = anntg_with_candidates(64);
    let tuple = ntga_core::TgTuple(vec![tg]);
    let bytes = tuple.to_bytes();
    c.bench_function("codec/anntg_encode_64cand", |b| b.iter(|| black_box(&tuple).to_bytes()));
    c.bench_function("codec/anntg_decode_64cand", |b| {
        b.iter(|| ntga_core::TgTuple::from_bytes(black_box(&bytes)).unwrap())
    });
    c.bench_function("codec/anntg_text_size", |b| b.iter(|| black_box(&tuple).text_size()));
}

fn bench_parser(c: &mut Criterion) {
    let text = "SELECT ?g ?p WHERE {
        ?g <rdfs:label> ?l . ?g <bio:xGO> ?go . ?g ?p ?x .
        ?go <go:label> ?gl .
        FILTER contains(?x, \"hexokinase\") . }";
    c.bench_function("parser/two_star_unbound", |b| {
        b.iter(|| rdf_query::parse_query(black_box(text)).unwrap())
    });
    let doc = {
        let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(100));
        store.iter().map(|t| format!("{t}\n")).collect::<String>()
    };
    c.bench_function("parser/ntriples_3k_rows", |b| {
        b.iter(|| rdf_model::parse_str(black_box(&doc)).unwrap())
    });
}

/// An encoded shuffle pair, as the engine moves them.
type Pair = (Vec<u8>, Vec<u8>);

/// Synthetic map output: `n_tasks` map tasks' worth of encoded key/value
/// pairs over a realistic key population.
fn synthetic_map_output(n_tasks: usize, pairs_per_task: usize) -> Vec<Vec<Pair>> {
    (0..n_tasks)
        .map(|t| {
            (0..pairs_per_task)
                .map(|i| {
                    let key = format!("<subject{}>", (t * 31 + i * 7) % 4096).into_bytes();
                    let value = format!("<p{}>\t<o{}>", i % 17, i).into_bytes();
                    (key, value)
                })
                .collect()
        })
        .collect()
}

/// Shuffle handoff throughput, isolated from map/reduce user code.
///
/// Old driver-side scheme: map tasks hand the driver one flat vector
/// each; the driver concatenates them into a global pair vector, then
/// hashes and scatters every pair into its partition — two moves plus a
/// hash per pair, all on the single-threaded driver.
///
/// New map-side scheme: each map task spills into per-partition buckets
/// as it emits (routing replaces a plain push inside the task, where it
/// runs in parallel with map CPU across workers), so by handoff time the
/// buckets already exist and the driver only concatenates whole buckets
/// per partition — one move per pair, no hashing, no global vector.
///
/// Both sides clone the same pairs from the same pre-built task outputs,
/// so the measured difference is exactly the driver's critical path.
fn bench_shuffle(c: &mut Criterion) {
    const TASKS: usize = 8;
    const PARTITIONS: usize = 8;
    let flat_tasks = synthetic_map_output(TASKS, 20_000);
    // What the engine's map tasks now hand over: pre-bucketed spills.
    let bucketed_tasks: Vec<Vec<Vec<Pair>>> = flat_tasks
        .iter()
        .map(|task| {
            let mut buckets: Vec<Vec<Pair>> = vec![Vec::new(); PARTITIONS];
            for (k, v) in task {
                buckets[mrsim::default_partition(k, PARTITIONS)].push((k.clone(), v.clone()));
            }
            buckets
        })
        .collect();

    let mut group = c.benchmark_group("shuffle");
    group.bench_function("driver_side_partition", |b| {
        b.iter(|| {
            let mut all: Vec<Pair> = Vec::new();
            for task in black_box(&flat_tasks) {
                all.extend(task.iter().cloned());
            }
            let mut parts: Vec<Vec<Pair>> = vec![Vec::new(); PARTITIONS];
            for (k, v) in all {
                let p = mrsim::default_partition(&k, PARTITIONS);
                parts[p].push((k, v));
            }
            parts
        })
    });
    group.bench_function("map_side_partition", |b| {
        b.iter(|| {
            let mut parts: Vec<Vec<Pair>> = vec![Vec::new(); PARTITIONS];
            for task in black_box(&bucketed_tasks) {
                for (p, bucket) in task.iter().enumerate() {
                    parts[p].extend(bucket.iter().cloned());
                }
            }
            parts
        })
    });
    group.finish();

    // End-to-end: the simulated engine running an 8-worker wordcount whose
    // cost is dominated by the shuffle path exercised above.
    let engine = mrsim::Engine::unbounded().with_workers(8);
    engine
        .put_records("bench-shuffle-in", (0..40_000).map(|i| format!("<subject{}>", i % 4096)))
        .unwrap();
    c.bench_function("shuffle/engine_wordcount_8workers", |b| {
        b.iter(|| {
            let _ = engine.hdfs().lock().delete("bench-shuffle-out");
            let mapper =
                mrsim::map_fn(|w: String, out: &mut mrsim::TypedMapEmitter<'_, String, u64>| {
                    out.emit(&w, &1);
                    Ok(())
                });
            let reducer = mrsim::reduce_fn(
                |w: String, ones: Vec<u64>, out: &mut mrsim::TypedOutEmitter<'_, (String, u64)>| {
                    out.emit(&(w, ones.iter().sum()))
                },
            );
            let spec = mrsim::JobSpec::map_reduce(
                "bench-shuffle",
                vec![mrsim::InputBinding { file: "bench-shuffle-in".into(), mapper }],
                reducer,
                PARTITIONS,
                "bench-shuffle-out",
            );
            engine.run_job(&spec).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_grouping,
    bench_group_filter,
    bench_unnest,
    bench_join_expansions,
    bench_codecs,
    bench_parser,
    bench_shuffle
);
criterion_main!(benches);
