//! Arena sort in isolation: the spill-index ordering step the shuffle
//! path pays per bucket, benchmarked away from map decode and reduce
//! work. Two key mixes bracket the radix sort's range:
//!
//! * `ids` — composite LEB128-varint dictionary-id keys. Canonical
//!   varints never share an 8-byte prefix, so the cached prefixes decide
//!   every comparison and the radix counting passes see real byte
//!   entropy (most high bytes are constant zero padding and skip).
//! * `lex` — lexical IRI/literal tokens. Nearly every key starts with
//!   `<http://example.org/…`, so all prefixes collapse into a handful of
//!   values, the counting passes skip, and the radix sort degenerates to
//!   the comparison fallback within prefix-equal runs. This mix pins the
//!   worst case: radix must not *lose* to the comparison sort here.
//!
//! Both strategies are benchmarked on both mixes; `BENCH_PR10.json`
//! records the pairs (radix-vs-comparison per mix).

use criterion::{criterion_group, criterion_main, Criterion};
use mrsim::{Rec, SortStrategy, SpillArena, VarId};
use std::hint::black_box;

/// Entries per arena — the shuffle bench's per-partition volume
/// (`ROWS × FANOUT / PARTITIONS` at 30 000 × 4 / 8) rounded up.
const ENTRIES: usize = 16_000;

/// Lexical token shapes mirroring the shuffle bench's `row()`.
fn lex_key(i: usize) -> String {
    match i % 3 {
        0 => format!("<http://example.org/vocab/class{}>#{}", i % 97, i % 4),
        1 => format!("\"literal value number {}\"#{}", i % 977, i % 4),
        _ => format!("<http://example.org/resource/s{}>#{}", (i * 7) % 5_000, i % 4),
    }
}

fn lex_arena() -> SpillArena {
    let mut arena = SpillArena::default();
    for i in 0..ENTRIES {
        let key = lex_key(i).to_bytes();
        let val = format!("<http://example.org/resource/s{}>", i % 5_000).to_bytes();
        arena.push_pair(&key, &val, 0);
    }
    arena
}

fn id_arena() -> SpillArena {
    let mut arena = SpillArena::default();
    for i in 0..ENTRIES {
        let key = (VarId((i % 5_000) as u32), VarId((i % 4) as u32)).to_bytes();
        let val = VarId(((i * 7) % 5_000) as u32).to_bytes();
        arena.push_pair(&key, &val, 0);
    }
    arena
}

fn bench_sort_only(c: &mut Criterion) {
    // Each iteration clones the unsorted arena before sorting (the
    // harness has no batched setup), so every record carries the same
    // memcpy constant — the `clone_baseline_*` records pin that constant
    // for anyone subtracting it out of the strategy numbers.
    let mut group = c.benchmark_group("sort_only");
    group.sample_size(20);
    for (mix, arena) in [("ids", id_arena()), ("lex", lex_arena())] {
        group.bench_function(format!("clone_baseline_{mix}"), |b| {
            b.iter(|| black_box(arena.clone()))
        });
        for (tag, strategy) in
            [("radix", SortStrategy::Radix), ("comparison", SortStrategy::Comparison)]
        {
            group.bench_function(format!("{tag}_{mix}"), |b| {
                b.iter(|| {
                    let mut a = arena.clone();
                    a.sort_with(strategy);
                    black_box(a)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sort_only);
criterion_main!(benches);
