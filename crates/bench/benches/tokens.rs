//! Token-representation benchmark: the decode → group-by → full β-unnest
//! hot path over a BSBM-like batch, run once with the historical owned
//! `String` representation (re-implemented here as a mirror of the
//! pre-migration code) and once with the pipeline's interned `Atom`
//! representation. The `Atom` path clones tokens by bumping a reference
//! count and shares one allocation per distinct token within a task, where
//! the `String` path re-copies every token at every clone site.

use criterion::{criterion_group, criterion_main, Criterion};
use mr_rdf::TripleRec;
use mrsim::Rec;
use ntga_core::logical::{beta_group_filter, beta_unnest, group_by_subject};
use rdf_model::atom::AtomTable;
use rdf_query::StarPattern;
use std::collections::BTreeMap;
use std::hint::black_box;

fn star() -> StarPattern {
    // Two unbound patterns: the full unnest materializes the cross product
    // of their candidate lists, cloning the whole bound component into
    // every combination — the redundancy whose token-copy cost the Atom
    // migration removes.
    rdf_query::parse_query(
        "SELECT * WHERE { ?p <rdfs:label> ?l . ?p <bsbm:productFeature> ?f . ?p ?u ?x . ?p ?v ?y . }",
    )
    .unwrap()
    .stars
    .remove(0)
}

/// The encoded batch a map task would decode: every BSBM triple as wire
/// bytes (identical for both representations — the codec is byte-stable).
fn encoded_batch() -> Vec<Vec<u8>> {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig::with_products(300));
    store.triples().iter().map(|t| TripleRec(t.clone()).to_bytes()).collect()
}

// ---- String mirror of the pre-migration pipeline ----------------------

struct StringTriple {
    s: String,
    p: String,
    o: String,
}

fn decode_string(buf: &[u8]) -> StringTriple {
    fn read_str(buf: &[u8], at: &mut usize) -> String {
        let len = u32::from_le_bytes(buf[*at..*at + 4].try_into().unwrap()) as usize;
        *at += 4;
        let s = std::str::from_utf8(&buf[*at..*at + len]).unwrap().to_string();
        *at += len;
        s
    }
    let mut at = 0;
    let s = read_str(buf, &mut at);
    let p = read_str(buf, &mut at);
    let o = read_str(buf, &mut at);
    StringTriple { s, p, o }
}

struct StringAnnTg {
    subject: String,
    bound: Vec<(String, Vec<String>)>,
    unbound: Vec<Vec<(String, String)>>,
}

/// group-by + σ^βγ + full μ^β with owned-String clones, mirroring the
/// pre-migration operators structure-for-structure: the only difference
/// from `atom_pipeline` is the token type, so the measured gap is the cost
/// of copying heap strings at every clone site.
fn string_pipeline(batch: &[Vec<u8>], star: &StarPattern) -> usize {
    // Decode the whole chunk first, as the typed adapter era did.
    let decoded: Vec<StringTriple> = batch.iter().map(|rec| decode_string(rec)).collect();
    // γ: group triples by subject. `group_by_subject` takes a borrowed
    // slice, so the String era cloned every token here.
    let mut groups: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for t in &decoded {
        groups.entry(t.s.clone()).or_default().push((t.p.clone(), t.o.clone()));
    }
    // σ^βγ: admit subjects carrying every bound property; candidates for
    // each unbound pattern are the subject's full pair list.
    let bound_props: Vec<String> = star.bound_properties().iter().map(|p| p.to_string()).collect();
    let n_unbound = star.unbound_patterns().len();
    let mut anns: Vec<StringAnnTg> = Vec::new();
    for (subject, pairs) in &groups {
        let mut bound = Vec::with_capacity(bound_props.len());
        let mut ok = true;
        for bp in &bound_props {
            let objs: Vec<String> =
                pairs.iter().filter(|(p, _)| p == bp).map(|(_, o)| o.clone()).collect();
            if objs.is_empty() {
                ok = false;
                break;
            }
            bound.push((bp.clone(), objs));
        }
        if !ok {
            continue;
        }
        let cands: Vec<(String, String)> = pairs.clone();
        anns.push(StringAnnTg { subject: subject.clone(), bound, unbound: vec![cands; n_unbound] });
    }
    // μ^β: one perfect triplegroup per combination — subject, the whole
    // bound component, and the pinned candidate are all cloned and the
    // perfect groups accumulated, exactly as the pre-migration
    // `beta_unnest` did.
    let mut out = 0usize;
    for ann in &anns {
        let dims: Vec<usize> = ann.unbound.iter().map(Vec::len).collect();
        if dims.contains(&0) {
            continue;
        }
        let mut perfect: Vec<StringAnnTg> = Vec::new();
        let mut done = false;
        let mut cursor = vec![0usize; dims.len()];
        while !done {
            let unbound: Vec<Vec<(String, String)>> =
                cursor.iter().enumerate().map(|(j, &c)| vec![ann.unbound[j][c].clone()]).collect();
            perfect.push(StringAnnTg {
                subject: ann.subject.clone(),
                bound: ann.bound.clone(),
                unbound,
            });
            let mut pos = dims.len();
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                cursor[pos] += 1;
                if cursor[pos] < dims[pos] {
                    break;
                }
                cursor[pos] = 0;
            }
        }
        out += black_box(perfect).len();
    }
    out
}

/// The real pipeline: interned decode, `group_by_subject`, σ^βγ, full μ^β.
fn atom_pipeline(batch: &[Vec<u8>], star: &StarPattern) -> usize {
    let table = AtomTable::new();
    let triples: Vec<rdf_model::STriple> =
        batch.iter().map(|rec| TripleRec::from_bytes_with(rec, &table).unwrap().0).collect();
    let tgs = group_by_subject(&triples);
    let anns = beta_group_filter(&tgs, star, 0);
    anns.iter().map(|ann| black_box(beta_unnest(ann)).len()).sum()
}

fn bench_tokens(c: &mut Criterion) {
    let batch = encoded_batch();
    let star = star();
    let mut group = c.benchmark_group("token_repr");
    group.bench_function("string/decode_group_unnest", |b| {
        b.iter(|| string_pipeline(black_box(&batch), black_box(&star)))
    });
    group.bench_function("atom/decode_group_unnest", |b| {
        b.iter(|| atom_pipeline(black_box(&batch), black_box(&star)))
    });
    group.finish();
}

criterion_group!(benches, bench_tokens);
criterion_main!(benches);
