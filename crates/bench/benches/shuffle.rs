//! Shuffle-heavy Criterion benchmark: the full decode→group→emit→sort→
//! reduce data path of the simulated engine, shaped like the paper's
//! unbound-property workloads — every input record fans out into several
//! shuffle pairs (a β-unnest-style expansion), so encode/spill/sort cost
//! dominates map CPU. The lexical variants are the `BENCH_PR5.json`
//! baselines; the `_ids` variants ship LEB128-varint dictionary ids
//! through the same path and are gated by `BENCH_PR6.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsim::{
    combine_fn, map_fn, map_fn_ctx, reduce_fn, reduce_fn_ctx, Engine, InputBinding, JobSpec,
    SortStrategy, TaskContext, TypedMapEmitter, TypedOutEmitter, VarId,
};
use rdf_model::atom::atom;
use rdf_model::Dictionary;
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 30_000;
const FANOUT: usize = 4;
const PARTITIONS: usize = 8;

/// One `(subject, object)` row of the benchmark relation: realistic RDF
/// token shapes — shared IRI prefixes and mixed lengths, so the shuffle
/// sort sees both prefix ties and early-differing keys.
fn row(i: usize) -> (String, String) {
    let subject = format!("<http://example.org/resource/s{}>", i % 5_000);
    let object = match i % 3 {
        0 => format!("<http://example.org/vocab/class{}>", i % 97),
        1 => format!("\"literal value number {}\"", i % 977),
        _ => format!("<http://example.org/resource/s{}>", (i * 7) % 5_000),
    };
    (subject, object)
}

fn put_input(engine: &Engine) {
    engine.put_records("shuffle-in", (0..ROWS).map(row)).unwrap();
}

/// The same relation dictionary-encoded: `(subject id, object id)` rows
/// plus the dictionary snapshot the ID-native job resolves through.
fn put_input_ids(engine: &Engine) -> Dictionary {
    let mut dict = Dictionary::new();
    let rows: Vec<(VarId, VarId)> = (0..ROWS)
        .map(|i| {
            let (s, o) = row(i);
            (VarId(dict.encode(&atom(&s))), VarId(dict.encode(&atom(&o))))
        })
        .collect();
    engine.put_records("shuffle-in-ids", rows).unwrap();
    dict
}

/// The job under test: decode each `(subject, object)` row, emit `FANOUT`
/// re-keyed pairs per row (object-join-style expansion), shuffle-sort the
/// ~`ROWS × FANOUT` pairs across `PARTITIONS` reducers, and group-count.
fn spec(with_combiner: bool, out: &str) -> JobSpec {
    let mapper =
        map_fn(move |(s, o): (String, String), out: &mut TypedMapEmitter<'_, String, String>| {
            for k in 0..FANOUT {
                let key = if k == 0 { o.clone() } else { format!("{o}#{k}") };
                out.emit(&key, &s);
            }
            Ok(())
        });
    let reducer = reduce_fn(
        |key: String, values: Vec<String>, out: &mut TypedOutEmitter<'_, (String, u64)>| {
            let total: u64 = values.iter().map(|v| v.len() as u64).sum();
            out.emit(&(key, total))
        },
    );
    let mut job = JobSpec::map_reduce(
        "shuffle-path",
        vec![InputBinding { file: "shuffle-in".into(), mapper }],
        reducer,
        PARTITIONS,
        out,
    );
    if with_combiner {
        let combiner = combine_fn(
            |key: String, values: Vec<String>, out: &mut TypedMapEmitter<'_, String, String>| {
                // Keep the shuffle shape but fold local duplicates.
                let mut values = values;
                values.sort_unstable();
                values.dedup();
                for v in values {
                    out.emit(&key, &v);
                }
                Ok(())
            },
        );
        job = job.with_combiner(combiner);
    }
    job
}

/// ID-native twin of [`spec`]: the same fanout/shuffle/group shape, but
/// the shuffle carries varint dictionary ids — composite `(object id,
/// fanout tag)` keys, subject-id values — and the reducer resolves ids
/// back to tokens at the output boundary through the engine's dictionary
/// snapshot.
fn spec_ids(with_combiner: bool, out: &str) -> JobSpec {
    let mapper = map_fn_ctx(
        move |_ctx: &TaskContext,
              (s, o): (VarId, VarId),
              out: &mut TypedMapEmitter<'_, (VarId, VarId), VarId>| {
            for k in 0..FANOUT {
                out.emit(&(o, VarId(k as u32)), &s);
            }
            Ok(())
        },
    );
    let reducer = reduce_fn_ctx(
        |ctx: &TaskContext,
         (o, k): (VarId, VarId),
         values: Vec<VarId>,
         out: &mut TypedOutEmitter<'_, (String, u64)>| {
            let key = ctx.resolve_atom(o.0)?;
            let mut total = 0u64;
            for v in &values {
                total += ctx.resolve_atom(v.0)?.len() as u64;
            }
            out.emit(&(format!("{key}#{}", k.0), total))
        },
    );
    let mut job = JobSpec::map_reduce(
        "shuffle-path-ids",
        vec![InputBinding { file: "shuffle-in-ids".into(), mapper }],
        reducer,
        PARTITIONS,
        out,
    );
    if with_combiner {
        let combiner = combine_fn(
            |key: (VarId, VarId),
             values: Vec<VarId>,
             out: &mut TypedMapEmitter<'_, (VarId, VarId), VarId>| {
                let mut values = values;
                values.sort_unstable_by_key(|v| v.0);
                values.dedup();
                for v in values {
                    out.emit(&key, &v);
                }
                Ok(())
            },
        );
        job = job.with_combiner(combiner);
    }
    job
}

/// Default sort strategy for every variant, from `NTGA_SORT`
/// (`radix`/`comparison`, default radix) — the hook CI uses to smoke the
/// whole bench under both strategies.
fn strategy_from_env() -> SortStrategy {
    match std::env::var("NTGA_SORT").as_deref() {
        Ok("comparison") => SortStrategy::Comparison,
        _ => SortStrategy::Radix,
    }
}

fn bench_shuffle_path(c: &mut Criterion) {
    let engine = Engine::unbounded().with_workers(8).with_sort_strategy(strategy_from_env());
    put_input(&engine);
    let mut group = c.benchmark_group("shuffle_path");
    group.sample_size(10);
    group.bench_function("rekey_fanout4_8workers", |b| {
        b.iter(|| {
            let _ = engine.hdfs().lock().delete("shuffle-out");
            black_box(engine.run_job(&spec(false, "shuffle-out")).unwrap())
        })
    });
    group.bench_function("rekey_fanout4_combined_8workers", |b| {
        b.iter(|| {
            let _ = engine.hdfs().lock().delete("shuffle-out-c");
            black_box(engine.run_job(&spec(true, "shuffle-out-c")).unwrap())
        })
    });
    let dict = put_input_ids(&engine);
    let engine = engine.with_dict(Arc::new(dict));
    group.bench_function("rekey_fanout4_8workers_ids", |b| {
        b.iter(|| {
            let _ = engine.hdfs().lock().delete("shuffle-out-ids");
            black_box(engine.run_job(&spec_ids(false, "shuffle-out-ids")).unwrap())
        })
    });
    group.bench_function("rekey_fanout4_combined_8workers_ids", |b| {
        b.iter(|| {
            let _ = engine.hdfs().lock().delete("shuffle-out-ids-c");
            black_box(engine.run_job(&spec_ids(true, "shuffle-out-ids-c")).unwrap())
        })
    });
    // Strategy A/B twins of the `_ids` variants: the same jobs forced onto
    // the comparison sort (the pre-radix shuffle path), interleaved in the
    // same binary run — `BENCH_PR10.json` pairs each against its radix
    // sibling above.
    let engine_cmp =
        Engine::unbounded().with_workers(8).with_sort_strategy(SortStrategy::Comparison);
    let dict_cmp = put_input_ids(&engine_cmp);
    let engine_cmp = engine_cmp.with_dict(Arc::new(dict_cmp));
    group.bench_function("rekey_fanout4_8workers_ids_cmpsort", |b| {
        b.iter(|| {
            let _ = engine_cmp.hdfs().lock().delete("shuffle-out-ids");
            black_box(engine_cmp.run_job(&spec_ids(false, "shuffle-out-ids")).unwrap())
        })
    });
    group.bench_function("rekey_fanout4_combined_8workers_ids_cmpsort", |b| {
        b.iter(|| {
            let _ = engine_cmp.hdfs().lock().delete("shuffle-out-ids-c");
            black_box(engine_cmp.run_job(&spec_ids(true, "shuffle-out-ids-c")).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shuffle_path);
criterion_main!(benches);
