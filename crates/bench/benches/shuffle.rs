//! Shuffle-heavy Criterion benchmark: the full decode→group→emit→sort→
//! reduce data path of the simulated engine, shaped like the paper's
//! unbound-property workloads — every input record fans out into several
//! shuffle pairs (a β-unnest-style expansion), so encode/spill/sort cost
//! dominates map CPU. This is the benchmark tracked by `BENCH_PR5.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsim::{
    combine_fn, map_fn, reduce_fn, Engine, InputBinding, JobSpec, TypedMapEmitter, TypedOutEmitter,
};
use std::hint::black_box;

const ROWS: usize = 30_000;
const FANOUT: usize = 4;
const PARTITIONS: usize = 8;

/// Input relation: RDF-flavored `(subject, object)` rows over a key
/// population with realistic token shapes — shared IRI prefixes and mixed
/// lengths, so the shuffle sort sees both prefix ties and early-differing
/// keys.
fn put_input(engine: &Engine) {
    let rows = (0..ROWS).map(|i| {
        let subject = format!("<http://example.org/resource/s{}>", i % 5_000);
        let object = match i % 3 {
            0 => format!("<http://example.org/vocab/class{}>", i % 97),
            1 => format!("\"literal value number {}\"", i % 977),
            _ => format!("<http://example.org/resource/s{}>", (i * 7) % 5_000),
        };
        (subject, object)
    });
    engine.put_records("shuffle-in", rows).unwrap();
}

/// The job under test: decode each `(subject, object)` row, emit `FANOUT`
/// re-keyed pairs per row (object-join-style expansion), shuffle-sort the
/// ~`ROWS × FANOUT` pairs across `PARTITIONS` reducers, and group-count.
fn spec(with_combiner: bool, out: &str) -> JobSpec {
    let mapper =
        map_fn(move |(s, o): (String, String), out: &mut TypedMapEmitter<'_, String, String>| {
            for k in 0..FANOUT {
                let key = if k == 0 { o.clone() } else { format!("{o}#{k}") };
                out.emit(&key, &s);
            }
            Ok(())
        });
    let reducer = reduce_fn(
        |key: String, values: Vec<String>, out: &mut TypedOutEmitter<'_, (String, u64)>| {
            let total: u64 = values.iter().map(|v| v.len() as u64).sum();
            out.emit(&(key, total))
        },
    );
    let mut job = JobSpec::map_reduce(
        "shuffle-path",
        vec![InputBinding { file: "shuffle-in".into(), mapper }],
        reducer,
        PARTITIONS,
        out,
    );
    if with_combiner {
        let combiner = combine_fn(
            |key: String, values: Vec<String>, out: &mut TypedMapEmitter<'_, String, String>| {
                // Keep the shuffle shape but fold local duplicates.
                let mut values = values;
                values.sort_unstable();
                values.dedup();
                for v in values {
                    out.emit(&key, &v);
                }
                Ok(())
            },
        );
        job = job.with_combiner(combiner);
    }
    job
}

fn bench_shuffle_path(c: &mut Criterion) {
    let engine = Engine::unbounded().with_workers(8);
    put_input(&engine);
    let mut group = c.benchmark_group("shuffle_path");
    group.sample_size(10);
    group.bench_function("rekey_fanout4_8workers", |b| {
        b.iter(|| {
            let _ = engine.hdfs().lock().delete("shuffle-out");
            black_box(engine.run_job(&spec(false, "shuffle-out")).unwrap())
        })
    });
    group.bench_function("rekey_fanout4_combined_8workers", |b| {
        b.iter(|| {
            let _ = engine.hdfs().lock().delete("shuffle-out-c");
            black_box(engine.run_job(&spec(true, "shuffle-out-c")).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shuffle_path);
criterion_main!(benches);
