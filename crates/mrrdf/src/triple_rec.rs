//! Triples as engine records.

use mrsim::{DfsFile, Engine, MrError, Rec, SliceReader};
use rdf_model::{STriple, TripleStore};

/// Conventional DFS name for the base triple relation.
pub const TRIPLES_FILE: &str = "triples";

/// An [`STriple`] wrapped as an `mrsim` record.
///
/// The simulated text size is the N-Triples row size
/// ([`STriple::text_size`]), so scans of the base relation cost exactly
/// what scanning the N-Triples file would cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleRec(pub STriple);

impl Rec for TripleRec {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.0.s.encode_into(buf);
        self.0.p.encode_into(buf);
        self.0.o.encode_into(buf);
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        let s = r.read_atom()?;
        let p = r.read_atom()?;
        let o = r.read_atom()?;
        Ok(TripleRec(STriple { s, p, o }))
    }

    fn text_size(&self) -> u64 {
        self.0.text_size()
    }
}

/// Load a triple store into the engine's DFS under `name`.
pub fn load_store(engine: &Engine, name: &str, store: &TripleStore) -> Result<(), MrError> {
    let mut file = DfsFile::default();
    for t in store.iter() {
        let rec = TripleRec(t.clone());
        file.text_bytes += rec.text_size();
        file.records.push(rec.to_bytes());
    }
    engine.hdfs().lock().put(name, file)
}

/// Read a triple relation back out of the engine's DFS — the inverse of
/// [`load_store`]. Cost-based planning uses it to derive
/// [`rdf_model::StoreStats`] for whatever relation an engine actually
/// holds when the caller has no handle on the original store.
pub fn read_store(engine: &Engine, name: &str) -> Result<TripleStore, MrError> {
    let file = engine.hdfs().lock().get(name)?;
    let mut triples = Vec::with_capacity(file.records.len());
    for raw in &file.records {
        triples.push(TripleRec::from_bytes(raw)?.0);
    }
    Ok(TripleStore::from_triples(triples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rec = TripleRec(STriple::new("<s>", "<p>", "\"o value\""));
        let back = TripleRec::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn text_size_is_ntriples_row() {
        let t = STriple::new("<s>", "<p>", "<o>");
        assert_eq!(TripleRec(t.clone()).text_size(), t.text_size());
    }

    #[test]
    fn load_store_accounts_bytes() {
        let engine = Engine::unbounded();
        let store = TripleStore::from_triples(vec![
            STriple::new("<a>", "<p>", "<b>"),
            STriple::new("<a>", "<q>", "\"x\""),
        ]);
        load_store(&engine, TRIPLES_FILE, &store).unwrap();
        let file = engine.hdfs().lock().get(TRIPLES_FILE).unwrap();
        assert_eq!(file.records.len(), 2);
        assert_eq!(file.text_bytes, store.text_bytes());
    }

    #[test]
    fn read_store_inverts_load_store() {
        let engine = Engine::unbounded();
        let store = TripleStore::from_triples(vec![
            STriple::new("<a>", "<p>", "<b>"),
            STriple::new("<a>", "<q>", "\"x\""),
        ]);
        load_store(&engine, TRIPLES_FILE, &store).unwrap();
        let back = read_store(&engine, TRIPLES_FILE).unwrap();
        assert_eq!(back.stats(), store.stats());
        assert!(matches!(read_store(&engine, "nope"), Err(MrError::NoSuchFile(_))));
    }
}
