//! # mr-rdf — shared MapReduce record types for RDF pipelines
//!
//! Both the relational baselines (`relbase`) and the NTGA engine
//! (`ntga-core`) move RDF data through `mrsim` jobs. This crate holds the
//! record types and helpers they share:
//!
//! * [`TripleRec`] — an [`rdf_model::STriple`] as an engine record (the base input
//!   relation);
//! * [`Row`] / [`RowSchema`] — schema'd n-tuples, the materialization of
//!   relational star-join results (3k-arity: subject/property/object per
//!   pattern, exactly the redundant representation the paper measures);
//! * [`IdTripleRec`] / [`IdRow`] and friends — the dictionary-ID-encoded
//!   (LEB128 varint) counterparts used by the ID-native data plane;
//! * [`load_store`] / [`load_store_ids`] — put a [`rdf_model::TripleStore`]
//!   into the simulated DFS, lexically or ID-encoded.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod id_match;
pub mod id_rec;
pub mod row;
pub mod run;
pub mod support;
pub mod triple_rec;

pub use id_match::{IdPatternTest, IdStarTest, IdTest};
pub use id_rec::{
    load_store_ids, IdPair, IdRow, IdTaggedPo, IdTripleRec, SidedIdRow, ID_TRIPLES_FILE,
};
pub use row::{Row, RowSchema};
pub use run::{PlanError, QueryRun};
pub use support::{check_query, check_star, UnsupportedReason};
pub use triple_rec::{load_store, read_store, TripleRec, TRIPLES_FILE};
