//! Shared planner error and run-result types.

use crate::support::UnsupportedReason;
use mrsim::WorkflowStats;
use rdf_query::{QueryError, SolutionSet};
use std::fmt;

/// Errors raised while *planning* a query (before any job runs).
///
/// Runtime failures (e.g. `DiskFull`) are not errors at this level: they
/// come back as a [`QueryRun`] whose stats record the failure, mirroring
/// how the paper reports failed executions as data points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The query is structurally invalid.
    Query(QueryError),
    /// The query shape is valid but unsupported by the MR planners.
    Unsupported(UnsupportedReason),
    /// Planner invariant violation (a bug).
    Internal(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Query(e) => write!(f, "invalid query: {e}"),
            PlanError::Unsupported(e) => write!(f, "unsupported by MR planners: {e}"),
            PlanError::Internal(m) => write!(f, "planner bug: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<QueryError> for PlanError {
    fn from(e: QueryError) -> Self {
        PlanError::Query(e)
    }
}

impl From<UnsupportedReason> for PlanError {
    fn from(e: UnsupportedReason) -> Self {
        PlanError::Unsupported(e)
    }
}

/// The outcome of executing one query with one strategy.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Workflow counters (cycles, bytes, simulated seconds, success flag).
    pub stats: WorkflowStats,
    /// The solution set, present only when the workflow succeeded and the
    /// caller asked for result extraction.
    pub solutions: Option<SolutionSet>,
}

impl QueryRun {
    /// True if the workflow completed.
    pub fn succeeded(&self) -> bool {
        self.stats.succeeded
    }

    /// Operator-level counters merged across every job of the workflow
    /// (e.g. the `ntga.*` counters recorded by the physical operators).
    pub fn op_counters(&self) -> mrsim::OpCounters {
        self.stats.op_counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: PlanError = QueryError::Empty.into();
        assert!(e.to_string().contains("invalid query"));
        let u: PlanError =
            UnsupportedReason::MultiVarJoin { left: "a".into(), right: "b".into() }.into();
        assert!(u.to_string().contains("unsupported"));
        assert!(PlanError::Internal("x".into()).to_string().contains("bug"));
    }
}
