//! Planner support checks.
//!
//! The MapReduce planners (relational and NTGA) compile star subpatterns
//! into grouped cross-product evaluation, which assumes patterns within a
//! star are independent. The testbed queries of the paper all satisfy
//! these constraints; queries that don't are still answerable by the
//! naive evaluator, and the planners reject them *up front* with a clear
//! error instead of silently computing wrong answers.

use rdf_query::{Query, StarPattern};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A query shape the MapReduce planners do not support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsupportedReason {
    /// Two bound patterns in one star use the same property (the nested
    /// property→objects representation cannot tell their matches apart).
    DuplicateBoundProperty {
        /// Subject variable of the offending star.
        star: String,
        /// The duplicated property token.
        property: String,
    },
    /// A variable occurs in more than one pattern position within a star
    /// (cross-product evaluation would need intra-star value consistency).
    SharedVarWithinStar {
        /// Subject variable of the offending star.
        star: String,
        /// The shared variable.
        var: String,
    },
    /// Two stars share more than one variable (the TG join key is a single
    /// variable).
    MultiVarJoin {
        /// Subject variable of the left star.
        left: String,
        /// Subject variable of the right star.
        right: String,
    },
}

impl fmt::Display for UnsupportedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsupportedReason::DuplicateBoundProperty { star, property } => {
                write!(f, "star ?{star}: property {property} appears in two bound patterns")
            }
            UnsupportedReason::SharedVarWithinStar { star, var } => {
                write!(f, "star ?{star}: variable ?{var} appears in multiple patterns")
            }
            UnsupportedReason::MultiVarJoin { left, right } => {
                write!(f, "stars ?{left} and ?{right} share more than one variable")
            }
        }
    }
}

impl std::error::Error for UnsupportedReason {}

/// Variables occurring in property/object positions (not the shared
/// subject position) across a star's patterns, with repetition.
fn star_non_subject_vars(star: &StarPattern) -> Vec<String> {
    let mut out = Vec::new();
    for p in &star.patterns {
        if let rdf_query::PropPattern::Unbound(v) = &p.property {
            out.push(v.clone());
        }
        if let Some(v) = p.object.var() {
            out.push(v.to_string());
        }
    }
    out
}

/// Check one star for planner support.
pub fn check_star(star: &StarPattern) -> Result<(), UnsupportedReason> {
    let mut bound_seen = HashSet::new();
    for prop in star.bound_properties() {
        if !bound_seen.insert(prop.clone()) {
            return Err(UnsupportedReason::DuplicateBoundProperty {
                star: star.subject_var.clone(),
                property: prop.to_string(),
            });
        }
    }
    // bound_properties() dedups, so re-count from raw patterns.
    let mut by_prop: HashMap<&str, usize> = HashMap::new();
    for p in star.bound_patterns() {
        if let rdf_query::PropPattern::Bound(prop) = &p.property {
            let c = by_prop.entry(prop).or_insert(0);
            *c += 1;
            if *c > 1 {
                return Err(UnsupportedReason::DuplicateBoundProperty {
                    star: star.subject_var.clone(),
                    property: prop.to_string(),
                });
            }
        }
    }
    let mut seen = HashSet::new();
    for v in star_non_subject_vars(star) {
        if v == star.subject_var || !seen.insert(v.clone()) {
            return Err(UnsupportedReason::SharedVarWithinStar {
                star: star.subject_var.clone(),
                var: v,
            });
        }
    }
    Ok(())
}

/// Check a whole query for planner support.
pub fn check_query(query: &Query) -> Result<(), UnsupportedReason> {
    for star in &query.stars {
        check_star(star)?;
    }
    // No star pair may share more than one variable.
    let mut pair_vars: HashMap<(usize, usize), usize> = HashMap::new();
    for e in query.join_edges() {
        let c = pair_vars.entry((e.left, e.right)).or_insert(0);
        *c += 1;
        if *c > 1 {
            return Err(UnsupportedReason::MultiVarJoin {
                left: query.stars[e.left].subject_var.clone(),
                right: query.stars[e.right].subject_var.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_query::{ObjPattern, TriplePattern};

    #[test]
    fn accepts_testbed_shapes() {
        let q =
            rdf_query::parse_query("SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }")
                .unwrap();
        check_query(&q).unwrap();
    }

    #[test]
    fn rejects_duplicate_bound_property() {
        let star = StarPattern::new(
            "x",
            vec![
                TriplePattern::bound("x", "<p>", ObjPattern::Var("a".into())),
                TriplePattern::bound("x", "<p>", ObjPattern::Var("b".into())),
            ],
        );
        assert!(matches!(check_star(&star), Err(UnsupportedReason::DuplicateBoundProperty { .. })));
    }

    #[test]
    fn rejects_shared_var_within_star() {
        let star = StarPattern::new(
            "x",
            vec![
                TriplePattern::bound("x", "<p>", ObjPattern::Var("a".into())),
                TriplePattern::unbound("x", "q", ObjPattern::Var("a".into())),
            ],
        );
        assert!(matches!(check_star(&star), Err(UnsupportedReason::SharedVarWithinStar { .. })));
    }

    #[test]
    fn rejects_subject_as_own_object() {
        let star = StarPattern::new(
            "x",
            vec![TriplePattern::bound("x", "<p>", ObjPattern::Var("x".into()))],
        );
        assert!(check_star(&star).is_err());
    }

    #[test]
    fn rejects_multi_var_join() {
        let q = rdf_query::Query::new(vec![
            StarPattern::new(
                "a",
                vec![
                    TriplePattern::bound("a", "<p>", ObjPattern::Var("x".into())),
                    TriplePattern::bound("a", "<q>", ObjPattern::Var("y".into())),
                ],
            ),
            StarPattern::new(
                "b",
                vec![
                    TriplePattern::bound("b", "<r>", ObjPattern::Var("x".into())),
                    TriplePattern::bound("b", "<s>", ObjPattern::Var("y".into())),
                ],
            ),
        ]);
        assert!(matches!(check_query(&q), Err(UnsupportedReason::MultiVarJoin { .. })));
    }
}
