//! Dictionary-ID-encoded record types — the ID-native data plane.
//!
//! These records carry LEB128-varint dictionary ids through the shuffle
//! instead of lexical tokens. Unlike the text-model records, their
//! simulated size *is* their binary wire size (an ID-encoded job ships
//! compact binary rows, not text), so the text counters and the
//! post-encoding wire counters agree up to the engine's per-pair row
//! separator. Ids resolve back to [`rdf_model::atom::Atom`]s only at
//! output boundaries via the [`rdf_model::Dictionary`] snapshot attached
//! with `Engine::with_dict`.

use mrsim::codec::{uvarint_len, write_uvarint};
use mrsim::{DfsFile, Engine, MrError, Rec, SliceReader};
use rdf_model::{Dictionary, TripleStore};

/// Conventional DFS name for the ID-encoded base triple relation.
pub const ID_TRIPLES_FILE: &str = "id_triples";

/// One triple as three dictionary ids `(s, p, o)`, varint-encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdTripleRec {
    /// Subject id.
    pub s: u32,
    /// Property id.
    pub p: u32,
    /// Object id.
    pub o: u32,
}

impl Rec for IdTripleRec {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.s);
        write_uvarint(buf, self.p);
        write_uvarint(buf, self.o);
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        Ok(IdTripleRec { s: r.read_uvarint()?, p: r.read_uvarint()?, o: r.read_uvarint()? })
    }

    fn text_size(&self) -> u64 {
        uvarint_len(self.s) + uvarint_len(self.p) + uvarint_len(self.o)
    }
}

/// A `(property id, object id)` shuffle value, varint-encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdPair(pub u32, pub u32);

impl Rec for IdPair {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.0);
        write_uvarint(buf, self.1);
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        Ok(IdPair(r.read_uvarint()?, r.read_uvarint()?))
    }

    fn text_size(&self) -> u64 {
        uvarint_len(self.0) + uvarint_len(self.1)
    }
}

/// The ID-native star-join shuffle value:
/// `(pattern index, (property id, object id))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdTaggedPo {
    /// Pattern index within the star.
    pub tag: u32,
    /// Property id.
    pub p: u32,
    /// Object id.
    pub o: u32,
}

impl Rec for IdTaggedPo {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.tag);
        write_uvarint(buf, self.p);
        write_uvarint(buf, self.o);
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        Ok(IdTaggedPo { tag: r.read_uvarint()?, p: r.read_uvarint()?, o: r.read_uvarint()? })
    }

    fn text_size(&self) -> u64 {
        uvarint_len(self.tag) + uvarint_len(self.p) + uvarint_len(self.o)
    }
}

/// A flat id tuple (the ID-native [`crate::Row`]): varint count followed
/// by one varint per column.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdRow(pub Vec<u32>);

impl Rec for IdRow {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, u32::try_from(self.0.len()).expect("id row arity exceeds u32"));
        for &c in &self.0 {
            write_uvarint(buf, c);
        }
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        let n = r.read_uvarint()? as usize;
        let mut cols = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            cols.push(r.read_uvarint()?);
        }
        Ok(IdRow(cols))
    }

    fn text_size(&self) -> u64 {
        uvarint_len(u32::try_from(self.0.len()).expect("id row arity exceeds u32"))
            + self.0.iter().map(|&c| uvarint_len(c)).sum::<u64>()
    }
}

/// An [`IdRow`] tagged with its join side (0 = left, 1 = right) — the
/// ID-native shuffle value of row joins.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SidedIdRow {
    /// Join side: 0 = left, 1 = right.
    pub side: u32,
    /// The row.
    pub row: IdRow,
}

impl Rec for SidedIdRow {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.side);
        self.row.encode_into(buf);
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        Ok(SidedIdRow { side: r.read_uvarint()?, row: IdRow::decode(r)? })
    }

    fn text_size(&self) -> u64 {
        uvarint_len(self.side) + self.row.text_size()
    }
}

/// Encode a triple store into the engine's DFS under `name` as
/// [`IdTripleRec`]s, interning every term into `dict`. Attach a snapshot
/// of the final dictionary to the engine with `Engine::with_dict` before
/// running ID-native jobs over the file.
pub fn load_store_ids(
    engine: &Engine,
    name: &str,
    store: &TripleStore,
    dict: &mut Dictionary,
) -> Result<(), MrError> {
    let mut file = DfsFile::default();
    for t in store.iter() {
        let rec = IdTripleRec { s: dict.encode(&t.s), p: dict.encode(&t.p), o: dict.encode(&t.o) };
        file.text_bytes += rec.text_size();
        file.records.push(rec.to_bytes());
    }
    engine.hdfs().lock().put(name, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::STriple;

    #[test]
    fn id_records_roundtrip() {
        let t = IdTripleRec { s: 0, p: 128, o: u32::MAX };
        assert_eq!(IdTripleRec::from_bytes(&t.to_bytes()).unwrap(), t);
        let p = IdPair(0x3fff, 0x4000);
        assert_eq!(IdPair::from_bytes(&p.to_bytes()).unwrap(), p);
        let tp = IdTaggedPo { tag: 2, p: 7, o: 0x1f_ffff };
        assert_eq!(IdTaggedPo::from_bytes(&tp.to_bytes()).unwrap(), tp);
        let row = IdRow(vec![1, 0, u32::MAX, 0x80]);
        assert_eq!(IdRow::from_bytes(&row.to_bytes()).unwrap(), row);
        let sided = SidedIdRow { side: 1, row };
        assert_eq!(SidedIdRow::from_bytes(&sided.to_bytes()).unwrap(), sided);
        let empty = IdRow(vec![]);
        assert_eq!(IdRow::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn text_size_is_wire_size() {
        for rec in [
            IdTripleRec { s: 0, p: 0x7f, o: 0x80 },
            IdTripleRec { s: 0x4000, p: 0x20_0000, o: u32::MAX },
        ] {
            assert_eq!(rec.text_size(), rec.to_bytes().len() as u64);
        }
        let row = IdRow(vec![0, 0x80, 0x4000, u32::MAX]);
        assert_eq!(row.text_size(), row.to_bytes().len() as u64);
        let sided = SidedIdRow { side: 0, row };
        assert_eq!(sided.text_size(), sided.to_bytes().len() as u64);
    }

    #[test]
    fn load_store_ids_builds_dictionary_and_accounts_wire_bytes() {
        let engine = Engine::unbounded();
        let store = TripleStore::from_triples(vec![
            STriple::new("<a>", "<p>", "<b>"),
            STriple::new("<a>", "<q>", "\"x\""),
        ]);
        let mut dict = Dictionary::new();
        load_store_ids(&engine, ID_TRIPLES_FILE, &store, &mut dict).unwrap();
        // 5 distinct terms: <a>, <p>, <b>, <q>, "x".
        assert_eq!(dict.len(), 5);
        let file = engine.hdfs().lock().get(ID_TRIPLES_FILE).unwrap();
        assert_eq!(file.records.len(), 2);
        let wire: u64 = file.records.iter().map(|r| r.len() as u64).sum();
        assert_eq!(file.text_bytes, wire);
        // Small dictionary: every id is a 1-byte varint.
        assert_eq!(wire, 6);
    }
}
