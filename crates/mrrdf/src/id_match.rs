//! Plan-time compilation of star patterns to dictionary-id tests.
//!
//! ID-native mappers match triples by comparing `u32` dictionary ids, not
//! tokens: pattern constants are resolved to ids once at plan time, so
//! the per-record test is an integer compare. Only string filters
//! (`Contains`/`Prefix`) still need the token, which they resolve through
//! the task's dictionary snapshot (`Engine::with_dict`).

use crate::id_rec::IdTripleRec;
use mrsim::{MrError, TaskContext};
use rdf_model::Dictionary;
use rdf_query::{ObjFilter, ObjPattern, PropPattern, StarPattern, SubjPattern, TriplePattern};

/// One position's compiled test against a dictionary id.
#[derive(Debug, Clone)]
pub enum IdTest {
    /// Matches any id (variable / unbound position).
    Any,
    /// Matches exactly this id. `None` means the constant never appeared
    /// in the dictionary, so nothing can match it.
    Eq(Option<u32>),
    /// A string filter that must inspect the token (resolved through the
    /// task's dictionary snapshot).
    Str(ObjFilter),
}

impl IdTest {
    /// Compile an object filter: equality folds to an id compare, the
    /// string filters keep the token test.
    pub fn compile_filter(f: &ObjFilter, dict: &Dictionary) -> Self {
        match f {
            ObjFilter::Equals(a) => IdTest::Eq(dict.get(a)),
            other => IdTest::Str(other.clone()),
        }
    }

    /// Does `id` pass this test? `Str` filters resolve the token via the
    /// task's dictionary snapshot and fail the task if `id` is unknown.
    pub fn accepts(&self, id: u32, ctx: &TaskContext) -> Result<bool, MrError> {
        match self {
            IdTest::Any => Ok(true),
            IdTest::Eq(want) => Ok(*want == Some(id)),
            IdTest::Str(f) => Ok(f.accepts(&ctx.resolve_atom(id)?)),
        }
    }
}

/// A triple pattern compiled to id tests — the ID-plane mirror of
/// [`rdf_query::TriplePattern::matches_structurally`].
#[derive(Debug, Clone)]
pub struct IdPatternTest {
    /// Subject test.
    pub subject: IdTest,
    /// Property test.
    pub property: IdTest,
    /// Object test (includes compiled object filters).
    pub object: IdTest,
    /// Whether the source pattern had an unbound property variable.
    pub unbound_property: bool,
}

impl IdPatternTest {
    /// Compile one triple pattern against the dictionary.
    pub fn compile(pat: &TriplePattern, dict: &Dictionary) -> Self {
        let subject = match &pat.subject {
            SubjPattern::Var(_) => IdTest::Any,
            SubjPattern::Const(c) => IdTest::Eq(dict.get(c)),
        };
        let property = match &pat.property {
            PropPattern::Bound(p) => IdTest::Eq(dict.get(p)),
            PropPattern::Unbound(_) => IdTest::Any,
        };
        let object = match &pat.object {
            ObjPattern::Var(_) => IdTest::Any,
            ObjPattern::Const(a) => IdTest::Eq(dict.get(a)),
            ObjPattern::Filtered(_, f) => IdTest::compile_filter(f, dict),
        };
        IdPatternTest { subject, property, object, unbound_property: pat.is_unbound_property() }
    }

    /// Structural match of an id triple, mirroring
    /// [`rdf_query::TriplePattern::matches_structurally`].
    pub fn matches(&self, t: &IdTripleRec, ctx: &TaskContext) -> Result<bool, MrError> {
        Ok(self.subject.accepts(t.s, ctx)?
            && self.property.accepts(t.p, ctx)?
            && self.object.accepts(t.o, ctx)?)
    }
}

/// A star subpattern compiled to id tests.
#[derive(Debug, Clone)]
pub struct IdStarTest {
    /// The star's optional subject filter.
    pub subject: IdTest,
    /// Per-pattern tests, in pattern order.
    pub patterns: Vec<IdPatternTest>,
}

impl IdStarTest {
    /// Compile a star pattern against the dictionary.
    pub fn compile(star: &StarPattern, dict: &Dictionary) -> Self {
        let subject =
            star.subject_filter.as_ref().map_or(IdTest::Any, |f| IdTest::compile_filter(f, dict));
        let patterns = star.patterns.iter().map(|p| IdPatternTest::compile(p, dict)).collect();
        IdStarTest { subject, patterns }
    }

    /// The ID-plane mirror of the map-side relevance test: the subject
    /// filter accepts and some pattern matches structurally.
    pub fn relevant(&self, t: &IdTripleRec, ctx: &TaskContext) -> Result<bool, MrError> {
        if !self.subject.accepts(t.s, ctx)? {
            return Ok(false);
        }
        for pat in &self.patterns {
            if pat.matches(t, ctx)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::atom::atom;
    use rdf_query::parse_query;

    #[test]
    fn constants_fold_to_id_compares() {
        let mut dict = Dictionary::new();
        let label = dict.encode(&atom("<label>"));
        let query =
            parse_query("SELECT * WHERE { ?g <label> ?l . ?g ?p ?o . FILTER contains(?o, \"x\") }")
                .unwrap();
        let star = IdStarTest::compile(&query.stars[0], &dict);
        assert!(matches!(star.patterns[0].property, IdTest::Eq(Some(id)) if id == label));
        assert!(matches!(star.patterns[1].property, IdTest::Any));
        assert!(matches!(star.patterns[1].object, IdTest::Str(ObjFilter::Contains(_))));
        assert!(!star.patterns[0].unbound_property);
        assert!(star.patterns[1].unbound_property);
    }

    #[test]
    fn missing_constant_is_unmatchable() {
        let dict = Dictionary::new();
        let query = parse_query("SELECT * WHERE { ?g <nope> ?l . }").unwrap();
        let star = IdStarTest::compile(&query.stars[0], &dict);
        assert!(matches!(star.patterns[0].property, IdTest::Eq(None)));
        // Eq(None) never accepts, whatever the id.
        let ctx = TaskContext::new();
        assert!(!star.patterns[0].property.accepts(0, &ctx).unwrap());
        assert!(!star.patterns[0].property.accepts(u32::MAX, &ctx).unwrap());
    }

    #[test]
    fn str_filter_without_snapshot_fails_the_task() {
        let t = IdTest::Str(ObjFilter::Contains("x".into()));
        let ctx = TaskContext::new();
        assert!(matches!(t.accepts(7, &ctx), Err(MrError::Codec(_))));
    }
}
