//! Schema'd n-tuple rows — the relational materialization.
//!
//! A relational star join of `k` triple patterns materializes tuples of
//! **3k arity**: `(Sub, Prop, Obj)` per pattern (the paper, Section 3,
//! Figure 4). The subject is repeated `k` times, every bound property
//! token is repeated in every tuple, and every combination with an
//! unbound-property match repeats the whole bound component — this is
//! precisely the redundancy NTGA avoids, so the byte accounting here must
//! be faithful: a [`Row`] is the flat list of column tokens, sized as a
//! tab-separated text row.
//!
//! Column *meaning* is tracked out-of-band by [`RowSchema`] (relations have
//! schemas; Hadoop text rows don't carry column names), which also converts
//! rows to [`Binding`]s for result verification.

use mrsim::Rec;
use rdf_model::atom::Atom;
use rdf_query::Binding;

/// A flat n-tuple of interned tokens. `Vec<Atom>` already implements
/// [`Rec`] (byte-compatible with the historical `Vec<String>` wire
/// form); this alias names its role.
pub type Row = Vec<Atom>;

/// Column meanings for a row relation: for each column, the variable it
/// binds (or `None` for columns bound to constants / unnamed positions).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowSchema {
    /// Variable bound by each column.
    pub cols: Vec<Option<String>>,
}

impl RowSchema {
    /// Schema with the given column variables.
    pub fn new(cols: Vec<Option<String>>) -> Self {
        RowSchema { cols }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Concatenate two schemas (the schema of a join output).
    pub fn concat(&self, other: &RowSchema) -> RowSchema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        RowSchema { cols }
    }

    /// Index of the first column binding `var`.
    pub fn index_of(&self, var: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.as_deref() == Some(var))
    }

    /// Convert a row to a [`Binding`].
    ///
    /// Returns `None` if the row's arity mismatches the schema or if two
    /// columns binding the same variable disagree (both indicate planner
    /// bugs; callers treat this as an error).
    pub fn binding(&self, row: &Row) -> Option<Binding> {
        if row.len() != self.cols.len() {
            return None;
        }
        let mut b = Binding::new();
        for (col, val) in self.cols.iter().zip(row) {
            if let Some(var) = col {
                if !b.bind(var, val.clone()) {
                    return None;
                }
            }
        }
        Some(b)
    }
}

/// Text size of a row record (used in tests; `Vec<Atom>`'s [`Rec`]
/// impl is what the engine uses — one byte separator per token, one
/// newline).
pub fn row_text_size(row: &Row) -> u64 {
    row.text_size()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RowSchema {
        // Star of 2 patterns: (?g <label> ?l) (?g <xGO> ?go) -> 6 columns.
        RowSchema::new(vec![
            Some("g".into()),
            None,
            Some("l".into()),
            Some("g".into()),
            None,
            Some("go".into()),
        ])
    }

    #[test]
    fn binding_extraction() {
        let row: Row = vec![
            "<g1>".into(),
            "<label>".into(),
            "\"a\"".into(),
            "<g1>".into(),
            "<xGO>".into(),
            "<go1>".into(),
        ];
        let b = schema().binding(&row).unwrap();
        assert_eq!(&**b.get("g").unwrap(), "<g1>");
        assert_eq!(&**b.get("l").unwrap(), "\"a\"");
        assert_eq!(&**b.get("go").unwrap(), "<go1>");
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn binding_rejects_inconsistent_row() {
        let row: Row = vec![
            "<g1>".into(),
            "<label>".into(),
            "\"a\"".into(),
            "<g2>".into(), // subject mismatch across patterns
            "<xGO>".into(),
            "<go1>".into(),
        ];
        assert!(schema().binding(&row).is_none());
    }

    #[test]
    fn binding_rejects_arity_mismatch() {
        let row: Row = vec!["<g1>".into()];
        assert!(schema().binding(&row).is_none());
    }

    #[test]
    fn concat_schemas() {
        let joined = schema().concat(&RowSchema::new(vec![Some("x".into())]));
        assert_eq!(joined.arity(), 7);
        assert_eq!(joined.index_of("x"), Some(6));
        assert_eq!(joined.index_of("g"), Some(0));
        assert_eq!(joined.index_of("zz"), None);
    }

    #[test]
    fn row_text_size_counts_repeated_tokens() {
        // The redundancy must show in bytes: subject repeated twice costs
        // twice.
        let row: Row = vec!["<g1>".into(), "<p>".into(), "<g1>".into()];
        assert_eq!(row_text_size(&row), (5 + 4 + 5) as u64);
    }
}
