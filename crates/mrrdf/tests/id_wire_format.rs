//! Golden byte fixtures for the dictionary-ID wire format.
//!
//! The ID-native shuffle ships LEB128 unsigned varints: 7 payload bits
//! per byte, least-significant group first, high bit = continuation. The
//! fixtures below pin the exact bytes of every ID record type so any
//! drift in the wire format fails loudly (CI runs this file as the
//! format-drift gate). The varint layer is re-implemented here from its
//! spec instead of calling back into `mrsim`, so a codec regression
//! cannot hide by changing both sides at once.

use mr_rdf::{IdPair, IdRow, IdTaggedPo, IdTripleRec, SidedIdRow};
use mrsim::Rec;
use proptest::prelude::{prop_assert_eq, proptest};

/// Spec reference encoder: LEB128, low group first, 0x80 continuation.
fn ref_uvarint(mut v: u32) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return out;
        }
        out.push(byte | 0x80);
    }
}

fn ref_concat(ids: &[u32]) -> Vec<u8> {
    ids.iter().flat_map(|&v| ref_uvarint(v)).collect()
}

/// Length-boundary ids: the first and last value of every encoded width.
const BOUNDARY_IDS: [u32; 9] =
    [0, 0x7f, 0x80, 0x3fff, 0x4000, 0x1f_ffff, 0x20_0000, 0x0fff_ffff, u32::MAX];

#[test]
fn id_triple_golden_bytes() {
    let rec = IdTripleRec { s: 1, p: 128, o: 16_384 };
    assert_eq!(rec.to_bytes(), [0x01, 0x80, 0x01, 0x80, 0x80, 0x01]);
    assert_eq!(rec.text_size(), 6);

    let max = IdTripleRec { s: u32::MAX, p: 0, o: 0x7f };
    assert_eq!(max.to_bytes(), [0xff, 0xff, 0xff, 0xff, 0x0f, 0x00, 0x7f]);
    assert_eq!(max.text_size(), 7);
}

#[test]
fn id_pair_golden_bytes() {
    assert_eq!(IdPair(0, 0).to_bytes(), [0x00, 0x00]);
    assert_eq!(IdPair(0x3fff, 0x4000).to_bytes(), [0xff, 0x7f, 0x80, 0x80, 0x01]);
    assert_eq!(IdPair(0x1f_ffff, 0x20_0000).to_bytes(), [0xff, 0xff, 0x7f, 0x80, 0x80, 0x80, 0x01]);
}

#[test]
fn id_tagged_po_golden_bytes() {
    let v = IdTaggedPo { tag: 2, p: 300, o: 0x0fff_ffff };
    // 300 = 0b10_0101100 -> [0xac, 0x02]; 2^28-1 -> four 0xff-style groups.
    assert_eq!(v.to_bytes(), [0x02, 0xac, 0x02, 0xff, 0xff, 0xff, 0x7f]);
}

#[test]
fn id_row_golden_bytes() {
    let row = IdRow(vec![0, 0x80, u32::MAX]);
    assert_eq!(row.to_bytes(), [0x03, 0x00, 0x80, 0x01, 0xff, 0xff, 0xff, 0xff, 0x0f]);
    assert_eq!(IdRow(vec![]).to_bytes(), [0x00]);
    let sided = SidedIdRow { side: 1, row: IdRow(vec![5]) };
    assert_eq!(sided.to_bytes(), [0x01, 0x01, 0x05]);
}

#[test]
fn boundary_ids_match_reference_encoder_and_roundtrip() {
    for &id in &BOUNDARY_IDS {
        let rec = IdTripleRec { s: id, p: id, o: id };
        assert_eq!(rec.to_bytes(), ref_concat(&[id, id, id]), "id {id:#x}");
        assert_eq!(IdTripleRec::from_bytes(&rec.to_bytes()).unwrap(), rec);
        // Encoded width steps exactly at the 7-bit group boundaries.
        let expected_len = match id {
            0..=0x7f => 1,
            0x80..=0x3fff => 2,
            0x4000..=0x1f_ffff => 3,
            0x20_0000..=0x0fff_ffff => 4,
            _ => 5,
        };
        assert_eq!(ref_uvarint(id).len(), expected_len, "id {id:#x}");
        assert_eq!(rec.text_size(), 3 * expected_len as u64, "id {id:#x}");
    }
}

proptest! {
    #[test]
    fn id_records_match_reference_encoder(
        s in 0u32..=u32::MAX, p in 0u32..=u32::MAX, o in 0u32..=u32::MAX, tag in 0u32..16
    ) {
        let triple = IdTripleRec { s, p, o };
        prop_assert_eq!(triple.to_bytes(), ref_concat(&[s, p, o]));
        let pair = IdPair(p, o);
        prop_assert_eq!(pair.to_bytes(), ref_concat(&[p, o]));
        let tagged = IdTaggedPo { tag, p, o };
        prop_assert_eq!(tagged.to_bytes(), ref_concat(&[tag, p, o]));
        let row = IdRow(vec![s, p, o]);
        prop_assert_eq!(row.to_bytes(), ref_concat(&[3, s, p, o]));
        let sided = SidedIdRow { side: 1, row: row.clone() };
        prop_assert_eq!(sided.to_bytes(), ref_concat(&[1, 3, s, p, o]));
        // text_size is the binary wire size for every ID record.
        prop_assert_eq!(triple.text_size(), triple.to_bytes().len() as u64);
        prop_assert_eq!(sided.text_size(), sided.to_bytes().len() as u64);
    }

    #[test]
    fn id_records_roundtrip(s in 0u32..=u32::MAX, p in 0u32..=u32::MAX, o in 0u32..=u32::MAX) {
        let rec = IdTripleRec { s, p, o };
        prop_assert_eq!(IdTripleRec::from_bytes(&rec.to_bytes()).unwrap(), rec);
        let row = IdRow(vec![s, p, o, s]);
        prop_assert_eq!(IdRow::from_bytes(&row.to_bytes()).unwrap(), row);
    }
}
