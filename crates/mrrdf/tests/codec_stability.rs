//! Codec-stability tests for the Atom token migration: Atom-backed records
//! must encode to exactly the bytes (and report exactly the text sizes)
//! that the `String`-era codecs produced, so every simulated byte counter
//! and figure output is unchanged by the representation switch.
//!
//! The `String`-era wire format is re-implemented here from its spec
//! (u32-LE length prefix + UTF-8 bytes per token, u32-LE count prefix per
//! vector) instead of calling back into `mrsim`, so a codec regression
//! cannot hide by changing both sides at once. Golden fixtures pin the
//! exact bytes.

use mr_rdf::{Row, TripleRec};
use mrsim::Rec;
use proptest::prelude::{prop, proptest};
use proptest::strategy::Strategy;
use rdf_model::atom::AtomTable;
use rdf_model::STriple;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&u32::try_from(s.len()).unwrap().to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn legacy_triple_bytes(s: &str, p: &str, o: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, s);
    put_str(&mut buf, p);
    put_str(&mut buf, o);
    buf
}

fn legacy_row_bytes(cols: &[String]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&u32::try_from(cols.len()).unwrap().to_le_bytes());
    for c in cols {
        put_str(&mut buf, c);
    }
    buf
}

fn arb_token() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "",
        "<g1>",
        "<rdfs:label>",
        "\"retinoid receptor\"",
        "<http://bio2rdf.org/geneid:1728>",
        "\"naïve Δ\"",
    ])
    .prop_map(String::from)
}

proptest! {
    #[test]
    fn triple_rec_bytes_match_string_era(
        s in arb_token(), p in arb_token(), o in arb_token()
    ) {
        let rec = TripleRec(STriple::new(&s, &p, &o));
        assert_eq!(rec.to_bytes(), legacy_triple_bytes(&s, &p, &o));
        assert_eq!(rec.text_size(), (s.len() + p.len() + o.len() + 5) as u64);
        assert_eq!(TripleRec::from_bytes(&rec.to_bytes()).unwrap(), rec);
    }

    #[test]
    fn row_bytes_match_string_era(cols in prop::collection::vec(arb_token(), 0..8)) {
        let row: Row = cols.iter().map(|c| c.as_str().into()).collect();
        assert_eq!(row.to_bytes(), legacy_row_bytes(&cols));
        let expected_text: u64 = if cols.is_empty() {
            1
        } else {
            cols.iter().map(|c| c.len() as u64 + 1).sum()
        };
        assert_eq!(row.text_size(), expected_text);
        assert_eq!(Row::from_bytes(&row.to_bytes()).unwrap(), row);
    }
}

/// Golden fixture: the exact `String`-era wire bytes of a small triple,
/// checked in literally so any codec drift fails loudly.
#[test]
fn triple_rec_golden_bytes() {
    let rec = TripleRec(STriple::new("<s>", "<p>", "\"a\""));
    assert_eq!(
        rec.to_bytes(),
        [3, 0, 0, 0, b'<', b's', b'>', 3, 0, 0, 0, b'<', b'p', b'>', 3, 0, 0, 0, b'"', b'a', b'"']
    );
    assert_eq!(rec.text_size(), 14); // `<s> <p> "a" .\n`
}

/// Golden fixture for the n-tuple row codec.
#[test]
fn row_golden_bytes() {
    let row: Row = vec!["<g1>".into(), "\"x\"".into()];
    assert_eq!(
        row.to_bytes(),
        [2, 0, 0, 0, 4, 0, 0, 0, b'<', b'g', b'1', b'>', 3, 0, 0, 0, b'"', b'x', b'"']
    );
    assert_eq!(row.text_size(), 9);
}

/// Decoding through a task-scoped [`AtomTable`] must not change content —
/// only allocation sharing.
#[test]
fn interned_decode_is_content_identical() {
    let rec = TripleRec(STriple::new("<g1>", "<xGO>", "<g1>"));
    let table = AtomTable::new();
    let decoded = TripleRec::from_bytes_with(&rec.to_bytes(), &table).unwrap();
    assert_eq!(decoded, rec);
    // Subject and object carry the same token: one allocation via the table.
    assert!(rdf_model::atom::Atom::ptr_eq(&decoded.0.s, &decoded.0.o));
    assert_eq!(table.len(), 2);
}
