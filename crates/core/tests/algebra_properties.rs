//! Property-based tests of the NTGA algebra — the paper's formal claims
//! over randomized inputs:
//!
//! * **Lemma 1**: relational star join ≅ `μ^β(σ^βγ(γ(T)))`;
//! * rewrite sufficiency: σ^γ-enumeration ≡ σ^βγ-relaxation;
//! * `μ^β_φ` then `μ^β` ≡ `μ^β` for arbitrary φ;
//! * β-unnest output cardinality = candidate-list product;
//! * text-size conservation: nested size ≤ flat size, with equality only
//!   when nothing is implicit.

use ntga_core::logical::{beta_group_filter, beta_unnest, group_by_subject, partial_beta_unnest};
use ntga_core::physical::phi;
use ntga_core::rewrite::{check_rewrites, lemma1_holds};
use proptest::prelude::{prop, prop_assert, prop_assert_eq, proptest};
use proptest::strategy::{Just, Strategy};
use rdf_model::{STriple, TripleStore};
use rdf_query::{ObjFilter, ObjPattern, StarPattern, TriplePattern};

fn arb_triples() -> impl Strategy<Value = Vec<STriple>> {
    let s = prop::sample::select(vec!["<s1>", "<s2>", "<s3>"]);
    let p = prop::sample::select(vec!["<p1>", "<p2>", "<p3>", "<p4>"]);
    let o = prop::sample::select(vec!["<o1>", "<o2>", "\"lit1\"", "\"lit2\"", "<x9>"]);
    prop::collection::vec((s, p, o), 0..30)
        .prop_map(|ts| ts.into_iter().map(|(s, p, o)| STriple::new(s, p, o)).collect())
}

/// Random unbound-property stars over the same vocabulary: 1–2 bound
/// patterns, 1–2 unbound patterns, optional object filter on one unbound.
fn arb_star() -> impl Strategy<Value = StarPattern> {
    let bound_props = prop::sample::subsequence(vec!["<p1>", "<p2>", "<p3>"], 1..=2);
    let n_unbound = 1..=2usize;
    let filter = prop::option::of(prop::sample::select(vec![
        ObjFilter::Prefix("<o".into()),
        ObjFilter::Contains("lit".into()),
        ObjFilter::Equals(rdf_model::atom::atom("<o1>")),
    ]));
    (bound_props, n_unbound, filter).prop_flat_map(|(bp, nu, filt)| {
        let mut patterns = Vec::new();
        for (i, p) in bp.iter().enumerate() {
            patterns.push(TriplePattern::bound("s", p, ObjPattern::Var(format!("b{i}"))));
        }
        for j in 0..nu {
            let obj = if j == 0 && filt.is_some() {
                ObjPattern::Filtered(format!("o{j}"), filt.clone().expect("checked"))
            } else {
                ObjPattern::Var(format!("o{j}"))
            };
            patterns.push(TriplePattern::unbound("s", &format!("u{j}"), obj));
        }
        Just(StarPattern::new("s", patterns))
    })
}

proptest! {
    #[test]
    fn lemma1_random(triples in arb_triples(), star in arb_star()) {
        let store = TripleStore::from_triples(triples);
        prop_assert!(lemma1_holds(&star, &store), "Lemma 1 violated for {star:?}");
    }

    #[test]
    fn rewrites_agree_random(triples in arb_triples(), star in arb_star()) {
        let store = TripleStore::from_triples(triples);
        // check_rewrites verifies naive == relaxed == enumerated.
        check_rewrites(&star, &store).map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("{e} for {star:?}"))
        })?;
    }

    #[test]
    fn partial_then_full_equals_full(triples in arb_triples(), m in 1u64..7) {
        let store = TripleStore::from_triples(triples);
        let star = StarPattern::new(
            "s",
            vec![
                TriplePattern::bound("s", "<p1>", ObjPattern::Var("b".into())),
                TriplePattern::unbound("s", "u", ObjPattern::Var("o".into())),
            ],
        );
        let tgs = group_by_subject(store.triples());
        for ann in beta_group_filter(&tgs, &star, 0) {
            let full: std::collections::BTreeSet<_> =
                beta_unnest(&ann).into_iter().collect();
            let mut via_partial = std::collections::BTreeSet::new();
            let mut partition_count = 0u64;
            for (k, part) in partial_beta_unnest(&ann, 0, |o| phi(o, m)) {
                prop_assert!(k < m);
                partition_count += 1;
                via_partial.extend(beta_unnest(&part));
            }
            prop_assert!(partition_count <= m);
            prop_assert_eq!(via_partial, full);
        }
    }

    #[test]
    fn unnest_cardinality_is_candidate_product(triples in arb_triples()) {
        let store = TripleStore::from_triples(triples);
        let star = StarPattern::new(
            "s",
            vec![
                TriplePattern::bound("s", "<p1>", ObjPattern::Var("b".into())),
                TriplePattern::unbound("s", "u1", ObjPattern::Var("o1".into())),
                TriplePattern::unbound("s", "u2", ObjPattern::Var("o2".into())),
            ],
        );
        let tgs = group_by_subject(store.triples());
        for ann in beta_group_filter(&tgs, &star, 0) {
            let expected: usize = ann.unbound.iter().map(Vec::len).product();
            prop_assert_eq!(beta_unnest(&ann).len(), expected);
        }
    }

    #[test]
    fn nested_never_larger_than_flat(triples in arb_triples(), star in arb_star()) {
        use ntga_core::metrics::{flat_bytes_of, nested_bytes_of};
        let store = TripleStore::from_triples(triples);
        let tgs = group_by_subject(store.triples());
        let anns = beta_group_filter(&tgs, &star, 0);
        if !anns.is_empty() {
            prop_assert!(nested_bytes_of(&anns) <= flat_bytes_of(&anns).max(nested_bytes_of(&anns)));
            // Perfect triplegroups from β-unnest expand total bytes
            // monotonically (redundant bound components materialize).
            let unnested: Vec<_> = anns.iter().flat_map(beta_unnest).collect();
            prop_assert!(
                nested_bytes_of(&unnested) >= nested_bytes_of(&anns),
                "unnesting shrank the representation"
            );
        }
    }

    #[test]
    fn group_filter_monotone_under_more_triples(
        triples in arb_triples(),
        extra in arb_triples(),
        star in arb_star(),
    ) {
        // Adding triples can only grow (never shrink) the set of subjects
        // passing σ^βγ: the filter requires presence, never absence.
        let small = TripleStore::from_triples(triples.clone());
        let mut all = triples;
        all.extend(extra);
        let big = TripleStore::from_triples(all);
        let subj = |store: &TripleStore| -> std::collections::BTreeSet<rdf_model::atom::Atom> {
            beta_group_filter(&group_by_subject(store.triples()), &star, 0)
                .into_iter()
                .map(|a| a.subject)
                .collect()
        };
        let s_small = subj(&small);
        let s_big = subj(&big);
        prop_assert!(s_small.is_subset(&s_big), "σ^βγ lost a subject when data grew");
    }
}

/// The checked-in regression seed from `algebra_properties.proptest-regressions`,
/// pinned verbatim: the offline proptest stand-in does not replay hashed
/// `cc` seeds, so every known shrunk failure must also live here as an
/// explicit unit test.
///
/// Shrunk case: empty store + star mixing bound `<p3>` with an unbound
/// pattern. Nothing matches, so `match_star` must reject every
/// triplegroup outright and all evaluators must agree on the empty
/// solution set — without `beta_unnest` ever seeing (or panicking on) an
/// empty candidate list.
#[test]
fn regression_seed_empty_store_bound_p3_with_unbound() {
    let star = StarPattern::new(
        "s",
        vec![
            TriplePattern::bound("s", "<p3>", ObjPattern::Var("b0".into())),
            TriplePattern::unbound("s", "u0", ObjPattern::Var("o0".into())),
        ],
    );
    let empty = TripleStore::from_triples(vec![]);
    assert!(lemma1_holds(&star, &empty));
    assert_eq!(check_rewrites(&star, &empty).unwrap().len(), 0);

    // The non-matching neighbourhood of the seed: subjects carry triples
    // (so the unbound pattern has candidates) but never `<p3>`, so the
    // bound pattern fails and σ^βγ must reject the whole group.
    let non_matching = TripleStore::from_triples(vec![
        STriple::new("<s1>", "<p1>", "<o1>"),
        STriple::new("<s1>", "<p2>", "\"lit1\""),
        STriple::new("<s2>", "<p4>", "<x9>"),
    ]);
    assert!(lemma1_holds(&star, &non_matching));
    assert_eq!(check_rewrites(&star, &non_matching).unwrap().len(), 0);
    assert!(beta_group_filter(&group_by_subject(non_matching.triples()), &star, 0).is_empty());

    // One matching subject among decoys: exactly its cross product
    // survives — <p3> objects × all four pairs of the subject.
    let mixed = TripleStore::from_triples(vec![
        STriple::new("<s1>", "<p1>", "<o1>"),
        STriple::new("<s2>", "<p3>", "<o1>"),
        STriple::new("<s2>", "<p3>", "<o2>"),
        STriple::new("<s2>", "<p1>", "\"lit1\""),
        STriple::new("<s2>", "<p2>", "\"lit2\""),
        STriple::new("<s3>", "<p4>", "<x9>"),
    ]);
    assert!(lemma1_holds(&star, &mixed));
    // ?b0 ∈ {<o1>, <o2>} × (?u0, ?o0) over all 4 pairs of <s2>.
    assert_eq!(check_rewrites(&star, &mixed).unwrap().len(), 8);
}

/// Direct edge-behaviour checks for the seed's code path: `match_star`
/// must return `None` (not an annotated group with empty lists) when a
/// bound property is absent, and `beta_unnest` must treat an empty
/// candidate list as zero perfect triplegroups rather than panicking.
#[test]
fn match_star_and_beta_unnest_empty_edges() {
    use ntga_core::logical::{match_star, TripleGroup};

    let star = StarPattern::new(
        "s",
        vec![
            TriplePattern::bound("s", "<p3>", ObjPattern::Var("b0".into())),
            TriplePattern::unbound("s", "u0", ObjPattern::Var("o0".into())),
        ],
    );
    let no_p3 = TripleGroup {
        subject: "<s1>".into(),
        pairs: vec![("<p1>".into(), "<o1>".into()), ("<p2>".into(), "\"lit1\"".into())],
    };
    assert!(match_star(&no_p3, &star, 0).is_none());

    let empty_group = TripleGroup { subject: "<s1>".into(), pairs: vec![] };
    assert!(match_star(&empty_group, &star, 0).is_none());

    // A hand-built annotated group with an empty candidate list (not
    // producible via match_star, which rejects such groups) must unnest
    // to nothing.
    let degenerate = ntga_core::tg::AnnTg {
        subject: "<s1>".into(),
        ec: 0,
        bound: vec![("<p3>".into(), vec!["<o1>".into()])],
        unbound: vec![vec![]],
    };
    assert!(beta_unnest(&degenerate).is_empty());
}

#[test]
fn lemma1_on_generated_bio_data() {
    // Lemma 1 at a realistic scale: the Bio2RDF-like generator with its
    // high-multiplicity xRef property.
    let store = datagen::bio2rdf::generate(&datagen::Bio2RdfConfig::with_genes(30));
    let star = StarPattern::new(
        "g",
        vec![
            TriplePattern::bound("g", "<rdfs:label>", ObjPattern::Var("l".into())),
            TriplePattern::unbound("g", "u", ObjPattern::Var("o".into())),
        ],
    );
    assert!(lemma1_holds(&star, &store));
}
