//! Codec stability of the annotated-triplegroup records across the Atom
//! token migration: wire bytes and simulated text sizes must be identical
//! to the `String`-era forms, byte for byte, or every HDFS/shuffle counter
//! in the figures would silently shift.
//!
//! The legacy format is re-implemented from its spec (u32-LE length prefix
//! per token, u32-LE count prefix per vector, 8-byte LE u64, tuples
//! concatenated) rather than reusing `mrsim`'s codec.

use mrsim::Rec;
use ntga_core::tg::{AnnTg, TgTuple};
use proptest::prelude::{prop, proptest};
use proptest::strategy::Strategy;
use rdf_model::atom::AtomTable;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&u32::try_from(s.len()).unwrap().to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_count(buf: &mut Vec<u8>, n: usize) {
    buf.extend_from_slice(&u32::try_from(n).unwrap().to_le_bytes());
}

type Pairs = Vec<(String, String)>;

fn legacy_anntg_bytes(
    subject: &str,
    ec: u64,
    bound: &[(String, Vec<String>)],
    unbound: &[Pairs],
) -> Vec<u8> {
    let mut buf = Vec::new();
    put_str(&mut buf, subject);
    buf.extend_from_slice(&ec.to_le_bytes());
    put_count(&mut buf, bound.len());
    for (p, objs) in bound {
        put_str(&mut buf, p);
        put_count(&mut buf, objs.len());
        for o in objs {
            put_str(&mut buf, o);
        }
    }
    put_count(&mut buf, unbound.len());
    for cands in unbound {
        put_count(&mut buf, cands.len());
        for (p, o) in cands {
            put_str(&mut buf, p);
            put_str(&mut buf, o);
        }
    }
    buf
}

fn legacy_text_size(subject: &str, bound: &[(String, Vec<String>)], unbound: &[Pairs]) -> u64 {
    let mut pairs = std::collections::BTreeSet::new();
    for (p, objs) in bound {
        for o in objs {
            pairs.insert((p.as_str(), o.as_str()));
        }
    }
    for cands in unbound {
        for (p, o) in cands {
            pairs.insert((p.as_str(), o.as_str()));
        }
    }
    subject.len() as u64
        + 1
        + pairs.iter().map(|(p, o)| (p.len() + o.len() + 2) as u64).sum::<u64>()
}

fn build(subject: &str, ec: u64, bound: &[(String, Vec<String>)], unbound: &[Pairs]) -> AnnTg {
    AnnTg {
        subject: subject.into(),
        ec,
        bound: bound
            .iter()
            .map(|(p, objs)| (p.as_str().into(), objs.iter().map(|o| o.as_str().into()).collect()))
            .collect(),
        unbound: unbound
            .iter()
            .map(|cands| {
                cands.iter().map(|(p, o)| (p.as_str().into(), o.as_str().into())).collect()
            })
            .collect(),
    }
}

fn arb_token() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["<g1>", "<rdfs:label>", "\"a\"", "<bio:xRef>", "<ref12>", ""])
        .prop_map(String::from)
}

fn arb_bound() -> impl Strategy<Value = Vec<(String, Vec<String>)>> {
    prop::collection::vec((arb_token(), prop::collection::vec(arb_token(), 0..4)), 0..3)
}

fn arb_unbound() -> impl Strategy<Value = Vec<Pairs>> {
    prop::collection::vec(prop::collection::vec((arb_token(), arb_token()), 0..4), 0..3)
}

proptest! {
    #[test]
    fn anntg_bytes_and_text_size_match_string_era(
        subject in arb_token(),
        ec in 0u64..9,
        bound in arb_bound(),
        unbound in arb_unbound(),
    ) {
        let tg = build(&subject, ec, &bound, &unbound);
        assert_eq!(tg.to_bytes(), legacy_anntg_bytes(&subject, ec, &bound, &unbound));
        assert_eq!(tg.text_size(), legacy_text_size(&subject, &bound, &unbound));
        assert_eq!(AnnTg::from_bytes(&tg.to_bytes()).unwrap(), tg);

        // The tuple wrapper prepends only a count; text size is the sum.
        let tup = TgTuple(vec![tg.clone(), tg.clone()]);
        let mut expected = 2u32.to_le_bytes().to_vec();
        expected.extend_from_slice(&tg.to_bytes());
        expected.extend_from_slice(&tg.to_bytes());
        assert_eq!(tup.to_bytes(), expected);
        assert_eq!(tup.text_size(), 2 * tg.text_size());
    }
}

/// Golden fixture: exact wire bytes of a minimal annotated triplegroup.
#[test]
fn anntg_golden_bytes() {
    let tg = AnnTg {
        subject: "<g>".into(),
        ec: 1,
        bound: vec![("<p>".into(), vec!["\"a\"".into()])],
        unbound: vec![vec![("<p>".into(), "\"a\"".into())]],
    };
    #[rustfmt::skip]
    let expected = [
        3, 0, 0, 0, b'<', b'g', b'>',           // subject
        1, 0, 0, 0, 0, 0, 0, 0,                 // ec = 1 (u64 LE)
        1, 0, 0, 0,                             // |bound| = 1
        3, 0, 0, 0, b'<', b'p', b'>',           // bound[0] property
        1, 0, 0, 0,                             // |objects| = 1
        3, 0, 0, 0, b'"', b'a', b'"',           // object
        1, 0, 0, 0,                             // |unbound| = 1
        1, 0, 0, 0,                             // |candidates| = 1
        3, 0, 0, 0, b'<', b'p', b'>',           // candidate property
        3, 0, 0, 0, b'"', b'a', b'"',           // candidate object
    ];
    assert_eq!(tg.to_bytes(), expected);
    // One distinct (p, o) pair — the candidate duplicates the bound match.
    assert_eq!(tg.text_size(), 4 + (3 + 3 + 2));
}

/// Interned decode shares allocations for repeated tokens without changing
/// content or ordering.
#[test]
fn interned_decode_shares_repeated_tokens() {
    let tg = AnnTg {
        subject: "<g>".into(),
        ec: 0,
        bound: vec![("<p>".into(), vec!["<o>".into()])],
        unbound: vec![vec![("<p>".into(), "<o>".into())]],
    };
    let table = AtomTable::new();
    let decoded = AnnTg::from_bytes_with(&tg.to_bytes(), &table).unwrap();
    assert_eq!(decoded, tg);
    assert!(rdf_model::atom::Atom::ptr_eq(&decoded.bound[0].0, &decoded.unbound[0][0].0));
    assert!(rdf_model::atom::Atom::ptr_eq(&decoded.bound[0].1[0], &decoded.unbound[0][0].1));
    assert_eq!(table.len(), 3); // <g>, <p>, <o>
}
