//! # ntga-core — the Nested TripleGroup Algebra for unbound-property queries
//!
//! The paper's contribution (Ravindra & Anyanwu, EDBT 2015), rebuilt on the
//! `mrsim` MapReduce substrate:
//!
//! * [`tg`] — the TripleGroup data model: [`AnnTg`] annotated triplegroups
//!   (nested property→objects representation with per-unbound-pattern
//!   candidate lists) and [`TgTuple`] joined tuples;
//! * [`logical`] — the algebra of Section 3: `γ`, `σ^γ`, `σ^βγ`
//!   (Definition 1), `μ^β` (Definition 2), `μ^β_φ` (Definition 3);
//! * [`physical`] — the MapReduce operators of Section 4: `TG_GroupBy` +
//!   `TG_UnbGrpFilter` (Algorithm 2), `TG_Join`, `TG_UnbJoin` (lazy full
//!   β-unnest), `TG_OptUnbJoin` (lazy partial β-unnest, Algorithm 3);
//! * [`planner`] — query → MR workflow under a hand-picked [`Strategy`]
//!   (EagerUnnest / LazyUnnest-full / LazyUnnest-partial / Auto);
//! * [`optimizer`] — cost-based plan selection: per-star unnest placement,
//!   per-cycle exact/partial/broadcast join choice and reducer sizing from
//!   store statistics and the engine's cost model;
//! * [`metrics`] — redundancy factors;
//! * [`profile`] — EXPLAIN ANALYZE: join a priced plan against the measured
//!   run into a per-operator estimated-vs-actual profile tree.
//!
//! ## Quick start
//!
//! ```
//! use ntga_core::{execute, Strategy};
//! use mrsim::Engine;
//!
//! let engine = Engine::unbounded();
//! let store = rdf_model::parse_str(
//!     "<g1> <label> \"a\" .\n<g1> <xGO> <go1> .\n<go1> <gl> \"x\" .\n",
//! ).map(rdf_model::TripleStore::from_triples).unwrap();
//! mr_rdf::load_store(&engine, "triples", &store).unwrap();
//!
//! let query = rdf_query::parse_query(
//!     "SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }",
//! ).unwrap();
//! let run = execute(Strategy::Auto(1024), &engine, &query, "triples", "demo", true).unwrap();
//! assert!(run.succeeded());
//! assert_eq!(run.stats.mr_cycles, 2); // all star joins in ONE grouping cycle
//! assert_eq!(run.solutions.unwrap().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod explain;
pub mod logical;
pub mod metrics;
pub mod optimizer;
pub mod physical;
pub mod planner;
pub mod profile;
pub mod rewrite;
pub mod tg;

pub use explain::{explain, explain_plan, PlanText};
pub use optimizer::{
    execute_cost_based, execute_plan, execute_plan_on, execute_plan_profiled, optimize, DataPlane,
    JoinAlgo, OptimizerConfig, PhysicalPlan,
};
pub use planner::{execute, execute_on, expand_tuples, Strategy};
pub use profile::{explain_analyze, OpProfile, Profile, StarProfile};
pub use tg::{AnnTg, TgTuple};
