//! Cost-based plan selection: statistics → [`PhysicalPlan`] → workflow.
//!
//! The [`crate::planner`] executes whatever [`crate::Strategy`] the caller
//! hand-picks. This module closes the loop the paper leaves to "the
//! optimizer": it consumes [`rdf_query::estimate`] cardinalities (star
//! subject/row/pair counts under the containment assumption) and prices
//! candidate physical operators through [`mrsim::CostModel`], choosing
//!
//! * **per star** whether Job 1 β-unnests eagerly (perfect triplegroups,
//!   full redundancy up front) or stays nested (lazy), via
//!   [`crate::physical::group_filter_job_stars`];
//! * **per join cycle** the join algorithm — reduce-side [`UnnestMode::Exact`]
//!   (`TG_Join`/`TG_UnbJoin`), reduce-side [`UnnestMode::Partial`] with a
//!   priced φ granularity (`TG_OptUnbJoin`), or the map-side broadcast join
//!   [`crate::physical::tg_broadcast_join_job`] (`TG_BcastJoin`) that ships
//!   the small side through the distributed cache and **collapses the
//!   entire reduce cycle** when the estimate clears the broadcast budget;
//! * **per job** a reduce-task count sized to the estimated shuffle bytes.
//!
//! Every job carries its estimated output cardinality
//! ([`mrsim::JobSpec::with_estimated_output`]), so executed plans report
//! per-job q-error through [`mrsim::JobStats::q_error`] and the trace's
//! `cardinality_estimate` events — the feedback signal that tells you when
//! the estimator, not the executor, is the problem.

use crate::physical::{
    group_filter_job_ids_stars, group_filter_job_stars, role_of, tg_broadcast_join_job,
    tg_join_job, BuildSide, JoinRole, JoinSide, UnnestMode,
};
use crate::planner::expand_tuples;
use crate::tg::TgTuple;
use mr_rdf::{check_query, PlanError, QueryRun};
use mrsim::{CostModel, Engine, JobStats, Workflow};
use rdf_model::StoreStats;
use rdf_query::estimate::{
    pattern_cardinality, star_pair_cardinality, star_row_cardinality, star_subject_cardinality,
};
use rdf_query::{PropPattern, Query, StarPattern};
use std::collections::HashSet;

/// Tunables for plan search. [`OptimizerConfig::for_engine`] copies the
/// physical limits (broadcast budget, block size) from an engine so plans
/// are priced against the cluster that will run them.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Broadcast jobs are only considered when the estimated build side
    /// fits this many bytes (mirror of `Engine::broadcast_budget_bytes`).
    pub broadcast_budget_bytes: u64,
    /// DFS block size used to estimate map-task counts (each map task
    /// pulls one copy of the broadcast payload).
    pub block_size: u64,
    /// Target shuffle bytes per reduce task when sizing reducer counts.
    pub reducer_target_bytes: u64,
    /// Upper bound on sized reducer counts.
    pub max_reduce_tasks: usize,
    /// φ granularities considered for partial unnest.
    pub phi_candidates: Vec<u64>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            broadcast_budget_bytes: 64 * 1024 * 1024,
            block_size: 256 * 1024 * 1024,
            reducer_target_bytes: 32 * 1024 * 1024,
            max_reduce_tasks: 64,
            phi_candidates: vec![16, 1024],
        }
    }
}

impl OptimizerConfig {
    /// A config whose physical limits match `engine`'s.
    pub fn for_engine(engine: &Engine) -> Self {
        OptimizerConfig {
            broadcast_budget_bytes: engine.broadcast_budget_bytes,
            block_size: engine.block_size,
            ..OptimizerConfig::default()
        }
    }
}

/// The join algorithm chosen for one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Reduce-side triplegroup join ([`crate::physical::tg_join_job`]).
    Reduce {
        /// Map-side unnest mode (exact or φ-partial).
        mode: UnnestMode,
        /// Reduce-task count sized to the estimated shuffle bytes.
        reduce_tasks: usize,
    },
    /// Map-side broadcast join ([`crate::physical::tg_broadcast_join_job`]):
    /// no shuffle, no reduce phase.
    Broadcast {
        /// Which side ships through the distributed cache.
        build: BuildSide,
    },
}

/// The plan for one join cycle.
#[derive(Debug, Clone)]
pub struct CyclePlan {
    /// Chosen algorithm.
    pub algo: JoinAlgo,
    /// Estimated join output cardinality (records).
    pub estimated_output_records: f64,
    /// Estimated join output size in text bytes.
    pub estimated_output_bytes: f64,
    /// Estimated shuffle bytes (0 for broadcast cycles).
    pub estimated_shuffle_bytes: u64,
    /// Estimated cost of this cycle in simulated seconds.
    pub estimated_seconds: f64,
}

/// A fully-decided physical plan for a query.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Per-star Job 1 unnest placement (`true` = eager β-unnest in the
    /// grouping reduce, `false` = stay nested).
    pub eager_stars: Vec<bool>,
    /// Reduce-task count for Job 1, sized to the estimated shuffle.
    pub job1_reduce_tasks: usize,
    /// Estimated total records Job 1 writes across all equivalence classes.
    pub estimated_job1_records: f64,
    /// Estimated total text bytes Job 1 writes across all equivalence classes.
    pub estimated_job1_bytes: f64,
    /// Estimated records per equivalence-class file (one entry per star,
    /// under the chosen eager/lazy placement) — the per-star breakdown of
    /// [`PhysicalPlan::estimated_job1_records`] that `explain_analyze`
    /// joins against measured per-star admissions.
    pub estimated_star_records: Vec<f64>,
    /// Estimated cost of Job 1 in simulated seconds.
    pub estimated_job1_seconds: f64,
    /// One entry per join cycle, in the planner's left-deep order.
    pub cycles: Vec<CyclePlan>,
    /// Estimated total plan cost in simulated seconds.
    pub estimated_seconds: f64,
}

impl PhysicalPlan {
    /// Number of reduce cycles the broadcast operator collapsed.
    pub fn broadcast_cycles(&self) -> usize {
        self.cycles.iter().filter(|c| matches!(c.algo, JoinAlgo::Broadcast { .. })).count()
    }

    /// One-line human summary, e.g. `eager=[false,true] j1r=4 [bcast(R), reduce(exact,r=2)]`.
    pub fn summary(&self) -> String {
        let eager: Vec<&str> =
            self.eager_stars.iter().map(|&e| if e { "eager" } else { "lazy" }).collect();
        let cycles: Vec<String> = self
            .cycles
            .iter()
            .map(|c| match c.algo {
                JoinAlgo::Reduce { mode: UnnestMode::Exact, reduce_tasks } => {
                    format!("reduce(exact,r={reduce_tasks})")
                }
                JoinAlgo::Reduce { mode: UnnestMode::Partial(m), reduce_tasks } => {
                    format!("reduce(phi_{m},r={reduce_tasks})")
                }
                JoinAlgo::Broadcast { build: BuildSide::Left } => "bcast(L)".into(),
                JoinAlgo::Broadcast { build: BuildSide::Right } => "bcast(R)".into(),
            })
            .collect();
        format!(
            "stars=[{}] j1r={} cycles=[{}] est={:.1}s",
            eager.join(","),
            self.job1_reduce_tasks,
            cycles.join(","),
            self.estimated_seconds
        )
    }
}

// ---------------------------------------------------------------------------
// Left-deep join schedule (shared by optimize and execute_plan)
// ---------------------------------------------------------------------------

/// One step of the planner's left-deep join order: join star `other` into
/// the accumulated left relation, whose component `lpos` (star `l_star`)
/// carries the join variable under `lrole`.
#[derive(Debug, Clone, Copy)]
struct CycleStep {
    other: usize,
    lpos: usize,
    l_star: usize,
    lrole: JoinRole,
    rrole: JoinRole,
}

/// Reproduce [`crate::planner::execute`]'s left-deep traversal symbolically
/// so plan decisions line up one-to-one with the jobs that will run.
fn join_schedule(query: &Query) -> Result<Vec<CycleStep>, PlanError> {
    let edges = query.join_edges();
    let mut joined: HashSet<usize> = HashSet::from([0]);
    let mut components: Vec<usize> = vec![0];
    let mut steps = Vec::new();
    while joined.len() < query.stars.len() {
        let edge = edges
            .iter()
            .find(|e| joined.contains(&e.left) != joined.contains(&e.right))
            .ok_or_else(|| PlanError::Internal("join graph not connected".into()))?;
        let other = if joined.contains(&edge.left) { edge.right } else { edge.left };
        let (lpos, lrole) = components
            .iter()
            .enumerate()
            .find_map(|(pos, &star_idx)| {
                role_of(&query.stars[star_idx], &edge.var).map(|r| (pos, r))
            })
            .ok_or_else(|| PlanError::Internal("join var missing on left".into()))?;
        let rrole = role_of(&query.stars[other], &edge.var)
            .ok_or_else(|| PlanError::Internal("join var missing on right".into()))?;
        steps.push(CycleStep { other, lpos, l_star: components[lpos], lrole, rrole });
        joined.insert(other);
        components.push(other);
    }
    Ok(steps)
}

// ---------------------------------------------------------------------------
// Cardinality/byte estimation
// ---------------------------------------------------------------------------

/// Estimated size of a triplegroup relation.
#[derive(Debug, Clone, Copy)]
struct RelEst {
    records: f64,
    bytes: f64,
}

impl RelEst {
    fn avg_bytes(&self) -> f64 {
        if self.records < 1.0 {
            0.0
        } else {
            self.bytes / self.records
        }
    }
}

/// Per-star base estimates.
#[derive(Debug, Clone, Copy)]
struct StarEst {
    subjects: f64,
    rows: f64,
    pairs: f64,
    npat: f64,
}

fn star_estimates(star: &StarPattern, stats: &StoreStats) -> StarEst {
    StarEst {
        subjects: star_subject_cardinality(star, stats),
        rows: star_row_cardinality(star, stats),
        pairs: star_pair_cardinality(star, stats),
        npat: star.patterns.len() as f64,
    }
}

/// Mean text bytes per `(property, object)` pair, from whole-store stats.
fn bytes_per_pair(stats: &StoreStats) -> f64 {
    if stats.triples == 0 {
        0.0
    } else {
        (stats.text_bytes as f64 / stats.triples as f64).max(1.0)
    }
}

/// Estimated equivalence-class relation written by Job 1 for one star.
fn ec_estimate(est: StarEst, eager: bool, bpp: f64) -> RelEst {
    if eager {
        // One perfect triplegroup per flat row, npat pairs each.
        RelEst { records: est.rows, bytes: est.rows * est.npat * bpp }
    } else {
        // One nested triplegroup per matching subject, candidates stored once.
        RelEst { records: est.subjects, bytes: est.pairs * bpp }
    }
}

/// How one side of a join expands when its role is evaluated.
#[derive(Debug, Clone, Copy)]
struct SideExp {
    /// Records one input record becomes under a full (exact) unnest.
    exp: f64,
    /// Bytes of the expanded candidate list within one input record.
    cand_bytes: f64,
    /// Estimated distinct join keys on this side.
    keys: f64,
}

fn side_expansion(
    star: &StarPattern,
    role: JoinRole,
    eager: bool,
    stats: &StoreStats,
    bpp: f64,
) -> SideExp {
    let subjects = (stats.distinct_subjects as f64).max(1.0);
    match role {
        JoinRole::Subject => {
            SideExp { exp: 1.0, cand_bytes: 0.0, keys: star_subject_cardinality(star, stats) }
        }
        JoinRole::BoundObj(b) => {
            let pat = &star.bound_patterns()[b];
            let (mult, keys) = match &pat.property {
                PropPattern::Bound(p) => {
                    stats.per_property.get(p).map_or((1.0, stats.distinct_objects as f64), |ps| {
                        (ps.mean_multiplicity, ps.distinct_objects as f64)
                    })
                }
                PropPattern::Unbound(_) => (1.0, stats.distinct_objects as f64),
            };
            let exp = if eager { 1.0 } else { mult.max(1.0) };
            SideExp { exp, cand_bytes: exp * bpp, keys }
        }
        JoinRole::UnboundObj(u) => {
            let pat = &star.unbound_patterns()[u];
            let cand = (pattern_cardinality(pat, stats) / subjects).max(1.0);
            let exp = if eager { 1.0 } else { cand };
            SideExp { exp, cand_bytes: exp * bpp, keys: stats.distinct_objects as f64 }
        }
    }
}

/// What one side ships across the shuffle under a mode: record count and
/// bytes after the map-side expansion (exact pins one candidate per
/// record; φ-partial splits the candidate list over `min(exp, m)` nested
/// records, each carrying the full base).
fn shipped(rel: RelEst, side: SideExp, mode: UnnestMode, bpp: f64) -> RelEst {
    let base = (rel.avg_bytes() - side.cand_bytes).max(0.0);
    let pin = if side.cand_bytes > 0.0 { bpp } else { 0.0 };
    match mode {
        UnnestMode::Exact => {
            let records = rel.records * side.exp;
            RelEst { records, bytes: records * (base + pin) }
        }
        UnnestMode::Partial(m) => {
            let k = side.exp.min(m as f64).max(1.0);
            RelEst { records: rel.records * k, bytes: rel.records * (k * base + side.cand_bytes) }
        }
    }
}

/// Estimated join output: fully-expanded matches under the standard
/// `|L| · |R| / max(V(L,k), V(R,k))` formula, each output record carrying
/// one pinned record from each side.
fn join_output(l: RelEst, lexp: SideExp, r: RelEst, rexp: SideExp, bpp: f64) -> RelEst {
    let keys = lexp.keys.max(rexp.keys).max(1.0);
    let records = (l.records * lexp.exp) * (r.records * rexp.exp) / keys;
    let l_pinned =
        (l.avg_bytes() - lexp.cand_bytes).max(0.0) + if lexp.cand_bytes > 0.0 { bpp } else { 0.0 };
    let r_pinned =
        (r.avg_bytes() - rexp.cand_bytes).max(0.0) + if rexp.cand_bytes > 0.0 { bpp } else { 0.0 };
    RelEst { records, bytes: records * (l_pinned + r_pinned) }
}

fn r64(x: f64) -> u64 {
    if x.is_finite() && x > 0.0 {
        x.round() as u64
    } else {
        0
    }
}

fn size_reducers(shuffle_bytes: f64, config: &OptimizerConfig) -> usize {
    let target = config.reducer_target_bytes.max(1) as f64;
    let n = (shuffle_bytes / target).ceil();
    (n as usize).clamp(1, config.max_reduce_tasks.max(1))
}

// ---------------------------------------------------------------------------
// Candidate pricing
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn price_reduce_join(
    cost: &CostModel,
    l: RelEst,
    lexp: SideExp,
    r: RelEst,
    rexp: SideExp,
    mode: UnnestMode,
    out: RelEst,
    bpp: f64,
    config: &OptimizerConfig,
) -> (f64, u64, usize) {
    let ls = shipped(l, lexp, mode, bpp);
    let rs = shipped(r, rexp, mode, bpp);
    let shuffle_bytes = ls.bytes + rs.bytes;
    let reduce_tasks = size_reducers(shuffle_bytes, config);
    let stats = JobStats {
        input_records: r64(l.records + r.records),
        hdfs_read_bytes: r64(l.bytes + r.bytes),
        map_output_records: r64(ls.records + rs.records),
        map_output_bytes: r64(shuffle_bytes),
        reduce_input_records: r64(ls.records + rs.records),
        output_records: r64(out.records),
        output_text_bytes: r64(out.bytes),
        hdfs_write_bytes: r64(out.bytes),
        reduce_tasks: reduce_tasks as u64,
        ..JobStats::default()
    };
    (cost.job_seconds(&stats), r64(shuffle_bytes), reduce_tasks)
}

fn price_broadcast_join(
    cost: &CostModel,
    build: RelEst,
    probe: RelEst,
    out: RelEst,
    config: &OptimizerConfig,
) -> f64 {
    let map_tasks = (r64(probe.bytes).div_ceil(config.block_size.max(1))).max(1);
    let stats = JobStats {
        input_records: r64(probe.records),
        hdfs_read_bytes: r64(probe.bytes),
        broadcast_files: 1,
        broadcast_bytes: r64(build.bytes),
        broadcast_ship_bytes: r64(build.bytes) * map_tasks,
        output_records: r64(out.records),
        output_text_bytes: r64(out.bytes),
        hdfs_write_bytes: r64(out.bytes),
        reduce_tasks: 0,
        ..JobStats::default()
    };
    cost.job_seconds(&stats)
}

fn price_job1(
    cost: &CostModel,
    stats: &StoreStats,
    ecs: &[RelEst],
    star_ests: &[StarEst],
    config: &OptimizerConfig,
) -> (f64, usize, f64) {
    let triples = stats.triples as f64;
    let bpp = bytes_per_pair(stats);
    // Each relevant triple ships once regardless of how many stars want it.
    let shipped_pairs = star_ests.iter().map(|e| e.pairs).sum::<f64>().min(triples);
    let shuffle_bytes = shipped_pairs * bpp;
    let out_records: f64 = ecs.iter().map(|e| e.records).sum();
    let out_bytes: f64 = ecs.iter().map(|e| e.bytes).sum();
    let reduce_tasks = size_reducers(shuffle_bytes, config);
    let js = JobStats {
        input_records: stats.triples,
        hdfs_read_bytes: stats.text_bytes,
        map_output_records: r64(shipped_pairs),
        map_output_bytes: r64(shuffle_bytes),
        reduce_input_records: r64(shipped_pairs),
        output_records: r64(out_records),
        output_text_bytes: r64(out_bytes),
        hdfs_write_bytes: r64(out_bytes),
        reduce_tasks: reduce_tasks as u64,
        ..JobStats::default()
    };
    (cost.job_seconds(&js), reduce_tasks, out_records)
}

// ---------------------------------------------------------------------------
// Plan search
// ---------------------------------------------------------------------------

/// Derive a [`PhysicalPlan`] for `query` over a store described by `stats`,
/// priced under `cost`.
///
/// The search enumerates per-star eager/lazy placements (2^n for the
/// query's n stars — star counts are small) and, for each placement,
/// independently picks the cheapest algorithm per join cycle from
/// {reduce-exact, reduce-partial(φ) for each configured φ, broadcast with
/// either side as build when it fits the budget}. The cheapest total wins.
pub fn optimize(
    query: &Query,
    stats: &StoreStats,
    cost: &CostModel,
    config: &OptimizerConfig,
) -> Result<PhysicalPlan, PlanError> {
    query.validate()?;
    check_query(query)?;
    let steps = join_schedule(query)?;
    let bpp = bytes_per_pair(stats);
    let star_ests: Vec<StarEst> = query.stars.iter().map(|s| star_estimates(s, stats)).collect();

    let n = query.stars.len();
    assert!(n <= 16, "plan search enumerates 2^stars placements");
    let mut best: Option<PhysicalPlan> = None;
    for mask in 0u32..(1u32 << n) {
        let eager_stars: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        let ecs: Vec<RelEst> = star_ests
            .iter()
            .zip(&eager_stars)
            .map(|(&e, &eager)| ec_estimate(e, eager, bpp))
            .collect();
        let (job1_seconds, job1_reduce_tasks, job1_records) =
            price_job1(cost, stats, &ecs, &star_ests, config);

        let mut total = job1_seconds;
        let mut cur = ecs[0];
        let mut cycles = Vec::with_capacity(steps.len());
        for step in &steps {
            let lexp = side_expansion(
                &query.stars[step.l_star],
                step.lrole,
                eager_stars[step.l_star],
                stats,
                bpp,
            );
            let rexp = side_expansion(
                &query.stars[step.other],
                step.rrole,
                eager_stars[step.other],
                stats,
                bpp,
            );
            let right = ecs[step.other];
            let out = join_output(cur, lexp, right, rexp, bpp);

            // Candidate: reduce-side exact.
            let (secs, shuffle, rt) = price_reduce_join(
                cost,
                cur,
                lexp,
                right,
                rexp,
                UnnestMode::Exact,
                out,
                bpp,
                config,
            );
            let mut best_cycle = CyclePlan {
                algo: JoinAlgo::Reduce { mode: UnnestMode::Exact, reduce_tasks: rt },
                estimated_output_records: out.records,
                estimated_output_bytes: out.bytes,
                estimated_shuffle_bytes: shuffle,
                estimated_seconds: secs,
            };
            // Candidates: reduce-side φ-partial (only when a lazy unbound
            // side actually expands — otherwise partial is pure overhead).
            let lazy_unbound = (matches!(step.lrole, JoinRole::UnboundObj(_))
                && !eager_stars[step.l_star]
                && lexp.exp > 1.0)
                || (matches!(step.rrole, JoinRole::UnboundObj(_))
                    && !eager_stars[step.other]
                    && rexp.exp > 1.0);
            if lazy_unbound {
                for &m in &config.phi_candidates {
                    let mode = UnnestMode::Partial(m);
                    let (secs, shuffle, rt) =
                        price_reduce_join(cost, cur, lexp, right, rexp, mode, out, bpp, config);
                    if secs < best_cycle.estimated_seconds {
                        best_cycle = CyclePlan {
                            algo: JoinAlgo::Reduce { mode, reduce_tasks: rt },
                            estimated_output_records: out.records,
                            estimated_output_bytes: out.bytes,
                            estimated_shuffle_bytes: shuffle,
                            estimated_seconds: secs,
                        };
                    }
                }
            }
            // Candidates: broadcast either side, when it fits the budget.
            for (build, b, p) in [(BuildSide::Left, cur, right), (BuildSide::Right, right, cur)] {
                if r64(b.bytes) <= config.broadcast_budget_bytes {
                    let secs = price_broadcast_join(cost, b, p, out, config);
                    if secs < best_cycle.estimated_seconds {
                        best_cycle = CyclePlan {
                            algo: JoinAlgo::Broadcast { build },
                            estimated_output_records: out.records,
                            estimated_output_bytes: out.bytes,
                            estimated_shuffle_bytes: 0,
                            estimated_seconds: secs,
                        };
                    }
                }
            }

            total += best_cycle.estimated_seconds;
            cycles.push(best_cycle);
            cur = out;
        }

        let plan = PhysicalPlan {
            eager_stars,
            job1_reduce_tasks,
            estimated_job1_records: job1_records,
            estimated_job1_bytes: ecs.iter().map(|e| e.bytes).sum(),
            estimated_star_records: ecs.iter().map(|e| e.records).collect(),
            estimated_job1_seconds: job1_seconds,
            cycles,
            estimated_seconds: total,
        };
        if best.as_ref().is_none_or(|b| plan.estimated_seconds < b.estimated_seconds) {
            best = Some(plan);
        }
    }
    Ok(best.expect("at least one placement enumerated"))
}

// ---------------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------------

/// Which wire representation the workflow's Job 1 consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlane {
    /// Lexical tokens end-to-end ([`mr_rdf::TripleRec`] input).
    Lexical,
    /// LEB128-varint dictionary ids through Job 1's shuffle
    /// ([`mr_rdf::IdTripleRec`] input; requires `Engine::with_dict`).
    Ids,
}

/// Execute a [`PhysicalPlan`] on `plane`.
///
/// Mirrors [`crate::planner::execute`]'s contract and left-deep order;
/// every job carries its estimated output cardinality so the run's
/// [`mrsim::WorkflowStats`] reports q-error. If the optimizer chose a
/// broadcast join but the *actual* build file exceeds the engine's
/// broadcast budget (an estimation miss), the cycle falls back to the
/// reduce-side exact join instead of failing the workflow.
pub fn execute_plan_on(
    plane: DataPlane,
    plan: &PhysicalPlan,
    engine: &Engine,
    query: &Query,
    input: &str,
    label: &str,
    extract_solutions: bool,
) -> Result<QueryRun, PlanError> {
    execute_plan_profiled(plane, plan, engine, query, input, label, extract_solutions)
        .map(|(run, _)| run)
}

/// [`execute_plan_on`], additionally returning the per-star Job 1 output
/// cardinalities — the record counts of the `{label}.ec{i}` equivalence-class
/// files, read *before* the workflow's finish deletes them. Feed the vector
/// to [`crate::profile::explain_analyze`] for the per-star q-error breakdown.
/// The vector is empty when Job 1 itself failed.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_profiled(
    plane: DataPlane,
    plan: &PhysicalPlan,
    engine: &Engine,
    query: &Query,
    input: &str,
    label: &str,
    extract_solutions: bool,
) -> Result<(QueryRun, Vec<u64>), PlanError> {
    query.validate()?;
    check_query(query)?;
    let steps = join_schedule(query)?;
    if steps.len() != plan.cycles.len() || plan.eager_stars.len() != query.stars.len() {
        return Err(PlanError::Internal("plan shape does not match query".into()));
    }

    let mut wf = Workflow::new(engine, format!("NTGA-CostBased/{label}"));
    let fail = |wf: Workflow<'_>, e: &mrsim::MrError, stars: Vec<u64>| {
        Ok((QueryRun { stats: wf.finish_failed(e), solutions: None }, stars))
    };

    let ec_files: Vec<String> = (0..query.stars.len()).map(|i| format!("{label}.ec{i}")).collect();
    let job1 = match plane {
        DataPlane::Lexical => group_filter_job_stars(
            format!("{label}.group"),
            query,
            input,
            ec_files.clone(),
            plan.eager_stars.clone(),
        ),
        DataPlane::Ids => {
            let dict = engine.dict().ok_or_else(|| {
                PlanError::Internal("ID-native plan needs Engine::with_dict".into())
            })?;
            group_filter_job_ids_stars(
                format!("{label}.group"),
                query,
                input,
                ec_files.clone(),
                plan.eager_stars.clone(),
                dict,
            )
        }
    }
    .with_reducers(plan.job1_reduce_tasks)
    .with_estimated_output(plan.estimated_job1_records);
    if let Err(e) = wf.run_job(job1) {
        return fail(wf, &e, Vec::new());
    }
    // Per-star output cardinalities, read now — finish deletes the ec files.
    let star_records: Vec<u64> = {
        let hdfs = engine.hdfs().lock();
        ec_files.iter().map(|f| hdfs.get(f).map(|d| d.len() as u64).unwrap_or(0)).collect()
    };

    let mut components: Vec<usize> = vec![0];
    let mut current_file = ec_files[0].clone();
    for (join_no, (step, cycle)) in steps.iter().zip(&plan.cycles).enumerate() {
        let left = JoinSide { file: current_file.clone(), component: step.lpos, role: step.lrole };
        let right = JoinSide { file: ec_files[step.other].clone(), component: 0, role: step.rrole };
        let out = format!("{label}.tgjoin{join_no}");
        let name = format!("{label}.tgjoin{join_no}");
        let job = match cycle.algo {
            JoinAlgo::Reduce { mode, reduce_tasks } => {
                tg_join_job(name, left, right, mode, &out).with_reducers(reduce_tasks)
            }
            JoinAlgo::Broadcast { build } => {
                let build_file = match build {
                    BuildSide::Left => &left.file,
                    BuildSide::Right => &right.file,
                };
                let actual = engine
                    .hdfs()
                    .lock()
                    .get(build_file)
                    .map_err(|e| PlanError::Internal(format!("broadcast input: {e}")))?
                    .text_bytes;
                if actual <= engine.broadcast_budget_bytes {
                    tg_broadcast_join_job(name, left, right, build, &out)
                } else {
                    // Estimation miss: repair to the reduce-side join
                    // rather than letting the engine refuse the job.
                    tg_join_job(name, left, right, UnnestMode::Exact, &out)
                }
            }
        }
        .with_estimated_output(cycle.estimated_output_records);
        if let Err(e) = wf.run_job(job) {
            return fail(wf, &e, star_records);
        }
        components.push(step.other);
        current_file = out;
    }

    let stats = wf.finish(&[&current_file]);
    let solutions = if extract_solutions {
        let tuples: Vec<TgTuple> = engine
            .read_records(&current_file)
            .map_err(|e| PlanError::Internal(format!("reading final output: {e}")))?;
        Some(expand_tuples(&tuples, &components, query)?)
    } else {
        None
    };
    Ok((QueryRun { stats, solutions }, star_records))
}

/// [`execute_plan_on`] on the lexical plane.
pub fn execute_plan(
    plan: &PhysicalPlan,
    engine: &Engine,
    query: &Query,
    input: &str,
    label: &str,
    extract_solutions: bool,
) -> Result<QueryRun, PlanError> {
    execute_plan_on(DataPlane::Lexical, plan, engine, query, input, label, extract_solutions)
}

/// Optimize under the engine's own cost model and physical limits, then
/// execute — the `--strategy auto-cost` entry point.
pub fn execute_cost_based(
    plane: DataPlane,
    engine: &Engine,
    query: &Query,
    input: &str,
    label: &str,
    extract_solutions: bool,
    stats: &StoreStats,
) -> Result<QueryRun, PlanError> {
    let config = OptimizerConfig::for_engine(engine);
    let plan = optimize(query, stats, &engine.cost, &config)?;
    execute_plan_on(plane, &plan, engine, query, input, label, extract_solutions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{execute, Strategy};
    use mr_rdf::{load_store, load_store_ids};
    use mrsim::SimHdfs;
    use rdf_model::{STriple, TripleStore};
    use rdf_query::parse_query;
    use std::sync::Arc;

    fn store() -> TripleStore {
        let mut triples = vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<syn>", "\"s\""),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<go1>", "<gl>", "\"nucleus\""),
            STriple::new("<go2>", "<gl>", "\"membrane\""),
        ];
        for i in 0..6 {
            triples.push(STriple::new("<g1>", "<xGO>", format!("<go{}>", 1 + i % 2)));
            triples.push(STriple::new("<g2>", "<xRef>", format!("<r{i}>")));
        }
        TripleStore::from_triples(triples)
    }

    const UNBOUND_2STAR: &str = "SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }";

    fn plan_for(q: &str, s: &TripleStore) -> PhysicalPlan {
        let query = parse_query(q).unwrap();
        optimize(&query, &s.stats(), &CostModel::scaled_to(s.text_bytes()), &Default::default())
            .unwrap()
    }

    #[test]
    fn optimized_plan_matches_naive() {
        let s = store();
        let engine = Engine::unbounded().with_cost(CostModel::scaled_to(s.text_bytes()));
        load_store(&engine, "t", &s).unwrap();
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &s);
        assert!(!gold.is_empty());
        let run =
            execute_cost_based(DataPlane::Lexical, &engine, &query, "t", "q", true, &s.stats())
                .unwrap();
        assert!(run.succeeded());
        assert_eq!(run.solutions.unwrap(), gold);
        // Every job carried an estimate, so the run reports a q-error.
        assert!(run.stats.max_q_error().is_some());
    }

    #[test]
    fn id_plane_matches_lexical_plane() {
        let s = store();
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &s);

        let lex = Engine::unbounded();
        load_store(&lex, "t", &s).unwrap();
        let stats = s.stats();
        let plan = optimize(&query, &stats, &lex.cost, &OptimizerConfig::for_engine(&lex)).unwrap();
        let lrun = execute_plan(&plan, &lex, &query, "t", "q", true).unwrap();

        let ids = Engine::unbounded();
        let mut dict = rdf_model::Dictionary::default();
        load_store_ids(&ids, "tid", &s, &mut dict).unwrap();
        let ids = ids.with_dict(Arc::new(dict));
        let irun = execute_plan_on(DataPlane::Ids, &plan, &ids, &query, "tid", "q", true).unwrap();

        assert!(lrun.succeeded() && irun.succeeded());
        assert_eq!(lrun.solutions.unwrap(), gold);
        assert_eq!(irun.solutions.unwrap(), gold);
    }

    #[test]
    fn small_build_side_gets_broadcast() {
        // The <gl> star is tiny; shipping it beats shuffling everything.
        let plan = plan_for(UNBOUND_2STAR, &store());
        assert_eq!(plan.cycles.len(), 1);
        assert!(plan.broadcast_cycles() == 1, "expected a broadcast cycle in {}", plan.summary());
        assert_eq!(plan.cycles[0].estimated_shuffle_bytes, 0);
    }

    #[test]
    fn broadcast_disabled_without_budget() {
        let s = store();
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let config = OptimizerConfig { broadcast_budget_bytes: 0, ..Default::default() };
        let plan =
            optimize(&query, &s.stats(), &CostModel::scaled_to(s.text_bytes()), &config).unwrap();
        assert_eq!(plan.broadcast_cycles(), 0, "{}", plan.summary());
        match plan.cycles[0].algo {
            JoinAlgo::Reduce { reduce_tasks, .. } => assert!(reduce_tasks >= 1),
            JoinAlgo::Broadcast { .. } => panic!("broadcast chosen with zero budget"),
        }
    }

    #[test]
    fn optimizer_at_least_matches_every_hand_picked_strategy() {
        let s = store();
        let cost = CostModel::scaled_to(s.text_bytes());
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let config = OptimizerConfig::default();
        let plan = optimize(&query, &s.stats(), &cost, &config).unwrap();

        let run_with = |strategy| {
            let engine = Engine::unbounded().with_cost(cost.clone());
            load_store(&engine, "t", &s).unwrap();
            let r = execute(strategy, &engine, &query, "t", "q", false).unwrap();
            assert!(r.succeeded());
            r.stats.sim_seconds
        };
        let best_hand = [
            Strategy::Eager,
            Strategy::LazyFull,
            Strategy::LazyPartial(1024),
            Strategy::Auto(1024),
        ]
        .into_iter()
        .map(run_with)
        .fold(f64::INFINITY, f64::min);

        let engine = Engine::unbounded().with_cost(cost.clone());
        load_store(&engine, "t", &s).unwrap();
        let run = execute_plan(&plan, &engine, &query, "t", "q", false).unwrap();
        assert!(run.succeeded());
        assert!(
            run.stats.sim_seconds <= best_hand + 1e-9,
            "cost plan {} took {:.3}s vs best hand-picked {:.3}s",
            plan.summary(),
            run.stats.sim_seconds,
            best_hand
        );
    }

    #[test]
    fn oversized_actual_build_side_repairs_to_reduce_join() {
        let s = store();
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &s);
        // Plan with a generous budget, run on an engine with a tiny one:
        // the actual file check must repair the cycle, not fail the run.
        let stats = s.stats();
        let plan = optimize(
            &query,
            &stats,
            &CostModel::scaled_to(s.text_bytes()),
            &OptimizerConfig::default(),
        )
        .unwrap();
        assert!(plan.broadcast_cycles() > 0);
        let engine = Engine::unbounded().with_broadcast_budget(1);
        load_store(&engine, "t", &s).unwrap();
        let run = execute_plan(&plan, &engine, &query, "t", "q", true).unwrap();
        assert!(run.succeeded());
        assert_eq!(run.solutions.unwrap(), gold);
        assert_eq!(run.stats.jobs.last().unwrap().broadcast_files, 0);
    }

    #[test]
    fn single_star_plan_has_no_cycles() {
        let s = store();
        let plan = plan_for("SELECT * WHERE { ?g <label> ?l . ?g ?p ?o . }", &s);
        assert!(plan.cycles.is_empty());
        let engine = Engine::unbounded();
        load_store(&engine, "t", &s).unwrap();
        let query = parse_query("SELECT * WHERE { ?g <label> ?l . ?g ?p ?o . }").unwrap();
        let gold = rdf_query::naive::evaluate(&query, &s);
        let run = execute_plan(&plan, &engine, &query, "t", "q", true).unwrap();
        assert_eq!(run.stats.mr_cycles, 1);
        assert_eq!(run.solutions.unwrap(), gold);
    }

    #[test]
    fn disk_full_reported_not_panicked() {
        let s = store();
        let engine = Engine::new(SimHdfs::new(s.text_bytes() + 20, 1));
        load_store(&engine, "t", &s).unwrap();
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let run =
            execute_cost_based(DataPlane::Lexical, &engine, &query, "t", "q", true, &s.stats())
                .unwrap();
        assert!(!run.succeeded());
        assert!(run.solutions.is_none());
    }

    #[test]
    fn redundant_star_stays_lazy() {
        // A store where one star expands 100× eagerly: the optimizer must
        // not pick eager for it.
        let mut triples = vec![STriple::new("<go1>", "<gl>", "\"x\"")];
        for i in 0..100 {
            triples.push(STriple::new("<g1>", "<xGO>", format!("<v{i}>")));
        }
        triples.push(STriple::new("<g1>", "<xGO>", "<go1>"));
        triples.push(STriple::new("<g1>", "<label>", "\"a\""));
        let s = TripleStore::from_triples(triples);
        let plan = plan_for(UNBOUND_2STAR, &s);
        assert!(!plan.eager_stars[0], "expansive star went eager: {}", plan.summary());
    }
}
