//! TripleGroup data model: annotated triplegroups and triplegroup tuples.
//!
//! An [`AnnTg`] is the paper's *annotated triplegroup* (Section 4,
//! Figure 7): all triples of one subject relevant to one star subpattern
//! (equivalence class), held in nested property→objects form. For stars
//! with unbound-property patterns it additionally carries, per unbound
//! pattern, the list of candidate `(property, object)` pairs — kept
//! *implicit* (nested) until a β-unnest pins them.
//!
//! The simulated text size counts each **distinct** `(property, object)`
//! pair once plus the subject: the nested representation stores a triple
//! once even when it plays multiple roles (bound match and unbound
//! candidate), which is exactly the conciseness the paper exploits.

use mrsim::{MrError, Rec, SliceReader};
use rdf_model::atom::Atom;
use rdf_query::{Binding, ObjPattern, PropPattern, StarPattern};
use std::collections::BTreeSet;

/// An annotated triplegroup: one subject's matches for one star
/// subpattern. Tokens are interned [`Atom`]s, so cloning a triplegroup
/// (or re-emitting its tokens across cycles) bumps reference counts
/// instead of copying heap strings; equality and ordering stay
/// content-based, so shuffle sort order matches the `String` era.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AnnTg {
    /// The shared subject token.
    pub subject: Atom,
    /// Equivalence class: index of the star in the query.
    pub ec: u64,
    /// Objects per bound pattern, parallel to
    /// [`StarPattern::bound_patterns`] order: `(property token, objects)`.
    pub bound: Vec<(Atom, Vec<Atom>)>,
    /// Candidate `(property, object)` pairs per unbound pattern, parallel
    /// to [`StarPattern::unbound_patterns`] order.
    pub unbound: Vec<Vec<(Atom, Atom)>>,
}

impl AnnTg {
    /// Number of flat combinations this triplegroup implicitly represents
    /// (product of all list lengths).
    pub fn combination_count(&self) -> u64 {
        let mut n: u64 = 1;
        for (_, objs) in &self.bound {
            n = n.saturating_mul(objs.len() as u64);
        }
        for cands in &self.unbound {
            n = n.saturating_mul(cands.len() as u64);
        }
        n
    }

    /// The distinct `(property, object)` pairs stored (a triple playing
    /// multiple roles counts once — set semantics of triplegroups).
    pub fn distinct_pairs(&self) -> BTreeSet<(&str, &str)> {
        let mut set = BTreeSet::new();
        for (p, objs) in &self.bound {
            for o in objs {
                set.insert((&**p, &**o));
            }
        }
        for cands in &self.unbound {
            for (p, o) in cands {
                set.insert((&**p, &**o));
            }
        }
        set
    }

    /// Expand to solution bindings for the star this triplegroup matches.
    ///
    /// The cross product of bound-object choices and unbound-candidate
    /// choices, with variables drawn from the star's patterns. Positions
    /// bound to constants bind nothing.
    ///
    /// Returns `None` if this triplegroup's shape does not line up with
    /// the star (planner bug).
    pub fn expand(&self, star: &StarPattern) -> Option<Vec<Binding>> {
        let bound_pats = star.bound_patterns();
        let unbound_pats = star.unbound_patterns();
        if bound_pats.len() != self.bound.len() || unbound_pats.len() != self.unbound.len() {
            return None;
        }
        // Dimensions: bound lists then unbound lists.
        let mut dims: Vec<usize> = Vec::new();
        for (_, objs) in &self.bound {
            if objs.is_empty() {
                return Some(Vec::new());
            }
            dims.push(objs.len());
        }
        for cands in &self.unbound {
            if cands.is_empty() {
                return Some(Vec::new());
            }
            dims.push(cands.len());
        }
        let mut out = Vec::new();
        let mut cursor = vec![0usize; dims.len()];
        loop {
            let mut b = Binding::new();
            let mut ok = b.bind(&star.subject_var, self.subject.clone());
            for (i, pat) in bound_pats.iter().enumerate() {
                let obj = &self.bound[i].1[cursor[i]];
                if let ObjPattern::Var(v) | ObjPattern::Filtered(v, _) = &pat.object {
                    ok = ok && b.bind(v, obj.clone());
                }
            }
            for (j, pat) in unbound_pats.iter().enumerate() {
                let (p, o) = &self.unbound[j][cursor[bound_pats.len() + j]];
                if let PropPattern::Unbound(v) = &pat.property {
                    ok = ok && b.bind(v, p.clone());
                }
                if let ObjPattern::Var(v) | ObjPattern::Filtered(v, _) = &pat.object {
                    ok = ok && b.bind(v, o.clone());
                }
            }
            if ok {
                out.push(b);
            }
            // odometer
            let mut pos = dims.len();
            loop {
                if pos == 0 {
                    return Some(out);
                }
                pos -= 1;
                cursor[pos] += 1;
                if cursor[pos] < dims[pos] {
                    break;
                }
                cursor[pos] = 0;
            }
        }
    }
}

impl Rec for AnnTg {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.subject.encode_into(buf);
        self.ec.encode_into(buf);
        self.bound.encode_into(buf);
        self.unbound.encode_into(buf);
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        Ok(AnnTg {
            subject: Atom::decode(r)?,
            ec: u64::decode(r)?,
            bound: Vec::<(Atom, Vec<Atom>)>::decode(r)?,
            unbound: Vec::<Vec<(Atom, Atom)>>::decode(r)?,
        })
    }

    fn text_size(&self) -> u64 {
        // subject + separator, then each distinct (p, o) pair once with
        // two separators — the nested text representation.
        let mut n = self.subject.len() as u64 + 1;
        for (p, o) in self.distinct_pairs() {
            n += p.len() as u64 + o.len() as u64 + 2;
        }
        n
    }
}

/// A tuple of triplegroups: the record type flowing through NTGA join
/// cycles (one component per already-joined star).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgTuple(pub Vec<AnnTg>);

impl Rec for TgTuple {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        bytes::BufMut::put_u32_le(buf, u32::try_from(self.0.len()).expect("tuple too long"));
        for tg in &self.0 {
            tg.encode_into(buf);
        }
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        let n = r.read_u32()? as usize;
        let mut out = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            out.push(AnnTg::decode(r)?);
        }
        Ok(TgTuple(out))
    }

    fn text_size(&self) -> u64 {
        self.0.iter().map(Rec::text_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_query::TriplePattern;

    fn star() -> StarPattern {
        StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::bound("g", "<xGO>", ObjPattern::Var("go".into())),
                TriplePattern::unbound("g", "p", ObjPattern::Var("o".into())),
            ],
        )
    }

    fn anntg() -> AnnTg {
        AnnTg {
            subject: "<g1>".into(),
            ec: 0,
            bound: vec![
                ("<label>".into(), vec!["\"a\"".into()]),
                ("<xGO>".into(), vec!["<go1>".into(), "<go2>".into()]),
            ],
            unbound: vec![vec![
                ("<label>".into(), "\"a\"".into()),
                ("<xGO>".into(), "<go1>".into()),
                ("<xGO>".into(), "<go2>".into()),
                ("<syn>".into(), "\"s\"".into()),
            ]],
        }
    }

    #[test]
    fn roundtrip() {
        let tg = anntg();
        assert_eq!(AnnTg::from_bytes(&tg.to_bytes()).unwrap(), tg);
        let tup = TgTuple(vec![tg.clone(), tg]);
        assert_eq!(TgTuple::from_bytes(&tup.to_bytes()).unwrap(), tup);
    }

    #[test]
    fn combination_count() {
        assert_eq!(anntg().combination_count(), 8); // 1 label × 2 xGO × 4 candidates
    }

    #[test]
    fn distinct_pairs_dedup_multiple_roles() {
        // 3 bound pairs + 4 unbound candidates, but 3 candidates duplicate
        // bound pairs -> 4 distinct.
        assert_eq!(anntg().distinct_pairs().len(), 4);
    }

    #[test]
    fn text_size_counts_each_pair_once() {
        let tg = anntg();
        let expected: u64 = ("<g1>".len() as u64 + 1)
            + tg.distinct_pairs()
                .iter()
                .map(|(p, o)| p.len() as u64 + o.len() as u64 + 2)
                .sum::<u64>();
        assert_eq!(tg.text_size(), expected);
    }

    #[test]
    fn nested_text_is_smaller_than_flat() {
        // The whole point: 8 flat combinations vs one nested TG.
        let tg = anntg();
        let bindings = tg.expand(&star()).unwrap();
        assert_eq!(bindings.len(), 8);
        let flat_bytes: u64 =
            bindings.iter().map(|b| b.iter().map(|(_, v)| v.len() as u64 + 1).sum::<u64>()).sum();
        assert!(tg.text_size() < flat_bytes);
    }

    #[test]
    fn expand_binds_all_vars() {
        let bindings = anntg().expand(&star()).unwrap();
        for b in &bindings {
            assert!(b.get("g").is_some());
            assert!(b.get("l").is_some());
            assert!(b.get("go").is_some());
            assert!(b.get("p").is_some());
            assert!(b.get("o").is_some());
        }
    }

    #[test]
    fn expand_rejects_shape_mismatch() {
        let mut tg = anntg();
        tg.unbound.clear();
        assert!(tg.expand(&star()).is_none());
    }

    #[test]
    fn expand_empty_candidate_list_is_no_solutions() {
        let mut tg = anntg();
        tg.unbound[0].clear();
        assert_eq!(tg.expand(&star()).unwrap().len(), 0);
    }
}
