//! Plan explanation: render the MR workflow the planner would run,
//! without executing it.
//!
//! Mirrors `EXPLAIN` in SQL engines: one line per MR cycle with the
//! physical operator, its inputs, the unnest decision the strategy makes
//! (`TG_UnbJoin` vs `TG_OptUnbJoin` and the φ range), and the paper
//! vocabulary for each step, so the rewrite from Figure 6 is visible.

use crate::optimizer::{JoinAlgo, PhysicalPlan};
use crate::physical::{role_of, BuildSide, JoinRole, UnnestMode};
use crate::planner::Strategy;
use mr_rdf::{check_query, PlanError};
use rdf_query::{ObjPattern, Query};
use std::collections::HashSet;
use std::fmt::Write as _;

/// A rendered plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanText {
    /// One entry per MR cycle.
    pub cycles: Vec<String>,
    /// The strategy label.
    pub strategy: String,
    /// Operator-counter namespaces this plan records at runtime (see
    /// [`crate::physical::op`]): which of `ntga.group.*`, `ntga.unnest.*`
    /// and `ntga.partial.*` will show up on the run's `JobStats::ops`.
    pub counters: Vec<&'static str>,
    /// Per-cycle estimated output cardinalities (records, rounded), when
    /// the plan came from the cost-based optimizer. Empty for hand-picked
    /// strategies, which plan without statistics. Comparing these against
    /// the executed run's `JobStats::output_records` is exactly the
    /// per-job q-error the engine reports.
    pub estimates: Vec<u64>,
}

impl std::fmt::Display for PlanText {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "NTGA plan [{}]:", self.strategy)?;
        for (i, c) in self.cycles.iter().enumerate() {
            match self.estimates.get(i) {
                Some(est) => writeln!(f, "  MR{}: {} (~{est} records)", i + 1, c)?,
                None => writeln!(f, "  MR{}: {}", i + 1, c)?,
            }
        }
        writeln!(f, "  counters: {}", self.counters.join(", "))?;
        Ok(())
    }
}

fn role_text(role: JoinRole, star: &rdf_query::StarPattern) -> String {
    match role {
        JoinRole::Subject => format!("?{}(subject)", star.subject_var),
        JoinRole::BoundObj(i) => {
            let pat = star.bound_patterns()[i];
            format!("object of {}", pat.property_token())
        }
        JoinRole::UnboundObj(i) => {
            let pat = star.unbound_patterns()[i];
            let filtered = matches!(pat.object, ObjPattern::Filtered(_, _));
            format!(
                "object of unbound pattern #{i}{}",
                if filtered { " (partially bound)" } else { "" }
            )
        }
    }
}

/// Internal helper trait so explain can print a pattern's property token.
trait PropertyToken {
    fn property_token(&self) -> String;
}

impl PropertyToken for rdf_query::TriplePattern {
    fn property_token(&self) -> String {
        match &self.property {
            rdf_query::PropPattern::Bound(p) => p.to_string(),
            rdf_query::PropPattern::Unbound(v) => format!("?{v}"),
        }
    }
}

/// Render the plan the NTGA planner would compile for `query` under
/// `strategy`. Fails exactly when [`crate::execute`] would fail to plan.
pub fn explain(strategy: Strategy, query: &Query) -> Result<PlanText, PlanError> {
    query.validate()?;
    check_query(query)?;
    let mut cycles = Vec::new();

    // Job 1.
    let mut job1 = String::from("TG_GroupByMap(T) + TG_GroupByReduce");
    let ec_desc: Vec<String> = query
        .stars
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let bound: Vec<String> = s.bound_properties().iter().map(|p| p.to_string()).collect();
            let unb = s.unbound_patterns().len();
            format!(
                "EC{i}=?{}{{{}{}}}",
                s.subject_var,
                bound.join(","),
                if unb > 0 { format!(",{unb}×unbound") } else { String::new() }
            )
        })
        .collect();
    let filter_op = if query.stars.iter().any(rdf_query::StarPattern::has_unbound) {
        "TG_UnbGrpFilter (σ^βγ)"
    } else {
        "TG_GrpFilter (σ^γ)"
    };
    write!(job1, " + {filter_op} -> {}", ec_desc.join(", ")).expect("write to string");
    if strategy == Strategy::Eager {
        job1.push_str(" + eager μ^β (perfect triplegroups materialized here)");
    }
    job1.push_str("   [1 full scan computes ALL star subpatterns]");
    cycles.push(job1);

    // Join cycles, in the same order execute() picks them. Track which
    // unnest flavors the plan will exercise for the counter summary.
    let mut lazy_unnest = false;
    let mut partial_unnest = false;
    let edges = query.join_edges();
    let mut joined: HashSet<usize> = HashSet::from([0]);
    let mut components: Vec<usize> = vec![0];
    while joined.len() < query.stars.len() {
        let edge = edges
            .iter()
            .find(|e| joined.contains(&e.left) != joined.contains(&e.right))
            .ok_or_else(|| PlanError::Internal("join graph not connected".into()))?;
        let other = if joined.contains(&edge.left) { edge.right } else { edge.left };
        let (lpos, lrole) = components
            .iter()
            .enumerate()
            .find_map(|(pos, &si)| role_of(&query.stars[si], &edge.var).map(|r| (pos, r)))
            .ok_or_else(|| PlanError::Internal("join var missing on left".into()))?;
        let rrole = role_of(&query.stars[other], &edge.var)
            .ok_or_else(|| PlanError::Internal("join var missing on right".into()))?;

        let mut unbound_flags = Vec::new();
        for (si, role) in [(components[lpos], lrole), (other, rrole)] {
            if let JoinRole::UnboundObj(u) = role {
                let pat = query.stars[si].unbound_patterns()[u].clone();
                unbound_flags.push(matches!(pat.object, ObjPattern::Filtered(_, _)));
            }
        }
        let op = if unbound_flags.is_empty() {
            "TG_Join".to_string()
        } else {
            match strategy {
                Strategy::Eager => "TG_Join (inputs already β-unnested eagerly)".to_string(),
                Strategy::LazyFull => {
                    lazy_unnest = true;
                    "TG_UnbJoin (lazy FULL μ^β at this cycle's map)".to_string()
                }
                Strategy::LazyPartial(m) => {
                    partial_unnest = true;
                    format!("TG_OptUnbJoin (lazy PARTIAL μ^β_φ, φ range {m})")
                }
                Strategy::Auto(m) => {
                    if unbound_flags.iter().all(|&f| f) {
                        lazy_unnest = true;
                        "TG_UnbJoin (Auto: partially-bound object -> full unnest)".to_string()
                    } else {
                        partial_unnest = true;
                        format!("TG_OptUnbJoin (Auto: unbound object -> partial unnest, φ {m})")
                    }
                }
            }
        };
        cycles.push(format!(
            "{op} on ?{}: left {} ⋈ right EC{} {}",
            edge.var,
            role_text(lrole, &query.stars[components[lpos]]),
            other,
            role_text(rrole, &query.stars[other]),
        ));
        joined.insert(other);
        components.push(other);
    }
    let mut counters = vec!["ntga.group.*"];
    if strategy == Strategy::Eager || lazy_unnest {
        counters.push("ntga.unnest.*");
    }
    if partial_unnest {
        counters.push("ntga.partial.*");
    }
    Ok(PlanText { cycles, strategy: strategy.label(), counters, estimates: Vec::new() })
}

/// Render a cost-based [`PhysicalPlan`]: one line per MR cycle with the
/// chosen operator (reduce-side join with its sized reducer count and φ,
/// or map-side `TG_BcastJoin` with the broadcast side) and the estimated
/// output cardinality the executed job will be scored against (q-error).
pub fn explain_plan(plan: &PhysicalPlan, query: &Query) -> Result<PlanText, PlanError> {
    query.validate()?;
    check_query(query)?;
    if plan.eager_stars.len() != query.stars.len() {
        return Err(PlanError::Internal("plan shape does not match query".into()));
    }
    let mut cycles = Vec::new();
    let mut estimates = Vec::new();

    let placements: Vec<String> = plan
        .eager_stars
        .iter()
        .enumerate()
        .map(|(i, &e)| format!("EC{i}={}", if e { "eager μ^β" } else { "lazy" }))
        .collect();
    cycles.push(format!(
        "TG_GroupByMap(T) + TG_UnbGrpFilter -> {} (r={})   [per-star unnest placement]",
        placements.join(", "),
        plan.job1_reduce_tasks
    ));
    estimates.push(plan.estimated_job1_records.round() as u64);

    let mut eager_unnest = plan.eager_stars.iter().any(|&e| e);
    let mut partial_unnest = false;
    for cycle in &plan.cycles {
        let desc = match cycle.algo {
            JoinAlgo::Reduce { mode: UnnestMode::Exact, reduce_tasks } => {
                format!("TG_UnbJoin (reduce-side, exact keys, r={reduce_tasks})")
            }
            JoinAlgo::Reduce { mode: UnnestMode::Partial(m), reduce_tasks } => {
                partial_unnest = true;
                format!("TG_OptUnbJoin (reduce-side, partial μ^β_φ, φ {m}, r={reduce_tasks})")
            }
            JoinAlgo::Broadcast { build } => {
                eager_unnest = true; // probe-side unnest records ntga.unnest.*
                let side = match build {
                    BuildSide::Left => "left",
                    BuildSide::Right => "right",
                };
                format!("TG_BcastJoin (map-side, {side} side broadcast — reduce cycle collapsed)")
            }
        };
        cycles.push(desc);
        estimates.push(cycle.estimated_output_records.round() as u64);
    }
    let mut counters = vec!["ntga.group.*"];
    if eager_unnest {
        counters.push("ntga.unnest.*");
    }
    if partial_unnest {
        counters.push("ntga.partial.*");
    }
    Ok(PlanText { cycles, strategy: format!("CostBased: {}", plan.summary()), counters, estimates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_query::parse_query;

    fn q() -> Query {
        parse_query(
            r#"SELECT * WHERE {
                ?g <label> ?l . ?g ?p ?go .
                ?go <gl> ?x .
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn explains_two_cycle_plan() {
        let plan = explain(Strategy::Auto(1024), &q()).unwrap();
        assert_eq!(plan.cycles.len(), 2);
        assert!(plan.cycles[0].contains("TG_UnbGrpFilter"));
        assert!(plan.cycles[0].contains("ALL star subpatterns"));
        assert!(plan.cycles[1].contains("TG_OptUnbJoin"));
        assert!(plan.cycles[1].contains("φ 1024"));
        assert_eq!(plan.counters, vec!["ntga.group.*", "ntga.partial.*"]);
    }

    #[test]
    fn counter_summary_tracks_unnest_flavor() {
        assert_eq!(
            explain(Strategy::Eager, &q()).unwrap().counters,
            vec!["ntga.group.*", "ntga.unnest.*"]
        );
        assert_eq!(
            explain(Strategy::LazyFull, &q()).unwrap().counters,
            vec!["ntga.group.*", "ntga.unnest.*"]
        );
        let text = explain(Strategy::LazyPartial(8), &q()).unwrap().to_string();
        assert!(text.contains("counters: ntga.group.*, ntga.partial.*"), "{text}");
    }

    #[test]
    fn eager_annotates_job1() {
        let plan = explain(Strategy::Eager, &q()).unwrap();
        assert!(plan.cycles[0].contains("eager μ^β"));
        assert!(plan.cycles[1].contains("already β-unnested"));
    }

    #[test]
    fn auto_chooses_full_for_partially_bound() {
        let q = parse_query(
            r#"SELECT * WHERE {
                ?g <label> ?l . ?g ?p ?go .
                ?go <gl> ?x .
                FILTER prefix(?go, "<go") .
            }"#,
        )
        .unwrap();
        let plan = explain(Strategy::Auto(64), &q).unwrap();
        assert!(plan.cycles[1].contains("full unnest"), "{}", plan.cycles[1]);
    }

    #[test]
    fn bound_query_uses_plain_operators() {
        let q = parse_query("SELECT * WHERE { ?a <p> ?b . ?b <q> ?c . }").unwrap();
        let plan = explain(Strategy::LazyFull, &q).unwrap();
        assert!(plan.cycles[0].contains("TG_GrpFilter (σ^γ)"));
        assert!(plan.cycles[1].starts_with("TG_Join on ?b"));
    }

    #[test]
    fn display_renders_numbered_cycles() {
        let text = explain(Strategy::LazyFull, &q()).unwrap().to_string();
        assert!(text.contains("MR1:"));
        assert!(text.contains("MR2:"));
        assert!(text.contains("LazyUnnest(full)"));
    }

    #[test]
    fn explain_plan_renders_cost_based_choices() {
        use rdf_model::{STriple, TripleStore};
        let mut triples = vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<go1>", "<gl>", "\"nucleus\""),
        ];
        for i in 0..6 {
            triples.push(STriple::new("<g1>", "<xGO>", format!("<go{i}>")));
        }
        let s = TripleStore::from_triples(triples);
        let plan = crate::optimizer::optimize(
            &q(),
            &s.stats(),
            &mrsim::CostModel::scaled_to(s.text_bytes()),
            &Default::default(),
        )
        .unwrap();
        let text = explain_plan(&plan, &q()).unwrap();
        assert_eq!(text.cycles.len(), 2);
        assert_eq!(text.estimates.len(), 2);
        assert!(text.cycles[0].contains("per-star unnest placement"), "{}", text.cycles[0]);
        assert!(text.strategy.starts_with("CostBased:"));
        let rendered = text.to_string();
        assert!(rendered.contains("records)"), "{rendered}");
        // Hand-picked plans carry no estimates.
        assert!(explain(Strategy::LazyFull, &q()).unwrap().estimates.is_empty());
    }

    #[test]
    fn rejects_invalid_queries_like_execute() {
        let q = parse_query("SELECT * WHERE { ?a <p> ?b . }").unwrap();
        let mut disconnected = q.clone();
        disconnected.stars.push(rdf_query::StarPattern::new(
            "z",
            vec![rdf_query::TriplePattern::bound(
                "z",
                "<q>",
                rdf_query::ObjPattern::Var("w".into()),
            )],
        ));
        assert!(explain(Strategy::LazyFull, &disconnected).is_err());
    }
}
