//! Aggregation over triplegroups — the paper's stated future work
//! ("unbound-property queries with aggregation constraints"), implemented
//! on the nested representation.
//!
//! The decisive property of the TripleGroup model here: a `COUNT(*)` over
//! the solutions of an unbound-property query does **not** require
//! β-unnesting at all. A joined tuple of annotated triplegroups implicitly
//! represents `Π` (product over its nested lists) flat solutions
//! ([`crate::AnnTg::combination_count`]), so counting is O(size of nested form) —
//! the cost the lazy strategy already paid — instead of O(number of flat
//! solutions).
//!
//! Provided both as in-memory folds over a final [`TgTuple`] relation and
//! as a MapReduce job ([`count_job`]) that uses a combiner, so the count
//! of a billion-combination result ships a handful of numbers through the
//! shuffle.

use crate::tg::TgTuple;
use mrsim::{
    combine_fn, map_fn, reduce_fn, InputBinding, JobSpec, TypedMapEmitter, TypedOutEmitter,
};
use rdf_model::atom::Atom;
use std::collections::BTreeMap;

/// Bag-semantics solution count of a joined triplegroup relation, computed
/// without unnesting: `Σ_tuples Π_components Π_lists |list|`.
///
/// For planner-supported queries (no shared variables within a star) this
/// equals the number of flat rows a relational plan would have
/// materialized.
pub fn solution_count_fast(tuples: &[TgTuple]) -> u64 {
    tuples.iter().map(|t| t.0.iter().map(|tg| tg.combination_count()).product::<u64>()).sum()
}

/// Per-group bag counts, grouped by the subject of tuple component
/// `component` (a `GROUP BY ?subjectVar COUNT(*)`).
pub fn group_count_by_subject(tuples: &[TgTuple], component: usize) -> BTreeMap<Atom, u64> {
    let mut out = BTreeMap::new();
    for t in tuples {
        if let Some(tg) = t.0.get(component) {
            let combos: u64 = t.0.iter().map(|c| c.combination_count()).product();
            *out.entry(tg.subject.clone()).or_insert(0) += combos;
        }
    }
    out
}

/// Build an MR job computing `GROUP BY <component subject> COUNT(*)` over
/// a [`TgTuple`] relation, counting on the nested representation.
///
/// Map emits `(subject, implicit combination count)`; a combiner sums
/// per-map-task; reduce sums and writes `(subject, count)` rows. The
/// shuffle carries one small pair per (task, subject) — not one record
/// per solution.
pub fn count_job(
    name: impl Into<String>,
    input: &str,
    component: usize,
    output: impl Into<String>,
) -> JobSpec {
    let mapper = map_fn(move |t: TgTuple, out: &mut TypedMapEmitter<'_, Atom, u64>| {
        let Some(tg) = t.0.get(component) else {
            return Err(mrsim::MrError::Op("count component out of range".into()));
        };
        let combos: u64 = t.0.iter().map(|c| c.combination_count()).product();
        out.emit(&tg.subject, &combos);
        Ok(())
    });
    let combiner =
        combine_fn(|key: Atom, counts: Vec<u64>, out: &mut TypedMapEmitter<'_, Atom, u64>| {
            out.emit(&key, &counts.iter().sum());
            Ok(())
        });
    let reducer =
        reduce_fn(|key: Atom, counts: Vec<u64>, out: &mut TypedOutEmitter<'_, (Atom, u64)>| {
            out.emit(&(key, counts.iter().sum()))
        });
    JobSpec::map_reduce(
        name,
        vec![InputBinding { file: input.to_string(), mapper }],
        reducer,
        crate::physical::REDUCERS,
        output,
    )
    .with_combiner(combiner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{execute, Strategy};
    use mr_rdf::load_store;
    use mrsim::Engine;
    use rdf_model::{STriple, TripleStore};
    use rdf_query::parse_query;

    fn store() -> TripleStore {
        let mut ts = vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<go1>", "<gl>", "\"x\""),
        ];
        for i in 0..12 {
            ts.push(STriple::new("<g1>", "<xRef>", format!("<r{i}>")));
        }
        ts.push(STriple::new("<g1>", "<xGO>", "<go1>"));
        ts.push(STriple::new("<g2>", "<xGO>", "<go1>"));
        TripleStore::from_triples(ts)
    }

    fn final_tuples(engine: &Engine, label: &str) -> Vec<TgTuple> {
        // The planner keeps the final join output; find it.
        let names = engine.hdfs().lock().file_names();
        let final_name =
            names.iter().filter(|n| n.contains(label)).max().expect("final output").clone();
        engine.read_records(&final_name).unwrap()
    }

    fn run_lazy(q: &str) -> (Engine, Vec<TgTuple>, rdf_query::Query, usize) {
        let engine = Engine::unbounded();
        load_store(&engine, "t", &store()).unwrap();
        let query = parse_query(q).unwrap();
        execute(Strategy::LazyFull, &engine, &query, "t", "agg", true).unwrap();
        let tuples = final_tuples(&engine, "agg");
        let n = query.stars.len();
        (engine, tuples, query, n)
    }

    const Q: &str = "SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }";

    #[test]
    fn fast_count_equals_expanded_bag_count() {
        let (_, tuples, query, _) = run_lazy(Q);
        let fast = solution_count_fast(&tuples);
        // Expanded bag count: sum of per-tuple expansion sizes.
        let mut expanded = 0u64;
        for t in &tuples {
            let mut per_tuple = 1u64;
            for (tg, star) in t.0.iter().zip(&query.stars) {
                per_tuple *= tg.expand(star).unwrap().len() as u64;
            }
            expanded += per_tuple;
        }
        assert_eq!(fast, expanded);
        assert!(fast > 0);
    }

    #[test]
    fn fast_count_matches_naive_solution_count() {
        // With distinct objects everywhere, bag count == set count ==
        // naive evaluator count.
        let (_, tuples, query, _) = run_lazy(Q);
        let gold = rdf_query::naive::evaluate(&query, &store());
        assert_eq!(solution_count_fast(&tuples), gold.len() as u64);
    }

    #[test]
    fn group_counts_sum_to_total() {
        let (_, tuples, _, _) = run_lazy(Q);
        let groups = group_count_by_subject(&tuples, 0);
        let total: u64 = groups.values().sum();
        assert_eq!(total, solution_count_fast(&tuples));
        // g1 carries the multi-valued xRef (but only xGO joins to go1).
        assert!(groups.contains_key("<g1>"));
    }

    #[test]
    fn count_job_runs_on_nested_form() {
        let (engine, tuples, _, _) = run_lazy(Q);
        let names = engine.hdfs().lock().file_names();
        let input = names.iter().filter(|n| n.contains("agg")).max().unwrap().clone();
        let job = count_job("count", &input, 0, "counts");
        let stats = engine.run_job(&job).unwrap();
        let rows: Vec<(Atom, u64)> = engine.read_records("counts").unwrap();
        let total: u64 = rows.iter().map(|(_, c)| c).sum();
        assert_eq!(total, solution_count_fast(&tuples));
        // The shuffle carried at most one pair per (map task, subject) —
        // far fewer than the flat solution count when combos are implicit.
        assert!(stats.map_output_records <= tuples.len() as u64);
    }

    #[test]
    fn counting_beats_unnesting_in_bytes() {
        // The point of the extension: counting on the nested form moves
        // fewer bytes than materializing the flat result would. Use a
        // B4-shaped query whose unbound pattern is OUTSIDE the join, so
        // its candidates stay nested in the final output.
        let (_, tuples, query, _) = run_lazy(
            "SELECT * WHERE { ?g <label> ?l . ?g <xGO> ?go . ?g ?p ?any . ?go <gl> ?x . }",
        );
        let nested_bytes: u64 = tuples.iter().map(mrsim::Rec::text_size).sum();
        let mut flat_rows = 0u64;
        for t in &tuples {
            let mut per = 1u64;
            for (tg, star) in t.0.iter().zip(&query.stars) {
                per *= tg.expand(star).unwrap().len() as u64;
            }
            flat_rows += per;
        }
        // 12 xRef candidates per g1 tuple: flat rows outnumber tuples.
        assert!(flat_rows > tuples.len() as u64);
        assert!(nested_bytes > 0);
    }

    #[test]
    fn empty_relation_counts_zero() {
        assert_eq!(solution_count_fast(&[]), 0);
        assert!(group_count_by_subject(&[], 0).is_empty());
    }
}
