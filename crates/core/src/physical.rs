//! Physical NTGA operators on MapReduce (Section 4, Algorithms 1–3).
//!
//! * [`group_filter_job`] — **Job 1**: `TG_GroupBy` (map tags triples by
//!   subject) + `TG_UnbGrpFilter` (reduce builds subject triplegroups and
//!   matches them against every star subpattern at once — the single
//!   grouping cycle that computes ALL star joins). With `eager = true` the
//!   reduce additionally β-unnests (the paper's **EagerUnnest**); otherwise
//!   annotated triplegroups stay nested (**LazyUnnest**).
//! * [`tg_join_job`] — **Job 2**: join between two triplegroup equivalence
//!   classes. The map side evaluates the join role of each side:
//!   subject joins ship the triplegroup as-is; bound-object joins pin the
//!   join object; unbound-object joins β-unnest **lazily at the map of
//!   this cycle** — fully (`TG_UnbJoin`, [`UnnestMode::Exact`]) or
//!   partially to reducer-partition granularity (`TG_OptUnbJoin`,
//!   [`UnnestMode::Partial`], Algorithm 3) with the reduce side finishing
//!   the unnest and hash-joining on the real key.

use crate::logical::{match_star, partial_beta_unnest, TripleGroup};
use crate::tg::{AnnTg, TgTuple};
use mr_rdf::{IdPair, IdStarTest, IdTripleRec, TripleRec};
use mrsim::{
    map_fn, map_fn_ctx, map_only_fn_ctx, reduce_fn, reduce_fn_ctx, InputBinding, JobSpec, MrError,
    Rec, TaskContext, TypedMapEmitter, TypedOutEmitter, VarId,
};
use rdf_model::atom::{atom, fnv1a, Atom};
use rdf_model::hash::DetHashMap;
use rdf_model::Dictionary;
use rdf_query::{Query, StarPattern};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Default reducer count for NTGA jobs.
pub const REDUCERS: usize = 8;

/// Operator-counter names recorded by the NTGA physical operators.
///
/// Counters are recorded through [`mrsim::TaskContext::count`] and surface
/// as order-independent sums on [`mrsim::JobStats`]`::ops` (and, merged
/// across jobs, on `WorkflowStats::op_counters()`), so they are stable
/// across worker counts.
pub mod op {
    /// Subject groups entering `TG_UnbGrpFilter` (one per reduce group).
    pub const GROUPS_IN: &str = "ntga.group.groups_in";
    /// `(property, object)` pairs entering `TG_UnbGrpFilter` — divide by
    /// [`GROUPS_IN`] for the mean triplegroup size.
    pub const PAIRS_IN: &str = "ntga.group.pairs_in";
    /// `(group, star)` admissions: a triplegroup matched a star subpattern.
    pub const ADMITTED: &str = "ntga.group.admitted";
    /// Groups that matched **no** star and were filtered out entirely.
    pub const DROPPED: &str = "ntga.group.dropped";
    /// Annotated triplegroups entering an eager/exact β-unnest.
    pub const UNNEST_IN: &str = "ntga.unnest.in";
    /// Perfect triplegroups produced by an eager/exact β-unnest — the
    /// ratio against [`UNNEST_IN`] is the unnest expansion factor.
    pub const UNNEST_OUT: &str = "ntga.unnest.out";
    /// Triplegroup tuples entering a partial (φ-partition) unnest.
    pub const PARTIAL_IN: &str = "ntga.partial.in";
    /// Records the partial unnest actually ships (≤ `m` per tuple).
    pub const PARTIAL_OUT: &str = "ntga.partial.out";
    /// Unbound-pattern candidates the full unnest would have shipped.
    pub const PARTIAL_CANDIDATES: &str = "ntga.partial.candidates";
    /// Text bytes the partial (nested) records carry across the shuffle.
    pub const PARTIAL_NESTED_BYTES: &str = "ntga.partial.nested_bytes";
    /// Text bytes a full β-unnest would have shipped for the same tuples
    /// (computed arithmetically, without materializing the expansion).
    pub const PARTIAL_EXPANDED_BYTES: &str = "ntga.partial.expanded_bytes";
    /// Distribution metric (a log2 histogram recorded through
    /// [`mrsim::TaskContext::record`], not a counter): the per-group width
    /// of each β-unnest — how many perfect triplegroups one annotated
    /// triplegroup expands into. Only populated when the engine profiles
    /// (`Engine::with_profiling`); surfaces on `JobStats::metrics` with
    /// p50/p95/p99 so unnest fanout tails are visible, not just the
    /// [`UNNEST_OUT`]/[`UNNEST_IN`] mean.
    pub const UNNEST_WIDTH: &str = "ntga.unnest.width";
}

/// The partition function `φ_m` over a join-key token.
pub fn phi(key: &str, m: u64) -> u64 {
    fnv1a(key.as_bytes()) % m.max(1)
}

// ---------------------------------------------------------------------------
// Job 1: TG_GroupBy + TG_UnbGrpFilter (+ optional eager β-unnest)
// ---------------------------------------------------------------------------

/// Build Job 1 for a query: one full scan computes every star subpattern.
///
/// The job writes one output per star: `outputs[i]` holds the annotated
/// triplegroups of equivalence class `i` (wrapped as single-component
/// [`TgTuple`]s).
pub fn group_filter_job(
    name: impl Into<String>,
    query: &Query,
    input: &str,
    outputs: Vec<String>,
    eager: bool,
) -> JobSpec {
    let per_star = vec![eager; query.stars.len()];
    group_filter_job_stars(name, query, input, outputs, per_star)
}

/// [`group_filter_job`] with a **per-star** unnest placement: `eager[i]`
/// says whether equivalence class `i` is β-unnested in the reduce (eager)
/// or left nested (lazy). The cost-based optimizer uses this to unnest
/// stars whose triplegroups carry no redundancy (no multi-valued or
/// unbound candidates) while keeping expansive stars nested.
pub fn group_filter_job_stars(
    name: impl Into<String>,
    query: &Query,
    input: &str,
    outputs: Vec<String>,
    eager: Vec<bool>,
) -> JobSpec {
    assert_eq!(outputs.len(), query.stars.len(), "one output per star");
    assert_eq!(eager.len(), query.stars.len(), "one placement per star");
    let stars_map = query.stars.clone();
    let mapper =
        map_fn(move |rec: TripleRec, out: &mut TypedMapEmitter<'_, Atom, (Atom, Atom)>| {
            let t = &rec.0;
            // Map-side relevance filter: ship the triple only if it can
            // match some pattern of some star (this is where
            // partially-bound-object filters prune, as the paper notes for
            // query B2).
            let relevant = stars_map.iter().any(|star| {
                star.subject_accepts(&t.s)
                    && star.patterns.iter().any(|p| p.matches_structurally(t))
            });
            if relevant {
                out.emit(&t.s, &(t.p.clone(), t.o.clone()));
            }
            Ok(())
        });
    let stars_red = query.stars.clone();
    let reducer = reduce_fn_ctx(
        move |ctx: &mrsim::TaskContext,
              subject: Atom,
              pairs: Vec<(Atom, Atom)>,
              out: &mut TypedOutEmitter<'_, TgTuple>| {
            ctx.count(op::GROUPS_IN, 1);
            ctx.count(op::PAIRS_IN, pairs.len() as u64);
            let tg = TripleGroup { subject, pairs };
            let mut admitted = 0u64;
            for (i, star) in stars_red.iter().enumerate() {
                if let Some(ann) = match_star(&tg, star, i as u64) {
                    admitted += 1;
                    if eager[i] {
                        ctx.count(op::UNNEST_IN, 1);
                        let perfects = crate::logical::beta_unnest(&ann);
                        ctx.record(op::UNNEST_WIDTH, perfects.len() as u64);
                        for perfect in perfects {
                            ctx.count(op::UNNEST_OUT, 1);
                            out.emit_to(i, &TgTuple(vec![perfect]))?;
                        }
                    } else {
                        out.emit_to(i, &TgTuple(vec![ann]))?;
                    }
                }
            }
            ctx.count(op::ADMITTED, admitted);
            if admitted == 0 {
                ctx.count(op::DROPPED, 1);
            }
            Ok(())
        },
    );
    let mut outs = outputs.into_iter();
    let first = outs.next().expect("at least one star");
    let mut spec = JobSpec::map_reduce(
        name,
        vec![InputBinding { file: input.to_string(), mapper }],
        reducer,
        REDUCERS,
        first,
    )
    .with_full_scan();
    for o in outs {
        spec = spec.with_extra_output(o);
    }
    spec
}

// ---------------------------------------------------------------------------
// Job 1, ID-native: varint dictionary ids through the shuffle
// ---------------------------------------------------------------------------

/// ID-native Job 1: same operators as [`group_filter_job`], but the
/// shuffle carries LEB128-varint dictionary ids (`VarId` subject keys,
/// [`IdPair`] property/object values) instead of lexical tokens.
///
/// Star constants are compiled to ids against `dict` at plan time, so the
/// map side matches with integer compares; the reduce side resolves ids
/// back to [`Atom`]s through the engine's dictionary snapshot (attach it
/// with `Engine::with_dict`) and re-sorts each group into the lexical
/// wire order, so the emitted [`TgTuple`]s are byte-identical to the
/// lexical job's (file order aside — the two paths partition by
/// different key bytes).
pub fn group_filter_job_ids(
    name: impl Into<String>,
    query: &Query,
    input: &str,
    outputs: Vec<String>,
    eager: bool,
    dict: &Dictionary,
) -> JobSpec {
    let per_star = vec![eager; query.stars.len()];
    group_filter_job_ids_stars(name, query, input, outputs, per_star, dict)
}

/// [`group_filter_job_ids`] with a **per-star** unnest placement (see
/// [`group_filter_job_stars`]).
pub fn group_filter_job_ids_stars(
    name: impl Into<String>,
    query: &Query,
    input: &str,
    outputs: Vec<String>,
    eager: Vec<bool>,
    dict: &Dictionary,
) -> JobSpec {
    assert_eq!(outputs.len(), query.stars.len(), "one output per star");
    assert_eq!(eager.len(), query.stars.len(), "one placement per star");
    let stars_map: Vec<IdStarTest> =
        query.stars.iter().map(|s| IdStarTest::compile(s, dict)).collect();
    let mapper = map_fn_ctx(
        move |ctx: &TaskContext, rec: IdTripleRec, out: &mut TypedMapEmitter<'_, VarId, IdPair>| {
            for star in &stars_map {
                if star.relevant(&rec, ctx)? {
                    out.emit(&VarId(rec.s), &IdPair(rec.p, rec.o));
                    return Ok(());
                }
            }
            Ok(())
        },
    );
    let stars_red = query.stars.clone();
    let reducer = reduce_fn_ctx(
        move |ctx: &TaskContext,
              subject: VarId,
              ids: Vec<IdPair>,
              out: &mut TypedOutEmitter<'_, TgTuple>| {
            ctx.count(op::GROUPS_IN, 1);
            ctx.count(op::PAIRS_IN, ids.len() as u64);
            let subject = ctx.resolve_atom(subject.0)?;
            let mut pairs = ids
                .iter()
                .map(|&IdPair(p, o)| Ok((ctx.resolve_atom(p)?, ctx.resolve_atom(o)?)))
                .collect::<Result<Vec<(Atom, Atom)>, MrError>>()?;
            // The lexical job's reducer sees values in encoded-token
            // order (the shuffle sorts by value bytes); restore that
            // order after resolution so outputs are byte-identical.
            pairs.sort_by_cached_key(Rec::to_bytes);
            let tg = TripleGroup { subject, pairs };
            let mut admitted = 0u64;
            for (i, star) in stars_red.iter().enumerate() {
                if let Some(ann) = match_star(&tg, star, i as u64) {
                    admitted += 1;
                    if eager[i] {
                        ctx.count(op::UNNEST_IN, 1);
                        let perfects = crate::logical::beta_unnest(&ann);
                        ctx.record(op::UNNEST_WIDTH, perfects.len() as u64);
                        for perfect in perfects {
                            ctx.count(op::UNNEST_OUT, 1);
                            out.emit_to(i, &TgTuple(vec![perfect]))?;
                        }
                    } else {
                        out.emit_to(i, &TgTuple(vec![ann]))?;
                    }
                }
            }
            ctx.count(op::ADMITTED, admitted);
            if admitted == 0 {
                ctx.count(op::DROPPED, 1);
            }
            Ok(())
        },
    );
    let mut outs = outputs.into_iter();
    let first = outs.next().expect("at least one star");
    let mut spec = JobSpec::map_reduce(
        name,
        vec![InputBinding { file: input.to_string(), mapper }],
        reducer,
        REDUCERS,
        first,
    )
    .with_full_scan();
    for o in outs {
        spec = spec.with_extra_output(o);
    }
    spec
}

// ---------------------------------------------------------------------------
// Job 2: TG_Join / TG_UnbJoin / TG_OptUnbJoin
// ---------------------------------------------------------------------------

/// How a star participates in a join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinRole {
    /// The join variable is the star's subject.
    Subject,
    /// The join variable is the object of bound pattern `i` (index into
    /// [`StarPattern::bound_patterns`]).
    BoundObj(usize),
    /// The join variable is the object of unbound pattern `i` (index into
    /// [`StarPattern::unbound_patterns`]) — the case that needs β-unnest.
    UnboundObj(usize),
}

/// Determine how `var` occurs in `star`.
pub fn role_of(star: &StarPattern, var: &str) -> Option<JoinRole> {
    if star.subject_var == var {
        return Some(JoinRole::Subject);
    }
    for (i, pat) in star.bound_patterns().iter().enumerate() {
        if pat.object.var() == Some(var) {
            return Some(JoinRole::BoundObj(i));
        }
    }
    for (i, pat) in star.unbound_patterns().iter().enumerate() {
        if pat.object.var() == Some(var) {
            return Some(JoinRole::UnboundObj(i));
        }
    }
    None
}

/// Enumerate `(join key, pinned triplegroup)` pairs for a triplegroup
/// under a role. Pinning fixes the joined position to the key's match and
/// leaves everything else nested (the full β-unnest of `TG_UnbJoin` when
/// the role is [`JoinRole::UnboundObj`]).
pub fn join_expansions(tg: &AnnTg, role: JoinRole) -> Vec<(Atom, AnnTg)> {
    match role {
        JoinRole::Subject => vec![(tg.subject.clone(), tg.clone())],
        JoinRole::BoundObj(b) => tg.bound[b]
            .1
            .iter()
            .map(|o| {
                let mut pinned = tg.clone();
                pinned.bound[b].1 = vec![o.clone()];
                (o.clone(), pinned)
            })
            .collect(),
        JoinRole::UnboundObj(u) => tg.unbound[u]
            .iter()
            .map(|(p, o)| {
                let mut pinned = tg.clone();
                pinned.unbound[u] = vec![(p.clone(), o.clone())];
                (o.clone(), pinned)
            })
            .collect(),
    }
}

/// Partition-granular expansions for [`UnnestMode::Partial`]: one pinned
/// triplegroup per φ-partition, keyed by the partition id.
pub fn partial_expansions(tg: &AnnTg, role: JoinRole, m: u64) -> Vec<(u64, AnnTg)> {
    match role {
        JoinRole::Subject => vec![(phi(&tg.subject, m), tg.clone())],
        JoinRole::BoundObj(b) => {
            let mut parts: std::collections::BTreeMap<u64, Vec<Atom>> = Default::default();
            for o in &tg.bound[b].1 {
                parts.entry(phi(o, m)).or_default().push(o.clone());
            }
            parts
                .into_iter()
                .map(|(k, objs)| {
                    let mut pinned = tg.clone();
                    pinned.bound[b].1 = objs;
                    (k, pinned)
                })
                .collect()
        }
        JoinRole::UnboundObj(u) => partial_beta_unnest(tg, u, |o| phi(o, m)),
    }
}

/// One side of a triplegroup join.
#[derive(Debug, Clone)]
pub struct JoinSide {
    /// DFS file of [`TgTuple`] records.
    pub file: String,
    /// Index of the component (within each tuple) that carries the join
    /// variable.
    pub component: usize,
    /// How that component's star holds the join variable.
    pub role: JoinRole,
}

/// β-unnest placement for the join's map phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnnestMode {
    /// Map output keys are actual join values (plain `TG_Join`, or lazy
    /// *full* β-unnest — `TG_UnbJoin`).
    Exact,
    /// Map output keys are `φ_m` partitions; the reduce completes the
    /// unnest and hash-joins on real keys (`TG_OptUnbJoin`).
    Partial(u64),
}

/// Shuffle value: `(side tag, tuple)`.
type SidedTuple = (u64, TgTuple);

/// Text bytes a full β-unnest of `comp`'s unbound list `u` would ship:
/// one record per candidate, each carrying the rest of the tuple plus the
/// component with that single candidate pinned. Computed arithmetically
/// from the distinct-pair semantics of [`AnnTg::text_size`] so the partial
/// path never has to materialize the expansion it avoided.
fn expanded_bytes_of(tuple: &TgTuple, component: usize, u: usize) -> u64 {
    let comp = &tuple.0[component];
    let rest: u64 = tuple
        .0
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != component)
        .map(|(_, tg)| tg.text_size())
        .sum();
    // Pairs every pinned record carries regardless of the candidate chosen:
    // bound pairs plus the other unbound lists.
    let mut base: BTreeSet<(&str, &str)> = BTreeSet::new();
    for (p, objs) in &comp.bound {
        for o in objs {
            base.insert((&**p, &**o));
        }
    }
    for (j, cands) in comp.unbound.iter().enumerate() {
        if j != u {
            for (p, o) in cands {
                base.insert((&**p, &**o));
            }
        }
    }
    let base_bytes: u64 = comp.subject.len() as u64
        + 1
        + base.iter().map(|(p, o)| p.len() as u64 + o.len() as u64 + 2).sum::<u64>();
    let mut total = 0u64;
    for (p, o) in &comp.unbound[u] {
        // A candidate that duplicates a base pair is stored once (set
        // semantics), so it adds no bytes beyond the base record.
        let extra =
            if base.contains(&(&**p, &**o)) { 0 } else { p.len() as u64 + o.len() as u64 + 2 };
        total += rest + base_bytes + extra;
    }
    total
}

fn join_mapper(side: u64, spec: JoinSide, mode: UnnestMode) -> Arc<dyn mrsim::RawMapOp> {
    map_fn_ctx(
        move |ctx: &mrsim::TaskContext,
              tuple: TgTuple,
              out: &mut TypedMapEmitter<'_, Atom, SidedTuple>| {
            let comp = tuple
                .0
                .get(spec.component)
                .ok_or_else(|| MrError::Op("join component out of range".into()))?;
            match mode {
                UnnestMode::Exact => {
                    let unbound = matches!(spec.role, JoinRole::UnboundObj(_));
                    let expansions = join_expansions(comp, spec.role);
                    if unbound {
                        ctx.count(op::UNNEST_IN, 1);
                        ctx.record(op::UNNEST_WIDTH, expansions.len() as u64);
                    }
                    for (key, pinned) in expansions {
                        if unbound {
                            ctx.count(op::UNNEST_OUT, 1);
                        }
                        let mut t = tuple.clone();
                        t.0[spec.component] = pinned;
                        out.emit(&key, &(side, t));
                    }
                }
                UnnestMode::Partial(m) => {
                    let unbound_rest = if let JoinRole::UnboundObj(u) = spec.role {
                        ctx.count(op::PARTIAL_IN, 1);
                        ctx.count(op::PARTIAL_CANDIDATES, comp.unbound[u].len() as u64);
                        ctx.count(
                            op::PARTIAL_EXPANDED_BYTES,
                            expanded_bytes_of(&tuple, spec.component, u),
                        );
                        Some(tuple.text_size() - comp.text_size())
                    } else {
                        None
                    };
                    for (k, pinned) in partial_expansions(comp, spec.role, m) {
                        if let Some(rest) = unbound_rest {
                            ctx.count(op::PARTIAL_OUT, 1);
                            ctx.count(op::PARTIAL_NESTED_BYTES, rest + pinned.text_size());
                        }
                        let mut t = tuple.clone();
                        t.0[spec.component] = pinned;
                        out.emit(&atom(&k.to_string()), &(side, t));
                    }
                }
            }
            Ok(())
        },
    )
}

/// Build the join job between two equivalence-class relations.
///
/// Output records are [`TgTuple`]s: left components followed by right
/// components, with the joined positions pinned to the matching values.
pub fn tg_join_job(
    name: impl Into<String>,
    left: JoinSide,
    right: JoinSide,
    mode: UnnestMode,
    output: impl Into<String>,
) -> JobSpec {
    let (lrole, lcomp) = (left.role, left.component);
    let (rrole, rcomp) = (right.role, right.component);
    let reducer = reduce_fn(
        move |_key: Atom, values: Vec<SidedTuple>, out: &mut TypedOutEmitter<'_, TgTuple>| {
            match mode {
                UnnestMode::Exact => {
                    // All values share the actual join key: cross join.
                    let mut lefts = Vec::new();
                    let mut rights = Vec::new();
                    for (side, t) in &values {
                        if *side == 0 {
                            lefts.push(t);
                        } else {
                            rights.push(t);
                        }
                    }
                    for l in &lefts {
                        for r in &rights {
                            let mut joined = l.0.clone();
                            joined.extend(r.0.iter().cloned());
                            out.emit(&TgTuple(joined))?;
                        }
                    }
                }
                UnnestMode::Partial(_) => {
                    // Algorithm 3: β-unnest the right side into perfect
                    // triplegroups hashed by the real join key, then probe
                    // with each left candidate.
                    // Deterministic FNV build side: the map is only ever
                    // probed by key (never iterated), so output bytes are
                    // unaffected — this removes SipHash's random seeding
                    // from the hot join path.
                    let mut right_hash: DetHashMap<Atom, Vec<TgTuple>> = DetHashMap::default();
                    for (side, t) in &values {
                        if *side != 1 {
                            continue;
                        }
                        for (key, pinned) in join_expansions(&t.0[rcomp], rrole) {
                            let mut pt = t.clone();
                            pt.0[rcomp] = pinned;
                            right_hash.entry(key).or_default().push(pt);
                        }
                    }
                    for (side, t) in &values {
                        if *side != 0 {
                            continue;
                        }
                        for (key, pinned) in join_expansions(&t.0[lcomp], lrole) {
                            if let Some(matches) = right_hash.get(&key) {
                                for r in matches {
                                    let mut joined = t.0.clone();
                                    joined[lcomp] = pinned.clone();
                                    joined.extend(r.0.iter().cloned());
                                    out.emit(&TgTuple(joined))?;
                                }
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
    JobSpec::map_reduce(
        name,
        vec![
            InputBinding { file: left.file.clone(), mapper: join_mapper(0, left, mode) },
            InputBinding { file: right.file.clone(), mapper: join_mapper(1, right, mode) },
        ],
        reducer,
        REDUCERS,
        output,
    )
}

// ---------------------------------------------------------------------------
// Map-side broadcast join (TG_BcastJoin)
// ---------------------------------------------------------------------------

/// Which side of a broadcast join ships through the distributed cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSide {
    /// The left relation is broadcast; the right streams through the map.
    Left,
    /// The right relation is broadcast; the left streams through the map.
    Right,
}

/// Build a **map-side** join job: the build relation ships to every map
/// task through the engine's distributed cache ([`JobSpec::with_broadcast`])
/// and the probe relation streams through a map-only scan — no shuffle, no
/// reduce phase, an entire MR cycle collapsed.
///
/// Each map task lazily materializes the build side's hash table once (via
/// [`TaskContext::task_state`], the simulated `Mapper.setup()`), keyed by
/// the same [`join_expansions`] the reduce-side join uses, so output
/// records are exactly the [`tg_join_job`]-`Exact` records: left
/// components then right components with the joined positions pinned.
/// Map-only output is concatenated in input order, so the result is
/// byte-identical across worker counts; only record *order* may differ
/// from the reduce-side plan (which orders by shuffle key).
///
/// Unnest counters ([`op::UNNEST_IN`]/[`op::UNNEST_OUT`]) are recorded for
/// the probe side only: build-side expansion happens once per map task,
/// and per-task counts would break the cross-worker-count stability that
/// operator counters guarantee.
///
/// The engine refuses the job with [`MrError::BroadcastTooLarge`] when the
/// build file exceeds its broadcast budget — the same bound the cost-based
/// optimizer uses as its broadcast threshold, so a plan the optimizer
/// emits always fits.
pub fn tg_broadcast_join_job(
    name: impl Into<String>,
    left: JoinSide,
    right: JoinSide,
    build: BuildSide,
    output: impl Into<String>,
) -> JobSpec {
    let (build_spec, probe_spec) = match build {
        BuildSide::Left => (left, right),
        BuildSide::Right => (right, left),
    };
    let build_file = build_spec.file.clone();
    let probe_file = probe_spec.file.clone();
    let mapper = map_only_fn_ctx(
        move |ctx: &TaskContext, tuple: TgTuple, out: &mut TypedOutEmitter<'_, TgTuple>| {
            let table = ctx.task_state(|| {
                let file = ctx.broadcast(0)?;
                let mut map: DetHashMap<Atom, Vec<TgTuple>> = DetHashMap::default();
                for raw in &file.records {
                    let t = TgTuple::from_bytes_with(raw, &ctx.atoms)?;
                    let comp =
                        t.0.get(build_spec.component)
                            .ok_or_else(|| MrError::Op("join component out of range".into()))?;
                    for (key, pinned) in join_expansions(comp, build_spec.role) {
                        let mut pt = t.clone();
                        pt.0[build_spec.component] = pinned;
                        map.entry(key).or_default().push(pt);
                    }
                }
                Ok(map)
            })?;
            let comp = tuple
                .0
                .get(probe_spec.component)
                .ok_or_else(|| MrError::Op("join component out of range".into()))?;
            let unbound = matches!(probe_spec.role, JoinRole::UnboundObj(_));
            let expansions = join_expansions(comp, probe_spec.role);
            if unbound {
                ctx.count(op::UNNEST_IN, 1);
                ctx.record(op::UNNEST_WIDTH, expansions.len() as u64);
            }
            for (key, pinned) in expansions {
                if unbound {
                    ctx.count(op::UNNEST_OUT, 1);
                }
                if let Some(matches) = table.get(&key) {
                    for b in matches {
                        // Reduce-side joins emit left components then right
                        // components; preserve that regardless of which side
                        // was broadcast.
                        let joined = match build {
                            BuildSide::Left => {
                                let mut j = b.0.clone();
                                let mut probe = tuple.0.clone();
                                probe[probe_spec.component] = pinned.clone();
                                j.extend(probe);
                                j
                            }
                            BuildSide::Right => {
                                let mut j = tuple.0.clone();
                                j[probe_spec.component] = pinned.clone();
                                j.extend(b.0.iter().cloned());
                                j
                            }
                        };
                        out.emit(&TgTuple(joined))?;
                    }
                }
            }
            Ok(())
        },
    );
    JobSpec::map_only(name, vec![probe_file], mapper, output).with_broadcast(build_file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_rdf::load_store;
    use mrsim::Engine;
    use rdf_model::{STriple, TripleStore};

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<xGO>", "<go1>"),
            STriple::new("<g1>", "<xGO>", "<go2>"),
            STriple::new("<g1>", "<syn>", "\"s\""),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<go1>", "<gl>", "\"nucleus\""),
            STriple::new("<go2>", "<gl>", "\"membrane\""),
        ])
    }

    fn unbound_query() -> Query {
        rdf_query::parse_query("SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }")
            .unwrap()
    }

    fn run_job1(eager: bool) -> (Engine, Query) {
        let engine = Engine::unbounded();
        load_store(&engine, "t", &store()).unwrap();
        let query = unbound_query();
        let job = group_filter_job("job1", &query, "t", vec!["ec0".into(), "ec1".into()], eager);
        engine.run_job(&job).unwrap();
        (engine, query)
    }

    #[test]
    fn job1_lazy_emits_one_anntg_per_matching_subject() {
        let (engine, _) = run_job1(false);
        let ec0: Vec<TgTuple> = engine.read_records("ec0").unwrap();
        let ec1: Vec<TgTuple> = engine.read_records("ec1").unwrap();
        // Star 0 (label + unbound): g1 and g2 qualify. go1/go2 lack label.
        assert_eq!(ec0.len(), 2);
        // Star 1 (gl): go1, go2.
        assert_eq!(ec1.len(), 2);
        // g1's AnnTG has all 4 pairs as unbound candidates.
        let g1 = ec0.iter().find(|t| &*t.0[0].subject == "<g1>").unwrap();
        assert_eq!(g1.0[0].unbound[0].len(), 4);
    }

    #[test]
    fn job1_eager_materializes_perfect_tgs() {
        let (engine, _) = run_job1(true);
        let ec0: Vec<TgTuple> = engine.read_records("ec0").unwrap();
        // g1: 4 candidates -> 4 perfect TGs; g2: 1 -> 1.
        assert_eq!(ec0.len(), 5);
        for t in &ec0 {
            assert_eq!(t.0[0].unbound[0].len(), 1);
        }
    }

    #[test]
    fn eager_output_is_larger_than_lazy() {
        let (engine_l, _) = run_job1(false);
        let lazy_bytes = engine_l.hdfs().lock().get("ec0").unwrap().text_bytes;
        let (engine_e, _) = run_job1(true);
        let eager_bytes = engine_e.hdfs().lock().get("ec0").unwrap().text_bytes;
        assert!(eager_bytes > lazy_bytes, "eager {eager_bytes} <= lazy {lazy_bytes}");
    }

    #[test]
    fn role_detection() {
        let q = unbound_query();
        assert_eq!(role_of(&q.stars[0], "g"), Some(JoinRole::Subject));
        assert_eq!(role_of(&q.stars[0], "l"), Some(JoinRole::BoundObj(0)));
        assert_eq!(role_of(&q.stars[0], "go"), Some(JoinRole::UnboundObj(0)));
        assert_eq!(role_of(&q.stars[1], "go"), Some(JoinRole::Subject));
        assert_eq!(role_of(&q.stars[0], "zz"), None);
    }

    fn join_and_expand(mode: UnnestMode, eager: bool) -> rdf_query::SolutionSet {
        let (engine, query) = run_job1(eager);
        let job = tg_join_job(
            "join",
            JoinSide { file: "ec0".into(), component: 0, role: JoinRole::UnboundObj(0) },
            JoinSide { file: "ec1".into(), component: 0, role: JoinRole::Subject },
            mode,
            "out",
        );
        engine.run_job(&job).unwrap();
        let tuples: Vec<TgTuple> = engine.read_records("out").unwrap();
        let mut set = rdf_query::SolutionSet::new();
        for t in &tuples {
            let mut partials: Vec<rdf_query::Binding> = vec![rdf_query::Binding::new()];
            for (tg, star) in t.0.iter().zip(&query.stars) {
                let expansions = tg.expand(star).unwrap();
                let mut next = Vec::new();
                for p in &partials {
                    for e in &expansions {
                        let mut m = p.clone();
                        if m.merge(e) {
                            next.push(m);
                        }
                    }
                }
                partials = next;
            }
            for b in partials {
                set.insert(b);
            }
        }
        set
    }

    #[test]
    fn join_modes_agree_with_naive() {
        let gold = rdf_query::naive::evaluate(&unbound_query(), &store());
        assert!(!gold.is_empty());
        for (mode, eager) in [
            (UnnestMode::Exact, false),
            (UnnestMode::Exact, true),
            (UnnestMode::Partial(1), false),
            (UnnestMode::Partial(2), false),
            (UnnestMode::Partial(64), false),
        ] {
            let got = join_and_expand(mode, eager);
            assert_eq!(got, gold, "mode {mode:?} eager {eager}");
        }
    }

    #[test]
    fn partial_mode_shrinks_map_output() {
        // With many candidates per subject, φ_2 caps map output per TG at
        // 2 records instead of one per candidate.
        let mut s = store();
        for i in 3..40 {
            s.insert(STriple::new("<g1>", "<xRef>", format!("<r{i}>")));
        }
        let engine = Engine::unbounded();
        load_store(&engine, "t", &s).unwrap();
        let query = unbound_query();
        let job1 = group_filter_job("j1", &query, "t", vec!["ec0".into(), "ec1".into()], false);
        engine.run_job(&job1).unwrap();
        let mk_join = |mode, out: &str| {
            tg_join_job(
                format!("join-{out}"),
                JoinSide { file: "ec0".into(), component: 0, role: JoinRole::UnboundObj(0) },
                JoinSide { file: "ec1".into(), component: 0, role: JoinRole::Subject },
                mode,
                out,
            )
        };
        let full = engine.run_job(&mk_join(UnnestMode::Exact, "of")).unwrap();
        let partial = engine.run_job(&mk_join(UnnestMode::Partial(2), "op")).unwrap();
        assert!(
            partial.map_output_bytes < full.map_output_bytes,
            "partial {} >= full {}",
            partial.map_output_bytes,
            full.map_output_bytes
        );
    }

    #[test]
    fn group_filter_records_operator_counters() {
        // Add a subject matching neither star: shipped by the map-side
        // filter (the unbound pattern accepts any triple) but dropped by
        // TG_UnbGrpFilter.
        let mut s = store();
        s.insert(STriple::new("<x1>", "<syn>", "\"t\""));
        let engine = Engine::unbounded();
        load_store(&engine, "t", &s).unwrap();
        let query = unbound_query();
        let job = group_filter_job("j1", &query, "t", vec!["e0".into(), "e1".into()], true);
        let ops = engine.run_job(&job).unwrap().ops;
        assert_eq!(ops.get(op::GROUPS_IN), 5); // g1 g2 go1 go2 x1
        assert_eq!(ops.get(op::PAIRS_IN), 8);
        assert_eq!(ops.get(op::ADMITTED), 4); // g1,g2 star0; go1,go2 star1
        assert_eq!(ops.get(op::DROPPED), 1); // x1
        assert_eq!(ops.get(op::UNNEST_IN), 4);
        // g1: 4 candidates; g2: 1; go1/go2 have no unbound list (identity).
        assert_eq!(ops.get(op::UNNEST_OUT), 7);

        // Lazy run admits the same groups but never unnests.
        let engine = Engine::unbounded();
        load_store(&engine, "t", &s).unwrap();
        let job = group_filter_job("j1", &query, "t", vec!["e0".into(), "e1".into()], false);
        let ops = engine.run_job(&job).unwrap().ops;
        assert_eq!(ops.get(op::ADMITTED), 4);
        assert_eq!(ops.get(op::UNNEST_IN), 0);
        assert_eq!(ops.get(op::UNNEST_OUT), 0);
    }

    #[test]
    fn id_native_job1_matches_lexical_and_ships_fewer_bytes() {
        // A filter star exercises every IdTest arm: Eq on the bound
        // property, Str on a Contains object filter, Any on the unbound
        // pattern.
        let mut s = store();
        s.insert(STriple::new("<x1>", "<syn>", "\"t\""));
        let query = rdf_query::parse_query(
            "SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . \
             FILTER contains(?x, \"u\") }",
        )
        .unwrap();
        for eager in [false, true] {
            let lex = Engine::unbounded();
            load_store(&lex, "t", &s).unwrap();
            let lex_job =
                group_filter_job("j1", &query, "t", vec!["e0".into(), "e1".into()], eager);
            let lex_stats = lex.run_job(&lex_job).unwrap();

            let mut dict = Dictionary::new();
            let ids = Engine::unbounded();
            mr_rdf::load_store_ids(&ids, mr_rdf::ID_TRIPLES_FILE, &s, &mut dict).unwrap();
            let ids = ids.with_dict(Arc::new(dict.clone()));
            let id_job = group_filter_job_ids(
                "j1-ids",
                &query,
                mr_rdf::ID_TRIPLES_FILE,
                vec!["e0".into(), "e1".into()],
                eager,
                &dict,
            );
            let id_stats = ids.run_job(&id_job).unwrap();

            // Same operator counters on both planes.
            for c in [
                op::GROUPS_IN,
                op::PAIRS_IN,
                op::ADMITTED,
                op::DROPPED,
                op::UNNEST_IN,
                op::UNNEST_OUT,
            ] {
                assert_eq!(
                    lex_stats.ops.get(c),
                    id_stats.ops.get(c),
                    "counter {c} (eager {eager})"
                );
            }
            // Byte-identical outputs once sorted (the two paths partition
            // by different key bytes, so file order may differ).
            for out in ["e0", "e1"] {
                let mut a: Vec<TgTuple> = lex.read_records(out).unwrap();
                let mut b: Vec<TgTuple> = ids.read_records(out).unwrap();
                a.sort_by_cached_key(Rec::to_bytes);
                b.sort_by_cached_key(Rec::to_bytes);
                assert_eq!(a, b, "output {out} (eager {eager})");
            }
            // The ID plane ships varints where the lexical plane ships
            // tokens: strictly fewer wire bytes through the shuffle.
            assert!(
                id_stats.shuffle_wire_bytes() < lex_stats.shuffle_wire_bytes(),
                "id wire {} >= lexical wire {} (eager {eager})",
                id_stats.shuffle_wire_bytes(),
                lex_stats.shuffle_wire_bytes()
            );
        }
    }

    #[test]
    fn id_native_job1_fails_on_missing_dictionary() {
        let s = store();
        let mut dict = Dictionary::new();
        let engine = Engine::unbounded();
        mr_rdf::load_store_ids(&engine, mr_rdf::ID_TRIPLES_FILE, &s, &mut dict).unwrap();
        // No `with_dict`: the reduce boundary cannot resolve ids.
        let job = group_filter_job_ids(
            "j1-ids",
            &unbound_query(),
            mr_rdf::ID_TRIPLES_FILE,
            vec!["e0".into(), "e1".into()],
            false,
            &dict,
        );
        let err = engine.run_job(&job).unwrap_err();
        assert!(matches!(err, MrError::Codec(_)), "unexpected error: {err:?}");
    }

    #[test]
    fn join_counters_track_unnest_and_partial_bytes() {
        // Many candidates per subject so φ_2 visibly compresses.
        let mut s = store();
        for i in 3..40 {
            s.insert(STriple::new("<g1>", "<xRef>", format!("<r{i}>")));
        }
        let engine = Engine::unbounded();
        load_store(&engine, "t", &s).unwrap();
        let query = unbound_query();
        let job1 = group_filter_job("j1", &query, "t", vec!["ec0".into(), "ec1".into()], false);
        engine.run_job(&job1).unwrap();
        let mk_join = |mode, out: &str| {
            tg_join_job(
                format!("join-{out}"),
                JoinSide { file: "ec0".into(), component: 0, role: JoinRole::UnboundObj(0) },
                JoinSide { file: "ec1".into(), component: 0, role: JoinRole::Subject },
                mode,
                out,
            )
        };
        let exact = engine.run_job(&mk_join(UnnestMode::Exact, "of")).unwrap();
        // g1 has 4 + 37 = 41 candidates, g2 has 1; the subject side of the
        // join records no unnest counters.
        assert_eq!(exact.ops.get(op::UNNEST_IN), 2);
        assert_eq!(exact.ops.get(op::UNNEST_OUT), 42);
        assert_eq!(exact.ops.get(op::PARTIAL_IN), 0);

        let partial = engine.run_job(&mk_join(UnnestMode::Partial(2), "op")).unwrap();
        let ops = &partial.ops;
        assert_eq!(ops.get(op::PARTIAL_IN), 2);
        assert_eq!(ops.get(op::PARTIAL_CANDIDATES), 42);
        assert!(ops.get(op::PARTIAL_OUT) <= 4, "≤ φ_2 partitions per tuple");
        assert!(ops.get(op::PARTIAL_OUT) < ops.get(op::PARTIAL_CANDIDATES));
        // The nested representation crossing the shuffle is smaller than
        // what the full unnest would have shipped — the paper's savings,
        // now visible as a counter.
        let nested = ops.get(op::PARTIAL_NESTED_BYTES);
        let expanded = ops.get(op::PARTIAL_EXPANDED_BYTES);
        assert!(nested > 0);
        assert!(nested < expanded, "nested {nested} >= expanded {expanded}");
        assert_eq!(ops.get(op::UNNEST_IN), 0);
    }

    #[test]
    fn expanded_bytes_match_materialized_unnest() {
        // The arithmetic expansion accounting must agree byte-for-byte
        // with actually materializing every pinned record.
        let mut s = store();
        for i in 3..12 {
            s.insert(STriple::new("<g1>", "<xRef>", format!("<r{i}>")));
        }
        let engine = Engine::unbounded();
        load_store(&engine, "t", &s).unwrap();
        let query = unbound_query();
        let job1 = group_filter_job("j1", &query, "t", vec!["ec0".into(), "ec1".into()], false);
        engine.run_job(&job1).unwrap();
        let tuples: Vec<TgTuple> = engine.read_records("ec0").unwrap();
        for tuple in &tuples {
            let materialized: u64 = join_expansions(&tuple.0[0], JoinRole::UnboundObj(0))
                .into_iter()
                .map(|(_, pinned)| {
                    let mut t = tuple.clone();
                    t.0[0] = pinned;
                    t.text_size()
                })
                .sum();
            assert_eq!(expanded_bytes_of(tuple, 0, 0), materialized);
        }
    }

    #[test]
    fn phi_is_deterministic_and_bounded() {
        for m in [1u64, 2, 1000] {
            for key in ["<a>", "<b>", "\"literal\""] {
                let k = phi(key, m);
                assert!(k < m);
                assert_eq!(k, phi(key, m));
            }
        }
    }

    fn ec_sides() -> (JoinSide, JoinSide) {
        (
            JoinSide { file: "ec0".into(), component: 0, role: JoinRole::UnboundObj(0) },
            JoinSide { file: "ec1".into(), component: 0, role: JoinRole::Subject },
        )
    }

    #[test]
    fn broadcast_join_matches_reduce_join_across_workers() {
        // Reference: the reduce-side exact join, decoded and sorted.
        let (engine, _) = run_job1(false);
        let (left, right) = ec_sides();
        let job = tg_join_job("join", left.clone(), right.clone(), UnnestMode::Exact, "out");
        engine.run_job(&job).unwrap();
        let mut gold: Vec<TgTuple> = engine.read_records("out").unwrap();
        gold.sort_by_cached_key(Rec::to_bytes);
        assert!(!gold.is_empty());

        for build in [BuildSide::Left, BuildSide::Right] {
            let mut raw_outputs: Vec<Vec<Vec<u8>>> = Vec::new();
            for workers in [1usize, 4, 8] {
                let engine = Engine::unbounded().with_workers(workers);
                load_store(&engine, "t", &store()).unwrap();
                let q = unbound_query();
                let j1 = group_filter_job("j1", &q, "t", vec!["ec0".into(), "ec1".into()], false);
                engine.run_job(&j1).unwrap();
                let bj = tg_broadcast_join_job("bjoin", left.clone(), right.clone(), build, "out");
                let stats = engine.run_job(&bj).unwrap();
                // An entire shuffle+reduce cycle is elided.
                assert_eq!(stats.reduce_tasks, 0, "map-only job (build {build:?})");
                assert_eq!(stats.broadcast_files, 1);
                let build_file = match build {
                    BuildSide::Left => &left.file,
                    BuildSide::Right => &right.file,
                };
                assert_eq!(
                    stats.broadcast_bytes,
                    engine.hdfs().lock().get(build_file).unwrap().text_bytes
                );
                assert_eq!(stats.broadcast_ship_bytes, stats.broadcast_bytes * stats.map_tasks);
                let mut got: Vec<TgTuple> = engine.read_records("out").unwrap();
                got.sort_by_cached_key(Rec::to_bytes);
                assert_eq!(got, gold, "build {build:?} workers {workers}");
                raw_outputs.push(engine.hdfs().lock().get("out").unwrap().records.clone());
            }
            // Unsorted too: map-only output is concatenated in input order,
            // so the file is byte-identical across worker counts.
            assert_eq!(raw_outputs[0], raw_outputs[1], "build {build:?} workers 1 vs 4");
            assert_eq!(raw_outputs[0], raw_outputs[2], "build {build:?} workers 1 vs 8");
        }
    }

    #[test]
    fn broadcast_join_survives_task_faults() {
        let (engine, _) = run_job1(false);
        let (left, right) = ec_sides();
        engine
            .run_job(&tg_join_job("join", left.clone(), right.clone(), UnnestMode::Exact, "out"))
            .unwrap();
        let mut gold: Vec<TgTuple> = engine.read_records("out").unwrap();
        gold.sort_by_cached_key(Rec::to_bytes);

        let engine = Engine::unbounded()
            .with_workers(4)
            .with_faults(mrsim::FaultConfig::with_probability(0.3, 42));
        load_store(&engine, "t", &store()).unwrap();
        let q = unbound_query();
        engine
            .run_job(&group_filter_job("j1", &q, "t", vec!["ec0".into(), "ec1".into()], false))
            .unwrap();
        let stats = engine
            .run_job(&tg_broadcast_join_job("bjoin", left, right, BuildSide::Right, "out"))
            .unwrap();
        let mut got: Vec<TgTuple> = engine.read_records("out").unwrap();
        got.sort_by_cached_key(Rec::to_bytes);
        assert_eq!(got, gold, "retried tasks must not duplicate or drop records");
        assert_eq!(stats.broadcast_files, 1);
    }

    #[test]
    fn broadcast_join_agrees_with_naive_evaluation() {
        let gold = rdf_query::naive::evaluate(&unbound_query(), &store());
        let (engine, query) = run_job1(false);
        let (left, right) = ec_sides();
        engine
            .run_job(&tg_broadcast_join_job("bjoin", left, right, BuildSide::Right, "out"))
            .unwrap();
        let tuples: Vec<TgTuple> = engine.read_records("out").unwrap();
        let mut set = rdf_query::SolutionSet::new();
        for t in &tuples {
            let mut partials: Vec<rdf_query::Binding> = vec![rdf_query::Binding::new()];
            for (tg, star) in t.0.iter().zip(&query.stars) {
                let expansions = tg.expand(star).unwrap();
                let mut next = Vec::new();
                for p in &partials {
                    for e in &expansions {
                        let mut m = p.clone();
                        if m.merge(e) {
                            next.push(m);
                        }
                    }
                }
                partials = next;
            }
            for b in partials {
                set.insert(b);
            }
        }
        assert_eq!(set, gold);
    }

    #[test]
    fn broadcast_join_over_budget_is_refused() {
        let (engine, _) = run_job1(false);
        let (left, right) = ec_sides();
        let engine = engine.with_broadcast_budget(4);
        let err = engine
            .run_job(&tg_broadcast_join_job("bjoin", left, right, BuildSide::Right, "out"))
            .unwrap_err();
        assert!(err.is_broadcast_too_large(), "unexpected error: {err:?}");
    }
}
