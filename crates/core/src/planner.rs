//! The NTGA query planner: query → grouping cycle + triplegroup join
//! cycles, under a hand-picked unnesting [`Strategy`].
//!
//! A [`Strategy`] applies one policy uniformly: the same unnest placement
//! for every star, the same unnest mode rule for every join cycle, the
//! engine's default reduce parallelism everywhere. The statistics-driven
//! alternative lives in [`crate::optimizer`], which derives those choices
//! *per star* and *per cycle* from [`rdf_model::StoreStats`] and the
//! engine's cost model (`--strategy auto-cost` in the figure binaries).

use crate::optimizer::DataPlane;
use crate::physical::{
    group_filter_job, group_filter_job_ids, role_of, tg_join_job, JoinRole, JoinSide, UnnestMode,
};
use crate::tg::TgTuple;
use mr_rdf::{check_query, PlanError, QueryRun};
use mrsim::{Engine, Workflow};
use rdf_query::{Binding, ObjPattern, Query, SolutionSet};
use std::collections::HashSet;

/// When and how β-unnesting happens (Section 4).
///
/// These are the paper's hand-picked, query-wide policies; each applies
/// the same choice to every star and every join cycle. For data-dependent
/// per-star / per-cycle selection (including map-side broadcast joins),
/// use [`crate::optimizer::optimize`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// β-unnest during the star-join cycle (Job 1 reduce): intermediate
    /// results carry full redundancy from the start.
    Eager,
    /// Delay the β-unnest to the map phase of the join cycle that needs
    /// it, unnesting fully there (`TG_UnbJoin`).
    LazyFull,
    /// Delay and unnest only to φ_m partition granularity
    /// (`TG_OptUnbJoin`); the reduce completes the unnest.
    LazyPartial(u64),
    /// The paper's recommended policy: lazy, choosing *full* unnest for
    /// unbound patterns with partially-bound objects (selective, few
    /// candidates) and *partial* unnest with the given φ range for
    /// unbound-object patterns (many candidates).
    Auto(u64),
}

impl Strategy {
    /// Short label for reports.
    pub fn label(self) -> String {
        match self {
            Strategy::Eager => "EagerUnnest".into(),
            Strategy::LazyFull => "LazyUnnest(full)".into(),
            Strategy::LazyPartial(m) => format!("LazyUnnest(phi_{m})"),
            Strategy::Auto(m) => format!("LazyUnnest(auto,phi_{m})"),
        }
    }
}

/// Expand joined triplegroup tuples into a canonical solution set.
///
/// `components` maps each tuple position to its star index in `query`.
pub fn expand_tuples(
    tuples: &[TgTuple],
    components: &[usize],
    query: &Query,
) -> Result<SolutionSet, PlanError> {
    let mut set = SolutionSet::new();
    for t in tuples {
        if t.0.len() != components.len() {
            return Err(PlanError::Internal("tuple arity mismatch".into()));
        }
        let mut partials: Vec<Binding> = vec![Binding::new()];
        for (tg, &star_idx) in t.0.iter().zip(components) {
            let star = &query.stars[star_idx];
            let expansions = tg
                .expand(star)
                .ok_or_else(|| PlanError::Internal("triplegroup/star shape mismatch".into()))?;
            let mut next = Vec::with_capacity(partials.len() * expansions.len());
            for p in &partials {
                for e in &expansions {
                    let mut m = p.clone();
                    if m.merge(e) {
                        next.push(m);
                    }
                }
            }
            partials = next;
        }
        for b in partials {
            set.insert(b);
        }
    }
    Ok(match &query.projection {
        Some(vars) => set.project(vars),
        None => set,
    })
}

/// Pick the unnest mode for one join under a strategy.
///
/// `unbound_sides` carries, for each side with an [`JoinRole::UnboundObj`]
/// role, whether that unbound pattern's object is partially bound
/// (filtered).
fn mode_for(strategy: Strategy, unbound_sides: &[bool]) -> UnnestMode {
    if unbound_sides.is_empty() {
        return UnnestMode::Exact;
    }
    match strategy {
        // Eager: triplegroups are already perfect; keys are exact.
        Strategy::Eager => UnnestMode::Exact,
        Strategy::LazyFull => UnnestMode::Exact,
        Strategy::LazyPartial(m) => UnnestMode::Partial(m),
        Strategy::Auto(m) => {
            // Partially-bound objects are selective: full unnest is enough
            // (paper, Figure 11 discussion). Unbound objects benefit from
            // partial unnest.
            if unbound_sides.iter().all(|&filtered| filtered) {
                UnnestMode::Exact
            } else {
                UnnestMode::Partial(m)
            }
        }
    }
}

/// Execute `query` with the NTGA plan over the triple relation in DFS file
/// `input`.
///
/// Mirrors `relbase::execute`'s contract: planning problems are `Err`,
/// runtime failures (DiskFull) come back inside the [`QueryRun`].
pub fn execute(
    strategy: Strategy,
    engine: &Engine,
    query: &Query,
    input: &str,
    label: &str,
    extract_solutions: bool,
) -> Result<QueryRun, PlanError> {
    execute_on(DataPlane::Lexical, strategy, engine, query, input, label, extract_solutions)
}

/// [`execute`] on an explicit [`DataPlane`].
///
/// `DataPlane::Ids` runs Job 1 over the dictionary-encoded relation
/// ([`mr_rdf::IdTripleRec`] input, e.g. [`mr_rdf::ID_TRIPLES_FILE`]) and
/// requires the engine to carry the matching dictionary
/// (`Engine::with_dict`); the join cycles operate on triplegroup tuples
/// and are identical on both planes.
pub fn execute_on(
    plane: DataPlane,
    strategy: Strategy,
    engine: &Engine,
    query: &Query,
    input: &str,
    label: &str,
    extract_solutions: bool,
) -> Result<QueryRun, PlanError> {
    query.validate()?;
    check_query(query)?;

    let mut wf = Workflow::new(engine, format!("NTGA-{}/{label}", strategy.label()));
    let fail = |wf: Workflow<'_>, e: &mrsim::MrError| {
        Ok(QueryRun { stats: wf.finish_failed(e), solutions: None })
    };

    // Job 1: one grouping cycle computes every star subpattern.
    let ec_files: Vec<String> = (0..query.stars.len()).map(|i| format!("{label}.ec{i}")).collect();
    let job1 = match plane {
        DataPlane::Lexical => group_filter_job(
            format!("{label}.group"),
            query,
            input,
            ec_files.clone(),
            strategy == Strategy::Eager,
        ),
        DataPlane::Ids => {
            let dict = engine.dict().ok_or_else(|| {
                PlanError::Internal("ID-native execution needs Engine::with_dict".into())
            })?;
            group_filter_job_ids(
                format!("{label}.group"),
                query,
                input,
                ec_files.clone(),
                strategy == Strategy::Eager,
                dict,
            )
        }
    };
    if let Err(e) = wf.run_job(job1) {
        return fail(wf, &e);
    }

    // Join cycles, left-deep over the join graph.
    let edges = query.join_edges();
    let mut joined: HashSet<usize> = HashSet::from([0]);
    let mut components: Vec<usize> = vec![0];
    let mut current_file = ec_files[0].clone();
    let mut join_no = 0;
    while joined.len() < query.stars.len() {
        let edge = edges
            .iter()
            .find(|e| joined.contains(&e.left) != joined.contains(&e.right))
            .ok_or_else(|| PlanError::Internal("join graph not connected".into()))?;
        let other = if joined.contains(&edge.left) { edge.right } else { edge.left };
        // Left side: which already-joined component carries the join var?
        let (lpos, lrole) = components
            .iter()
            .enumerate()
            .find_map(|(pos, &star_idx)| {
                role_of(&query.stars[star_idx], &edge.var).map(|r| (pos, r))
            })
            .ok_or_else(|| PlanError::Internal("join var missing on left".into()))?;
        let rrole = role_of(&query.stars[other], &edge.var)
            .ok_or_else(|| PlanError::Internal("join var missing on right".into()))?;

        // Collect the "is the unbound object partially bound?" flags.
        let mut unbound_flags = Vec::new();
        for (star_idx, role) in [(components[lpos], lrole), (other, rrole)] {
            if let JoinRole::UnboundObj(u) = role {
                let pat = query.stars[star_idx].unbound_patterns()[u].clone();
                unbound_flags.push(matches!(pat.object, ObjPattern::Filtered(_, _)));
            }
        }
        let mode = mode_for(strategy, &unbound_flags);

        let out = format!("{label}.tgjoin{join_no}");
        let job = tg_join_job(
            format!("{label}.tgjoin{join_no}"),
            JoinSide { file: current_file.clone(), component: lpos, role: lrole },
            JoinSide { file: ec_files[other].clone(), component: 0, role: rrole },
            mode,
            &out,
        );
        if let Err(e) = wf.run_job(job) {
            return fail(wf, &e);
        }
        joined.insert(other);
        components.push(other);
        current_file = out;
        join_no += 1;
    }

    let stats = wf.finish(&[&current_file]);
    let solutions = if extract_solutions {
        let tuples: Vec<TgTuple> = engine
            .read_records(&current_file)
            .map_err(|e| PlanError::Internal(format!("reading final output: {e}")))?;
        Some(expand_tuples(&tuples, &components, query)?)
    } else {
        None
    };
    Ok(QueryRun { stats, solutions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_rdf::load_store;
    use mrsim::SimHdfs;
    use rdf_model::{STriple, TripleStore};
    use rdf_query::parse_query;

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<xGO>", "<go1>"),
            STriple::new("<g1>", "<xGO>", "<go2>"),
            STriple::new("<g1>", "<syn>", "\"s\""),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<go1>", "<gl>", "\"nucleus\""),
            STriple::new("<go2>", "<gl>", "\"membrane\""),
        ])
    }

    fn run(strategy: Strategy, q: &str) -> QueryRun {
        let engine = Engine::unbounded();
        load_store(&engine, "t", &store()).unwrap();
        let query = parse_query(q).unwrap();
        execute(strategy, &engine, &query, "t", "q", true).unwrap()
    }

    const ALL: [Strategy; 5] = [
        Strategy::Eager,
        Strategy::LazyFull,
        Strategy::LazyPartial(2),
        Strategy::LazyPartial(1024),
        Strategy::Auto(1024),
    ];

    const UNBOUND_2STAR: &str = "SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }";

    #[test]
    fn all_strategies_match_naive() {
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &store());
        assert!(!gold.is_empty());
        for strategy in ALL {
            let r = run(strategy, UNBOUND_2STAR);
            assert!(r.succeeded(), "{strategy:?}");
            assert_eq!(r.solutions.unwrap(), gold, "{strategy:?}");
        }
    }

    #[test]
    fn two_star_query_takes_two_cycles() {
        // The paper's headline structural claim: grouping computes all
        // star joins at once, so 2 cycles and ONE full scan (vs 3 cycles /
        // 2+ full scans relationally).
        let r = run(Strategy::LazyFull, UNBOUND_2STAR);
        assert_eq!(r.stats.mr_cycles, 2);
        assert_eq!(r.stats.full_scans, 1);
    }

    #[test]
    fn single_star_is_one_cycle() {
        let q = "SELECT * WHERE { ?g <label> ?l . ?g ?p ?o . }";
        let query = parse_query(q).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &store());
        for strategy in ALL {
            let r = run(strategy, q);
            assert_eq!(r.stats.mr_cycles, 1, "{strategy:?}");
            assert_eq!(r.solutions.unwrap(), gold, "{strategy:?}");
        }
    }

    #[test]
    fn lazy_writes_less_than_eager_in_job1() {
        let eager = run(Strategy::Eager, UNBOUND_2STAR);
        let lazy = run(Strategy::LazyFull, UNBOUND_2STAR);
        let eager_job1 = eager.stats.jobs[0].hdfs_write_bytes;
        let lazy_job1 = lazy.stats.jobs[0].hdfs_write_bytes;
        assert!(lazy_job1 < eager_job1, "lazy {lazy_job1} >= eager {eager_job1}");
    }

    #[test]
    fn bound_only_query_matches_naive() {
        let q = "SELECT * WHERE { ?g <label> ?l . ?g <xGO> ?go . ?go <gl> ?x . }";
        let query = parse_query(q).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &store());
        for strategy in ALL {
            assert_eq!(run(strategy, q).solutions.unwrap(), gold, "{strategy:?}");
        }
    }

    #[test]
    fn partially_bound_object_query() {
        let q = r#"SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . FILTER prefix(?go, "<go") }"#;
        let query = parse_query(q).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &store());
        assert!(!gold.is_empty());
        for strategy in ALL {
            assert_eq!(run(strategy, q).solutions.unwrap(), gold, "{strategy:?}");
        }
    }

    #[test]
    fn unbound_not_in_join_stays_nested_to_the_end() {
        // B4-shaped: the unbound pattern's object is NOT the join var.
        let q = "SELECT * WHERE { ?g <label> ?l . ?g <xGO> ?go . ?g ?p ?o . ?go <gl> ?x . }";
        let query = parse_query(q).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &store());
        let lazy = run(Strategy::LazyFull, q);
        assert_eq!(lazy.solutions.unwrap(), gold);
        // Final output keeps candidates nested: fewer records than
        // solutions.
        let eager = run(Strategy::Eager, q);
        let lazy_final = run(Strategy::LazyFull, q).stats.jobs.last().unwrap().output_text_bytes;
        let eager_final = eager.stats.jobs.last().unwrap().output_text_bytes;
        assert!(lazy_final < eager_final, "lazy {lazy_final} >= eager {eager_final}");
    }

    #[test]
    fn disk_full_reported() {
        let s = store();
        let engine = Engine::new(SimHdfs::new(s.text_bytes() + 40, 1));
        load_store(&engine, "t", &s).unwrap();
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let r = execute(Strategy::Eager, &engine, &query, "t", "q", true).unwrap();
        assert!(!r.succeeded());
        assert!(r.solutions.is_none());
    }

    #[test]
    fn id_plane_matches_lexical_for_every_strategy() {
        use std::sync::Arc;
        let s = store();
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let gold = rdf_query::naive::evaluate(&query, &s);
        for strategy in ALL {
            let engine = Engine::unbounded();
            let mut dict = rdf_model::Dictionary::default();
            mr_rdf::load_store_ids(&engine, "tid", &s, &mut dict).unwrap();
            let engine = engine.with_dict(Arc::new(dict));
            let r =
                execute_on(DataPlane::Ids, strategy, &engine, &query, "tid", "q", true).unwrap();
            assert!(r.succeeded(), "{strategy:?}");
            assert_eq!(r.solutions.unwrap(), gold, "{strategy:?}");
        }
        // Without a dictionary the ID plane is a planning error, not a crash.
        let engine = Engine::unbounded();
        mr_rdf::load_store(&engine, "t", &s).unwrap();
        assert!(matches!(
            execute_on(DataPlane::Ids, Strategy::Eager, &engine, &query, "t", "q", true),
            Err(PlanError::Internal(_))
        ));
    }

    #[test]
    fn auto_uses_full_for_partially_bound() {
        assert_eq!(mode_for(Strategy::Auto(8), &[true]), UnnestMode::Exact);
        assert_eq!(mode_for(Strategy::Auto(8), &[false]), UnnestMode::Partial(8));
        assert_eq!(mode_for(Strategy::Auto(8), &[]), UnnestMode::Exact);
        assert_eq!(mode_for(Strategy::LazyPartial(4), &[true]), UnnestMode::Partial(4));
        assert_eq!(mode_for(Strategy::LazyFull, &[false]), UnnestMode::Exact);
    }
}
