//! Redundancy metrics.
//!
//! The paper characterizes intermediate results by their *redundancy
//! factor* (e.g. 0.89 for query C4 on DBpedia): the fraction of bytes in
//! the flat relational representation that are repetitions a nested
//! triplegroup representation avoids.

use crate::tg::AnnTg;
use mrsim::Rec;

/// Redundancy factor of a flat representation versus its concise
/// (nested) equivalent: `1 − nested_bytes / flat_bytes`.
///
/// Returns 0 when the flat representation is empty or not larger.
pub fn redundancy_factor(flat_bytes: u64, nested_bytes: u64) -> f64 {
    if flat_bytes == 0 || nested_bytes >= flat_bytes {
        return 0.0;
    }
    1.0 - nested_bytes as f64 / flat_bytes as f64
}

/// Bytes of the flat (fully unnested, relational-style) representation a
/// set of annotated triplegroups stands for: each implicit combination
/// costs the subject plus one `(property, object)` pair per pattern
/// position.
pub fn flat_bytes_of(tgs: &[AnnTg]) -> u64 {
    let mut total = 0u64;
    for tg in tgs {
        // Row bytes: subject repeated per position + each chosen pair.
        // Compute Σ over combinations without enumerating: for each
        // position, each choice appears (combinations / n_position) times.
        let combos = tg.combination_count();
        if combos == 0 {
            continue;
        }
        let positions = tg.bound.len() as u64 + tg.unbound.len() as u64;
        let subj = tg.subject.len() as u64 + 1;
        total += combos * subj * positions.max(1);
        for (p, objs) in &tg.bound {
            let per_choice = combos / objs.len() as u64;
            for o in objs {
                total += per_choice * (p.len() as u64 + o.len() as u64 + 2);
            }
        }
        for cands in &tg.unbound {
            let per_choice = combos / cands.len() as u64;
            for (p, o) in cands {
                total += per_choice * (p.len() as u64 + o.len() as u64 + 2);
            }
        }
    }
    total
}

/// Bytes of the nested representation (sum of triplegroup text sizes).
pub fn nested_bytes_of(tgs: &[AnnTg]) -> u64 {
    tgs.iter().map(Rec::text_size).sum()
}

/// Redundancy factor of a set of annotated triplegroups: how much of the
/// equivalent flat representation is repetition.
pub fn tg_redundancy(tgs: &[AnnTg]) -> f64 {
    redundancy_factor(flat_bytes_of(tgs), nested_bytes_of(tgs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tg(n_unbound: usize) -> AnnTg {
        AnnTg {
            subject: "<gene9>".into(),
            ec: 0,
            bound: vec![("<label>".into(), vec!["\"retinoid\"".into()])],
            unbound: vec![(0..n_unbound)
                .map(|i| ("<xRef>".into(), format!("<ref{i}>").into()))
                .collect()],
        }
    }

    #[test]
    fn factor_basics() {
        assert_eq!(redundancy_factor(0, 0), 0.0);
        assert_eq!(redundancy_factor(100, 100), 0.0);
        assert!((redundancy_factor(100, 25) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn flat_bytes_match_enumeration() {
        let tg = tg(3);
        // Enumerate by hand: 3 combos, each row = subj×2 positions + label
        // pair + one candidate pair.
        let subj = "<gene9>".len() as u64 + 1;
        let label_pair = "<label>".len() as u64 + "\"retinoid\"".len() as u64 + 2;
        let mut expected = 0;
        for i in 0..3 {
            let cand = "<xRef>".len() as u64 + format!("<ref{i}>").len() as u64 + 2;
            expected += subj * 2 + label_pair + cand;
        }
        assert_eq!(flat_bytes_of(&[tg]), expected);
    }

    #[test]
    fn redundancy_grows_with_multiplicity() {
        let low = tg_redundancy(&[tg(2)]);
        let high = tg_redundancy(&[tg(50)]);
        assert!(high > low, "high {high} <= low {low}");
        // With 50 candidates the bound component repeats 50×: redundancy
        // approaches the paper's 0.89–0.98 regime.
        assert!(high > 0.5, "{high}");
    }

    #[test]
    fn no_redundancy_for_single_combination() {
        let t = AnnTg {
            subject: "<s>".into(),
            ec: 0,
            bound: vec![("<p>".into(), vec!["<o>".into()])],
            unbound: vec![],
        };
        // Flat and nested are nearly the same size (one row).
        let f = tg_redundancy(&[t]);
        assert!(f < 0.35, "{f}");
    }
}
