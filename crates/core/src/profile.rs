//! EXPLAIN ANALYZE: join the optimizer's priced [`PhysicalPlan`] against the
//! measured [`WorkflowStats`] of the run that executed it.
//!
//! [`crate::optimizer::execute_plan_on`] names its jobs deterministically —
//! `{label}.group` for Job 1, then `{label}.tgjoin{i}` for cycle `i` — so the
//! plan's operators and the run's [`mrsim::JobStats`] line up positionally:
//! `stats.jobs[0]` is Job 1 and `stats.jobs[i + 1]` is cycle `i`. This module
//! performs that join and reports, per operator, estimated vs. actual
//! cardinality, bytes, shuffle volume and simulated seconds, the resulting
//! q-error, reduce skew, and the memory high-water marks the engine records.
//!
//! Three consumers:
//!
//! * [`Profile::render`] — an annotated text tree for humans (the classic
//!   `EXPLAIN ANALYZE` shape);
//! * [`Profile::to_json`] — a stable JSON document (keys in fixed order,
//!   deterministic across worker counts) for tooling and the CI smoke check;
//! * the `reconciliation` object inside the JSON — per-column totals computed
//!   from the same per-job values as the operator rows, so a consumer can
//!   re-sum the rows and verify the document is internally consistent to
//!   float precision.

use crate::optimizer::{JoinAlgo, PhysicalPlan};
use crate::physical::{BuildSide, UnnestMode};
use mr_rdf::PlanError;
use mrsim::trace::JsonObject;
use mrsim::{JobStats, WorkflowStats};

/// The q-error `max(est/actual, actual/est)` of an estimate, with both sides
/// clamped to one record so empty relations do not divide by zero. `None`
/// when there was no estimate (negative sentinel) — mirrors
/// [`mrsim::JobStats::q_error`].
fn q_error(estimated: f64, actual: f64) -> Option<f64> {
    if !estimated.is_finite() || estimated < 0.0 {
        return None;
    }
    let est = estimated.max(1.0);
    let act = actual.max(1.0);
    Some((est / act).max(act / est))
}

/// Estimated vs. actual figures for one operator (one MapReduce job).
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Job name as the engine ran it, e.g. `q.group` or `q.tgjoin0`.
    pub name: String,
    /// Human operator label, e.g. `TG_GroupFilter[lazy,eager]` or
    /// `TG_BcastJoin(build=R)`.
    pub operator: String,
    /// Estimated output cardinality from the plan.
    pub estimated_records: f64,
    /// Records the job actually wrote.
    pub actual_records: u64,
    /// Estimated output text bytes from the plan.
    pub estimated_bytes: f64,
    /// Text bytes the job actually wrote.
    pub actual_bytes: u64,
    /// Estimated shuffle bytes from the plan (0 for broadcast cycles).
    pub estimated_shuffle_bytes: u64,
    /// Map-output bytes the job actually shuffled.
    pub actual_shuffle_bytes: u64,
    /// The plan's priced cost of this operator in simulated seconds.
    pub estimated_seconds: f64,
    /// Simulated seconds the job actually took.
    pub actual_seconds: f64,
    /// Cardinality q-error, `max(est/actual, actual/est)`; `None` when the
    /// job carried no estimate.
    pub q_error: Option<f64>,
    /// Max/mean partition imbalance of the shuffle (1.0 = perfectly even).
    pub reduce_skew: f64,
    /// Largest single reduce partition in shuffle bytes.
    pub max_partition_shuffle_bytes: u64,
    /// Peak bytes held by any one task's spill arenas.
    pub peak_arena_bytes: u64,
    /// Peak live bytes attributed to a single task.
    pub peak_task_live_bytes: u64,
    /// True when the plan chose a broadcast join but the run repaired it to
    /// a reduce-side join because the actual build file busted the budget.
    pub broadcast_repaired: bool,
}

/// Estimated vs. actual cardinality of one star's equivalence class, as
/// written by Job 1 into `{label}.ec{star}`.
#[derive(Debug, Clone)]
pub struct StarProfile {
    /// Star index in query order.
    pub star: usize,
    /// Whether the plan placed the eager β-unnest on this star.
    pub eager: bool,
    /// Estimated equivalence-class records under that placement.
    pub estimated_records: f64,
    /// Records Job 1 actually wrote for this star.
    pub actual_records: u64,
    /// Per-star cardinality q-error.
    pub q_error: Option<f64>,
}

/// The joined plan-vs-actual profile of one executed plan.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Workflow label the run carried.
    pub label: String,
    /// One entry per job, in execution order (Job 1 first, then cycles).
    pub operators: Vec<OpProfile>,
    /// Per-star breakdown of Job 1 (empty when no star actuals were given).
    pub stars: Vec<StarProfile>,
    /// The plan's total priced cost in simulated seconds.
    pub estimated_total_seconds: f64,
    /// The workflow's measured total, including inter-job overheads.
    pub actual_total_seconds: f64,
    /// Largest per-job q-error, as [`WorkflowStats::max_q_error`] reports it.
    pub max_q_error: Option<f64>,
    /// Workflow-wide peak arena footprint (max over jobs).
    pub peak_arena_bytes: u64,
    /// Workflow-wide peak per-task live bytes (max over jobs).
    pub peak_task_live_bytes: u64,
    /// Workflow-wide peak spill-index entries (max over jobs).
    pub peak_spill_entries: u64,
}

fn job1_operator(plan: &PhysicalPlan) -> String {
    let stars: Vec<&str> =
        plan.eager_stars.iter().map(|&e| if e { "eager" } else { "lazy" }).collect();
    format!("TG_GroupFilter[{}]", stars.join(","))
}

fn cycle_operator(algo: &JoinAlgo) -> String {
    match algo {
        JoinAlgo::Reduce { mode: UnnestMode::Exact, reduce_tasks } => {
            format!("TG_Join(exact,r={reduce_tasks})")
        }
        JoinAlgo::Reduce { mode: UnnestMode::Partial(m), reduce_tasks } => {
            format!("TG_OptUnbJoin(phi_{m},r={reduce_tasks})")
        }
        JoinAlgo::Broadcast { build: BuildSide::Left } => "TG_BcastJoin(build=L)".into(),
        JoinAlgo::Broadcast { build: BuildSide::Right } => "TG_BcastJoin(build=R)".into(),
    }
}

/// The plan-side column of one operator row.
struct Est {
    records: f64,
    bytes: f64,
    shuffle: u64,
    seconds: f64,
}

fn op_profile(
    name: &str,
    operator: String,
    est: Est,
    job: &JobStats,
    broadcast_repaired: bool,
) -> OpProfile {
    OpProfile {
        name: name.to_string(),
        operator,
        estimated_records: est.records,
        actual_records: job.output_records,
        estimated_bytes: est.bytes,
        actual_bytes: job.output_text_bytes,
        estimated_shuffle_bytes: est.shuffle,
        actual_shuffle_bytes: job.shuffle_bytes(),
        estimated_seconds: est.seconds,
        actual_seconds: job.sim_seconds,
        q_error: job.q_error(),
        reduce_skew: job.reduce_skew(),
        max_partition_shuffle_bytes: job.max_partition_shuffle_bytes(),
        peak_arena_bytes: job.peak_arena_bytes,
        peak_task_live_bytes: job.peak_task_live_bytes,
        broadcast_repaired,
    }
}

/// Join `plan` against the stats of the run that executed it.
///
/// `star_actual_records` carries the per-star Job 1 output cardinalities
/// (one entry per star, as returned by
/// [`crate::optimizer::execute_plan_profiled`]); pass an empty slice to skip
/// the per-star breakdown. Fails when the stats do not have the plan's
/// shape — one job for Job 1 plus one per cycle.
pub fn explain_analyze(
    plan: &PhysicalPlan,
    stats: &WorkflowStats,
    star_actual_records: &[u64],
) -> Result<Profile, PlanError> {
    if stats.jobs.len() != plan.cycles.len() + 1 {
        return Err(PlanError::Internal(format!(
            "profile shape mismatch: plan has 1 + {} jobs, stats has {}",
            plan.cycles.len(),
            stats.jobs.len()
        )));
    }
    if !star_actual_records.is_empty()
        && star_actual_records.len() != plan.estimated_star_records.len()
    {
        return Err(PlanError::Internal(format!(
            "profile star mismatch: plan has {} stars, {} actuals given",
            plan.estimated_star_records.len(),
            star_actual_records.len()
        )));
    }

    let mut operators = Vec::with_capacity(stats.jobs.len());
    operators.push(op_profile(
        &stats.jobs[0].name,
        job1_operator(plan),
        Est {
            records: plan.estimated_job1_records,
            bytes: plan.estimated_job1_bytes,
            // Job 1 always shuffles; the plan prices it inside job1 seconds
            // but does not expose the byte figure, so report the measured
            // value as its own estimate-free column.
            shuffle: stats.jobs[0].shuffle_bytes(),
            seconds: plan.estimated_job1_seconds,
        },
        &stats.jobs[0],
        false,
    ));
    for (i, cycle) in plan.cycles.iter().enumerate() {
        let job = &stats.jobs[i + 1];
        // A planned broadcast that ran with zero broadcast files was
        // repaired to the reduce-side join by execute_plan_on.
        let repaired = matches!(cycle.algo, JoinAlgo::Broadcast { .. }) && job.broadcast_files == 0;
        operators.push(op_profile(
            &job.name,
            cycle_operator(&cycle.algo),
            Est {
                records: cycle.estimated_output_records,
                bytes: cycle.estimated_output_bytes,
                shuffle: cycle.estimated_shuffle_bytes,
                seconds: cycle.estimated_seconds,
            },
            job,
            repaired,
        ));
    }

    let stars = star_actual_records
        .iter()
        .enumerate()
        .map(|(i, &actual)| StarProfile {
            star: i,
            eager: plan.eager_stars[i],
            estimated_records: plan.estimated_star_records[i],
            actual_records: actual,
            q_error: q_error(plan.estimated_star_records[i], actual as f64),
        })
        .collect();

    Ok(Profile {
        label: stats.label.clone(),
        operators,
        stars,
        estimated_total_seconds: plan.estimated_seconds,
        actual_total_seconds: stats.sim_seconds,
        max_q_error: stats.max_q_error(),
        peak_arena_bytes: stats.peak_arena_bytes(),
        peak_task_live_bytes: stats.peak_task_live_bytes(),
        peak_spill_entries: stats.peak_spill_entries(),
    })
}

fn fmt_est(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

fn fmt_q(q: Option<f64>) -> String {
    match q {
        Some(q) => format!("{q:.2}"),
        None => "-".into(),
    }
}

impl Profile {
    /// Render the annotated text tree.
    ///
    /// ```text
    /// EXPLAIN ANALYZE q  (est 12.3s, actual 11.8s, max q-error 1.42)
    /// ├─ q.group  TG_GroupFilter[lazy,eager]
    /// │    records est 120 actual 118 (q 1.02) · bytes est 4096 actual 4032
    /// │    shuffle 9216 B (skew 1.10, max part 2048 B) · est 4.1s actual 3.9s
    /// │    memory: arena 8192 B, task live 12288 B
    /// │    ├─ star 0 [lazy]  est 60.0 actual 58 (q 1.03)
    /// │    └─ star 1 [eager] est 60.0 actual 60 (q 1.00)
    /// └─ q.tgjoin0  TG_BcastJoin(build=R)
    ///      ...
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "EXPLAIN ANALYZE {}  (est {:.3}s, actual {:.3}s, max q-error {})\n",
            self.label,
            self.estimated_total_seconds,
            self.actual_total_seconds,
            fmt_q(self.max_q_error)
        );
        let n = self.operators.len();
        for (i, op) in self.operators.iter().enumerate() {
            let last = i + 1 == n;
            let (head, cont) = if last { ("└─", "  ") } else { ("├─", "│ ") };
            let repaired = if op.broadcast_repaired { "  [repaired→reduce]" } else { "" };
            out.push_str(&format!("{head} {}  {}{repaired}\n", op.name, op.operator));
            out.push_str(&format!(
                "{cont}   records est {} actual {} (q {}) · bytes est {} actual {}\n",
                fmt_est(op.estimated_records),
                op.actual_records,
                fmt_q(op.q_error),
                fmt_est(op.estimated_bytes),
                op.actual_bytes
            ));
            out.push_str(&format!(
                "{cont}   shuffle est {} actual {} B (skew {:.2}, max part {} B) · est {:.3}s actual {:.3}s\n",
                op.estimated_shuffle_bytes,
                op.actual_shuffle_bytes,
                op.reduce_skew,
                op.max_partition_shuffle_bytes,
                op.estimated_seconds,
                op.actual_seconds
            ));
            out.push_str(&format!(
                "{cont}   memory: arena {} B, task live {} B\n",
                op.peak_arena_bytes, op.peak_task_live_bytes
            ));
            if i == 0 {
                let ns = self.stars.len();
                for (j, star) in self.stars.iter().enumerate() {
                    let sh = if j + 1 == ns { "└─" } else { "├─" };
                    out.push_str(&format!(
                        "{cont}   {sh} star {} [{}]  est {} actual {} (q {})\n",
                        star.star,
                        if star.eager { "eager" } else { "lazy" },
                        fmt_est(star.estimated_records),
                        star.actual_records,
                        fmt_q(star.q_error)
                    ));
                }
            }
        }
        out.push_str(&format!(
            "memory high-water: arena {} B · task live {} B · spill entries {}\n",
            self.peak_arena_bytes, self.peak_task_live_bytes, self.peak_spill_entries
        ));
        out
    }

    /// Serialize to a stable JSON document.
    ///
    /// Key order is fixed and every value is derived from the plan and the
    /// deterministic run stats, so two runs of the same plan at different
    /// worker counts serialize byte-identically. The `reconciliation` object
    /// repeats the per-column totals summed over the `operators` rows —
    /// consumers re-sum the rows and compare to validate the document.
    pub fn to_json(&self) -> String {
        let ops: Vec<String> = self
            .operators
            .iter()
            .map(|op| {
                let mut o = JsonObject::new();
                o.str("name", &op.name);
                o.str("operator", &op.operator);
                o.f64("estimated_records", op.estimated_records);
                o.u64("actual_records", op.actual_records);
                o.f64("estimated_bytes", op.estimated_bytes);
                o.u64("actual_bytes", op.actual_bytes);
                o.u64("estimated_shuffle_bytes", op.estimated_shuffle_bytes);
                o.u64("actual_shuffle_bytes", op.actual_shuffle_bytes);
                o.f64("estimated_seconds", op.estimated_seconds);
                o.f64("actual_seconds", op.actual_seconds);
                match op.q_error {
                    Some(q) => o.f64("q_error", q),
                    None => o.raw("q_error", "null"),
                }
                o.f64("reduce_skew", op.reduce_skew);
                o.u64("max_partition_shuffle_bytes", op.max_partition_shuffle_bytes);
                o.u64("peak_arena_bytes", op.peak_arena_bytes);
                o.u64("peak_task_live_bytes", op.peak_task_live_bytes);
                o.bool("broadcast_repaired", op.broadcast_repaired);
                o.finish()
            })
            .collect();
        let stars: Vec<String> = self
            .stars
            .iter()
            .map(|s| {
                let mut o = JsonObject::new();
                o.u64("star", s.star as u64);
                o.bool("eager", s.eager);
                o.f64("estimated_records", s.estimated_records);
                o.u64("actual_records", s.actual_records);
                match s.q_error {
                    Some(q) => o.f64("q_error", q),
                    None => o.raw("q_error", "null"),
                }
                o.finish()
            })
            .collect();

        let mut recon = JsonObject::new();
        recon.u64("actual_records", self.operators.iter().map(|o| o.actual_records).sum());
        recon.u64("actual_bytes", self.operators.iter().map(|o| o.actual_bytes).sum());
        recon.u64(
            "actual_shuffle_bytes",
            self.operators.iter().map(|o| o.actual_shuffle_bytes).sum(),
        );
        recon.f64("actual_seconds", self.operators.iter().map(|o| o.actual_seconds).sum());
        recon.f64("estimated_seconds", self.operators.iter().map(|o| o.estimated_seconds).sum());

        let mut root = JsonObject::new();
        root.str("label", &self.label);
        root.f64("estimated_total_seconds", self.estimated_total_seconds);
        root.f64("actual_total_seconds", self.actual_total_seconds);
        match self.max_q_error {
            Some(q) => root.f64("max_q_error", q),
            None => root.raw("max_q_error", "null"),
        }
        root.u64("peak_arena_bytes", self.peak_arena_bytes);
        root.u64("peak_task_live_bytes", self.peak_task_live_bytes);
        root.u64("peak_spill_entries", self.peak_spill_entries);
        root.raw("operators", &format!("[{}]", ops.join(",")));
        root.raw("stars", &format!("[{}]", stars.join(",")));
        root.raw("reconciliation", &recon.finish());
        root.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{
        execute_plan, execute_plan_profiled, optimize, DataPlane, OptimizerConfig,
    };
    use mr_rdf::load_store;
    use mrsim::CostModel;
    use rdf_model::{STriple, TripleStore};
    use rdf_query::parse_query;

    const UNBOUND_2STAR: &str = "SELECT * WHERE { ?g <label> ?l . ?g ?p ?go . ?go <gl> ?x . }";

    fn store() -> TripleStore {
        let mut triples = vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<go1>", "<gl>", "\"nucleus\""),
            STriple::new("<go2>", "<gl>", "\"membrane\""),
        ];
        for i in 0..6 {
            triples.push(STriple::new("<g1>", "<xGO>", format!("<go{}>", 1 + i % 2)));
            triples.push(STriple::new("<g2>", "<xRef>", format!("<r{i}>")));
        }
        TripleStore::from_triples(triples)
    }

    fn profiled_run() -> (PhysicalPlan, Profile) {
        let s = store();
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let cost = CostModel::scaled_to(s.text_bytes());
        let plan = optimize(&query, &s.stats(), &cost, &OptimizerConfig::default()).unwrap();
        let engine = mrsim::Engine::unbounded().with_cost(cost).with_profiling(true);
        load_store(&engine, "t", &s).unwrap();
        let (run, stars) =
            execute_plan_profiled(DataPlane::Lexical, &plan, &engine, &query, "t", "q", false)
                .unwrap();
        assert!(run.succeeded());
        assert_eq!(stars.len(), query.stars.len());
        let profile = explain_analyze(&plan, &run.stats, &stars).unwrap();
        (plan, profile)
    }

    #[test]
    fn profile_joins_plan_to_stats() {
        let (plan, profile) = profiled_run();
        assert_eq!(profile.operators.len(), plan.cycles.len() + 1);
        assert_eq!(profile.stars.len(), 2);
        // Per-operator q-errors are consistent with the workflow's max.
        let op_max =
            profile.operators.iter().filter_map(|o| o.q_error).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(Some(op_max), profile.max_q_error);
        // Actual star records sum to Job 1's actual output.
        let star_sum: u64 = profile.stars.iter().map(|s| s.actual_records).sum();
        assert_eq!(star_sum, profile.operators[0].actual_records);
        // Memory marks flowed through.
        assert!(profile.peak_arena_bytes > 0);
        assert!(profile.peak_task_live_bytes > 0);
    }

    #[test]
    fn render_and_json_are_stable_and_valid() {
        let (_, profile) = profiled_run();
        let text = profile.render();
        assert!(text.starts_with("EXPLAIN ANALYZE"));
        assert!(text.contains("TG_GroupFilter"));
        assert!(text.contains("star 0"));
        let json = profile.to_json();
        mrsim::trace::validate_json(&json).unwrap();
        // A second identical run serializes byte-identically.
        let (_, again) = profiled_run();
        assert_eq!(json, again.to_json());
        assert_eq!(text, again.render());
    }

    #[test]
    fn reconciliation_totals_match_rows() {
        let (_, profile) = profiled_run();
        let json = profile.to_json();
        // The reconciliation block is derived from the same rows, so the
        // sums must appear verbatim.
        let records: u64 = profile.operators.iter().map(|o| o.actual_records).sum();
        assert!(json.contains(&format!("\"reconciliation\":{{\"actual_records\":{records}")));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let (plan, _) = profiled_run();
        let stats = WorkflowStats { label: "x".into(), ..Default::default() };
        assert!(explain_analyze(&plan, &stats, &[]).is_err());
        // Wrong star-actual arity is also an error.
        let s = store();
        let query = parse_query(UNBOUND_2STAR).unwrap();
        let engine = mrsim::Engine::unbounded();
        load_store(&engine, "t", &s).unwrap();
        let run = execute_plan(&plan, &engine, &query, "t", "q", false).unwrap();
        assert!(explain_analyze(&plan, &run.stats, &[1]).is_err());
    }
}
