//! Logical NTGA operators — the algebra of Section 3.
//!
//! These run in memory over a triple collection and exist for two reasons:
//! they are the formal definitions the physical MapReduce operators are
//! tested against (Lemma 1), and they make the rewrite rules executable:
//!
//! * `γ`  — [`group_by_subject`]: triples → subject triplegroups;
//! * `σ^γ` — [`group_filter`]: structural validation against a
//!   bound-property star (projects to the relevant properties);
//! * `σ^βγ` — [`beta_group_filter`] (**Definition 1**): relaxed filter for
//!   unbound-property stars — keeps triplegroups containing all *bound*
//!   properties, with all candidate pairs for the unbound patterns kept
//!   implicit;
//! * `μ^β` — [`beta_unnest`] (**Definition 2**): expand an annotated
//!   triplegroup into *perfect* triplegroups, one per combination of
//!   unbound candidates (the bound component stays nested);
//! * `μ^β_φ` — [`partial_beta_unnest`] (**Definition 3**): expand only to
//!   the granularity of a partition function `φ_m` over the join key, so
//!   candidates landing in the same reducer partition stay nested.

use crate::tg::AnnTg;
use rdf_model::atom::Atom;
use rdf_model::STriple;
use rdf_query::{PropPattern, StarPattern};
use std::collections::BTreeMap;

/// A plain subject triplegroup: all `(property, object)` pairs of one
/// subject (the result shape of `γ`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleGroup {
    /// The common subject token.
    pub subject: Atom,
    /// All `(property, object)` pairs, in input order.
    pub pairs: Vec<(Atom, Atom)>,
}

/// `γ`: group triples into subject triplegroups (deterministic subject
/// order). Tokens are shared with the input triples (`Atom` clones), not
/// re-allocated per group.
pub fn group_by_subject<'a>(triples: impl IntoIterator<Item = &'a STriple>) -> Vec<TripleGroup> {
    let mut map: BTreeMap<Atom, Vec<(Atom, Atom)>> = BTreeMap::new();
    for t in triples {
        map.entry(t.s.clone()).or_default().push((t.p.clone(), t.o.clone()));
    }
    map.into_iter().map(|(subject, pairs)| TripleGroup { subject, pairs }).collect()
}

/// Build the [`AnnTg`] for a triplegroup and star, or `None` if the group
/// violates the star's structural constraints.
///
/// This is the shared core of `σ^γ` and `σ^βγ`: for every bound pattern,
/// the matching objects (after object filters); for every unbound pattern,
/// the candidate pairs (after its filter). All lists must be non-empty.
pub fn match_star(tg: &TripleGroup, star: &StarPattern, ec: u64) -> Option<AnnTg> {
    if !star.subject_accepts(&tg.subject) {
        return None;
    }
    let mut bound = Vec::new();
    for pat in star.bound_patterns() {
        let prop = match &pat.property {
            PropPattern::Bound(p) => p.clone(),
            PropPattern::Unbound(_) => unreachable!("bound_patterns returned unbound"),
        };
        let objs: Vec<Atom> = tg
            .pairs
            .iter()
            .filter(|(p, o)| *p == prop && pat.object.accepts(o))
            .map(|(_, o)| o.clone())
            .collect();
        if objs.is_empty() {
            return None;
        }
        bound.push((prop, objs));
    }
    let mut unbound = Vec::new();
    for pat in star.unbound_patterns() {
        let cands: Vec<(Atom, Atom)> =
            tg.pairs.iter().filter(|(_, o)| pat.object.accepts(o)).cloned().collect();
        if cands.is_empty() {
            return None;
        }
        unbound.push(cands);
    }
    Some(AnnTg { subject: tg.subject.clone(), ec, bound, unbound })
}

/// `σ^γ`: group-filter for a star with **no** unbound patterns.
///
/// # Panics
/// Panics if the star has unbound patterns — use [`beta_group_filter`].
pub fn group_filter(tgs: &[TripleGroup], star: &StarPattern, ec: u64) -> Vec<AnnTg> {
    assert!(!star.has_unbound(), "σ^γ requires a bound-only star; use σ^βγ");
    tgs.iter().filter_map(|tg| match_star(tg, star, ec)).collect()
}

/// `σ^βγ` (Definition 1): β group-filter for unbound-property stars.
pub fn beta_group_filter(tgs: &[TripleGroup], star: &StarPattern, ec: u64) -> Vec<AnnTg> {
    tgs.iter().filter_map(|tg| match_star(tg, star, ec)).collect()
}

/// `μ^β` (Definition 2): β-unnest into perfect triplegroups.
///
/// Each output pins every unbound pattern to exactly one candidate pair;
/// the bound component stays nested. A triplegroup with `u` unbound
/// patterns having `n_1 × … × n_u` candidates yields that many perfect
/// triplegroups — the redundancy eager unnesting materializes.
pub fn beta_unnest(tg: &AnnTg) -> Vec<AnnTg> {
    if tg.unbound.is_empty() {
        return vec![tg.clone()];
    }
    let dims: Vec<usize> = tg.unbound.iter().map(Vec::len).collect();
    if dims.contains(&0) {
        return Vec::new();
    }
    // One output per candidate combination; reserve up front (capped so a
    // pathological cross product can't balloon the initial allocation).
    let combos = dims.iter().copied().fold(1usize, |a, b| a.saturating_mul(b));
    let mut out = Vec::with_capacity(combos.min(1 << 20));
    let mut cursor = vec![0usize; dims.len()];
    loop {
        let unbound =
            cursor.iter().enumerate().map(|(j, &c)| vec![tg.unbound[j][c].clone()]).collect();
        out.push(AnnTg {
            subject: tg.subject.clone(),
            ec: tg.ec,
            bound: tg.bound.clone(),
            unbound,
        });
        let mut pos = dims.len();
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            cursor[pos] += 1;
            if cursor[pos] < dims[pos] {
                break;
            }
            cursor[pos] = 0;
        }
    }
}

/// `μ^β_φ` (Definition 3): partial β-unnest of unbound pattern `u` using a
/// partition function over the candidate's *object* (the join key).
///
/// Candidates assigned to the same partition stay nested in one output
/// triplegroup, so at most `m` triplegroups are produced per input — the
/// map-output redundancy becomes a function of `m` instead of the
/// candidate count. Other unbound patterns are left untouched.
pub fn partial_beta_unnest(tg: &AnnTg, u: usize, phi: impl Fn(&str) -> u64) -> Vec<(u64, AnnTg)> {
    let mut parts: BTreeMap<u64, Vec<(Atom, Atom)>> = BTreeMap::new();
    for (p, o) in &tg.unbound[u] {
        parts.entry(phi(o)).or_default().push((p.clone(), o.clone()));
    }
    parts
        .into_iter()
        .map(|(k, cands)| {
            let mut pinned = tg.clone();
            pinned.unbound[u] = cands;
            (k, pinned)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_query::{ObjFilter, ObjPattern, TriplePattern};

    fn triples() -> Vec<STriple> {
        vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<xGO>", "<go1>"),
            STriple::new("<g1>", "<xGO>", "<go2>"),
            STriple::new("<g1>", "<syn>", "\"s\""),
            STriple::new("<g2>", "<label>", "\"b\""),
        ]
    }

    fn unbound_star() -> StarPattern {
        StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::bound("g", "<xGO>", ObjPattern::Var("go".into())),
                TriplePattern::unbound("g", "p", ObjPattern::Var("o".into())),
            ],
        )
    }

    #[test]
    fn gamma_groups_by_subject() {
        let ts = triples();
        let tgs = group_by_subject(&ts);
        assert_eq!(tgs.len(), 2);
        assert_eq!(&*tgs[0].subject, "<g1>");
        assert_eq!(tgs[0].pairs.len(), 4);
        assert_eq!(tgs[1].pairs.len(), 1);
    }

    #[test]
    fn beta_group_filter_keeps_valid_groups_with_all_pairs() {
        let ts = triples();
        let tgs = group_by_subject(&ts);
        let anns = beta_group_filter(&tgs, &unbound_star(), 0);
        // g2 lacks xGO -> filtered out (Figure 5a).
        assert_eq!(anns.len(), 1);
        let a = &anns[0];
        assert_eq!(a.bound.len(), 2);
        assert_eq!(a.bound[1].1.len(), 2); // two xGO objects nested
        assert_eq!(a.unbound[0].len(), 4); // ALL pairs are candidates
    }

    #[test]
    fn group_filter_projects_bound_only() {
        let ts = triples();
        let star = StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::bound("g", "<xGO>", ObjPattern::Var("go".into())),
            ],
        );
        let anns = group_filter(&group_by_subject(&ts), &star, 3);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].ec, 3);
        assert!(anns[0].unbound.is_empty());
        // Projection: syn pairs are not kept for a bound-only star.
        assert_eq!(anns[0].distinct_pairs().len(), 3);
    }

    #[test]
    #[should_panic(expected = "bound-only")]
    fn group_filter_rejects_unbound_star() {
        group_filter(&[], &unbound_star(), 0);
    }

    #[test]
    fn beta_unnest_produces_candidate_count_perfect_tgs() {
        let tgs = group_by_subject(&triples());
        let anns = beta_group_filter(&tgs, &unbound_star(), 0);
        let perfect = beta_unnest(&anns[0]);
        // Figure 5(b): one perfect TG per unbound candidate.
        assert_eq!(perfect.len(), 4);
        for p in &perfect {
            assert_eq!(p.unbound[0].len(), 1);
            assert_eq!(p.bound, anns[0].bound); // bound stays nested
        }
    }

    #[test]
    fn beta_unnest_of_bound_only_is_identity() {
        let tg = AnnTg {
            subject: "<s>".into(),
            ec: 0,
            bound: vec![("<p>".into(), vec!["<o>".into()])],
            unbound: vec![],
        };
        assert_eq!(beta_unnest(&tg), vec![tg.clone()]);
    }

    #[test]
    fn beta_unnest_crosses_multiple_unbound_patterns() {
        let star = StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound("g", "p1", ObjPattern::Var("o1".into())),
                TriplePattern::unbound("g", "p2", ObjPattern::Var("o2".into())),
            ],
        );
        let anns = beta_group_filter(&group_by_subject(&triples()), &star, 0);
        let perfect = beta_unnest(&anns[0]);
        // 4 candidates × 4 candidates.
        assert_eq!(perfect.len(), 16);
    }

    #[test]
    fn partial_unnest_bounds_outputs_by_m() {
        let anns = beta_group_filter(&group_by_subject(&triples()), &unbound_star(), 0);
        let m = 2u64;
        let parts = partial_beta_unnest(&anns[0], 0, |o| {
            // simple deterministic φ
            (o.len() as u64) % m
        });
        assert!(parts.len() as u64 <= m);
        // Union of partitions == original candidate set.
        let total: usize = parts.iter().map(|(_, tg)| tg.unbound[0].len()).sum();
        assert_eq!(total, anns[0].unbound[0].len());
    }

    #[test]
    fn partial_then_full_unnest_equals_full_unnest() {
        let anns = beta_group_filter(&group_by_subject(&triples()), &unbound_star(), 0);
        let full: std::collections::BTreeSet<AnnTg> = beta_unnest(&anns[0]).into_iter().collect();
        for m in [1u64, 2, 3, 7] {
            let mut via_partial = std::collections::BTreeSet::new();
            for (_, part) in
                partial_beta_unnest(&anns[0], 0, |o| (o.bytes().map(u64::from).sum::<u64>()) % m)
            {
                via_partial.extend(beta_unnest(&part));
            }
            assert_eq!(via_partial, full, "m={m}");
        }
    }

    #[test]
    fn object_filter_restricts_unbound_candidates() {
        let star = StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound(
                    "g",
                    "p",
                    ObjPattern::Filtered("o".into(), ObjFilter::Prefix("<go".into())),
                ),
            ],
        );
        let anns = beta_group_filter(&group_by_subject(&triples()), &star, 0);
        assert_eq!(anns[0].unbound[0].len(), 2); // only go1, go2
    }
}
