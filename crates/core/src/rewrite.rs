//! Query rewrite rules (Section 3).
//!
//! The paper develops the NTGA interpretation of an unbound-property star
//! pattern in two steps:
//!
//! 1. A **naive rewrite**: an unbound-property star over bound properties
//!    `P_bnd` can be expressed as a *disjunction of concrete pattern
//!    combinations* — one `σ^γ` per element of
//!    `{P_bnd ∪ {p} | p ∈ P}` where `P` is the set of all properties in
//!    the database ([`enumerate_combinations`], [`evaluate_enumerated`]).
//!    Correct, but requires knowing `P` and evaluates `|P|` combinations.
//! 2. The **relaxed rewrite**: the β group-filter `σ^βγ` keeps any
//!    triplegroup containing all of `P_bnd` and defers the concrete
//!    unbound matches to β-unnest ([`evaluate_relaxed`]).
//!
//! The `enumeration_equals_relaxation` test is the executable form of the
//! paper's correctness/sufficiency argument: both interpretations produce
//! the same solutions, and the relaxed one never touches the database's
//! property inventory.
//!
//! The module also provides [`lemma1_holds`], the executable statement of
//! **Lemma 1**: the relational star join `T_P1 ⋈ … ⋈ T_Pn ⋈ T` is
//! content-equivalent to `μ^β(σ^βγ(γ(T)))`.

use crate::logical::{beta_group_filter, beta_unnest, group_by_subject};
use rdf_model::{Atom, STriple, TripleStore};
use rdf_query::{Binding, PropPattern, Query, SolutionSet, StarPattern, TriplePattern};

/// Enumerate the concrete pattern combinations of the naive rewrite: for
/// each unbound pattern, substitute every property of the database.
///
/// With `u` unbound patterns and `|P|` database properties this yields
/// `|P|^u` fully-bound stars — the blow-up that motivates `σ^βγ`.
pub fn enumerate_combinations(star: &StarPattern, properties: &[Atom]) -> Vec<StarPattern> {
    let unbound_idx: Vec<usize> = star
        .patterns
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_unbound_property())
        .map(|(i, _)| i)
        .collect();
    if unbound_idx.is_empty() {
        return vec![star.clone()];
    }
    if properties.is_empty() {
        // No properties in the database: an unbound pattern cannot match
        // anything, so the disjunction is empty.
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut cursor = vec![0usize; unbound_idx.len()];
    loop {
        let mut patterns = star.patterns.clone();
        for (slot, &pat_i) in unbound_idx.iter().enumerate() {
            patterns[pat_i] = TriplePattern {
                subject: patterns[pat_i].subject.clone(),
                property: PropPattern::Bound(properties[cursor[slot]].clone()),
                object: patterns[pat_i].object.clone(),
            };
        }
        let mut concrete = StarPattern::new(star.subject_var.clone(), patterns);
        concrete.subject_filter = star.subject_filter.clone();
        out.push(concrete);
        // odometer over property choices
        let mut pos = unbound_idx.len();
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            cursor[pos] += 1;
            if cursor[pos] < properties.len() {
                break;
            }
            cursor[pos] = 0;
        }
    }
}

/// Expand a concrete (bound) star's triplegroups into solutions, recording
/// the original unbound variables: for a combination that substituted
/// property `p` for unbound variable `?v`, every solution binds `?v = p`.
fn solutions_of_concrete(
    concrete: &StarPattern,
    original: &StarPattern,
    triples: &[STriple],
) -> SolutionSet {
    let tgs = group_by_subject(triples);
    // The concrete star is bound-only; σ^γ applies (via the shared
    // match_star core inside beta_group_filter, which handles both).
    let anns = beta_group_filter(&tgs, concrete, 0);
    let mut out = SolutionSet::new();
    for ann in anns {
        if let Some(bindings) = ann.expand(concrete) {
            for mut b in bindings {
                // Re-introduce the unbound property variables.
                let mut ok = true;
                for (orig, conc) in original.patterns.iter().zip(&concrete.patterns) {
                    if let (PropPattern::Unbound(var), PropPattern::Bound(prop)) =
                        (&orig.property, &conc.property)
                    {
                        ok = ok && b.bind(var, prop.clone());
                    }
                }
                if ok {
                    out.insert(b);
                }
            }
        }
    }
    out
}

/// Naive-rewrite evaluation of a single unbound-property star: union of
/// the σ^γ results over all enumerated concrete combinations.
pub fn evaluate_enumerated(star: &StarPattern, store: &TripleStore) -> SolutionSet {
    let properties = store.properties();
    let mut out = SolutionSet::new();
    for concrete in enumerate_combinations(star, &properties) {
        for b in solutions_of_concrete(&concrete, star, store.triples()).iter() {
            out.insert(b.clone());
        }
    }
    out
}

/// Relaxed evaluation: `μ^β(σ^βγ(γ(T)))`, expanded to solutions.
pub fn evaluate_relaxed(star: &StarPattern, store: &TripleStore) -> SolutionSet {
    let tgs = group_by_subject(store.triples());
    let mut out = SolutionSet::new();
    for ann in beta_group_filter(&tgs, star, 0) {
        for perfect in beta_unnest(&ann) {
            if let Some(bindings) = perfect.expand(star) {
                for b in bindings {
                    out.insert(b);
                }
            }
        }
    }
    out
}

/// Executable Lemma 1: for a star pattern with one or more unbound
/// properties, the relational star join (here: the naive evaluator over a
/// single-star query) is content-equivalent to `μ^β(σ^βγ(γ(T)))`.
pub fn lemma1_holds(star: &StarPattern, store: &TripleStore) -> bool {
    let query = Query::new(vec![star.clone()]);
    let relational: SolutionSet = rdf_query::naive::evaluate(&query, store);
    let ntga = evaluate_relaxed(star, store);
    relational == ntga
}

/// A convenience used by property tests: assert both rewrites and the
/// relational interpretation agree, returning the common solution set.
pub fn check_rewrites(star: &StarPattern, store: &TripleStore) -> Result<SolutionSet, String> {
    let relational = rdf_query::naive::evaluate(&Query::new(vec![star.clone()]), store);
    let relaxed = evaluate_relaxed(star, store);
    if relaxed != relational {
        return Err("σ^βγ/μ^β disagrees with the relational interpretation".into());
    }
    let enumerated = evaluate_enumerated(star, store);
    if enumerated != relational {
        return Err("σ^γ enumeration disagrees with the relational interpretation".into());
    }
    Ok(relational)
}

/// Expansion helper mirroring the naive evaluator's treatment of
/// solutions (exported for doc completeness; bindings are canonical).
pub fn binding_of_pairs(pairs: &[(&str, &str)]) -> Binding {
    pairs.iter().map(|(k, v)| (k.to_string(), rdf_model::atom::atom(v))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_query::{ObjFilter, ObjPattern};

    fn store() -> TripleStore {
        TripleStore::from_triples(vec![
            STriple::new("<g1>", "<label>", "\"a\""),
            STriple::new("<g1>", "<xGO>", "<go1>"),
            STriple::new("<g1>", "<xGO>", "<go2>"),
            STriple::new("<g1>", "<syn>", "\"s\""),
            STriple::new("<g2>", "<label>", "\"b\""),
            STriple::new("<g2>", "<pathway>", "<pw>"),
        ])
    }

    fn unbound_star() -> StarPattern {
        StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound("g", "p", ObjPattern::Var("o".into())),
            ],
        )
    }

    #[test]
    fn enumeration_size_is_property_count() {
        let props = store().properties();
        let combos = enumerate_combinations(&unbound_star(), &props);
        assert_eq!(combos.len(), props.len());
        for c in &combos {
            assert!(!c.has_unbound());
        }
    }

    #[test]
    fn enumeration_of_double_unbound_is_squared() {
        let star = StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound("g", "p1", ObjPattern::Var("o1".into())),
                TriplePattern::unbound("g", "p2", ObjPattern::Var("o2".into())),
            ],
        );
        let props = store().properties();
        assert_eq!(enumerate_combinations(&star, &props).len(), props.len() * props.len());
    }

    #[test]
    fn bound_star_enumerates_to_itself() {
        let star = StarPattern::new(
            "g",
            vec![TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into()))],
        );
        let combos = enumerate_combinations(&star, &store().properties());
        assert_eq!(combos, vec![star]);
    }

    #[test]
    fn enumeration_equals_relaxation() {
        // The paper's correctness & sufficiency of the rewrite rules.
        let sols = check_rewrites(&unbound_star(), &store()).unwrap();
        // g1: 4 candidates; g2: 2 candidates.
        assert_eq!(sols.len(), 6);
    }

    #[test]
    fn rewrites_agree_with_partially_bound_object() {
        let star = StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound(
                    "g",
                    "p",
                    ObjPattern::Filtered("o".into(), ObjFilter::Prefix("<go".into())),
                ),
            ],
        );
        let sols = check_rewrites(&star, &store()).unwrap();
        assert_eq!(sols.len(), 2); // go1, go2 on g1 only
    }

    #[test]
    fn rewrites_agree_with_double_unbound() {
        let star = StarPattern::new(
            "g",
            vec![
                TriplePattern::bound("g", "<label>", ObjPattern::Var("l".into())),
                TriplePattern::unbound("g", "p1", ObjPattern::Var("o1".into())),
                TriplePattern::unbound("g", "p2", ObjPattern::Var("o2".into())),
            ],
        );
        let sols = check_rewrites(&star, &store()).unwrap();
        // g1: 4×4; g2: 2×2.
        assert_eq!(sols.len(), 20);
    }

    #[test]
    fn lemma1_on_example_data() {
        assert!(lemma1_holds(&unbound_star(), &store()));
    }

    #[test]
    fn unbound_variable_is_bound_in_enumerated_solutions() {
        let sols = evaluate_enumerated(&unbound_star(), &store());
        for b in sols.iter() {
            assert!(b.get("p").is_some(), "unbound var must be bound: {b}");
        }
    }
}
