//! The MapReduce execution engine.
//!
//! [`Engine::run_job`] executes one job: parallel map over input splits
//! with map-side shuffle partitioning, per-partition sort, parallel
//! reduce, and an output write to the simulated HDFS (which may fail with
//! `DiskFull`). Every phase updates the byte/record counters of
//! [`JobStats`], and the configured [`CostModel`] converts them into
//! simulated seconds.
//!
//! The shuffle mirrors Hadoop's: each map task spills its output into one
//! `SpillArena` (the `spill` module) per reduce partition as it emits
//! (FNV-1a on the key
//! bytes — not Rust's randomly-seeded default hasher), and the driver
//! merely concatenates per-partition arenas in input order (one byte
//! memcpy plus an index rebase per bucket). No owned per-record pairs are
//! ever built: emissions encode straight into the arena, and sorting,
//! combining and reducing all operate on borrowed `&[u8]` slices of it.
//!
//! Determinism: the same job over the same inputs produces byte-identical
//! output files and identical counters regardless of worker count. Map
//! output is concatenated in input order, and each reduce partition's
//! record *index* is brought into the canonical `(key bytes, value bytes)`
//! order before grouping — under the default [`SortStrategy::Radix`] each
//! map task radix-sorts its buckets over the cached key prefixes and the
//! reduce side k-way merges the absorbed sorted runs; under
//! [`SortStrategy::Comparison`] the reduce side pays one full comparison
//! sort. Both are observationally deterministic because entries comparing
//! equal are byte-identical records, and both realize the identical index
//! array (see the `spill` module docs).

use crate::cost::CostModel;
use crate::counters::JobStats;
use crate::error::MrError;
use crate::faults::FaultConfig;
use crate::hdfs::{DfsFile, SimHdfs};
use crate::job::{
    JobKind, JobSpec, MapEmitter, OutEmitter, RawCombineOp, RawMapOnlyOp, RawMapOp, TaskContext,
};
use crate::spill::{SortStrategy, SpillArena};
use crate::trace::{TaskPhase, TraceEvent, TraceSink};
use crate::workflow::RecoveryPolicy;
use parking_lot::Mutex;
use rdf_model::hash::fnv1a;
use std::sync::Arc;

/// Partition a reduce key to one of `n` reducers (Hadoop's
/// `hash(key) % numReducers` with a deterministic hash).
///
/// Total over all `n`: with one (or zero) partitions every key maps to
/// partition 0 instead of panicking on `% 0`, so callers may feed it a
/// partition count straight from a possibly-degenerate job spec.
pub fn default_partition(key: &[u8], n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    (fnv1a(key) % n as u64) as usize
}

/// The engine: a simulated cluster (DFS + workers + cost model).
pub struct Engine {
    hdfs: Arc<Mutex<SimHdfs>>,
    /// Cost model used to fill `JobStats::sim_seconds`.
    pub cost: CostModel,
    /// Number of OS worker threads for map/reduce task execution.
    pub workers: usize,
    /// Simulated HDFS block size (drives the `map_tasks` statistic).
    pub block_size: u64,
    /// Task-failure injection (default: no failures).
    pub faults: FaultConfig,
    /// Recovery policy inherited by workflows started on this engine
    /// (default: [`RecoveryPolicy::FailFast`]).
    pub recovery: RecoveryPolicy,
    /// Optional trace sink receiving [`TraceEvent`]s. `None` (the default)
    /// disables tracing entirely: no events are constructed.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Memory budget (bytes) for a job's broadcast side files — the
    /// simulated distributed cache a task must hold in memory. A job whose
    /// declared broadcast payload exceeds this fails with
    /// [`MrError::BroadcastTooLarge`]; the optimizer uses the same bound
    /// as its broadcast-join threshold.
    pub broadcast_budget_bytes: u64,
    /// Shared dictionary snapshot for ID-native jobs: every task's
    /// [`TaskContext`] carries a handle so reducers can resolve varint
    /// dictionary ids back to tokens at output boundaries (the simulated
    /// analogue of shipping the dictionary via the distributed cache).
    dict: Option<Arc<rdf_model::Dictionary>>,
    /// When true, jobs record distribution metrics (per-task durations,
    /// per-partition shuffle bytes, record wire sizes, reduce group widths)
    /// into [`JobStats::metrics`]. Off by default: the map-emit hot path is
    /// untouched either way (histograms are filled from driver-side
    /// accounting after the phases run), and task-level recording via
    /// [`TaskContext::record`] compiles to a single branch.
    pub profiling: bool,
    /// When true (the default, matching Hadoop's always-on block
    /// checksums), map output is sealed with a checksum per spill bucket
    /// and verified when the shuffle absorbs it, and DFS reads are
    /// verified against the checksum recorded at commit. A mismatch is
    /// handled like Hadoop's fetch failure: the clean copy is recovered
    /// (re-executed map / replica re-read), the incident is counted in
    /// [`crate::FaultStats`] and priced into `retry_seconds`, and the job
    /// proceeds. Turning this off lets injected corruption propagate
    /// silently into job output — only useful to demonstrate why the
    /// checksums are load-bearing.
    pub verify_checksums: bool,
    /// How the shuffle orders record indexes: [`SortStrategy::Radix`]
    /// (the default) radix-sorts each map-side bucket over the cached
    /// key prefixes and k-way merges the sorted runs at the reduce side;
    /// [`SortStrategy::Comparison`] is the legacy single full comparison
    /// sort per reduce partition, kept for differential testing. Both
    /// produce byte-identical output.
    pub sort_strategy: SortStrategy,
    /// Hadoop's skip mode (`mapreduce.map.skip.maxrecords`): when set,
    /// a map task that hits an undecodable input record
    /// ([`MrError::Codec`]) quarantines the raw record into a
    /// `<job>.quarantine` side file and keeps going, up to this many
    /// records per task; one more fails the job with
    /// [`MrError::SkipBudgetExhausted`]. `None` (the default) fails the
    /// job on the first bad record.
    pub skip_bad_records: Option<u64>,
}

/// Per-task metadata collected only while tracing, to lay task spans on
/// the simulated timeline after the job's counters are known.
#[derive(Default)]
struct TraceScratch {
    enabled: bool,
    /// `(records, encoded input bytes)` per map task.
    map_tasks: Vec<(u64, u64)>,
    /// `(records, shuffle bytes)` per reduce partition.
    reduce_tasks: Vec<(u64, u64)>,
}

impl Engine {
    /// Create an engine over the given DFS with default cost model and one
    /// worker per available core.
    pub fn new(hdfs: SimHdfs) -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        Engine {
            hdfs: Arc::new(Mutex::new(hdfs)),
            cost: CostModel::default(),
            workers,
            block_size: 256 * 1024 * 1024, // paper: 256 MB blocks
            faults: FaultConfig::none(),
            recovery: RecoveryPolicy::FailFast,
            trace: None,
            broadcast_budget_bytes: 64 * 1024 * 1024, // ~a task heap's worth
            dict: None,
            profiling: false,
            verify_checksums: true,
            sort_strategy: SortStrategy::Radix,
            skip_bad_records: None,
        }
    }

    /// Engine over an unbounded DFS (convenient in tests).
    pub fn unbounded() -> Self {
        Engine::new(SimHdfs::unbounded())
    }

    /// Set the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Set the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enable deterministic task-failure injection.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Set the recovery policy that [`crate::Workflow::new`] inherits.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Attach a trace sink receiving structured execution events.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Set the broadcast (distributed-cache) memory budget in bytes.
    pub fn with_broadcast_budget(mut self, bytes: u64) -> Self {
        self.broadcast_budget_bytes = bytes;
        self
    }

    /// Enable distribution-metric profiling: jobs fill
    /// [`JobStats::metrics`] with per-task duration, per-partition shuffle,
    /// record-size, and reduce-group-width histograms, all derived from
    /// worker-count-invariant accounting.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Enable or disable data-plane checksum verification (see
    /// [`Engine::verify_checksums`]). On by default; disabling is only
    /// meant for controlled demonstrations of silent corruption.
    pub fn with_verification(mut self, on: bool) -> Self {
        self.verify_checksums = on;
        self
    }

    /// Select the shuffle sort strategy (see [`Engine::sort_strategy`]).
    /// [`SortStrategy::Radix`] is the default; [`SortStrategy::Comparison`]
    /// re-enables the legacy comparison-sort pipeline for differential
    /// testing and benchmarking.
    pub fn with_sort_strategy(mut self, strategy: SortStrategy) -> Self {
        self.sort_strategy = strategy;
        self
    }

    /// Enable skip-bad-records mode with the given per-task budget (see
    /// [`Engine::skip_bad_records`]). A budget of 0 quarantines nothing:
    /// the first undecodable record fails the job, but as
    /// [`MrError::SkipBudgetExhausted`] rather than a bare codec error.
    pub fn with_skip_bad_records(mut self, budget: u64) -> Self {
        self.skip_bad_records = Some(budget);
        self
    }

    /// Attach a shared dictionary snapshot, made available to every task
    /// through [`TaskContext::resolve_atom`]. ID-native jobs require this;
    /// lexical jobs ignore it.
    pub fn with_dict(mut self, dict: Arc<rdf_model::Dictionary>) -> Self {
        self.dict = Some(dict);
        self
    }

    /// The dictionary snapshot attached with [`Engine::with_dict`], if any.
    /// Planners compiling constants to ids at plan time read it here.
    pub fn dict(&self) -> Option<&Arc<rdf_model::Dictionary>> {
        self.dict.as_ref()
    }

    /// Emit a trace event. The closure only runs when a sink is attached,
    /// so the disabled path costs one `Option` check.
    pub(crate) fn emit(&self, ev: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.trace {
            sink.event(&ev());
        }
    }

    /// Base hash identifying one `(job, epoch, phase)` for fault draws.
    /// Task identities are `base.wrapping_add(task_index)`, so every draw
    /// (task failure, node loss, straggler, corruption) is a pure function
    /// of `(seed, job, epoch, phase, task)` — independent of worker count
    /// and thread schedule.
    fn fault_base(job: &str, epoch: u64, phase: TaskPhase) -> u64 {
        fnv1a(job.as_bytes()) ^ ((phase as u64) << 56) ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Resolve injected faults for `n_tasks` tasks of one phase, updating
    /// `stats` (retry counters, node losses, straggler/speculation
    /// counters) and emitting the matching trace events. Returns the error
    /// for a task that exhausted its attempt budget.
    ///
    /// Task identities mix the job name, a phase tag, and the spec's
    /// `fault_epoch` (bumped by workflow stage retries so re-runs face
    /// fresh deterministic draws), so every decision is a pure function of
    /// `(seed, job, epoch, phase, task)` — independent of worker count and
    /// thread schedule.
    ///
    /// `holds_map_outputs` marks the map phase of a map-reduce job, whose
    /// completed task outputs sit on their node's local disk until the
    /// reducers fetch them — the only phase where node loss destroys
    /// finished work (Hadoop re-executes those maps; reduce and map-only
    /// output is committed to the DFS and survives).
    fn resolve_faults(
        &self,
        epoch: u64,
        phase: TaskPhase,
        n_tasks: usize,
        holds_map_outputs: bool,
        stats: &mut JobStats,
    ) -> Result<(), MrError> {
        if phase == TaskPhase::Map {
            stats.faults.map_tasks_scheduled += n_tasks as u64;
        }
        let f = &self.faults;
        if !f.any() || n_tasks == 0 {
            return Ok(());
        }
        let job = stats.name.clone();
        let base = Self::fault_base(&job, epoch, phase);

        if f.task_failure_probability > 0.0 {
            for i in 0..n_tasks {
                match f.attempts_needed(base.wrapping_add(i as u64)) {
                    Some(attempts) => {
                        let wasted = u64::from(attempts - 1);
                        if wasted > 0 {
                            match phase {
                                TaskPhase::Map => stats.faults.map_task_retries += wasted,
                                TaskPhase::Reduce => stats.faults.reduce_task_retries += wasted,
                            }
                            stats.task_retries += wasted;
                            self.emit(|| TraceEvent::TaskRetry {
                                job: job.clone(),
                                phase,
                                task: i as u64,
                                wasted_attempts: wasted,
                            });
                        }
                    }
                    None => {
                        return Err(MrError::TaskExhausted {
                            job: job.clone(),
                            phase: phase.as_str(),
                            task: i as u64,
                            attempts: f.max_attempts,
                        })
                    }
                }
            }
        }

        if holds_map_outputs && f.node_loss_probability > 0.0 {
            for node in 0..f.nodes {
                if !f.node_lost(base, node) {
                    continue;
                }
                // Tasks are spread over the configured simulated node
                // count (not the worker-thread count) round-robin.
                let lost = (n_tasks as u64 + u64::from(f.nodes) - 1 - u64::from(node))
                    / u64::from(f.nodes);
                if lost == 0 {
                    continue;
                }
                stats.faults.node_losses += 1;
                stats.faults.maps_reexecuted += lost;
                self.emit(|| TraceEvent::NodeLoss {
                    job: job.clone(),
                    node: u64::from(node),
                    maps_lost: lost,
                });
            }
        }

        if f.straggler_probability > 0.0 {
            let (effective, backup, won) = f.straggler_outcome();
            for i in 0..n_tasks {
                if !f.is_straggler(base.wrapping_add(i as u64)) {
                    continue;
                }
                stats.faults.straggler_tasks += 1;
                match phase {
                    TaskPhase::Map => stats.faults.map_straggler_units += effective - 1.0,
                    TaskPhase::Reduce => stats.faults.reduce_straggler_units += effective - 1.0,
                }
                self.emit(|| TraceEvent::Straggler {
                    job: job.clone(),
                    phase,
                    task: i as u64,
                    slowdown: f.straggler_slowdown,
                });
                if backup {
                    match phase {
                        TaskPhase::Map => stats.faults.speculative_map_tasks += 1,
                        TaskPhase::Reduce => stats.faults.speculative_reduce_tasks += 1,
                    }
                    if won {
                        stats.faults.speculative_wins += 1;
                    }
                    self.emit(|| TraceEvent::SpeculativeTask {
                        job: job.clone(),
                        phase,
                        task: i as u64,
                        backup_won: won,
                    });
                }
            }
        }
        Ok(())
    }

    /// Access the DFS (e.g. to load inputs or read final outputs).
    pub fn hdfs(&self) -> &Mutex<SimHdfs> {
        &self.hdfs
    }

    /// Helper: store a collection of typed records as a DFS input file.
    pub fn put_records<T: crate::codec::Rec>(
        &self,
        name: &str,
        records: impl IntoIterator<Item = T>,
    ) -> Result<(), MrError> {
        let mut file = DfsFile::default();
        for r in records {
            file.text_bytes += r.text_size();
            file.records.push(r.to_bytes());
        }
        self.hdfs.lock().put(name, file)
    }

    /// Helper: read a DFS file back as typed records. Token (`Atom`)
    /// fields are re-interned through one table for the whole read, so
    /// repeated tokens in the file share allocations.
    pub fn read_records<T: crate::codec::Rec>(&self, name: &str) -> Result<Vec<T>, MrError> {
        let file = self.hdfs.lock().get(name)?;
        let atoms = rdf_model::atom::AtomTable::new();
        file.records.iter().map(|r| T::from_bytes_with(r, &atoms)).collect()
    }

    /// Execute one job to completion.
    pub fn run_job(&self, spec: &JobSpec) -> Result<JobStats, MrError> {
        spec.validate()?;
        let mut stats = JobStats { name: spec.name.clone(), ..JobStats::default() };
        stats.full_input_scan = spec.full_input_scan;
        stats.sort_strategy = self.sort_strategy.as_str();
        let replication =
            spec.replication.unwrap_or_else(|| self.hdfs.lock().default_replication());
        // Budget for early abort: text bytes this job may write.
        let budget = {
            let fs = self.hdfs.lock();
            if fs.capacity() == u64::MAX {
                None
            } else {
                Some(fs.available() / u64::from(replication.max(1)))
            }
        };

        // Distributed cache: load declared broadcast side files once and
        // hand every task a shared handle. The whole payload must fit the
        // engine's task-memory budget — a build side that outgrows it
        // can't be broadcast-joined and the job is refused up front.
        let mut broadcast: Vec<Arc<DfsFile>> = Vec::with_capacity(spec.broadcast.len());
        for name in &spec.broadcast {
            broadcast.push(self.hdfs.lock().get(name)?);
        }
        stats.broadcast_files = broadcast.len() as u64;
        stats.broadcast_bytes = broadcast.iter().map(|f| f.text_bytes).sum();
        if stats.broadcast_bytes > self.broadcast_budget_bytes {
            return Err(MrError::BroadcastTooLarge {
                job: spec.name.clone(),
                needed: stats.broadcast_bytes,
                budget: self.broadcast_budget_bytes,
            });
        }

        self.emit(|| TraceEvent::JobStart { job: spec.name.clone() });
        // Per-task scratch feeds both trace spans and (when profiling) the
        // task-duration histograms.
        let mut scratch =
            TraceScratch { enabled: self.trace.is_some() || self.profiling, ..Default::default() };
        let n_outputs = spec.outputs.len();
        let outputs = match &spec.kind {
            JobKind::MapOnly { files, mapper } => self.run_map_only(
                files,
                mapper.as_ref(),
                &broadcast,
                budget,
                n_outputs,
                spec.fault_epoch,
                &mut stats,
                &mut scratch,
            )?,
            JobKind::MapReduce { inputs, combiner, reducer, reduce_tasks } => {
                let partitions = self.run_map_phase(
                    inputs,
                    combiner.as_deref(),
                    &broadcast,
                    *reduce_tasks,
                    spec.fault_epoch,
                    &mut stats,
                    &mut scratch,
                )?;
                stats.reduce_tasks = *reduce_tasks as u64;
                // The shuffle's sort configuration and work: how many
                // map-side sorted runs reached the reduce side, and how
                // many index entries the reducers order. Both are pure
                // functions of the input split, so the event stream stays
                // worker-count-invariant.
                self.emit(|| TraceEvent::SortPlan {
                    job: spec.name.clone(),
                    strategy: self.sort_strategy.as_str(),
                    map_sorted_runs: partitions.iter().map(|p| p.sorted_run_count() as u64).sum(),
                    merge_entries: partitions.iter().map(|p| p.len() as u64).sum(),
                });
                if scratch.enabled {
                    for (p, part) in partitions.iter().enumerate() {
                        scratch
                            .reduce_tasks
                            .push((part.len() as u64, stats.shuffle_partition_bytes[p]));
                    }
                }
                self.run_reduce_phase(
                    partitions,
                    reducer.as_ref(),
                    &broadcast,
                    budget,
                    n_outputs,
                    spec.fault_epoch,
                    &mut stats,
                )?
            }
        };
        // One broadcast copy reaches every map task (Hadoop localizes per
        // node; the cost model is cluster-aggregate, so per-task is the
        // conservative charge). map_tasks is final once the phase ran.
        stats.broadcast_ship_bytes = stats.broadcast_bytes * stats.map_tasks;
        if stats.broadcast_files > 0 {
            self.emit(|| TraceEvent::Broadcast {
                job: spec.name.clone(),
                files: stats.broadcast_files,
                bytes: stats.broadcast_bytes,
                ship_bytes: stats.broadcast_ship_bytes,
            });
        }

        let mut outputs = outputs;
        if spec.output_compression < 1.0 {
            for output in &mut outputs {
                output.text_bytes =
                    (output.text_bytes as f64 * spec.output_compression).ceil() as u64;
            }
        }
        for output in &outputs {
            stats.output_records += output.records.len() as u64;
            stats.output_text_bytes += output.text_bytes;
            stats.hdfs_write_bytes += output.text_bytes * u64::from(replication);
        }
        let mut written: Vec<&String> = Vec::new();
        for (name, output) in spec.outputs.iter().zip(outputs) {
            if let Err(e) = self.hdfs.lock().put_with_replication(name, output, replication) {
                // A failed job must not leave partial outputs behind.
                let mut fs = self.hdfs.lock();
                for w in written {
                    let _ = fs.delete(w);
                }
                return Err(e);
            }
            written.push(name);
        }

        stats.estimated_output_records = spec.estimated_output_records;
        if let Some(est) = spec.estimated_output_records {
            let q = stats.q_error().unwrap_or(1.0);
            self.emit(|| TraceEvent::CardinalityEstimate {
                job: spec.name.clone(),
                estimated: est,
                actual: stats.output_records,
                q_error: q,
            });
        }
        stats.startup_seconds = self.cost.job_startup_s;
        stats.retry_seconds = self.cost.retry_seconds(&stats);
        stats.sim_seconds = self.cost.job_seconds(&stats);
        if self.profiling {
            self.record_profile(&mut stats, &scratch);
        }
        if self.trace.is_some() {
            self.emit_job_trace(&stats, &scratch);
        }
        Ok(stats)
    }

    /// Fill the job's duration and shuffle-distribution histograms from
    /// driver-side accounting, after the cost model has priced the job.
    /// Per-task durations apportion each phase's cost-model seconds by the
    /// task's byte share — the same layout [`Engine::emit_job_trace`] uses
    /// for task spans — so they are pure functions of worker-invariant
    /// counters. Fault losses are priced separately (`retry_seconds`), so
    /// the histograms are also fault-regime-invariant.
    fn record_profile(&self, stats: &mut JobStats, scratch: &TraceScratch) {
        use crate::metrics::name;
        fn share_seconds(tasks: &[(u64, u64)], phase_seconds: f64) -> Vec<f64> {
            let total_bytes: u64 = tasks.iter().map(|&(_, b)| b).sum();
            let total_records: u64 = tasks.iter().map(|&(r, _)| r).sum();
            tasks
                .iter()
                .map(|&(records, bytes)| {
                    let share = if total_bytes > 0 {
                        bytes as f64 / total_bytes as f64
                    } else if total_records > 0 {
                        records as f64 / total_records as f64
                    } else {
                        1.0 / tasks.len() as f64
                    };
                    phase_seconds * share
                })
                .collect()
        }
        let map_seconds = self.cost.map_phase_seconds(stats);
        let reduce_seconds = self.cost.reduce_phase_seconds(stats);
        for dur in share_seconds(&scratch.map_tasks, map_seconds) {
            stats.metrics.record_seconds(name::TASK_MAP_MICROS, dur);
        }
        for dur in share_seconds(&scratch.reduce_tasks, reduce_seconds) {
            stats.metrics.record_seconds(name::TASK_REDUCE_MICROS, dur);
        }
        for p in 0..stats.shuffle_partition_bytes.len() {
            let bytes = stats.shuffle_partition_bytes[p];
            stats.metrics.record(name::SHUFFLE_PARTITION_BYTES, bytes);
        }
    }

    /// Emit the per-task spans, per-partition shuffle records, and closing
    /// `JobEnd` for a completed job. Task spans are laid end-to-end inside
    /// each phase (the cost model charges aggregate cluster bandwidth, so a
    /// phase's tasks share one lane), apportioning the phase's cost-model
    /// seconds by each task's byte share (record share when no bytes, equal
    /// share when neither).
    fn emit_job_trace(&self, stats: &JobStats, scratch: &TraceScratch) {
        let lay = |tasks: &[(u64, u64)], phase: TaskPhase, phase_seconds: f64, mut cursor: f64| {
            let total_bytes: u64 = tasks.iter().map(|&(_, b)| b).sum();
            let total_records: u64 = tasks.iter().map(|&(r, _)| r).sum();
            for (i, &(records, bytes)) in tasks.iter().enumerate() {
                let share = if total_bytes > 0 {
                    bytes as f64 / total_bytes as f64
                } else if total_records > 0 {
                    records as f64 / total_records as f64
                } else {
                    1.0 / tasks.len() as f64
                };
                let dur = phase_seconds * share;
                self.emit(|| TraceEvent::TaskSpan {
                    job: stats.name.clone(),
                    phase,
                    task: i as u64,
                    records,
                    bytes,
                    start: cursor,
                    dur,
                });
                cursor += dur;
            }
        };
        let map_seconds = self.cost.map_phase_seconds(stats);
        lay(&scratch.map_tasks, TaskPhase::Map, map_seconds, stats.startup_seconds);
        lay(
            &scratch.reduce_tasks,
            TaskPhase::Reduce,
            self.cost.reduce_phase_seconds(stats),
            stats.startup_seconds + map_seconds,
        );
        for (p, &(records, bytes)) in scratch.reduce_tasks.iter().enumerate() {
            self.emit(|| TraceEvent::ShufflePartition {
                job: stats.name.clone(),
                partition: p as u64,
                records,
                bytes,
            });
        }
        self.emit(|| TraceEvent::MemoryHighWater {
            job: stats.name.clone(),
            peak_arena_bytes: stats.peak_arena_bytes,
            peak_task_live_bytes: stats.peak_task_live_bytes,
            peak_spill_entries: stats.peak_spill_entries,
        });
        for (metric, h) in stats.metrics.iter() {
            self.emit(|| TraceEvent::HistogramSummary {
                job: stats.name.clone(),
                metric: metric.to_string(),
                count: h.count(),
                sum: h.sum(),
                p50: h.p50(),
                p95: h.p95(),
                p99: h.p99(),
                max: h.max(),
            });
        }
        self.emit(|| TraceEvent::JobEnd {
            job: stats.name.clone(),
            sim_seconds: stats.sim_seconds,
            startup_seconds: stats.startup_seconds,
            hdfs_read_bytes: stats.hdfs_read_bytes,
            hdfs_write_bytes: stats.hdfs_write_bytes,
            shuffle_bytes: stats.shuffle_bytes(),
            task_retries: stats.task_retries,
            retry_seconds: stats.retry_seconds,
            ops: stats.ops.clone(),
        });
    }

    /// Read one input file and account its bytes/records.
    ///
    /// This is the at-rest corruption site: the injector may flip one
    /// payload bit of the fetched copy (a pure function of the fault seed
    /// and the file name, so every reader — on any worker count — sees the
    /// same decision). With verification on, the read is checked against
    /// the checksum recorded at commit; a mismatch is counted, traced, and
    /// recovered by re-reading from a replica (Hadoop re-reads the block
    /// from another DataNode and reports the bad one). With verification
    /// off, the corrupted copy flows into the job.
    fn load_input(&self, name: &str, stats: &mut JobStats) -> Result<Arc<DfsFile>, MrError> {
        let file = self.hdfs.lock().get(name)?;
        stats.input_records += file.records.len() as u64;
        stats.hdfs_read_bytes += file.text_bytes;
        stats.map_tasks += file.text_bytes.div_ceil(self.block_size).max(1);
        let salt = fnv1a(name.as_bytes());
        if self.faults.data_corrupted(salt, 0) {
            if let Some(off) = self.faults.corruption_offset(salt, 0, file.payload_bytes() as usize)
            {
                let mut bad = (*file).clone();
                bad.flip_byte(off as u64);
                if !self.verify_checksums {
                    return Ok(Arc::new(bad));
                }
                // Single-bit flips never collide in the block checksum, so
                // detection is certain; keep the error path honest anyway.
                if bad.verify().is_err() {
                    stats.faults.corruptions_detected += 1;
                    stats.faults.dfs_refetches += 1;
                    let job = stats.name.clone();
                    self.emit(|| TraceEvent::CorruptionDetected {
                        job: job.clone(),
                        site: "dfs",
                        task: 0,
                    });
                    self.emit(|| TraceEvent::Refetch { job: job.clone(), site: "dfs", task: 0 });
                }
            }
        }
        Ok(file)
    }

    #[allow(clippy::too_many_arguments)] // internal: one call site, in run_job
    fn run_map_only(
        &self,
        files: &[String],
        mapper: &dyn RawMapOnlyOp,
        broadcast: &[Arc<DfsFile>],
        budget: Option<u64>,
        n_outputs: usize,
        epoch: u64,
        stats: &mut JobStats,
        scratch: &mut TraceScratch,
    ) -> Result<Vec<DfsFile>, MrError> {
        let mut inputs = Vec::new();
        for f in files {
            inputs.push(self.load_input(f, stats)?);
        }
        // Map-only output order must be deterministic: process chunks in
        // parallel but concatenate in input order.
        let chunks: Vec<&[Vec<u8>]> = inputs.iter().flat_map(|f| self.chunk(&f.records)).collect();
        if scratch.enabled {
            for chunk in &chunks {
                let bytes: u64 = chunk.iter().map(|r| r.len() as u64).sum();
                scratch.map_tasks.push((chunk.len() as u64, bytes));
            }
        }
        self.resolve_faults(epoch, TaskPhase::Map, chunks.len(), false, stats)?;
        let job = stats.name.clone();
        let results = self.parallel_over(&chunks, |chunk| {
            let ctx = TaskContext::with_env(self.dict.clone(), broadcast.to_vec())
                .profiled(self.profiling);
            let mut out = OutEmitter::with_outputs(budget, n_outputs);
            let mut skipped: Vec<Vec<u8>> = Vec::new();
            for rec in *chunk {
                let r = mapper.run(&ctx, rec, &mut out);
                self.filter_record(&job, r, rec, &mut skipped)?;
            }
            // Map-only tasks buffer their output records until commit.
            let live_bytes: u64 = out.records.iter().map(|(_, r, _)| r.len() as u64).sum();
            Ok((out, live_bytes, skipped, ctx.take_counters(), ctx.take_metrics()))
        })?;
        let mut files: Vec<DfsFile> = (0..n_outputs).map(|_| DfsFile::default()).collect();
        let mut total_text = 0u64;
        let mut quarantined: Vec<Vec<u8>> = Vec::new();
        for (task, (out, live_bytes, skipped, ops, task_metrics)) in results.into_iter().enumerate()
        {
            stats.ops.merge(&ops);
            stats.metrics.merge(&task_metrics);
            stats.peak_task_live_bytes = stats.peak_task_live_bytes.max(live_bytes);
            self.account_skipped(task as u64, skipped, &mut quarantined, stats);
            total_text += out.emitted_text;
            if let Some(b) = budget {
                // Each task only bounds its own output against the budget;
                // re-check the aggregate across tasks here, mirroring
                // `run_reduce_phase`'s cross-partition early abort.
                if total_text > b {
                    return Err(MrError::DiskFull {
                        file: "<job output>".into(),
                        needed: total_text,
                        available: b,
                    });
                }
            }
            for (idx, rec, text) in out.records {
                files[idx].text_bytes += text;
                files[idx].records.push(rec);
            }
        }
        // `stats.map_output_*` double as "records produced by map" even for
        // map-only jobs, but they are NOT shuffle bytes (reduce_tasks == 0).
        stats.map_output_records = files.iter().map(|f| f.records.len() as u64).sum();
        stats.map_output_bytes = files.iter().map(|f| f.text_bytes).sum();
        self.write_quarantine(&job, quarantined)?;
        Ok(files)
    }

    /// Skip-mode filter for one map input record: pass non-codec results
    /// through, quarantine a decode failure when a budget is configured
    /// and not yet spent, fail the task with
    /// [`MrError::SkipBudgetExhausted`] once it is. Decode happens before
    /// any user logic runs, so a quarantined record has emitted nothing.
    fn filter_record(
        &self,
        job: &str,
        result: Result<(), MrError>,
        rec: &[u8],
        skipped: &mut Vec<Vec<u8>>,
    ) -> Result<(), MrError> {
        match (result, self.skip_bad_records) {
            (Err(MrError::Codec(_)), Some(budget)) => {
                skipped.push(rec.to_vec());
                if skipped.len() as u64 > budget {
                    return Err(MrError::SkipBudgetExhausted { job: job.to_string(), budget });
                }
                Ok(())
            }
            (r, _) => r,
        }
    }

    /// Fold one task's quarantined records into the job totals: bump
    /// `records_skipped`, emit the [`TraceEvent::RecordSkipped`] evidence,
    /// and append to the job-wide quarantine (tasks are visited in task
    /// order, so the side file's contents are worker-count-invariant).
    fn account_skipped(
        &self,
        task: u64,
        skipped: Vec<Vec<u8>>,
        quarantined: &mut Vec<Vec<u8>>,
        stats: &mut JobStats,
    ) {
        if skipped.is_empty() {
            return;
        }
        stats.records_skipped += skipped.len() as u64;
        let job = stats.name.clone();
        let records = skipped.len() as u64;
        self.emit(|| TraceEvent::RecordSkipped { job, task, records });
        quarantined.extend(skipped);
    }

    /// Commit a job's quarantined records as a `<job>.quarantine` side
    /// file (nothing is written when the quarantine is empty). A leftover
    /// side file from a previous attempt of the same job is replaced, so
    /// workflow stage retries and resumes converge on the newest attempt's
    /// evidence.
    fn write_quarantine(&self, job: &str, records: Vec<Vec<u8>>) -> Result<(), MrError> {
        if records.is_empty() {
            return Ok(());
        }
        let name = format!("{job}.quarantine");
        let file = DfsFile {
            text_bytes: records.iter().map(|r| r.len() as u64).sum(),
            records,
            ..DfsFile::default()
        };
        let mut fs = self.hdfs.lock();
        if fs.exists(&name) {
            let _ = fs.delete(&name);
        }
        fs.put(&name, file)
    }

    /// Map phase with map-side shuffle partitioning: every map task spills
    /// into one arena per reduce partition as it emits, and this driver
    /// only moves whole arenas — concatenating each partition's spill
    /// arenas in deterministic input (task) order, exactly the
    /// per-partition sequence the old owned-pair shuffle produced.
    #[allow(clippy::too_many_arguments)] // internal: one call site, in run_job
    fn run_map_phase(
        &self,
        inputs: &[crate::job::InputBinding],
        combiner: Option<&dyn RawCombineOp>,
        broadcast: &[Arc<DfsFile>],
        reduce_tasks: usize,
        epoch: u64,
        stats: &mut JobStats,
        scratch: &mut TraceScratch,
    ) -> Result<Vec<SpillArena>, MrError> {
        // (mapper, chunk) work items, order-preserving.
        let mut work: Vec<(&dyn RawMapOp, &[Vec<u8>])> = Vec::new();
        let mut files = Vec::new();
        for binding in inputs {
            let file = self.load_input(&binding.file, stats)?;
            files.push((binding.mapper.clone(), file));
        }
        for (mapper, file) in &files {
            // Safety note: `files` outlives `work` within this function.
            for chunk in self.chunk(&file.records) {
                work.push((mapper.as_ref(), chunk));
            }
        }
        if scratch.enabled {
            for (_, chunk) in &work {
                let bytes: u64 = chunk.iter().map(|r| r.len() as u64).sum();
                scratch.map_tasks.push((chunk.len() as u64, bytes));
            }
        }
        self.resolve_faults(epoch, TaskPhase::Map, work.len(), true, stats)?;
        let job = stats.name.clone();
        let results = self.parallel_over(&work, |(mapper, chunk)| {
            let ctx = TaskContext::with_env(self.dict.clone(), broadcast.to_vec())
                .profiled(self.profiling);
            let mut out = MapEmitter::partitioned(reduce_tasks);
            let mut skipped: Vec<Vec<u8>> = Vec::new();
            for rec in *chunk {
                let r = mapper.run(&ctx, rec, &mut out);
                self.filter_record(&job, r, rec, &mut skipped)?;
            }
            let pre_combine = out.len() as u64;
            let mut live_bytes: u64 = out.buckets.iter().map(SpillArena::footprint_bytes).sum();
            if let Some(c) = combiner {
                out = self.run_combiner(c, &ctx, out)?;
                // While the combiner runs, the original spill and its
                // combined replacement coexist in task memory.
                live_bytes += out.buckets.iter().map(SpillArena::footprint_bytes).sum::<u64>();
            }
            if self.sort_strategy == SortStrategy::Radix {
                // Map-side sort (Hadoop sorts every spill before the
                // reducers fetch it): each bucket becomes one sorted run
                // the reduce side can merge instead of re-sorting.
                for bucket in &mut out.buckets {
                    bucket.sort_with(SortStrategy::Radix);
                }
            }
            if self.verify_checksums {
                // Seal once the bucket contents are final (post-combiner):
                // the checksum the shuffle verifies on absorb.
                for bucket in &mut out.buckets {
                    bucket.seal();
                }
            }
            Ok((out, pre_combine, live_bytes, skipped, ctx.take_counters(), ctx.take_metrics()))
        })?;
        let mut partitions: Vec<SpillArena> =
            (0..reduce_tasks).map(|_| SpillArena::default()).collect();
        stats.shuffle_partition_bytes = vec![0; reduce_tasks];
        let base = Self::fault_base(&job, epoch, TaskPhase::Map);
        let mut quarantined: Vec<Vec<u8>> = Vec::new();
        for (task, (mut out, pre_combine, live_bytes, skipped, ops, task_metrics)) in
            results.into_iter().enumerate()
        {
            stats.ops.merge(&ops);
            stats.metrics.merge(&task_metrics);
            stats.pre_combine_records += pre_combine;
            stats.peak_task_live_bytes = stats.peak_task_live_bytes.max(live_bytes);
            self.account_skipped(task as u64, skipped, &mut quarantined, stats);
            // In-flight corruption: flip one bit somewhere in this map
            // task's serialized output before the reducers "fetch" it. The
            // draw and the offset are pure functions of (seed, job, epoch,
            // task), so every worker count injects identically.
            let flipped = if self.faults.data_corrupted(base, task as u64) {
                let total: usize = out.buckets.iter().map(|b| b.encoded_bytes() as usize).sum();
                self.faults.corruption_offset(base, task as u64, total).map(|mut off| {
                    let mut victim = 0;
                    for (p, bucket) in out.buckets.iter().enumerate() {
                        victim = p;
                        let len = bucket.encoded_bytes() as usize;
                        if off < len {
                            break;
                        }
                        off -= len;
                    }
                    out.buckets[victim].flip_byte(off);
                    (victim, off)
                })
            } else {
                None
            };
            for (p, bucket) in out.buckets.iter_mut().enumerate() {
                // Shuffle-absorb verification (Hadoop checksums every map
                // output segment a reducer fetches). A mismatch plays out
                // as a fetch failure: the producing map is re-executed —
                // priced into `retry_seconds` via the refetch counter —
                // and its clean output is fetched instead (the flip is
                // undone; injected corruption is the only way a sealed
                // bucket can mismatch).
                if self.verify_checksums && bucket.verify().is_err() {
                    stats.faults.corruptions_detected += 1;
                    stats.faults.corrupt_refetches += 1;
                    let job = job.clone();
                    let task = task as u64;
                    self.emit(|| TraceEvent::CorruptionDetected {
                        job: job.clone(),
                        site: "shuffle",
                        task,
                    });
                    self.emit(|| TraceEvent::Refetch { job: job.clone(), site: "shuffle", task });
                    let (_, off) = flipped.expect("only injected corruption fails verification");
                    bucket.flip_byte(off);
                }
                stats.map_output_records += bucket.len() as u64;
                stats.map_output_bytes += bucket.text_bytes();
                stats.map_output_encoded_bytes += bucket.encoded_bytes();
                stats.shuffle_partition_bytes[p] += bucket.text_bytes();
                if self.profiling {
                    for wire in bucket.record_wire_sizes() {
                        stats.metrics.record(crate::metrics::name::RECORD_SHUFFLE_BYTES, wire);
                    }
                    if !bucket.is_empty() && self.sort_strategy == SortStrategy::Radix {
                        // Map-side sort work: entries per sorted run. A
                        // pure function of the input split (never of
                        // worker count or fault draws), like every other
                        // profiling histogram.
                        stats.metrics.record(
                            crate::metrics::name::SORT_MAP_RUN_ENTRIES,
                            bucket.len() as u64,
                        );
                    }
                }
                match self.sort_strategy {
                    SortStrategy::Radix => partitions[p].absorb_sorted(bucket),
                    SortStrategy::Comparison => partitions[p].absorb(bucket),
                }
            }
        }
        self.write_quarantine(&job, quarantined)?;
        // Arenas only grow, so the post-merge footprint of each reduce
        // partition is its lifetime high-water mark.
        for part in &partitions {
            stats.peak_arena_bytes = stats.peak_arena_bytes.max(part.footprint_bytes());
            stats.peak_spill_entries = stats.peak_spill_entries.max(part.len() as u64);
        }
        Ok(partitions)
    }

    /// Run the combiner over one map task's buffered output: sort and
    /// group each spill arena's record index, feed every group to the
    /// combiner (exactly Hadoop's in-memory combine before spill). Keys
    /// and values are slices borrowed from the arena — no per-group
    /// clones. Combiner output is re-partitioned by its (possibly
    /// rewritten) keys.
    fn run_combiner(
        &self,
        combiner: &dyn RawCombineOp,
        ctx: &TaskContext,
        mut out: MapEmitter,
    ) -> Result<MapEmitter, MrError> {
        let mut combined = MapEmitter::partitioned(out.buckets.len());
        let mut values: Vec<&[u8]> = Vec::new();
        for bucket in &mut out.buckets {
            bucket.sort_with(self.sort_strategy);
        }
        for bucket in &out.buckets {
            // Same grouping iterator the reduce side streams from.
            for group in bucket.group_ranges() {
                values.clear();
                values.extend(group.clone().map(|t| bucket.value(t)));
                combiner.run(ctx, bucket.key(group.start), &values, &mut combined)?;
            }
        }
        Ok(combined)
    }

    /// Reduce phase over pre-partitioned shuffle data: each partition
    /// sorts its record index (prefix-accelerated, in place — the arena
    /// bytes never move) and streams groups of borrowed slices to the
    /// reducer.
    #[allow(clippy::too_many_arguments)] // internal: one call site, in run_job
    fn run_reduce_phase(
        &self,
        partitions: Vec<SpillArena>,
        reducer: &dyn crate::job::RawReduceOp,
        broadcast: &[Arc<DfsFile>],
        budget: Option<u64>,
        n_outputs: usize,
        epoch: u64,
        stats: &mut JobStats,
    ) -> Result<Vec<DfsFile>, MrError> {
        stats.reduce_input_records = partitions.iter().map(|p| p.len() as u64).sum();
        self.resolve_faults(epoch, TaskPhase::Reduce, partitions.len(), false, stats)?;
        // Sort + group + reduce each partition in parallel. Each partition
        // is wrapped in a Mutex purely so its owning task can sort the
        // index in place through `parallel_over`'s shared-slice interface;
        // exactly one task ever touches a given partition.
        let shared_budget = budget;
        let partitions: Vec<Mutex<SpillArena>> = partitions.into_iter().map(Mutex::new).collect();
        let results = self.parallel_over(&partitions, |cell| {
            let ctx = TaskContext::with_env(self.dict.clone(), broadcast.to_vec())
                .profiled(self.profiling);
            let mut guard = cell.lock();
            // Reduce-side ordering work, recorded before it happens:
            // entries to order and sorted runs available to merge — both
            // pure functions of the input split, never of worker count
            // or fault draws.
            ctx.record(crate::metrics::name::SORT_REDUCE_ENTRIES, guard.len() as u64);
            ctx.record(crate::metrics::name::SORT_MERGE_RUNS, guard.sorted_run_count() as u64);
            match self.sort_strategy {
                // The map side already sorted each absorbed bucket:
                // stream the canonical order out of a k-way run merge
                // instead of paying a second full sort.
                SortStrategy::Radix => guard.merge_sorted_runs(),
                SortStrategy::Comparison => guard.sort_with(SortStrategy::Comparison),
            }
            let part: &SpillArena = &guard;
            // The reduce task's live set is its whole partition arena
            // (payload bytes + sort index).
            let live_bytes = part.footprint_bytes();
            let mut out = OutEmitter::with_outputs(shared_budget, n_outputs);
            let mut groups = 0u64;
            let mut values: Vec<&[u8]> = Vec::new();
            for group in part.group_ranges() {
                values.clear();
                values.extend(group.clone().map(|t| part.value(t)));
                ctx.record(crate::metrics::name::REDUCE_GROUP_WIDTH, group.len() as u64);
                reducer.run(&ctx, part.key(group.start), &values, &mut out)?;
                groups += 1;
            }
            Ok((out, groups, live_bytes, ctx.take_counters(), ctx.take_metrics()))
        })?;
        let mut files: Vec<DfsFile> = (0..n_outputs).map(|_| DfsFile::default()).collect();
        let mut total_text = 0u64;
        for (out, groups, live_bytes, ops, task_metrics) in results {
            stats.ops.merge(&ops);
            stats.metrics.merge(&task_metrics);
            stats.reduce_groups += groups;
            stats.peak_task_live_bytes = stats.peak_task_live_bytes.max(live_bytes);
            total_text += out.emitted_text;
            if let Some(b) = budget {
                // Early-abort check across partitions: each partition only
                // bounds itself, so re-check the aggregate here.
                if total_text > b {
                    return Err(MrError::DiskFull {
                        file: "<job output>".into(),
                        needed: total_text,
                        available: b,
                    });
                }
            }
            for (idx, rec, text) in out.records {
                files[idx].text_bytes += text;
                files[idx].records.push(rec);
            }
        }
        Ok(files)
    }

    /// Split a record slice into fixed-size chunks: ~1/32 of the input,
    /// at least 1024 records. Deliberately independent of the worker
    /// count — chunks are the engine's "tasks", and everything accounted
    /// per task (fault draws via `map_tasks_scheduled`, task spans,
    /// duration histograms, per-task memory high-water marks) must be
    /// identical whether 1 or 8 threads drain the chunk queue.
    fn chunk<'a>(&self, records: &'a [Vec<u8>]) -> Vec<&'a [Vec<u8>]> {
        if records.is_empty() {
            return Vec::new();
        }
        let target = (records.len() / 32).max(1024).min(records.len());
        records.chunks(target).collect()
    }

    /// Run `f` over every item of `work` on the worker pool, preserving
    /// item order in the results.
    fn parallel_over<T: Sync, R: Send>(
        &self,
        work: &[T],
        f: impl Fn(&T) -> Result<R, MrError> + Sync,
    ) -> Result<Vec<R>, MrError> {
        if work.is_empty() {
            return Ok(Vec::new());
        }
        if self.workers <= 1 || work.len() == 1 {
            return work.iter().map(&f).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<R, MrError>>>> =
            work.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(work.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let r = f(&work[i]);
                    *results[i].lock() = Some(r);
                });
            }
        });
        results.into_iter().map(|m| m.into_inner().expect("worker completed")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{map_fn, reduce_fn, InputBinding};

    fn word_count_engine(words: &[&str]) -> Engine {
        let engine = Engine::unbounded().with_workers(4);
        engine.put_records("input", words.iter().map(|w| w.to_string())).unwrap();
        engine
    }

    fn word_count_spec() -> JobSpec {
        let mapper =
            map_fn(|word: String, out: &mut crate::job::TypedMapEmitter<'_, String, u64>| {
                out.emit(&word, &1);
                Ok(())
            });
        let reducer = reduce_fn(
            |key: String, values: Vec<u64>, out: &mut crate::job::TypedOutEmitter<'_, String>| {
                out.emit(&format!("{key}:{}", values.iter().sum::<u64>()))
            },
        );
        JobSpec::map_reduce(
            "wordcount",
            vec![InputBinding { file: "input".into(), mapper }],
            reducer,
            3,
            "out",
        )
    }

    #[test]
    fn word_count_end_to_end() {
        let engine = word_count_engine(&["a", "b", "a", "c", "a", "b"]);
        let stats = engine.run_job(&word_count_spec()).unwrap();
        let mut out: Vec<String> = engine.read_records("out").unwrap();
        // Unstable sort is observationally deterministic here for the same
        // reason as the per-partition shuffle sort (module docs): elements
        // that compare equal are identical strings, so any permutation of
        // them is the same vector.
        out.sort_unstable();
        assert_eq!(out, vec!["a:3", "b:2", "c:1"]);
        assert_eq!(stats.input_records, 6);
        assert_eq!(stats.map_output_records, 6);
        assert_eq!(stats.reduce_input_records, 6);
        assert_eq!(stats.reduce_groups, 3);
        assert_eq!(stats.output_records, 3);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        // Byte-identical outputs AND counters for every worker count, with
        // and without a combiner.
        let run = |workers: usize, with_combiner: bool| {
            let engine =
                word_count_engine(&["x", "y", "x", "z", "w", "w", "w"]).with_workers(workers);
            let mut spec = word_count_spec();
            if with_combiner {
                let combiner = crate::job::combine_fn(
                    |key: String,
                     ones: Vec<u64>,
                     out: &mut crate::job::TypedMapEmitter<'_, String, u64>| {
                        out.emit(&key, &ones.iter().sum());
                        Ok(())
                    },
                );
                spec = spec.with_combiner(combiner);
            }
            let stats = engine.run_job(&spec).unwrap();
            let out: Vec<String> = engine.read_records("out").unwrap();
            (format!("{stats:?}"), out)
        };
        for combined in [false, true] {
            let baseline = run(1, combined);
            for workers in [4, 8] {
                assert_eq!(run(workers, combined), baseline, "workers={workers}");
            }
        }
    }

    #[test]
    fn partition_bytes_sum_to_shuffle_bytes() {
        let engine = word_count_engine(&["a", "b", "c", "d", "e", "f", "a", "b"]);
        let stats = engine.run_job(&word_count_spec()).unwrap();
        assert_eq!(stats.shuffle_partition_bytes.len(), 3);
        assert_eq!(stats.shuffle_partition_bytes.iter().sum::<u64>(), stats.map_output_bytes);
        assert!(stats.max_partition_shuffle_bytes() >= stats.map_output_bytes / 3);
        assert!(stats.reduce_skew() >= 1.0);
    }

    #[test]
    fn single_reduce_task_concentrates_all_shuffle() {
        let engine = word_count_engine(&["a", "b", "c"]);
        let spec = {
            let mut s = word_count_spec();
            if let JobKind::MapReduce { reduce_tasks, .. } = &mut s.kind {
                *reduce_tasks = 1;
            }
            s
        };
        let stats = engine.run_job(&spec).unwrap();
        assert_eq!(stats.shuffle_partition_bytes, vec![stats.map_output_bytes]);
        assert!((stats.reduce_skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_reduce_tasks_error_not_panic() {
        let engine = word_count_engine(&["a"]);
        let spec = {
            let mut s = word_count_spec();
            if let JobKind::MapReduce { reduce_tasks, .. } = &mut s.kind {
                *reduce_tasks = 0; // bypass the builder assert via the pub field
            }
            s
        };
        let err = engine.run_job(&spec).unwrap_err();
        assert!(err.to_string().contains("reduce tasks"), "{err}");
    }

    #[test]
    fn default_partition_total_on_degenerate_counts() {
        assert_eq!(default_partition(b"anything", 0), 0);
        assert_eq!(default_partition(b"anything", 1), 0);
        for n in [2usize, 3, 7, 64] {
            assert!(default_partition(b"anything", n) < n);
        }
    }

    #[test]
    fn counters_conserve_shuffle() {
        let engine = word_count_engine(&["a"; 100]);
        let stats = engine.run_job(&word_count_spec()).unwrap();
        assert_eq!(stats.map_output_records, stats.reduce_input_records);
        assert_eq!(stats.shuffle_bytes(), stats.map_output_bytes);
    }

    #[test]
    fn wire_bytes_diverge_from_text_model_on_id_jobs() {
        use crate::codec::{uvarint_len, VarId};
        // ID-encoded job: LEB128 varints cross the wire, and the
        // post-encoding counter must report exactly those bytes — not the
        // text-row model's figure.
        let engine = Engine::unbounded().with_workers(4);
        engine.put_records("ids", (0..500u32).map(VarId)).unwrap();
        let mapper =
            map_fn(|rec: VarId, out: &mut crate::job::TypedMapEmitter<'_, VarId, VarId>| {
                out.emit(&VarId(rec.0 % 7), &rec);
                Ok(())
            });
        let reducer = reduce_fn(
            |_k: VarId, vs: Vec<VarId>, out: &mut crate::job::TypedOutEmitter<'_, u64>| {
                out.emit(&(vs.len() as u64))
            },
        );
        let spec = JobSpec::map_reduce(
            "idjob",
            vec![InputBinding { file: "ids".into(), mapper }],
            reducer,
            3,
            "out",
        );
        let stats = engine.run_job(&spec).unwrap();
        let expected_wire: u64 = (0..500u32).map(|i| uvarint_len(i % 7) + uvarint_len(i)).sum();
        assert_eq!(stats.map_output_encoded_bytes, expected_wire);
        assert_eq!(stats.shuffle_wire_bytes(), expected_wire);
        // The text model charges one shared row separator per pair, so the
        // two counters must diverge on an ID-encoded job.
        assert_eq!(stats.map_output_bytes, expected_wire - 500);
        assert_ne!(stats.shuffle_bytes(), stats.shuffle_wire_bytes());

        // Lexical jobs diverge the other way: length-prefix framing makes
        // the wire bigger than the text rows.
        let engine = word_count_engine(&["alpha", "beta", "alpha"]);
        let lex = engine.run_job(&word_count_spec()).unwrap();
        assert!(lex.shuffle_wire_bytes() > lex.shuffle_bytes());

        // Map-only jobs shuffle nothing under either accounting.
        let mapper = crate::job::map_only_fn(
            |w: String, out: &mut crate::job::TypedOutEmitter<'_, String>| out.emit(&w),
        );
        let spec = JobSpec::map_only("mo", vec!["input".into()], mapper, "mo_out");
        let stats = engine.run_job(&spec).unwrap();
        assert_eq!(stats.shuffle_wire_bytes(), 0);
    }

    #[test]
    fn map_only_job() {
        let engine = word_count_engine(&["one", "two"]);
        let mapper = crate::job::map_only_fn(
            |w: String, out: &mut crate::job::TypedOutEmitter<'_, String>| {
                out.emit(&w.to_uppercase())
            },
        );
        let spec = JobSpec::map_only("upper", vec!["input".into()], mapper, "out");
        let stats = engine.run_job(&spec).unwrap();
        assert_eq!(stats.reduce_tasks, 0);
        assert_eq!(stats.shuffle_bytes(), 0);
        let out: Vec<String> = engine.read_records("out").unwrap();
        assert_eq!(out, vec!["ONE", "TWO"]);
    }

    #[test]
    fn missing_input_errors() {
        let engine = Engine::unbounded();
        let spec = word_count_spec();
        assert!(matches!(engine.run_job(&spec), Err(MrError::NoSuchFile(_))));
    }

    #[test]
    fn disk_full_during_output() {
        // Input (60 B) fits; job output (~60 B more) exceeds the 80 B budget.
        let engine = Engine::new(SimHdfs::new(80, 1)).with_workers(2);
        engine.put_records("input", (0..10).map(|i| format!("word{i}"))).unwrap();
        let err = engine.run_job(&word_count_spec()).unwrap_err();
        assert!(err.is_disk_full(), "{err:?}");
        // Output file must not exist after a failed write.
        assert!(!engine.hdfs().lock().exists("out"));
    }

    #[test]
    fn replication_charged_on_write() {
        let engine = Engine::new(SimHdfs::new(u64::MAX / 4, 3));
        engine.put_records("input", ["a".to_string()]).unwrap();
        let stats = engine.run_job(&word_count_spec()).unwrap();
        assert_eq!(stats.hdfs_write_bytes, stats.output_text_bytes * 3);
    }

    #[test]
    fn multiple_inputs_tagged_by_mapper() {
        let engine = Engine::unbounded();
        engine.put_records("left", ["l1".to_string()]).unwrap();
        engine.put_records("right", ["r1".to_string()]).unwrap();
        let tag = |t: &'static str| {
            map_fn(move |w: String, out: &mut crate::job::TypedMapEmitter<'_, String, String>| {
                out.emit(&"k".to_string(), &format!("{t}:{w}"));
                Ok(())
            })
        };
        let reducer = reduce_fn(
            |_k: String, values: Vec<String>, out: &mut crate::job::TypedOutEmitter<'_, String>| {
                out.emit(&values.join(","))
            },
        );
        let spec = JobSpec::map_reduce(
            "join",
            vec![
                InputBinding { file: "left".into(), mapper: tag("L") },
                InputBinding { file: "right".into(), mapper: tag("R") },
            ],
            reducer,
            1,
            "out",
        );
        engine.run_job(&spec).unwrap();
        let out: Vec<String> = engine.read_records("out").unwrap();
        assert_eq!(out, vec!["L:l1,R:r1"]);
    }

    #[test]
    fn sim_seconds_filled() {
        let engine = word_count_engine(&["a", "b"]);
        let stats = engine.run_job(&word_count_spec()).unwrap();
        assert!(stats.sim_seconds >= stats.startup_seconds);
        assert!(stats.sim_seconds > 0.0);
    }

    #[test]
    fn combiner_shrinks_shuffle_without_changing_results() {
        use crate::job::combine_fn;
        let engine = word_count_engine(&["a"; 200]).with_workers(4);
        let baseline = engine.run_job(&word_count_spec()).unwrap();
        let base_out: Vec<String> = engine.read_records("out").unwrap();

        let combiner = combine_fn(
            |key: String,
             ones: Vec<u64>,
             out: &mut crate::job::TypedMapEmitter<'_, String, u64>| {
                out.emit(&key, &ones.iter().sum());
                Ok(())
            },
        );
        let spec = {
            let mut s = word_count_spec();
            s.outputs = vec!["out2".into()];
            s.with_combiner(combiner)
        };
        let combined = engine.run_job(&spec).unwrap();
        let comb_out: Vec<String> = engine.read_records("out2").unwrap();
        assert_eq!(base_out, comb_out, "combiner must not change results");
        assert!(combined.map_output_records < baseline.map_output_records);
        assert!(combined.map_output_bytes < baseline.map_output_bytes);
        assert_eq!(combined.pre_combine_records, baseline.map_output_records);
    }

    #[test]
    fn output_compression_scales_accounted_bytes() {
        let engine = word_count_engine(&["alpha", "beta", "alpha"]);
        let plain = engine.run_job(&word_count_spec()).unwrap();
        let spec = {
            let mut s = word_count_spec();
            s.outputs = vec!["out2".into()];
            s.with_output_compression(0.5)
        };
        let compressed = engine.run_job(&spec).unwrap();
        // Same records, half the accounted bytes (ceil per file).
        assert_eq!(compressed.output_records, plain.output_records);
        assert!(compressed.output_text_bytes <= plain.output_text_bytes / 2 + 1);
        // Readers of the compressed file are charged the compressed size.
        let file = engine.hdfs().lock().get("out2").unwrap();
        assert_eq!(file.text_bytes, compressed.output_text_bytes);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn rejects_bad_compression_ratio() {
        word_count_spec().with_output_compression(0.0);
    }

    #[test]
    fn broadcast_reaches_every_task_and_is_charged() {
        use crate::trace::MemorySink;
        // Map-only "join": each input word is annotated with the size of
        // the broadcast side file, read per task via the distributed cache.
        let engine = word_count_engine(&["a", "b", "c"]);
        engine.put_records("side", (0..4u64).collect::<Vec<_>>()).unwrap();
        let sink = MemorySink::new();
        let engine = engine.with_trace(sink.clone());
        let mapper = crate::job::map_only_fn_ctx(
            |ctx: &TaskContext, w: String, out: &mut crate::job::TypedOutEmitter<'_, String>| {
                let n = ctx.task_state(|| Ok(ctx.broadcast(0)?.records.len()))?;
                out.emit(&format!("{w}:{}", *n))
            },
        );
        let spec = JobSpec::map_only("bjoin", vec!["input".into()], mapper, "out")
            .with_broadcast("side")
            .with_estimated_output(6.0);
        let stats = engine.run_job(&spec).unwrap();
        let out: Vec<String> = engine.read_records("out").unwrap();
        assert_eq!(out, vec!["a:4", "b:4", "c:4"]);
        assert_eq!(stats.broadcast_files, 1);
        let side_bytes = engine.hdfs().lock().get("side").unwrap().text_bytes;
        assert_eq!(stats.broadcast_bytes, side_bytes);
        assert_eq!(stats.broadcast_ship_bytes, side_bytes * stats.map_tasks);
        // The ship is priced into the map phase at read bandwidth.
        let mut without = stats.clone();
        without.broadcast_ship_bytes = 0;
        let m = CostModel::zero_overhead();
        assert!(
            (m.map_phase_seconds(&stats) - m.map_phase_seconds(&without) - side_bytes as f64).abs()
                < 1e-9
        );
        // q-error: estimated 6 vs actual 3 -> 2.0.
        assert_eq!(stats.estimated_output_records, Some(6.0));
        assert!((stats.q_error().unwrap() - 2.0).abs() < 1e-9);
        // Both facts are visible as trace events.
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Broadcast { files: 1, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::CardinalityEstimate { actual: 3, .. })));
    }

    #[test]
    fn broadcast_over_budget_is_refused() {
        let engine = word_count_engine(&["a"]).with_broadcast_budget(4);
        engine.put_records("side", ["0123456789".to_string()]).unwrap();
        let mapper = crate::job::map_only_fn(
            |w: String, out: &mut crate::job::TypedOutEmitter<'_, String>| out.emit(&w),
        );
        let spec =
            JobSpec::map_only("big", vec!["input".into()], mapper, "out").with_broadcast("side");
        let err = engine.run_job(&spec).unwrap_err();
        assert!(err.is_broadcast_too_large(), "{err}");
        assert!(!engine.hdfs().lock().exists("out"));
    }

    #[test]
    fn task_context_broadcast_and_state_errors() {
        let ctx = TaskContext::new();
        assert!(ctx.broadcast(0).is_err());
        assert!(ctx.broadcast_files().is_empty());
        let v = ctx.task_state(|| Ok(41u64)).unwrap();
        assert_eq!(*v, 41);
        drop(v);
        // Cached: init does not run again.
        let v = ctx.task_state::<u64, _>(|| panic!("must not re-init")).unwrap();
        assert_eq!(*v, 41);
        drop(v);
        // Same slot, different type: typed error, not a panic.
        assert!(ctx.task_state::<String, _>(|| Ok(String::new())).is_err());
        // A failing init leaves the slot empty for a later retry.
        let ctx2 = TaskContext::new();
        assert!(ctx2.task_state::<u64, _>(|| Err(MrError::Op("boom".into()))).is_err());
        assert_eq!(*ctx2.task_state(|| Ok(7u64)).unwrap(), 7);
    }

    #[test]
    fn profiling_fills_histograms_and_memory_marks() {
        use crate::metrics::name;
        let engine = word_count_engine(&["a", "b", "a", "c", "a", "b"]).with_profiling(true);
        let stats = engine.run_job(&word_count_spec()).unwrap();
        let widths = stats.metrics.get(name::REDUCE_GROUP_WIDTH).expect("group widths");
        assert_eq!(widths.count(), stats.reduce_groups);
        assert_eq!(widths.sum(), stats.reduce_input_records);
        assert_eq!(widths.max(), 3); // "a" appears three times
        let parts = stats.metrics.get(name::SHUFFLE_PARTITION_BYTES).expect("partition bytes");
        assert_eq!(parts.count(), stats.reduce_tasks);
        assert_eq!(parts.sum(), stats.map_output_bytes);
        let recs = stats.metrics.get(name::RECORD_SHUFFLE_BYTES).expect("record sizes");
        assert_eq!(recs.count(), stats.map_output_records);
        assert_eq!(recs.sum(), stats.map_output_encoded_bytes);
        let map_t = stats.metrics.get(name::TASK_MAP_MICROS).expect("map task durations");
        assert_eq!(map_t.count(), stats.faults.map_tasks_scheduled);
        let red_t = stats.metrics.get(name::TASK_REDUCE_MICROS).expect("reduce task durations");
        assert_eq!(red_t.count(), stats.reduce_tasks);
        // Memory high-water marks are recorded even without profiling.
        assert!(stats.peak_arena_bytes > 0);
        assert!(stats.peak_task_live_bytes > 0);
        assert!(stats.peak_spill_entries > 0);

        let engine = word_count_engine(&["a", "b"]);
        let plain = engine.run_job(&word_count_spec()).unwrap();
        assert!(plain.metrics.is_empty(), "no histograms unless profiling");
        assert!(plain.peak_arena_bytes > 0);
    }

    #[test]
    fn profile_deterministic_across_worker_counts_and_faults() {
        // > 4096 records so the input splits into multiple chunks — the
        // regime where worker-dependent chunking would skew per-task
        // histograms and live-byte marks.
        let words: Vec<String> = (0..6000).map(|i| format!("word{}", i % 37)).collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let run = |workers: usize, faults: FaultConfig| {
            let engine = word_count_engine(&refs)
                .with_workers(workers)
                .with_profiling(true)
                .with_faults(faults);
            let stats = engine.run_job(&word_count_spec()).unwrap();
            format!("{stats:?}")
        };
        let baseline = run(1, FaultConfig::none());
        for workers in [4, 8] {
            assert_eq!(run(workers, FaultConfig::none()), baseline, "workers={workers}");
        }
        // Histograms and memory marks must also agree across worker counts
        // under fault injection (fault draws are schedule-independent).
        let faulty = FaultConfig { task_failure_probability: 0.2, seed: 7, ..FaultConfig::none() };
        let fault_base = run(1, faulty.clone());
        for workers in [4, 8] {
            assert_eq!(run(workers, faulty.clone()), fault_base, "faulty workers={workers}");
        }
        // The duration histograms themselves are fault-regime-invariant:
        // fault losses are priced into retry_seconds, not phase seconds.
        let clean_metrics = {
            let engine = word_count_engine(&refs).with_profiling(true);
            engine.run_job(&word_count_spec()).unwrap().metrics
        };
        let faulty_metrics = {
            let engine = word_count_engine(&refs).with_profiling(true).with_faults(faulty);
            engine.run_job(&word_count_spec()).unwrap().metrics
        };
        assert_eq!(clean_metrics, faulty_metrics);
    }

    #[test]
    fn trace_carries_memory_and_histogram_summaries() {
        use crate::trace::MemorySink;
        let sink = MemorySink::new();
        let engine =
            word_count_engine(&["a", "b", "a"]).with_profiling(true).with_trace(sink.clone());
        let stats = engine.run_job(&word_count_spec()).unwrap();
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::MemoryHighWater { peak_arena_bytes, .. }
                if *peak_arena_bytes == stats.peak_arena_bytes
        )));
        let summaries =
            events.iter().filter(|e| matches!(e, TraceEvent::HistogramSummary { .. })).count();
        assert_eq!(summaries, stats.metrics.iter().count());
        assert!(summaries >= 4, "map/reduce durations, partition bytes, record sizes");
    }

    #[test]
    fn shuffle_corruption_detected_restored_and_priced() {
        use crate::trace::MemorySink;
        let words: Vec<String> = (0..5000).map(|i| format!("word{}", i % 23)).collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let clean_out: Vec<String> = {
            let engine = word_count_engine(&refs);
            engine.run_job(&word_count_spec()).unwrap();
            engine.read_records("out").unwrap()
        };
        // Find a seed whose draws corrupt at least one map task.
        let faults =
            |seed| FaultConfig { corruption_probability: 0.5, seed, ..FaultConfig::none() };
        let mut hit = None;
        for seed in 0..32 {
            let sink = MemorySink::new();
            let engine =
                word_count_engine(&refs).with_faults(faults(seed)).with_trace(sink.clone());
            let stats = engine.run_job(&word_count_spec()).unwrap();
            assert_eq!(stats.faults.corrupt_refetches, stats.faults.corruptions_detected);
            let out: Vec<String> = engine.read_records("out").unwrap();
            assert_eq!(out, clean_out, "verification must hand reducers clean bytes");
            if stats.faults.corruptions_detected > 0 {
                assert!(stats.retry_seconds > 0.0, "refetches must be priced");
                let events = sink.events();
                assert!(events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::CorruptionDetected { site: "shuffle", .. })));
                assert!(events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Refetch { site: "shuffle", .. })));
                hit = Some(seed);
                break;
            }
        }
        let seed = hit.expect("some seed in 0..32 must corrupt a map task");
        // Counters and outputs are worker-count-invariant under corruption.
        let run = |workers: usize| {
            let engine = word_count_engine(&refs).with_workers(workers).with_faults(faults(seed));
            let stats = engine.run_job(&word_count_spec()).unwrap();
            let out: Vec<String> = engine.read_records("out").unwrap();
            (format!("{stats:?}"), out)
        };
        let baseline = run(1);
        for workers in [4, 8] {
            assert_eq!(run(workers), baseline, "workers={workers}");
        }
    }

    #[test]
    fn verification_off_lets_corruption_reach_the_job() {
        // The controlled demonstration of why the checksums are
        // load-bearing: same corruption draws, verification disabled.
        let words: Vec<String> = (0..5000).map(|i| format!("word{}", i % 23)).collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let clean_out: Vec<String> = {
            let engine = word_count_engine(&refs);
            engine.run_job(&word_count_spec()).unwrap();
            engine.read_records("out").unwrap()
        };
        let faults =
            |seed| FaultConfig { corruption_probability: 0.5, seed, ..FaultConfig::none() };
        let seed = (0..32)
            .find(|&seed| {
                let engine = word_count_engine(&refs).with_faults(faults(seed));
                engine.run_job(&word_count_spec()).unwrap().faults.corruptions_detected > 0
            })
            .expect("some seed in 0..32 must corrupt a map task");
        let engine = word_count_engine(&refs).with_faults(faults(seed)).with_verification(false);
        match engine.run_job(&word_count_spec()) {
            // Undetected, the flipped byte either silently changes the
            // output or breaks a record's framing mid-shuffle.
            Ok(stats) => {
                assert_eq!(stats.faults.corruptions_detected, 0);
                let out: Vec<String> = engine.read_records("out").unwrap();
                assert_ne!(out, clean_out, "silent corruption must alter the output");
            }
            Err(e) => assert!(matches!(e, MrError::Codec(_)), "{e:?}"),
        }
    }

    #[test]
    fn dfs_corruption_detected_and_reread_from_replica() {
        use crate::trace::MemorySink;
        let faults = FaultConfig { corruption_probability: 1.0, seed: 9, ..FaultConfig::none() };
        let sink = MemorySink::new();
        let engine = word_count_engine(&["a", "b", "a", "c"])
            .with_faults(faults.clone())
            .with_trace(sink.clone());
        let stats = engine.run_job(&word_count_spec()).unwrap();
        assert_eq!(stats.faults.dfs_refetches, 1, "one input file, one replica re-read");
        assert!(stats.faults.corruptions_detected >= 1);
        let mut out: Vec<String> = engine.read_records("out").unwrap();
        out.sort_unstable();
        assert_eq!(out, vec!["a:2", "b:1", "c:1"]);
        let events = sink.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::CorruptionDetected { site: "dfs", .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Refetch { site: "dfs", .. })));

        // With verification off the corrupted block flows into the job.
        let engine =
            word_count_engine(&["a", "b", "a", "c"]).with_faults(faults).with_verification(false);
        match engine.run_job(&word_count_spec()) {
            Ok(stats) => {
                assert_eq!(stats.faults.dfs_refetches, 0);
                let mut bad_out: Vec<String> = engine.read_records("out").unwrap();
                bad_out.sort_unstable();
                assert_ne!(bad_out, out);
            }
            Err(e) => assert!(matches!(e, MrError::Codec(_)), "{e:?}"),
        }
    }

    #[test]
    fn skip_bad_records_quarantines_within_budget() {
        use crate::codec::Rec;
        use crate::trace::MemorySink;
        let bad1 = vec![2, 0, 0, 0, 0xff, 0xfe]; // length-prefixed invalid UTF-8
        let bad2 = vec![9, 0, 0, 0, 0xff]; // claims 9 payload bytes, has 1
        let mut records = Vec::new();
        for w in ["alpha", "beta", "alpha"] {
            records.push(w.to_string().to_bytes());
        }
        records.insert(1, bad1.clone());
        records.push(bad2.clone());
        let sink = MemorySink::new();
        let engine =
            Engine::unbounded().with_workers(4).with_skip_bad_records(8).with_trace(sink.clone());
        let file = DfsFile { text_bytes: 24, records, ..DfsFile::default() };
        engine.hdfs().lock().put("input", file).unwrap();
        let stats = engine.run_job(&word_count_spec()).unwrap();
        assert_eq!(stats.records_skipped, 2);
        let mut out: Vec<String> = engine.read_records("out").unwrap();
        out.sort_unstable();
        assert_eq!(out, vec!["alpha:2", "beta:1"]);
        // The raw undecodable records land in the side file, in task order.
        let q = engine.hdfs().lock().get("wordcount.quarantine").unwrap();
        assert_eq!(q.records, vec![bad1, bad2]);
        assert!(sink
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::RecordSkipped { records: 2, .. })));
    }

    #[test]
    fn skip_budget_exhaustion_and_default_failfast() {
        use crate::codec::Rec;
        let bad = vec![2, 0, 0, 0, 0xff, 0xfe];
        let records = vec!["alpha".to_string().to_bytes(), bad.clone(), bad.clone()];
        let seeded = |engine: Engine| {
            let file = DfsFile { text_bytes: 9, records: records.clone(), ..DfsFile::default() };
            engine.hdfs().lock().put("input", file).unwrap();
            engine
        };
        // Budget 1, two bad records in one task: typed exhaustion error.
        let engine = seeded(Engine::unbounded().with_skip_bad_records(1));
        let err = engine.run_job(&word_count_spec()).unwrap_err();
        assert!(err.is_skip_budget_exhausted(), "{err:?}");
        assert!(!engine.hdfs().lock().exists("out"));
        assert!(!engine.hdfs().lock().exists("wordcount.quarantine"));
        // Without skip mode the first bad record is a hard codec failure.
        let engine = seeded(Engine::unbounded());
        let err = engine.run_job(&word_count_spec()).unwrap_err();
        assert!(matches!(err, MrError::Codec(_)), "{err:?}");
    }

    #[test]
    fn skip_bad_records_in_map_only_jobs() {
        use crate::codec::Rec;
        let bad = vec![9, 0, 0, 0, 0xff];
        let records = vec!["one".to_string().to_bytes(), bad.clone(), "two".to_string().to_bytes()];
        let engine = Engine::unbounded().with_skip_bad_records(4);
        let file = DfsFile { text_bytes: 8, records, ..DfsFile::default() };
        engine.hdfs().lock().put("input", file).unwrap();
        let mapper = crate::job::map_only_fn(
            |w: String, out: &mut crate::job::TypedOutEmitter<'_, String>| {
                out.emit(&w.to_uppercase())
            },
        );
        let spec = JobSpec::map_only("upper", vec!["input".into()], mapper, "out");
        let stats = engine.run_job(&spec).unwrap();
        assert_eq!(stats.records_skipped, 1);
        let out: Vec<String> = engine.read_records("out").unwrap();
        assert_eq!(out, vec!["ONE", "TWO"]);
        let q = engine.hdfs().lock().get("upper.quarantine").unwrap();
        assert_eq!(q.records, vec![bad]);
    }

    #[test]
    fn empty_input_is_fine() {
        let engine = Engine::unbounded();
        engine.put_records::<String>("input", []).unwrap();
        let stats = engine.run_job(&word_count_spec()).unwrap();
        assert_eq!(stats.output_records, 0);
        assert!(engine.hdfs().lock().exists("out"));
    }
}
