//! Simulated HDFS: an in-memory distributed file system with replication
//! accounting and a bounded disk budget.
//!
//! The paper's clusters had only 20 GB of disk per node; with a replication
//! factor of 2 the redundant intermediate results of relational plans
//! exceeded the budget and jobs failed. [`SimHdfs`] reproduces exactly that
//! failure mode: every stored file consumes `text_bytes × replication` of
//! the configured capacity, and a write that would exceed capacity fails
//! with [`MrError::DiskFull`].

use crate::error::MrError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One file in the simulated DFS.
///
/// Records are stored in their compact binary encoding (see
/// [`crate::codec::Rec`]), but the *accounted* size is `text_bytes` — the
/// size the file would have as Hadoop text rows.
#[derive(Debug, Clone, Default)]
pub struct DfsFile {
    /// Encoded records.
    pub records: Vec<Vec<u8>>,
    /// Simulated text size of the file in bytes.
    pub text_bytes: u64,
    /// Replication factor this file was written with.
    pub replication: u32,
    /// Block checksum recorded at commit time ([`SimHdfs::put`] computes
    /// it; whatever the caller set is overwritten). Readers verify reads
    /// against it, HDFS-block-checksum style.
    pub checksum: u64,
}

impl DfsFile {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Disk consumption including replication.
    pub fn disk_bytes(&self) -> u64 {
        self.text_bytes * u64::from(self.replication)
    }

    /// Total encoded payload bytes across all records — the address space
    /// the fault injector draws corruption offsets from.
    pub fn payload_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len() as u64).sum()
    }

    /// Checksum of the file's contents: each record is one framed block,
    /// so both record bytes and record boundaries are covered.
    pub fn compute_checksum(&self) -> u64 {
        let mut c = crate::hash::BlockChecksum::default();
        for rec in &self.records {
            c.update(rec);
        }
        c.finish()
    }

    /// Recompute the checksum and compare against the one recorded at
    /// commit. `Err((expected, actual))` on mismatch.
    pub fn verify(&self) -> Result<(), (u64, u64)> {
        let actual = self.compute_checksum();
        if actual == self.checksum {
            Ok(())
        } else {
            Err((self.checksum, actual))
        }
    }

    /// Flip one bit of payload byte `offset` (record-concatenation order)
    /// without touching the committed checksum — the injector's model of
    /// at-rest block corruption. Out-of-range offsets are a no-op.
    pub fn flip_byte(&mut self, offset: u64) {
        let mut remaining = offset;
        for rec in &mut self.records {
            if remaining < rec.len() as u64 {
                rec[remaining as usize] ^= 0x01;
                return;
            }
            remaining -= rec.len() as u64;
        }
    }
}

/// The simulated cluster file system.
#[derive(Debug)]
pub struct SimHdfs {
    files: BTreeMap<String, Arc<DfsFile>>,
    /// Total disk capacity across the cluster in bytes. `u64::MAX` means
    /// effectively unbounded.
    capacity: u64,
    /// Default replication factor for new files (`dfs.replication`).
    default_replication: u32,
    /// High-water mark of disk usage ever observed.
    peak_usage: u64,
}

impl SimHdfs {
    /// An unbounded DFS with replication factor 1 (unit-test friendly).
    pub fn unbounded() -> Self {
        SimHdfs::new(u64::MAX, 1)
    }

    /// Create a DFS with the given total capacity and default replication.
    pub fn new(capacity: u64, default_replication: u32) -> Self {
        assert!(default_replication >= 1, "replication must be >= 1");
        SimHdfs { files: BTreeMap::new(), capacity, default_replication, peak_usage: 0 }
    }

    /// Convenience: capacity expressed as `nodes × bytes-per-node`, the way
    /// the paper describes its clusters (e.g. 60 nodes × 20 GB).
    pub fn with_cluster(nodes: u32, bytes_per_node: u64, replication: u32) -> Self {
        SimHdfs::new(u64::from(nodes) * bytes_per_node, replication)
    }

    /// Default replication factor.
    pub fn default_replication(&self) -> u32 {
        self.default_replication
    }

    /// Current disk usage (text bytes × replication, summed over files).
    pub fn usage(&self) -> u64 {
        self.files.values().map(|f| f.disk_bytes()).sum()
    }

    /// Highest disk usage ever reached.
    pub fn peak_usage(&self) -> u64 {
        self.peak_usage
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity.saturating_sub(self.usage())
    }

    /// Store a file with the default replication factor.
    pub fn put(&mut self, name: &str, file: DfsFile) -> Result<(), MrError> {
        self.put_with_replication(name, file, self.default_replication)
    }

    /// Store a file with an explicit replication factor.
    pub fn put_with_replication(
        &mut self,
        name: &str,
        mut file: DfsFile,
        replication: u32,
    ) -> Result<(), MrError> {
        if self.files.contains_key(name) {
            return Err(MrError::OutputExists(name.to_string()));
        }
        file.replication = replication.max(1);
        file.checksum = file.compute_checksum();
        let needed = file.disk_bytes();
        let available = self.available();
        if needed > available {
            return Err(MrError::DiskFull { file: name.to_string(), needed, available });
        }
        self.files.insert(name.to_string(), Arc::new(file));
        self.peak_usage = self.peak_usage.max(self.usage());
        Ok(())
    }

    /// Fetch a file by name. The returned handle is cheap to clone and
    /// can be read outside the DFS lock.
    pub fn get(&self, name: &str) -> Result<Arc<DfsFile>, MrError> {
        self.files.get(name).cloned().ok_or_else(|| MrError::NoSuchFile(name.to_string()))
    }

    /// True if a file with this name exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Delete a file, freeing its space. Deleting a missing file is an
    /// error (catching workflow-cleanup bugs early).
    pub fn delete(&mut self, name: &str) -> Result<Arc<DfsFile>, MrError> {
        self.files.remove(name).ok_or_else(|| MrError::NoSuchFile(name.to_string()))
    }

    /// Names of all stored files, sorted.
    pub fn file_names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(bytes: u64) -> DfsFile {
        DfsFile {
            records: vec![vec![0u8; 4]],
            text_bytes: bytes,
            replication: 1,
            ..DfsFile::default()
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let mut fs = SimHdfs::unbounded();
        fs.put("a", file(100)).unwrap();
        assert_eq!(fs.get("a").unwrap().text_bytes, 100);
        assert!(fs.exists("a"));
        assert!(!fs.exists("b"));
    }

    #[test]
    fn refuses_overwrite() {
        let mut fs = SimHdfs::unbounded();
        fs.put("a", file(1)).unwrap();
        assert!(matches!(fs.put("a", file(1)), Err(MrError::OutputExists(_))));
    }

    #[test]
    fn replication_multiplies_usage() {
        let mut fs = SimHdfs::new(1000, 2);
        fs.put("a", file(100)).unwrap();
        assert_eq!(fs.usage(), 200);
        fs.put_with_replication("b", file(100), 3).unwrap();
        assert_eq!(fs.usage(), 500);
    }

    #[test]
    fn disk_full_failure() {
        let mut fs = SimHdfs::new(250, 2);
        fs.put("a", file(100)).unwrap(); // 200 used
        let err = fs.put("b", file(100)).unwrap_err(); // needs 200, only 50 left
        match err {
            MrError::DiskFull { needed, available, .. } => {
                assert_eq!(needed, 200);
                assert_eq!(available, 50);
            }
            other => panic!("expected DiskFull, got {other:?}"),
        }
        // The failed write must not consume space.
        assert_eq!(fs.usage(), 200);
    }

    #[test]
    fn delete_frees_space() {
        let mut fs = SimHdfs::new(100, 1);
        fs.put("a", file(100)).unwrap();
        assert!(fs.put("b", file(1)).is_err());
        fs.delete("a").unwrap();
        fs.put("b", file(1)).unwrap();
        assert!(fs.delete("missing").is_err());
    }

    #[test]
    fn peak_usage_tracks_high_water() {
        let mut fs = SimHdfs::new(1000, 1);
        fs.put("a", file(300)).unwrap();
        fs.put("b", file(200)).unwrap();
        fs.delete("a").unwrap();
        assert_eq!(fs.usage(), 200);
        assert_eq!(fs.peak_usage(), 500);
    }

    #[test]
    fn cluster_constructor() {
        let fs = SimHdfs::with_cluster(60, 20 * 1024, 2);
        assert_eq!(fs.capacity(), 60 * 20 * 1024);
        assert_eq!(fs.default_replication(), 2);
    }

    #[test]
    fn commit_checksums_and_verify_catches_flips() {
        let mut fs = SimHdfs::unbounded();
        let stored = DfsFile {
            records: vec![b"alpha".to_vec(), b"beta".to_vec()],
            text_bytes: 9,
            replication: 1,
            checksum: 0xBAD, // caller-set garbage is overwritten at commit
        };
        fs.put("a", stored).unwrap();
        let arc = fs.get("a").unwrap();
        assert_eq!(arc.verify(), Ok(()));
        assert_ne!(arc.checksum, 0xBAD);

        // Flip every payload byte in turn: each flip is detected, and
        // flipping back restores a verifying file.
        let mut f = (*arc).clone();
        assert_eq!(f.payload_bytes(), 9);
        for off in 0..f.payload_bytes() {
            f.flip_byte(off);
            assert!(f.verify().is_err(), "flip at {off} undetected");
            f.flip_byte(off);
        }
        assert_eq!(f.verify(), Ok(()));
        // Record boundaries are framed: ["alpha","beta"] != ["alphabeta"].
        let merged = DfsFile { records: vec![b"alphabeta".to_vec()], ..DfsFile::default() };
        assert_ne!(merged.compute_checksum(), f.compute_checksum());
    }
}
