//! Deterministic, mergeable distribution metrics.
//!
//! End-of-run sums ([`crate::JobStats`], [`crate::OpCounters`]) answer *how
//! much*; this module answers *how it was distributed* — task-duration
//! tails, shuffle partition skew, record sizes, β-unnest group widths —
//! without giving up the engine's core invariant: **worker-count
//! determinism**. A [`Histogram`] has fixed power-of-two bucket boundaries
//! and integer state only, so merging per-task histograms in any grouping
//! or order produces bit-identical results, and quantile queries are pure
//! functions of the merged state. The same holds across fault regimes:
//! recording happens on the deterministic data plane (records, bytes,
//! group widths) and on fault-free cost-model phase times, never on
//! wall-clock measurements.
//!
//! ## Bucket scheme
//!
//! Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i − 1]` (i.e. `bucket(v) = 64 − v.leading_zeros()`); 65
//! buckets cover the full `u64` range. Boundaries are fixed — they never
//! adapt to the data — which is what makes merge commutative/associative
//! bucket-wise and quantiles independent of merge order. Relative quantile
//! error is bounded by the bucket width: a reported quantile is the
//! bucket's inclusive upper bound (clamped to the recorded maximum), at
//! most 2× the true value.
//!
//! A [`MetricsRegistry`] keys histograms by `&'static str` metric names
//! (the [`name`] module), mirroring how [`crate::OpCounters`] keys sums.

use crate::trace::{escape_json_into, JsonObject};
use std::collections::BTreeMap;

/// Metric-name constants recorded by the engine. Operator layers (e.g.
/// `ntga-core`) declare their own names next to their counter names.
pub mod name {
    /// Per-map-task cost-model duration, in rounded microseconds.
    pub const TASK_MAP_MICROS: &str = "task.map.micros";
    /// Per-reduce-task cost-model duration, in rounded microseconds.
    pub const TASK_REDUCE_MICROS: &str = "task.reduce.micros";
    /// Shuffle text bytes routed to one reduce partition.
    pub const SHUFFLE_PARTITION_BYTES: &str = "shuffle.partition.bytes";
    /// Encoded (wire) size of one shuffled record, key + value bytes.
    pub const RECORD_SHUFFLE_BYTES: &str = "record.shuffle.bytes";
    /// Number of values in one reduce group (reduce-side key fanout).
    pub const REDUCE_GROUP_WIDTH: &str = "reduce.group.width";
    /// Entries in one map-side-sorted spill bucket (one sorted run).
    /// Recorded only under the radix strategy, which sorts map-side.
    ///
    /// Sort-work histograms record deterministic quantities (entries,
    /// runs), not wall-clock time: profiling output must stay bit-
    /// identical across worker counts and fault regimes, and wall-clock
    /// is neither. Wall-clock sort time lives in the `sort_only`
    /// Criterion bench instead.
    pub const SORT_MAP_RUN_ENTRIES: &str = "sort.map.run.entries";
    /// Index entries one reduce partition brings into canonical order
    /// (by k-way merge or full sort; see `SORT_MAP_RUN_ENTRIES` for why
    /// this is work, not time).
    pub const SORT_REDUCE_ENTRIES: &str = "sort.reduce.entries";
    /// Sorted runs available to one reduce partition's k-way merge
    /// (0 under the comparison strategy: nothing arrives sorted).
    pub const SORT_MERGE_RUNS: &str = "sort.merge.runs";
}

/// Number of buckets: one for 0, one per power of two up to `2^63`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value (see the module docs for the scheme).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (the value a quantile in that
/// bucket reports, before clamping to the recorded max).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-boundary log2 histogram over `u64` values.
///
/// All state is integral and all boundaries are fixed, so `merge` is
/// commutative and associative and two histograms built from the same
/// multiset of values — in any recording order, via any merge tree — are
/// bit-identical. See the module docs for the determinism argument.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The fixed 65-bucket array is noise in `{:?}` dumps (and in the
        // engine's determinism tests, which compare `format!("{stats:?}")`);
        // the summary fields pin the distribution just as hard.
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min_or_zero())
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .finish()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a duration in seconds as rounded non-negative microseconds
    /// (the resolution task-duration metrics use; negative and non-finite
    /// inputs clamp to 0).
    #[inline]
    pub fn record_seconds(&mut self, seconds: f64) {
        let micros = seconds * 1e6;
        self.record(if micros.is_finite() && micros > 0.0 { micros.round() as u64 } else { 0 });
    }

    /// Fold another histogram in. Commutative and associative.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) as the upper bound of the bucket
    /// holding the value of rank `⌈q·count⌉`, clamped to the recorded
    /// max — a deterministic integer computation with ≤ 2× relative error.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // rank in 1..=count, computed in integers: ceil(q * count) via
        // rounding the (exactly representable for any realistic count)
        // f64 product up.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`Histogram::quantile`]).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`Histogram::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Iterate the non-empty buckets as `(bucket upper bound, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| (bucket_upper(i), n))
    }

    /// Render as a JSON object: summary fields plus the sparse bucket list
    /// (`[[upper_bound, count], ...]`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.u64("count", self.count);
        o.u64("sum", self.sum);
        o.u64("min", self.min_or_zero());
        o.u64("max", self.max);
        o.u64("p50", self.p50());
        o.u64("p95", self.p95());
        o.u64("p99", self.p99());
        let mut b = String::from("[");
        for (i, (upper, n)) in self.buckets().enumerate() {
            if i > 0 {
                b.push(',');
            }
            b.push_str(&format!("[{upper},{n}]"));
        }
        b.push(']');
        o.raw("buckets", &b);
        o.finish()
    }
}

/// A registry of named [`Histogram`]s, keyed like [`crate::OpCounters`]
/// (static metric names, `BTreeMap` for deterministic iteration and
/// rendering order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value into the named histogram.
    #[inline]
    pub fn record(&mut self, name: &'static str, v: u64) {
        self.metrics.entry(name).or_default().record(v);
    }

    /// Record a duration in seconds (see [`Histogram::record_seconds`]).
    #[inline]
    pub fn record_seconds(&mut self, name: &'static str, seconds: f64) {
        self.metrics.entry(name).or_default().record_seconds(seconds);
    }

    /// The named histogram, if anything was recorded under it.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.metrics.get(name)
    }

    /// Fold another registry in, histogram-by-histogram.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, h) in &other.metrics {
            self.metrics.entry(name).or_default().merge(h);
        }
    }

    /// True when no histogram has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate `(name, histogram)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.metrics.iter().map(|(k, v)| (*k, v))
    }

    /// Render as one JSON object mapping metric names to
    /// [`Histogram::to_json`] objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, h)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json_into(name, &mut out);
            out.push_str("\":");
            out.push_str(&h.to_json());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_json;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's upper bound maps back into that bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn summary_fields_and_quantiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.p50(), h.p99(), h.max(), h.min_or_zero()), (0, 0, 0, 0));
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min_or_zero(), 0);
        assert_eq!(h.max(), 1000);
        // rank(0.5 * 6) = 3 -> third value (2), bucket [2,3] -> upper 3.
        assert_eq!(h.p50(), 3);
        // p99 -> rank 6 -> bucket [512,1023], clamped to max 1000.
        assert_eq!(h.p99(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_upper_bound_is_at_most_double() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for q in [0.5f64, 0.9, 0.95, 0.99, 1.0] {
            let true_v = (q * 10_000.0).ceil() as u64;
            let est = h.quantile(q);
            assert!(est >= true_v, "q={q}: {est} < true {true_v}");
            assert!(est < true_v * 2, "q={q}: {est} >= 2x true {true_v}");
        }
    }

    #[test]
    fn merge_is_order_invariant_and_matches_single_recorder() {
        let values: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9e37_79b9) % 10_000).collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        // Split into 1, 4 and 8 shards, merge in forward and reverse order.
        for shards in [1usize, 4, 8] {
            let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
            for (i, &v) in values.iter().enumerate() {
                parts[i % shards].record(v);
            }
            for reverse in [false, true] {
                let mut merged = Histogram::new();
                let order: Vec<&Histogram> =
                    if reverse { parts.iter().rev().collect() } else { parts.iter().collect() };
                for p in order {
                    merged.merge(p);
                }
                assert_eq!(merged, whole, "shards={shards} reverse={reverse}");
                assert_eq!(format!("{merged:?}"), format!("{whole:?}"));
            }
        }
    }

    #[test]
    fn record_seconds_rounds_micros() {
        let mut h = Histogram::new();
        h.record_seconds(1.5); // 1_500_000 us
        h.record_seconds(0.0000004); // rounds to 0
        h.record_seconds(-3.0); // clamps to 0
        h.record_seconds(f64::NAN); // clamps to 0
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1_500_000);
        assert_eq!(h.min_or_zero(), 0);
    }

    #[test]
    fn registry_records_merges_and_renders() {
        let mut a = MetricsRegistry::new();
        assert!(a.is_empty());
        a.record(name::REDUCE_GROUP_WIDTH, 3);
        a.record(name::REDUCE_GROUP_WIDTH, 5);
        a.record_seconds(name::TASK_MAP_MICROS, 0.25);
        let mut b = MetricsRegistry::new();
        b.record(name::REDUCE_GROUP_WIDTH, 7);
        a.merge(&b);
        assert_eq!(a.get(name::REDUCE_GROUP_WIDTH).unwrap().count(), 3);
        assert_eq!(a.get(name::TASK_MAP_MICROS).unwrap().max(), 250_000);
        assert!(a.get("no.such.metric").is_none());
        assert_eq!(a.iter().count(), 2);
        let json = a.to_json();
        validate_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        assert!(json.contains("\"reduce.group.width\""), "{json}");
        assert!(json.contains("\"buckets\":[["), "{json}");
        assert_eq!(MetricsRegistry::new().to_json(), "{}");
    }

    #[test]
    fn histogram_json_is_valid_and_sparse() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(9);
        h.record(9);
        let json = h.to_json();
        validate_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        // Bucket 0 (upper 0, count 1) and bucket [8,15] (upper 15, count 2).
        assert!(json.contains("\"buckets\":[[0,1],[15,2]]"), "{json}");
        assert!(json.contains("\"count\":3"), "{json}");
    }
}
