//! Deterministic fault injection: task failures, node loss, stragglers.
//!
//! Hadoop materializes and replicates every job's output *because tasks
//! and nodes fail*; the paper's cost analysis (intermediate HDFS writes ×
//! replication) exists precisely to pay for this fault tolerance. The
//! engine therefore models the failure side too:
//!
//! * **task-attempt failure** — map/reduce task attempts fail with a
//!   configured probability, and the engine retries each task up to a
//!   bounded number of attempts (Hadoop's `mapreduce.map.maxattempts`,
//!   default 4) before failing the job;
//! * **node loss** — a simulated node dies during a job's shuffle; the
//!   completed map outputs it held (map output lives on the node's local
//!   disk until reducers fetch it) are lost, and the affected map tasks
//!   are re-executed. Reduce output is committed to the DFS, so node loss
//!   never corrupts results — it only costs re-executed work;
//! * **stragglers** — selected tasks run `straggler_slowdown ×` their
//!   normal time. With *speculative execution* enabled, a backup attempt
//!   launches once a straggler exceeds a configured multiple of the
//!   typical task time; the first finisher wins and the loser's work is
//!   wasted (charged, not lost).
//!
//! Injection is deterministic: every decision is a pure function of
//! `(seed, stream, task, attempt)` via a splitmix64-style hash, so runs
//! are reproducible and results must be bit-identical with and without
//! injected failures — which the chaos tests assert. Node-to-task
//! assignment uses the configured [`FaultConfig::nodes`] count (not the
//! engine's worker-thread count), so fault statistics are independent of
//! the host's parallelism.

use serde::{Deserialize, Serialize};

/// Hash-stream tag for task-attempt failures (implicit: stream 0 keeps
/// the original attempt-failure hash stable).
const STREAM_NODE_LOSS: u64 = 0x4E4F_4445; // "NODE"
/// Hash-stream tag for straggler selection.
const STREAM_STRAGGLER: u64 = 0x534C_4F57; // "SLOW"
/// Hash-stream tag for data corruption (bit flips in map output and
/// at-rest DFS blocks).
const STREAM_CORRUPTION: u64 = 0x4352_5054; // "CRPT"

/// Failure-injection configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability in `[0, 1)` that any single task attempt fails.
    pub task_failure_probability: f64,
    /// Maximum attempts per task before the job is failed.
    pub max_attempts: u32,
    /// Seed making the injection deterministic.
    pub seed: u64,
    /// Probability in `[0, 1)` that any given simulated node dies during a
    /// job's map→reduce handoff, losing its completed map outputs.
    pub node_loss_probability: f64,
    /// Number of simulated nodes map tasks are spread over (`task % nodes`).
    /// Deliberately decoupled from the engine's worker-thread count so
    /// fault statistics do not depend on host parallelism.
    pub nodes: u32,
    /// Probability in `[0, 1)` that any given task is a straggler.
    pub straggler_probability: f64,
    /// Slowdown factor a straggler runs at (≥ 1; e.g. 6.0 = six times the
    /// normal task time).
    pub straggler_slowdown: f64,
    /// Speculative-execution threshold: a backup attempt launches when a
    /// task exceeds this multiple of the typical task time. `0.0` disables
    /// speculation (backups never launch; stragglers run to completion).
    pub speculative_multiple: f64,
    /// Probability in `[0, 1)` that any given data unit (a map task's
    /// shuffle output, or a DFS file read) is silently corrupted — a
    /// deterministic bit flip the checksummed data plane must catch.
    pub corruption_probability: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            task_failure_probability: 0.0,
            max_attempts: 4,
            seed: 0,
            node_loss_probability: 0.0,
            nodes: 8,
            straggler_probability: 0.0,
            straggler_slowdown: 6.0,
            speculative_multiple: 0.0,
            corruption_probability: 0.0,
        }
    }
}

impl FaultConfig {
    /// No injected failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail each attempt with probability `p` under `seed`.
    pub fn with_probability(p: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "probability must be in [0, 1)");
        FaultConfig { task_failure_probability: p, seed, ..Self::default() }
    }

    /// Set the per-task attempt budget (Hadoop's
    /// `mapreduce.map.maxattempts`; the default is 4).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        self.max_attempts = max_attempts;
        self
    }

    /// Kill each simulated node with probability `p` per job.
    pub fn with_node_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "probability must be in [0, 1)");
        self.node_loss_probability = p;
        self
    }

    /// Set the simulated node count map tasks are assigned over.
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        assert!(nodes >= 1, "need at least one node");
        self.nodes = nodes;
        self
    }

    /// Make each task a straggler with probability `p`, running at
    /// `slowdown ×` its normal time.
    pub fn with_stragglers(mut self, p: f64, slowdown: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "probability must be in [0, 1)");
        assert!(slowdown >= 1.0, "slowdown must be >= 1");
        self.straggler_probability = p;
        self.straggler_slowdown = slowdown;
        self
    }

    /// Enable speculative execution: launch a backup attempt once a task
    /// exceeds `multiple ×` the typical task time.
    pub fn with_speculation(mut self, multiple: f64) -> Self {
        assert!(multiple > 0.0, "speculation threshold must be positive");
        self.speculative_multiple = multiple;
        self
    }

    /// Corrupt each data unit with probability `p`.
    pub fn with_corruption(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "probability must be in [0, 1)");
        self.corruption_probability = p;
        self
    }

    /// True when any fault channel is active.
    pub fn any(&self) -> bool {
        self.task_failure_probability > 0.0
            || self.node_loss_probability > 0.0
            || self.straggler_probability > 0.0
            || self.corruption_probability > 0.0
    }

    /// Raw splitmix64-style hash bits of `(seed, a, b)`.
    fn bits(&self, a: u64, b: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(a)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(b);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x
    }

    /// Splitmix64-style hash of `(seed, a, b)` mapped to `[0, 1)`.
    fn unit(&self, a: u64, b: u64) -> f64 {
        (self.bits(a, b) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True if attempt `attempt` of task `task_id` should fail.
    ///
    /// Deterministic splitmix64-style hash of `(seed, task, attempt)`
    /// mapped to `[0, 1)` and compared against the probability.
    pub fn attempt_fails(&self, task_id: u64, attempt: u32) -> bool {
        if self.task_failure_probability <= 0.0 {
            return false;
        }
        self.unit(task_id, u64::from(attempt)) < self.task_failure_probability
    }

    /// Number of attempts task `task_id` needs before succeeding, or
    /// `None` if it exhausts `max_attempts`.
    pub fn attempts_needed(&self, task_id: u64) -> Option<u32> {
        (1..=self.max_attempts).find(|&attempt| !self.attempt_fails(task_id, attempt))
    }

    /// True if simulated node `node` dies during the job identified by
    /// `job_salt` (the engine's per-job/phase hash base).
    pub fn node_lost(&self, job_salt: u64, node: u32) -> bool {
        if self.node_loss_probability <= 0.0 {
            return false;
        }
        self.unit(job_salt ^ STREAM_NODE_LOSS.rotate_left(32), u64::from(node))
            < self.node_loss_probability
    }

    /// True if task `task_id` is a straggler.
    pub fn is_straggler(&self, task_id: u64) -> bool {
        if self.straggler_probability <= 0.0 {
            return false;
        }
        self.unit(task_id ^ STREAM_STRAGGLER.rotate_left(32), 1) < self.straggler_probability
    }

    /// True if the data unit identified by `(salt, unit_id)` is silently
    /// corrupted. `salt` is the engine's per-job/phase hash base (or a
    /// file-name hash for at-rest DFS blocks), `unit_id` the producing
    /// task or block index — the same identity scheme as node loss, so
    /// corruption draws are independent of worker count.
    pub fn data_corrupted(&self, salt: u64, unit_id: u64) -> bool {
        if self.corruption_probability <= 0.0 {
            return false;
        }
        self.unit(salt ^ STREAM_CORRUPTION.rotate_left(32), unit_id) < self.corruption_probability
    }

    /// Deterministic byte offset (into a buffer of `len` bytes) at which
    /// the corruption of unit `(salt, unit_id)` flips a bit. Returns
    /// `None` for an empty buffer (nothing to flip).
    pub fn corruption_offset(&self, salt: u64, unit_id: u64, len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        // A second draw (unit_id rotated) decorrelates the offset from
        // the corrupted-or-not decision.
        let raw = self.bits(salt ^ STREAM_CORRUPTION.rotate_left(32), unit_id.rotate_left(17));
        Some((raw % len as u64) as usize)
    }

    /// Outcome of one straggler task under this config:
    /// `(effective completion multiple, backup launched, backup won)`.
    ///
    /// Without speculation the straggler runs to completion at its full
    /// slowdown. With speculation, a backup launches once the task passes
    /// `speculative_multiple ×` the typical task time and finishes one
    /// task-time later; the first finisher wins, so the effective
    /// completion multiple is `min(slowdown, speculative_multiple + 1)`.
    pub fn straggler_outcome(&self) -> (f64, bool, bool) {
        let slow = self.straggler_slowdown.max(1.0);
        if self.speculative_multiple > 0.0 && slow > self.speculative_multiple {
            let backup_finish = self.speculative_multiple + 1.0;
            (slow.min(backup_finish), true, backup_finish < slow)
        } else {
            (slow, false, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fails() {
        let f = FaultConfig::none();
        for t in 0..100 {
            assert_eq!(f.attempts_needed(t), Some(1));
        }
        assert!(!f.any());
        assert!(!f.node_lost(12345, 0));
        assert!(!f.is_straggler(7));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = FaultConfig::with_probability(0.5, 7);
        let b = FaultConfig::with_probability(0.5, 7);
        for t in 0..200 {
            assert_eq!(a.attempts_needed(t), b.attempts_needed(t));
        }
        let c = FaultConfig::with_probability(0.5, 8);
        assert!((0..200).any(|t| a.attempts_needed(t) != c.attempts_needed(t)));
    }

    #[test]
    fn probability_roughly_respected() {
        let f = FaultConfig::with_probability(0.3, 42);
        let failures = (0..10_000).filter(|&t| f.attempt_fails(t, 1)).count();
        assert!((2_500..3_500).contains(&failures), "got {failures}");
    }

    #[test]
    fn high_probability_exhausts_attempts() {
        let f = FaultConfig {
            task_failure_probability: 0.95,
            max_attempts: 2,
            seed: 1,
            ..FaultConfig::default()
        };
        let exhausted = (0..1000).filter(|&t| f.attempts_needed(t).is_none()).count();
        // ~0.95^2 ≈ 90 % of tasks exhaust two attempts.
        assert!(exhausted > 800, "{exhausted}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_certain_failure() {
        FaultConfig::with_probability(1.0, 0);
    }

    #[test]
    fn max_attempts_builder() {
        let f = FaultConfig::with_probability(0.9, 3).with_max_attempts(1);
        assert_eq!(f.max_attempts, 1);
        // With one attempt, every first-attempt failure is exhaustion.
        let exhausted = (0..1000).filter(|&t| f.attempts_needed(t).is_none()).count();
        assert!((800..1000).contains(&exhausted), "{exhausted}");
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn rejects_zero_attempts() {
        let _ = FaultConfig::none().with_max_attempts(0);
    }

    #[test]
    fn node_loss_rate_and_independence() {
        let f = FaultConfig::none().with_node_loss(0.25).with_nodes(4);
        assert!(f.any());
        let losses = (0..10_000u64).filter(|&salt| f.node_lost(salt, 1)).count();
        assert!((2_000..3_000).contains(&losses), "{losses}");
        // Different nodes of the same job decide independently.
        assert!((0..200u64).any(|salt| f.node_lost(salt, 0) != f.node_lost(salt, 1)));
        // The node-loss stream is independent of the attempt-failure
        // stream: with only node loss configured, attempts never fail.
        assert_eq!(f.attempts_needed(9), Some(1));
    }

    #[test]
    fn straggler_selection_and_outcome() {
        let f = FaultConfig::none().with_stragglers(0.2, 6.0);
        let picked = (0..10_000u64).filter(|&t| f.is_straggler(t)).count();
        assert!((1_500..2_500).contains(&picked), "{picked}");
        // No speculation: run to completion at full slowdown.
        assert_eq!(f.straggler_outcome(), (6.0, false, false));

        // Speculation at 2×: backup finishes at 3× — wins over a 6× task.
        let spec = f.clone().with_speculation(2.0);
        let (eff, launched, won) = spec.straggler_outcome();
        assert!((eff - 3.0).abs() < 1e-12);
        assert!(launched && won);

        // A mild straggler (1.5×) under a 2× threshold never triggers a
        // backup.
        let mild = FaultConfig::none().with_stragglers(0.2, 1.5).with_speculation(2.0);
        assert_eq!(mild.straggler_outcome(), (1.5, false, false));

        // A 2.5× straggler triggers the backup but beats it (2.5 < 3).
        let close = FaultConfig::none().with_stragglers(0.2, 2.5).with_speculation(2.0);
        let (eff, launched, won) = close.straggler_outcome();
        assert!((eff - 2.5).abs() < 1e-12);
        assert!(launched && !won);
    }

    #[test]
    fn builders_validate() {
        assert!(std::panic::catch_unwind(|| FaultConfig::none().with_node_loss(1.0)).is_err());
        assert!(std::panic::catch_unwind(|| FaultConfig::none().with_nodes(0)).is_err());
        assert!(std::panic::catch_unwind(|| FaultConfig::none().with_stragglers(0.1, 0.5)).is_err());
        assert!(std::panic::catch_unwind(|| FaultConfig::none().with_speculation(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| FaultConfig::none().with_corruption(1.0)).is_err());
    }

    #[test]
    fn corruption_rate_and_independence() {
        let f = FaultConfig::none().with_corruption(0.2);
        assert!(f.any());
        let hits = (0..10_000u64).filter(|&u| f.data_corrupted(99, u)).count();
        assert!((1_500..2_500).contains(&hits), "{hits}");
        // Corruption draws are independent of the attempt-failure and
        // node-loss streams: only corruption is configured here.
        assert_eq!(f.attempts_needed(3), Some(1));
        assert!(!f.node_lost(99, 0));
        // Off by default.
        assert!(!FaultConfig::none().data_corrupted(99, 7));
    }

    #[test]
    fn corruption_offset_is_deterministic_and_in_bounds() {
        let f = FaultConfig::none().with_corruption(0.5);
        assert_eq!(f.corruption_offset(1, 2, 0), None);
        for len in [1usize, 7, 4096] {
            for unit in 0..50u64 {
                let a = f.corruption_offset(42, unit, len).unwrap();
                let b = f.corruption_offset(42, unit, len).unwrap();
                assert_eq!(a, b);
                assert!(a < len);
            }
        }
        // Offsets vary across units (not all zero).
        let distinct: std::collections::BTreeSet<_> =
            (0..50u64).filter_map(|u| f.corruption_offset(42, u, 4096)).collect();
        assert!(distinct.len() > 10, "{}", distinct.len());
    }
}
