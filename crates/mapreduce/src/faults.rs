//! Deterministic task-failure injection.
//!
//! Hadoop materializes and replicates every job's output *because tasks
//! and nodes fail*; the paper's cost analysis (intermediate HDFS writes ×
//! replication) exists precisely to pay for this fault tolerance. The
//! engine therefore models the failure side too: map/reduce task attempts
//! can be made to fail with a configured probability, and the engine
//! retries each task up to a bounded number of attempts (Hadoop's
//! `mapreduce.map.maxattempts`, default 4) before failing the job.
//!
//! Injection is deterministic: whether attempt `a` of task `t` fails is a
//! pure function of `(seed, task, attempt)`, so runs are reproducible and
//! results must be bit-identical with and without injected failures —
//! which the tests assert.

use serde::{Deserialize, Serialize};

/// Failure-injection configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability in `[0, 1)` that any single task attempt fails.
    pub task_failure_probability: f64,
    /// Maximum attempts per task before the job is failed.
    pub max_attempts: u32,
    /// Seed making the injection deterministic.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { task_failure_probability: 0.0, max_attempts: 4, seed: 0 }
    }
}

impl FaultConfig {
    /// No injected failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail each attempt with probability `p` under `seed`.
    pub fn with_probability(p: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "probability must be in [0, 1)");
        FaultConfig { task_failure_probability: p, max_attempts: 4, seed }
    }

    /// True if attempt `attempt` of task `task_id` should fail.
    ///
    /// Deterministic splitmix64-style hash of `(seed, task, attempt)`
    /// mapped to `[0, 1)` and compared against the probability.
    pub fn attempt_fails(&self, task_id: u64, attempt: u32) -> bool {
        if self.task_failure_probability <= 0.0 {
            return false;
        }
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(task_id)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(u64::from(attempt));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.task_failure_probability
    }

    /// Number of attempts task `task_id` needs before succeeding, or
    /// `None` if it exhausts `max_attempts`.
    pub fn attempts_needed(&self, task_id: u64) -> Option<u32> {
        (1..=self.max_attempts).find(|&attempt| !self.attempt_fails(task_id, attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fails() {
        let f = FaultConfig::none();
        for t in 0..100 {
            assert_eq!(f.attempts_needed(t), Some(1));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = FaultConfig::with_probability(0.5, 7);
        let b = FaultConfig::with_probability(0.5, 7);
        for t in 0..200 {
            assert_eq!(a.attempts_needed(t), b.attempts_needed(t));
        }
        let c = FaultConfig::with_probability(0.5, 8);
        assert!((0..200).any(|t| a.attempts_needed(t) != c.attempts_needed(t)));
    }

    #[test]
    fn probability_roughly_respected() {
        let f = FaultConfig::with_probability(0.3, 42);
        let failures = (0..10_000).filter(|&t| f.attempt_fails(t, 1)).count();
        assert!((2_500..3_500).contains(&failures), "got {failures}");
    }

    #[test]
    fn high_probability_exhausts_attempts() {
        let f = FaultConfig { task_failure_probability: 0.95, max_attempts: 2, seed: 1 };
        let exhausted = (0..1000).filter(|&t| f.attempts_needed(t).is_none()).count();
        // ~0.95^2 ≈ 90 % of tasks exhaust two attempts.
        assert!(exhausted > 800, "{exhausted}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_certain_failure() {
        FaultConfig::with_probability(1.0, 0);
    }
}
