//! Job definitions: raw byte-level operator traits, typed adapters, and the
//! [`JobSpec`] builder.
//!
//! The engine itself moves opaque encoded records (so heterogeneous jobs can
//! be chained without generics leaking into the engine), while user code
//! writes *typed* mappers/reducers via [`map_fn`], [`map_only_fn`] and
//! [`reduce_fn`], which handle encode/decode and text-size accounting.

use crate::codec::Rec;
use crate::counters::OpCounters;
use crate::error::MrError;
use crate::hdfs::DfsFile;
use crate::metrics::MetricsRegistry;
use rdf_model::atom::{Atom, AtomTable};
use rdf_model::Dictionary;
use std::any::Any;
use std::cell::{Ref, RefCell};
use std::marker::PhantomData;
use std::sync::Arc;

/// Per-task execution context, created by the engine for each map task,
/// combiner run, and reduce partition.
///
/// Carries the task-lifetime [`AtomTable`] that typed adapters decode
/// through, so every occurrence of a token within one task shares a
/// single `Atom` allocation instead of re-allocating per record — the
/// in-process analogue of the paper's argument that nested triplegroups
/// avoid paying for redundant token copies. Scoped per task (not per
/// job) so concurrent tasks never contend on one table and memory is
/// released with the task.
///
/// It also carries the task's [`OpCounters`]: operators record named
/// operator-level counters through [`TaskContext::count`] (Hadoop's
/// user-defined `Counter`s), and the engine merges every task's counters
/// into [`crate::JobStats::ops`] when the job completes.
///
/// ID-native jobs additionally read the engine's shared [`Dictionary`]
/// snapshot (attached with [`crate::Engine::with_dict`]) through
/// [`TaskContext::resolve_atom`] — the distributed-cache side file a real
/// Hadoop deployment would ship to every task.
///
/// Jobs that declare broadcast side files ([`JobSpec::with_broadcast`])
/// additionally see those files through [`TaskContext::broadcast`], and
/// can cache a once-per-task derived structure (e.g. a broadcast-join hash
/// table — Hadoop's `Mapper.setup()`) via [`TaskContext::task_state`].
#[derive(Default)]
pub struct TaskContext {
    /// Interner for token (`Atom`) fields decoded by this task.
    pub atoms: AtomTable,
    counters: RefCell<OpCounters>,
    metrics: RefCell<MetricsRegistry>,
    profiling: bool,
    dict: Option<Arc<Dictionary>>,
    broadcast: Vec<Arc<DfsFile>>,
    state: RefCell<Option<Box<dyn Any + Send>>>,
}

impl std::fmt::Debug for TaskContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskContext")
            .field("atoms", &self.atoms)
            .field("counters", &self.counters)
            .field("profiling", &self.profiling)
            .field("dict", &self.dict)
            .field("broadcast_files", &self.broadcast.len())
            .field("has_state", &self.state.borrow().is_some())
            .finish()
    }
}

impl TaskContext {
    /// Fresh context with an empty atom table.
    pub fn new() -> Self {
        Self::with_dict(None)
    }

    /// Fresh context carrying the engine's dictionary snapshot (if any).
    pub fn with_dict(dict: Option<Arc<Dictionary>>) -> Self {
        Self::with_env(dict, Vec::new())
    }

    /// Fresh context carrying the engine's dictionary snapshot and the
    /// job's loaded broadcast side files (the engine builds every task's
    /// context through this).
    pub fn with_env(dict: Option<Arc<Dictionary>>, broadcast: Vec<Arc<DfsFile>>) -> Self {
        TaskContext {
            atoms: AtomTable::new(),
            counters: RefCell::new(OpCounters::new()),
            metrics: RefCell::new(MetricsRegistry::new()),
            profiling: false,
            dict,
            broadcast,
            state: RefCell::new(None),
        }
    }

    /// Enable distribution-metric recording for this task (the engine sets
    /// this from its profiling flag). When off — the default —
    /// [`TaskContext::record`] is a no-op, so un-profiled runs pay nothing.
    pub fn profiled(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Broadcast side file `idx` (the order of [`JobSpec::with_broadcast`]),
    /// shipped to every task of this job through the engine's simulated
    /// distributed cache. [`MrError::Op`] when the job declared no such
    /// file — an operator wired against the wrong job spec.
    pub fn broadcast(&self, idx: usize) -> Result<&DfsFile, MrError> {
        self.broadcast.get(idx).map(Arc::as_ref).ok_or_else(|| {
            MrError::Op(format!(
                "broadcast file #{idx} not attached (job declares {} broadcast files)",
                self.broadcast.len()
            ))
        })
    }

    /// All broadcast side files attached to this task, in declaration
    /// order.
    pub fn broadcast_files(&self) -> &[Arc<DfsFile>] {
        &self.broadcast
    }

    /// Once-per-task derived state (the simulated `Mapper.setup()`):
    /// the first call runs `init` and caches its value for the rest of the
    /// task; later calls return the cached value. Operators are shared
    /// (`Arc<dyn …>`) across all tasks of a job, so per-task structures
    /// like a broadcast-join hash table must live here, not in the
    /// operator. `init` must not recursively call `task_state`, and every
    /// caller within one task must use the same type `T`.
    pub fn task_state<T, F>(&self, init: F) -> Result<Ref<'_, T>, MrError>
    where
        T: Send + 'static,
        F: FnOnce() -> Result<T, MrError>,
    {
        if self.state.borrow().is_none() {
            let built = init()?;
            *self.state.borrow_mut() = Some(Box::new(built));
        }
        Ref::filter_map(self.state.borrow(), |slot| {
            slot.as_deref().and_then(|any| any.downcast_ref::<T>())
        })
        .map_err(|_| MrError::Op("task state already initialized with a different type".into()))
    }

    /// The dictionary snapshot this task decodes ids against, if the
    /// engine has one attached.
    pub fn dict(&self) -> Option<&Arc<Dictionary>> {
        self.dict.as_ref()
    }

    /// Resolve a dictionary id to its shared [`Atom`]. An unknown id — a
    /// corrupt or foreign id reaching this task — or a missing dictionary
    /// is a [`MrError::Codec`] task failure, which the engine's recovery
    /// policy handles like any other failed task (no process abort).
    pub fn resolve_atom(&self, id: u32) -> Result<Atom, MrError> {
        let dict = self.dict.as_ref().ok_or_else(|| {
            MrError::Codec(
                "no dictionary snapshot attached to the engine (Engine::with_dict)".into(),
            )
        })?;
        dict.resolve_atom(id).map_err(|e| MrError::Codec(e.to_string()))
    }

    /// Add `delta` to the named operator counter. Names should be
    /// `&'static str` constants declared next to the operator.
    pub fn count(&self, name: &'static str, delta: u64) {
        self.counters.borrow_mut().add(name, delta);
    }

    /// Drain this task's recorded counters (the engine calls this once per
    /// task to merge them into the job's stats).
    pub fn take_counters(&self) -> OpCounters {
        self.counters.take()
    }

    /// Record one sample into the named distribution metric (a log2
    /// [`crate::Histogram`]). No-op unless the engine enabled profiling
    /// for this task via [`TaskContext::profiled`], so operators can call
    /// it unconditionally on hot paths.
    pub fn record(&self, name: &'static str, value: u64) {
        if self.profiling {
            self.metrics.borrow_mut().record(name, value);
        }
    }

    /// Drain this task's recorded distribution metrics (the engine merges
    /// them into [`crate::JobStats::metrics`]).
    pub fn take_metrics(&self) -> MetricsRegistry {
        self.metrics.take()
    }
}

/// Buffered, map-side-partitioned output of one map task.
///
/// Each emission is routed to one of `reduce_tasks` spill arenas as it is
/// produced, keyed by [`crate::engine::default_partition`] — Hadoop's
/// map-side partitioning, where the map task writes one spill segment per
/// reducer and the driver never touches individual pairs. Combiners also
/// emit into a partitioned emitter, so their (possibly rewritten) keys are
/// re-routed to the correct reducer.
///
/// The emit path is allocation-free per record: the key is encoded into a
/// reusable scratch buffer (to compute its partition), then key and value
/// bytes are appended to the partition's contiguous `SpillArena` (the
/// `spill` module) — the value encodes straight
/// into the arena, so no owned `(Vec<u8>, Vec<u8>)` pair is ever built.
pub struct MapEmitter {
    /// One spill arena per reduce partition; arena `p` holds every
    /// emission whose key partitions to `p`.
    pub(crate) buckets: Vec<crate::spill::SpillArena>,
    /// Reusable key-encoding scratch (cleared per emission, so its
    /// allocation amortizes across the task).
    key_scratch: Vec<u8>,
}

impl MapEmitter {
    /// Single-partition emitter (tests only; the engine always builds
    /// partitioned emitters).
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::partitioned(1)
    }

    /// Emitter spilling into `reduce_tasks` partition arenas.
    pub(crate) fn partitioned(reduce_tasks: usize) -> Self {
        MapEmitter {
            buckets: vec![crate::spill::SpillArena::default(); reduce_tasks.max(1)],
            key_scratch: Vec::new(),
        }
    }

    /// Emit one typed key/value record with its simulated text row size,
    /// routing it to its reduce partition's arena. The value encodes
    /// directly into the arena; nothing is heap-allocated per record.
    pub fn emit_rec<K: Rec, V: Rec>(&mut self, key: &K, value: &V, text_size: u64) {
        let MapEmitter { buckets, key_scratch } = self;
        key_scratch.clear();
        key.encode_into(key_scratch);
        let p = crate::engine::default_partition(key_scratch, buckets.len());
        buckets[p].push(key_scratch, text_size, |buf| value.encode_into(buf));
    }

    /// Emit an already-encoded key/value pair (copied into the arena).
    pub fn emit_raw(&mut self, key: &[u8], value: &[u8], text_size: u64) {
        let p = crate::engine::default_partition(key, self.buckets.len());
        self.buckets[p].push_pair(key, value, text_size);
    }

    /// Total emissions across all partition arenas.
    pub(crate) fn len(&self) -> usize {
        self.buckets.iter().map(crate::spill::SpillArena::len).sum()
    }
}

/// Buffered output of one reduce (or map-only) task:
/// `(output index, record, text size)`.
///
/// Jobs normally have one output file (index 0); Hadoop-style
/// `MultipleOutputs` jobs (e.g. NTGA's group-filter cycle, which writes one
/// file per triplegroup equivalence class) route records with
/// [`OutEmitter::emit_raw_to`].
pub struct OutEmitter {
    pub(crate) records: Vec<(usize, Vec<u8>, u64)>,
    pub(crate) budget: Option<u64>,
    pub(crate) emitted_text: u64,
    pub(crate) n_outputs: usize,
}

impl OutEmitter {
    #[cfg(test)]
    pub(crate) fn new(budget: Option<u64>) -> Self {
        Self::with_outputs(budget, 1)
    }

    pub(crate) fn with_outputs(budget: Option<u64>, n_outputs: usize) -> Self {
        OutEmitter { records: Vec::new(), budget, emitted_text: 0, n_outputs }
    }

    /// Emit a raw record to the job's primary output (index 0).
    ///
    /// Fails with [`MrError::DiskFull`] as soon as the cumulative output
    /// text exceeds the job's disk budget, so a cross-product explosion
    /// aborts early instead of first materializing in memory (mirrors a
    /// Hadoop task dying mid-write).
    pub fn emit_raw(&mut self, record: Vec<u8>, text_size: u64) -> Result<(), MrError> {
        self.emit_raw_to(0, record, text_size)
    }

    /// Emit a raw record to output `idx` (see [`crate::JobSpec::outputs`]).
    pub fn emit_raw_to(
        &mut self,
        idx: usize,
        record: Vec<u8>,
        text_size: u64,
    ) -> Result<(), MrError> {
        if idx >= self.n_outputs {
            return Err(MrError::Op(format!(
                "output index {idx} out of range (job has {} outputs)",
                self.n_outputs
            )));
        }
        self.emitted_text += text_size;
        if let Some(budget) = self.budget {
            if self.emitted_text > budget {
                return Err(MrError::DiskFull {
                    file: "<job output>".into(),
                    needed: self.emitted_text,
                    available: budget,
                });
            }
        }
        self.records.push((idx, record, text_size));
        Ok(())
    }
}

/// Byte-level map operator.
pub trait RawMapOp: Send + Sync {
    /// Process one input record. Emit shuffle pairs via `out`.
    fn run(&self, ctx: &TaskContext, record: &[u8], out: &mut MapEmitter) -> Result<(), MrError>;
}

/// Byte-level map operator for map-only jobs (emits output records
/// directly).
pub trait RawMapOnlyOp: Send + Sync {
    /// Process one input record. Emit output records via `out`.
    fn run(&self, ctx: &TaskContext, record: &[u8], out: &mut OutEmitter) -> Result<(), MrError>;
}

/// Byte-level reduce operator.
///
/// `values` borrows directly from the sorted shuffle buffer — the engine
/// hands out slices instead of cloning every value into an owned vector.
pub trait RawReduceOp: Send + Sync {
    /// Process one key group. `values` holds every shuffled value for `key`
    /// in deterministic (sorted) order.
    fn run(
        &self,
        ctx: &TaskContext,
        key: &[u8],
        values: &[&[u8]],
        out: &mut OutEmitter,
    ) -> Result<(), MrError>;
}

/// Byte-level combiner: runs on each map task's local output before the
/// shuffle (Hadoop's combiner), re-emitting key/value pairs. Input and
/// output key/value types must match the mapper's. Like [`RawReduceOp`],
/// `values` borrows from the map task's spill buffer.
pub trait RawCombineOp: Send + Sync {
    /// Combine one locally-grouped key. Emit replacement pairs via `out`.
    fn run(
        &self,
        ctx: &TaskContext,
        key: &[u8],
        values: &[&[u8]],
        out: &mut MapEmitter,
    ) -> Result<(), MrError>;
}

// ---------------------------------------------------------------------------
// Typed adapters
// ---------------------------------------------------------------------------

/// Typed emit handle passed to map closures.
pub struct TypedMapEmitter<'a, K: Rec, V: Rec> {
    raw: &'a mut MapEmitter,
    _pd: PhantomData<(K, V)>,
}

impl<K: Rec, V: Rec> TypedMapEmitter<'_, K, V> {
    /// Emit one key/value pair. The simulated row size is
    /// `key.text_size() + value.text_size() - 1` (the pair shares a single
    /// row: one newline, one tab separator). Both records encode straight
    /// into the partition spill arena — no per-record allocation.
    pub fn emit(&mut self, key: &K, value: &V) {
        let text = key.text_size() + value.text_size() - 1;
        self.raw.emit_rec(key, value, text);
    }
}

/// Typed emit handle passed to reduce / map-only closures.
pub struct TypedOutEmitter<'a, O: Rec> {
    raw: &'a mut OutEmitter,
    _pd: PhantomData<O>,
}

impl<O: Rec> TypedOutEmitter<'_, O> {
    /// Emit one output record to the primary output.
    pub fn emit(&mut self, record: &O) -> Result<(), MrError> {
        self.raw.emit_raw(record.to_bytes(), record.text_size())
    }

    /// Emit one output record to the named output `idx`.
    pub fn emit_to(&mut self, idx: usize, record: &O) -> Result<(), MrError> {
        self.raw.emit_raw_to(idx, record.to_bytes(), record.text_size())
    }
}

struct MapFnOp<I, K, V, F> {
    f: F,
    _pd: PhantomData<fn(I) -> (K, V)>,
}

impl<I, K, V, F> RawMapOp for MapFnOp<I, K, V, F>
where
    I: Rec,
    K: Rec,
    V: Rec,
    F: Fn(I, &mut TypedMapEmitter<'_, K, V>) -> Result<(), MrError> + Send + Sync,
{
    fn run(&self, ctx: &TaskContext, record: &[u8], out: &mut MapEmitter) -> Result<(), MrError> {
        let input = I::from_bytes_with(record, &ctx.atoms)?;
        let mut emitter = TypedMapEmitter { raw: out, _pd: PhantomData };
        (self.f)(input, &mut emitter)
    }
}

struct MapOnlyFnOp<I, O, F> {
    f: F,
    _pd: PhantomData<fn(I) -> O>,
}

impl<I, O, F> RawMapOnlyOp for MapOnlyFnOp<I, O, F>
where
    I: Rec,
    O: Rec,
    F: Fn(I, &mut TypedOutEmitter<'_, O>) -> Result<(), MrError> + Send + Sync,
{
    fn run(&self, ctx: &TaskContext, record: &[u8], out: &mut OutEmitter) -> Result<(), MrError> {
        let input = I::from_bytes_with(record, &ctx.atoms)?;
        let mut emitter = TypedOutEmitter { raw: out, _pd: PhantomData };
        (self.f)(input, &mut emitter)
    }
}

struct ReduceFnOp<K, V, O, F> {
    f: F,
    _pd: PhantomData<fn(K, V) -> O>,
}

impl<K, V, O, F> RawReduceOp for ReduceFnOp<K, V, O, F>
where
    K: Rec,
    V: Rec,
    O: Rec,
    F: Fn(K, Vec<V>, &mut TypedOutEmitter<'_, O>) -> Result<(), MrError> + Send + Sync,
{
    fn run(
        &self,
        ctx: &TaskContext,
        key: &[u8],
        values: &[&[u8]],
        out: &mut OutEmitter,
    ) -> Result<(), MrError> {
        let key = K::from_bytes_with(key, &ctx.atoms)?;
        let values: Result<Vec<V>, MrError> =
            values.iter().map(|v| V::from_bytes_with(v, &ctx.atoms)).collect();
        let mut emitter = TypedOutEmitter { raw: out, _pd: PhantomData };
        (self.f)(key, values?, &mut emitter)
    }
}

/// Wrap a typed closure as a shuffle-producing map operator.
pub fn map_fn<I, K, V, F>(f: F) -> Arc<dyn RawMapOp>
where
    I: Rec,
    K: Rec,
    V: Rec,
    F: Fn(I, &mut TypedMapEmitter<'_, K, V>) -> Result<(), MrError> + Send + Sync + 'static,
{
    Arc::new(MapFnOp { f, _pd: PhantomData })
}

/// Wrap a typed closure as a map-only operator.
pub fn map_only_fn<I, O, F>(f: F) -> Arc<dyn RawMapOnlyOp>
where
    I: Rec,
    O: Rec,
    F: Fn(I, &mut TypedOutEmitter<'_, O>) -> Result<(), MrError> + Send + Sync + 'static,
{
    Arc::new(MapOnlyFnOp { f, _pd: PhantomData })
}

struct CombineFnOp<K, V, F> {
    f: F,
    #[allow(clippy::type_complexity)]
    _pd: PhantomData<fn(K, V) -> (K, V)>,
}

impl<K, V, F> RawCombineOp for CombineFnOp<K, V, F>
where
    K: Rec,
    V: Rec,
    F: Fn(K, Vec<V>, &mut TypedMapEmitter<'_, K, V>) -> Result<(), MrError> + Send + Sync,
{
    fn run(
        &self,
        ctx: &TaskContext,
        key: &[u8],
        values: &[&[u8]],
        out: &mut MapEmitter,
    ) -> Result<(), MrError> {
        let key = K::from_bytes_with(key, &ctx.atoms)?;
        let values: Result<Vec<V>, MrError> =
            values.iter().map(|v| V::from_bytes_with(v, &ctx.atoms)).collect();
        let mut emitter = TypedMapEmitter { raw: out, _pd: PhantomData };
        (self.f)(key, values?, &mut emitter)
    }
}

/// Wrap a typed closure as a combiner.
pub fn combine_fn<K, V, F>(f: F) -> Arc<dyn RawCombineOp>
where
    K: Rec,
    V: Rec,
    F: Fn(K, Vec<V>, &mut TypedMapEmitter<'_, K, V>) -> Result<(), MrError> + Send + Sync + 'static,
{
    Arc::new(CombineFnOp { f, _pd: PhantomData })
}

/// Wrap a typed closure as a reduce operator.
pub fn reduce_fn<K, V, O, F>(f: F) -> Arc<dyn RawReduceOp>
where
    K: Rec,
    V: Rec,
    O: Rec,
    F: Fn(K, Vec<V>, &mut TypedOutEmitter<'_, O>) -> Result<(), MrError> + Send + Sync + 'static,
{
    Arc::new(ReduceFnOp { f, _pd: PhantomData })
}

struct CtxMapFnOp<I, K, V, F> {
    f: F,
    _pd: PhantomData<fn(I) -> (K, V)>,
}

impl<I, K, V, F> RawMapOp for CtxMapFnOp<I, K, V, F>
where
    I: Rec,
    K: Rec,
    V: Rec,
    F: Fn(&TaskContext, I, &mut TypedMapEmitter<'_, K, V>) -> Result<(), MrError> + Send + Sync,
{
    fn run(&self, ctx: &TaskContext, record: &[u8], out: &mut MapEmitter) -> Result<(), MrError> {
        let input = I::from_bytes_with(record, &ctx.atoms)?;
        let mut emitter = TypedMapEmitter { raw: out, _pd: PhantomData };
        (self.f)(ctx, input, &mut emitter)
    }
}

struct CtxReduceFnOp<K, V, O, F> {
    f: F,
    _pd: PhantomData<fn(K, V) -> O>,
}

impl<K, V, O, F> RawReduceOp for CtxReduceFnOp<K, V, O, F>
where
    K: Rec,
    V: Rec,
    O: Rec,
    F: Fn(&TaskContext, K, Vec<V>, &mut TypedOutEmitter<'_, O>) -> Result<(), MrError>
        + Send
        + Sync,
{
    fn run(
        &self,
        ctx: &TaskContext,
        key: &[u8],
        values: &[&[u8]],
        out: &mut OutEmitter,
    ) -> Result<(), MrError> {
        let key = K::from_bytes_with(key, &ctx.atoms)?;
        let values: Result<Vec<V>, MrError> =
            values.iter().map(|v| V::from_bytes_with(v, &ctx.atoms)).collect();
        let mut emitter = TypedOutEmitter { raw: out, _pd: PhantomData };
        (self.f)(ctx, key, values?, &mut emitter)
    }
}

/// Like [`map_fn`], but the closure also receives the [`TaskContext`]
/// (for operator counters via [`TaskContext::count`] or direct interning).
pub fn map_fn_ctx<I, K, V, F>(f: F) -> Arc<dyn RawMapOp>
where
    I: Rec,
    K: Rec,
    V: Rec,
    F: Fn(&TaskContext, I, &mut TypedMapEmitter<'_, K, V>) -> Result<(), MrError>
        + Send
        + Sync
        + 'static,
{
    Arc::new(CtxMapFnOp { f, _pd: PhantomData })
}

/// Like [`reduce_fn`], but the closure also receives the [`TaskContext`].
pub fn reduce_fn_ctx<K, V, O, F>(f: F) -> Arc<dyn RawReduceOp>
where
    K: Rec,
    V: Rec,
    O: Rec,
    F: Fn(&TaskContext, K, Vec<V>, &mut TypedOutEmitter<'_, O>) -> Result<(), MrError>
        + Send
        + Sync
        + 'static,
{
    Arc::new(CtxReduceFnOp { f, _pd: PhantomData })
}

struct CtxMapOnlyFnOp<I, O, F> {
    f: F,
    _pd: PhantomData<fn(I) -> O>,
}

impl<I, O, F> RawMapOnlyOp for CtxMapOnlyFnOp<I, O, F>
where
    I: Rec,
    O: Rec,
    F: Fn(&TaskContext, I, &mut TypedOutEmitter<'_, O>) -> Result<(), MrError> + Send + Sync,
{
    fn run(&self, ctx: &TaskContext, record: &[u8], out: &mut OutEmitter) -> Result<(), MrError> {
        let input = I::from_bytes_with(record, &ctx.atoms)?;
        let mut emitter = TypedOutEmitter { raw: out, _pd: PhantomData };
        (self.f)(ctx, input, &mut emitter)
    }
}

/// Like [`map_only_fn`], but the closure also receives the
/// [`TaskContext`] — required by broadcast-join mappers, which read their
/// build side via [`TaskContext::broadcast`] and cache the built hash
/// table via [`TaskContext::task_state`].
pub fn map_only_fn_ctx<I, O, F>(f: F) -> Arc<dyn RawMapOnlyOp>
where
    I: Rec,
    O: Rec,
    F: Fn(&TaskContext, I, &mut TypedOutEmitter<'_, O>) -> Result<(), MrError>
        + Send
        + Sync
        + 'static,
{
    Arc::new(CtxMapOnlyFnOp { f, _pd: PhantomData })
}

// ---------------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------------

/// One input of a job: a DFS file plus the mapper applied to its records
/// (Hadoop `MultipleInputs`). Binary joins bind a different mapper to each
/// side.
pub struct InputBinding {
    /// DFS file name.
    pub file: String,
    /// Mapper for this input's records.
    pub mapper: Arc<dyn RawMapOp>,
}

/// What the job does after the map phase.
pub enum JobKind {
    /// Full map-shuffle-reduce cycle.
    MapReduce {
        /// Inputs with their mappers.
        inputs: Vec<InputBinding>,
        /// Optional map-side combiner (runs per map task before the
        /// shuffle).
        combiner: Option<Arc<dyn RawCombineOp>>,
        /// The reduce operator.
        reducer: Arc<dyn RawReduceOp>,
        /// Number of reduce tasks (partitions).
        reduce_tasks: usize,
    },
    /// Map-only job (no shuffle; mappers write output directly).
    MapOnly {
        /// Input files sharing one mapper.
        files: Vec<String>,
        /// The map-only operator.
        mapper: Arc<dyn RawMapOnlyOp>,
    },
}

/// A complete job description.
pub struct JobSpec {
    /// Job name (for stats and reports).
    pub name: String,
    /// Map/reduce structure.
    pub kind: JobKind,
    /// Output DFS file names. Index 0 is the primary output; reducers
    /// route to further outputs with [`TypedOutEmitter::emit_to`]
    /// (Hadoop `MultipleOutputs`).
    pub outputs: Vec<String>,
    /// Replication override for the outputs (defaults to the DFS default).
    pub replication: Option<u32>,
    /// Simulated output compression ratio in `(0, 1]`: the stored file's
    /// accounted text size is `ratio ×` the raw text size (Pig/Hive jobs
    /// frequently compress intermediates; the paper's Pig plans start with
    /// a compression pass).
    pub output_compression: f64,
    /// Marks the job as scanning the base input relation in full — the
    /// paper's "full scan" (FS) metric. Set by planners.
    pub full_input_scan: bool,
    /// Fault-injection epoch, mixed into the deterministic fault hash.
    /// Workflow recovery bumps this when re-running a failed stage so the
    /// retry faces fresh (but still deterministic) fault draws instead of
    /// replaying the identical failure forever. 0 leaves the hash
    /// unchanged.
    pub fault_epoch: u64,
    /// DFS files shipped to every task through the engine's simulated
    /// distributed cache (Hadoop `DistributedCache` / Spark broadcast).
    /// Tasks read them via [`TaskContext::broadcast`]; the engine charges
    /// one copy per map task against the cost model and bounds the total
    /// payload by the engine's broadcast memory budget.
    pub broadcast: Vec<String>,
    /// Planner's estimated output cardinality for this job, when an
    /// optimizer produced one. The engine copies it into
    /// [`crate::JobStats`] next to the actual output count, making the
    /// estimate's q-error observable per job.
    pub estimated_output_records: Option<f64>,
}

impl JobSpec {
    /// Build a map-reduce job.
    pub fn map_reduce(
        name: impl Into<String>,
        inputs: Vec<InputBinding>,
        reducer: Arc<dyn RawReduceOp>,
        reduce_tasks: usize,
        output: impl Into<String>,
    ) -> Self {
        assert!(reduce_tasks >= 1, "need at least one reduce task");
        JobSpec {
            name: name.into(),
            kind: JobKind::MapReduce { inputs, combiner: None, reducer, reduce_tasks },
            outputs: vec![output.into()],
            replication: None,
            output_compression: 1.0,
            full_input_scan: false,
            fault_epoch: 0,
            broadcast: Vec::new(),
            estimated_output_records: None,
        }
    }

    /// Attach a map-side combiner (only meaningful for map-reduce jobs).
    ///
    /// # Panics
    /// Panics when called on a map-only job.
    pub fn with_combiner(mut self, c: Arc<dyn RawCombineOp>) -> Self {
        match &mut self.kind {
            JobKind::MapReduce { combiner, .. } => *combiner = Some(c),
            JobKind::MapOnly { .. } => panic!("combiners require a reduce phase"),
        }
        self
    }

    /// Set the simulated output compression ratio (`0 < ratio <= 1`).
    pub fn with_output_compression(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "compression ratio must be in (0, 1]");
        self.output_compression = ratio;
        self
    }

    /// Build a map-only job.
    pub fn map_only(
        name: impl Into<String>,
        files: Vec<String>,
        mapper: Arc<dyn RawMapOnlyOp>,
        output: impl Into<String>,
    ) -> Self {
        JobSpec {
            name: name.into(),
            kind: JobKind::MapOnly { files, mapper },
            outputs: vec![output.into()],
            replication: None,
            output_compression: 1.0,
            full_input_scan: false,
            fault_epoch: 0,
            broadcast: Vec::new(),
            estimated_output_records: None,
        }
    }

    /// Ship `file` to every task through the simulated distributed cache;
    /// tasks read it back with [`TaskContext::broadcast`] by declaration
    /// index. May be called repeatedly to attach several side files.
    pub fn with_broadcast(mut self, file: impl Into<String>) -> Self {
        self.broadcast.push(file.into());
        self
    }

    /// Record the planner's estimated output cardinality, surfaced by the
    /// engine as the job's q-error.
    pub fn with_estimated_output(mut self, records: f64) -> Self {
        self.estimated_output_records = Some(records);
        self
    }

    /// Override the reduce-task count — how a cost-based planner sizes the
    /// reduce phase to estimated shuffle bytes instead of a fixed default.
    ///
    /// # Panics
    /// Panics when called on a map-only job or with `reduce_tasks == 0`.
    pub fn with_reducers(mut self, reduce_tasks: usize) -> Self {
        assert!(reduce_tasks >= 1, "need at least one reduce task");
        match &mut self.kind {
            JobKind::MapReduce { reduce_tasks: r, .. } => *r = reduce_tasks,
            JobKind::MapOnly { .. } => panic!("map-only jobs have no reduce tasks"),
        }
        self
    }

    /// Add a further named output (Hadoop `MultipleOutputs`). Reducers
    /// reach it via [`TypedOutEmitter::emit_to`] with the output's index.
    pub fn with_extra_output(mut self, name: impl Into<String>) -> Self {
        self.outputs.push(name.into());
        self
    }

    /// Mark this job as performing a full scan of the base relation.
    pub fn with_full_scan(mut self) -> Self {
        self.full_input_scan = true;
        self
    }

    /// Override the output replication factor.
    pub fn with_replication(mut self, r: u32) -> Self {
        self.replication = Some(r);
        self
    }

    /// Check cross-field invariants before execution. The builders assert
    /// these eagerly, but [`JobKind`]'s fields are public, so a hand-built
    /// spec can bypass them; the engine re-validates here rather than
    /// panicking deep inside the shuffle (`key % 0`).
    pub fn validate(&self) -> Result<(), MrError> {
        if let JobKind::MapReduce { reduce_tasks, .. } = &self.kind {
            if *reduce_tasks == 0 {
                return Err(MrError::Op(format!(
                    "job '{}' declares 0 reduce tasks; map-reduce jobs need at least 1",
                    self.name
                )));
            }
        }
        if self.outputs.is_empty() {
            return Err(MrError::Op(format!("job '{}' declares no output files", self.name)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_map_emitter_accounts_row_text() {
        let mut raw = MapEmitter::new();
        let mut typed: TypedMapEmitter<'_, String, String> =
            TypedMapEmitter { raw: &mut raw, _pd: PhantomData };
        typed.emit(&"key".to_string(), &"value".to_string());
        assert_eq!(raw.len(), 1);
        // "key\tvalue\n" = 4 + 6 - 1 = 9
        assert_eq!(raw.buckets[0].text_bytes(), 9);
    }

    #[test]
    fn map_emitter_routes_to_partition_buckets() {
        let mut part = MapEmitter::partitioned(4);
        for i in 0..64u64 {
            let key = format!("key{i}").into_bytes();
            part.emit_raw(&key, &[], 1);
        }
        assert_eq!(part.len(), 64);
        // Every emission sits in the bucket its key hashes to.
        for (p, bucket) in part.buckets.iter().enumerate() {
            for (k, _) in bucket.iter() {
                assert_eq!(crate::engine::default_partition(k, 4), p);
            }
        }
        // With 64 distinct keys over 4 buckets, FNV-1a should spread load.
        assert!(part.buckets.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn validate_rejects_zero_reduce_tasks() {
        let reducer =
            reduce_fn(|_k: String, _v: Vec<u64>, _o: &mut TypedOutEmitter<'_, String>| Ok(()));
        let mut spec = JobSpec::map_reduce("j", vec![], reducer, 1, "out");
        assert!(spec.validate().is_ok());
        if let JobKind::MapReduce { reduce_tasks, .. } = &mut spec.kind {
            *reduce_tasks = 0; // bypass the builder assert via the pub field
        }
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("reduce tasks"), "{err}");
        spec.outputs.clear();
        if let JobKind::MapReduce { reduce_tasks, .. } = &mut spec.kind {
            *reduce_tasks = 1;
        }
        assert!(spec.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one reduce task")]
    fn builder_rejects_zero_reduce_tasks() {
        let reducer =
            reduce_fn(|_k: String, _v: Vec<u64>, _o: &mut TypedOutEmitter<'_, String>| Ok(()));
        let _ = JobSpec::map_reduce("j", vec![], reducer, 0, "out");
    }

    #[test]
    fn out_emitter_budget_aborts() {
        let mut out = OutEmitter::new(Some(10));
        assert!(out.emit_raw(vec![1], 6).is_ok());
        let err = out.emit_raw(vec![2], 6).unwrap_err();
        assert!(err.is_disk_full());
        // Budget is shared across named outputs too.
        let mut multi = OutEmitter::with_outputs(Some(10), 2);
        assert!(multi.emit_raw_to(1, vec![1], 6).is_ok());
        assert!(multi.emit_raw_to(0, vec![1], 6).unwrap_err().is_disk_full());
        assert!(multi.emit_raw_to(7, vec![1], 1).is_err());
    }

    #[test]
    fn out_emitter_unbounded() {
        let mut out = OutEmitter::new(None);
        for _ in 0..100 {
            out.emit_raw(vec![0], 1000).unwrap();
        }
        assert_eq!(out.emitted_text, 100_000);
    }

    #[test]
    fn map_fn_decodes_and_emits() {
        let op = map_fn(|rec: String, out: &mut TypedMapEmitter<'_, String, u64>| {
            out.emit(&rec, &(rec.len() as u64));
            Ok(())
        });
        let mut out = MapEmitter::new();
        op.run(&TaskContext::new(), &"abc".to_string().to_bytes(), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(String::from_bytes(out.buckets[0].key(0)).unwrap(), "abc");
        assert_eq!(u64::from_bytes(out.buckets[0].value(0)).unwrap(), 3);
    }

    #[test]
    fn reduce_fn_decodes_group() {
        let op =
            reduce_fn(|key: String, values: Vec<u64>, out: &mut TypedOutEmitter<'_, String>| {
                let sum: u64 = values.iter().sum();
                out.emit(&format!("{key}={sum}"))
            });
        let mut out = OutEmitter::new(None);
        let owned = [1u64.to_bytes(), 2u64.to_bytes()];
        let values: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        op.run(&TaskContext::new(), &"k".to_string().to_bytes(), &values, &mut out).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(String::from_bytes(&out.records[0].1).unwrap(), "k=3");
    }

    #[test]
    fn ctx_adapters_record_counters() {
        let ctx = TaskContext::new();
        let map_op = map_fn_ctx(
            |ctx: &TaskContext, rec: String, out: &mut TypedMapEmitter<'_, String, u64>| {
                ctx.count("map.seen", 1);
                out.emit(&rec, &1);
                Ok(())
            },
        );
        let mut mout = MapEmitter::new();
        map_op.run(&ctx, &"a".to_string().to_bytes(), &mut mout).unwrap();
        map_op.run(&ctx, &"b".to_string().to_bytes(), &mut mout).unwrap();

        let reduce_op = reduce_fn_ctx(
            |ctx: &TaskContext,
             key: String,
             values: Vec<u64>,
             out: &mut TypedOutEmitter<'_, String>| {
                ctx.count("reduce.groups_seen", 1);
                out.emit(&format!("{key}:{}", values.len()))
            },
        );
        let mut rout = OutEmitter::new(None);
        let owned = [1u64.to_bytes()];
        let values: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        reduce_op.run(&ctx, &"a".to_string().to_bytes(), &values, &mut rout).unwrap();

        let counters = ctx.take_counters();
        assert_eq!(counters.get("map.seen"), 2);
        assert_eq!(counters.get("reduce.groups_seen"), 1);
        // take_counters drains.
        assert!(ctx.take_counters().is_empty());
    }

    #[test]
    fn record_is_gated_on_profiling() {
        let off = TaskContext::new();
        off.record("reduce.group.width", 7);
        assert!(off.take_metrics().is_empty());

        let on = TaskContext::new().profiled(true);
        on.record("reduce.group.width", 7);
        on.record("reduce.group.width", 3);
        let metrics = on.take_metrics();
        let h = metrics.get("reduce.group.width").expect("recorded histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 10);
        // take_metrics drains.
        assert!(on.take_metrics().is_empty());
    }

    #[test]
    fn map_fn_propagates_codec_errors() {
        let op = map_fn(|_rec: u64, _out: &mut TypedMapEmitter<'_, String, String>| Ok(()));
        let mut out = MapEmitter::new();
        assert!(op.run(&TaskContext::new(), &[1, 2], &mut out).is_err());
    }
}
