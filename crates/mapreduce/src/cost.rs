//! Cost model: converts counted bytes/records into simulated seconds.
//!
//! The paper reports wall-clock times on 2015-era 60/80-node Hadoop
//! clusters. Absolute times are not reproducible; what must be reproduced
//! is their *shape* — which approach wins and roughly by how much. Those
//! shapes are driven by deterministic quantities the engine counts exactly
//! (scan bytes, shuffle bytes, sort volume, write bytes × replication, and
//! per-cycle startup overhead). The model below is a standard linear
//! I/O-dominated cost function over those counters; the default constants
//! approximate the paper's hardware (dual-core nodes, HDD-backed HDFS,
//! 1 GbE) at cluster aggregate level.

use crate::counters::JobStats;
use serde::{Deserialize, Serialize};

/// Cost-model parameters. All rates are cluster-aggregate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-job startup overhead in seconds (JVM spawn, scheduling;
    /// the dominant term for small inputs).
    pub job_startup_s: f64,
    /// Aggregate HDFS read bandwidth, bytes/second.
    pub hdfs_read_bps: f64,
    /// Aggregate HDFS write bandwidth, bytes/second (per replica).
    pub hdfs_write_bps: f64,
    /// Aggregate shuffle (network) bandwidth, bytes/second.
    pub shuffle_bps: f64,
    /// Sort throughput constant: seconds per byte × log2(records).
    pub sort_s_per_byte_log: f64,
    /// CPU cost per map input record, seconds.
    pub map_cpu_s_per_record: f64,
    /// CPU cost per reduce input record, seconds.
    pub reduce_cpu_s_per_record: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Roughly a 60-node cluster of 2-core/4 GB nodes with single HDDs:
        // aggregate sequential read ~3 GB/s, write ~1.5 GB/s per replica,
        // shuffle over 1 GbE ~1 GB/s aggregate, ~15 s Hadoop job startup.
        CostModel {
            job_startup_s: 15.0,
            hdfs_read_bps: 3.0e9,
            hdfs_write_bps: 1.5e9,
            shuffle_bps: 1.0e9,
            sort_s_per_byte_log: 1.0 / 40.0e9,
            map_cpu_s_per_record: 2.0e-6,
            reduce_cpu_s_per_record: 2.0e-6,
        }
    }
}

impl CostModel {
    /// A model whose I/O rates are scaled to a given input size so that a
    /// full scan of the input costs ~40 simulated seconds — the regime of
    /// the paper's cluster, where a job over the full relation is
    /// bandwidth-bound, not startup-bound. Use this when benchmarking
    /// scaled-down datasets; with the [`Default`] constants a kilobyte-
    /// scale dataset would be pure job-startup overhead and every
    /// approach would look identical.
    pub fn scaled_to(input_bytes: u64) -> Self {
        let input = input_bytes.max(1) as f64;
        CostModel {
            job_startup_s: 15.0,
            hdfs_read_bps: input / 40.0,
            hdfs_write_bps: input / 80.0,
            shuffle_bps: input / 60.0,
            // A full-input shuffle with log2(records) ~ 20 costs ~10 s.
            sort_s_per_byte_log: 0.5 / input,
            map_cpu_s_per_record: 0.0,
            reduce_cpu_s_per_record: 0.0,
        }
    }

    /// A model scaled for unit tests: zero startup, unit rates.
    pub fn zero_overhead() -> Self {
        CostModel {
            job_startup_s: 0.0,
            hdfs_read_bps: 1.0,
            hdfs_write_bps: 1.0,
            shuffle_bps: 1.0,
            sort_s_per_byte_log: 0.0,
            map_cpu_s_per_record: 0.0,
            reduce_cpu_s_per_record: 0.0,
        }
    }

    /// Seconds the map phase works: input read + broadcast distribution
    /// (one payload copy per map task, read from the DFS like any other
    /// bytes) + map CPU, plus the output write for map-only jobs (whose
    /// mappers write the DFS output directly).
    pub fn map_phase_seconds(&self, s: &JobStats) -> f64 {
        let read = s.hdfs_read_bytes as f64 / self.hdfs_read_bps;
        let broadcast = s.broadcast_ship_bytes as f64 / self.hdfs_read_bps;
        let map_cpu = s.input_records as f64 * self.map_cpu_s_per_record;
        let write =
            if s.reduce_tasks == 0 { s.hdfs_write_bytes as f64 / self.hdfs_write_bps } else { 0.0 };
        read + broadcast + map_cpu + write
    }

    /// Seconds the reduce phase works: shuffle + sort + reduce CPU + output
    /// write. Zero for map-only jobs.
    pub fn reduce_phase_seconds(&self, s: &JobStats) -> f64 {
        if s.reduce_tasks == 0 {
            return 0.0;
        }
        let shuffle = s.map_output_bytes as f64 / self.shuffle_bps;
        let log = if s.map_output_records > 1 { (s.map_output_records as f64).log2() } else { 0.0 };
        let sort = s.map_output_bytes as f64 * log * self.sort_s_per_byte_log;
        let reduce_cpu = s.reduce_input_records as f64 * self.reduce_cpu_s_per_record;
        let write = s.hdfs_write_bytes as f64 / self.hdfs_write_bps;
        shuffle + sort + reduce_cpu + write
    }

    /// Seconds of *work* (everything except startup) implied by a job's
    /// counters: exactly [`CostModel::map_phase_seconds`] +
    /// [`CostModel::reduce_phase_seconds`], which trace task spans rely on.
    pub fn work_seconds(&self, s: &JobStats) -> f64 {
        self.map_phase_seconds(s) + self.reduce_phase_seconds(s)
    }

    /// Average map-task time implied by a job's counters: the map phase's
    /// work divided by the scheduled map-task count (falls back to the
    /// whole phase when no per-task schedule was recorded).
    pub fn avg_map_task_seconds(&self, s: &JobStats) -> f64 {
        self.map_phase_seconds(s) / (s.faults.map_tasks_scheduled.max(1) as f64)
    }

    /// Average reduce-task time implied by a job's counters (0 for
    /// map-only jobs).
    pub fn avg_reduce_task_seconds(&self, s: &JobStats) -> f64 {
        if s.reduce_tasks == 0 {
            return 0.0;
        }
        self.reduce_phase_seconds(s) / s.reduce_tasks as f64
    }

    /// Simulated seconds of *wasted* work from faults: failed task
    /// attempts that were retried, completed map tasks re-executed after
    /// node loss or a detected-corruption fetch failure, speculative
    /// duplicates, and DFS replica refetches — each priced at one average
    /// task-time of its phase. Pure over the job's fault counters, so it
    /// is as worker-count-independent as they are.
    pub fn retry_seconds(&self, s: &JobStats) -> f64 {
        let f = &s.faults;
        // A DFS refetch re-reads one block from a replica; a map task's
        // input read is the closest task-shaped unit of that cost.
        let map_wasted = f.map_task_retries
            + f.maps_reexecuted
            + f.speculative_map_tasks
            + f.corrupt_refetches
            + f.dfs_refetches;
        let reduce_wasted = f.reduce_task_retries + f.speculative_reduce_tasks;
        map_wasted as f64 * self.avg_map_task_seconds(s)
            + reduce_wasted as f64 * self.avg_reduce_task_seconds(s)
    }

    /// Extra critical-path seconds from stragglers: each straggler's
    /// effective completion overshoot (in average-task units, recorded by
    /// the engine per phase) priced at the phase's average task time.
    pub fn straggler_tail_seconds(&self, s: &JobStats) -> f64 {
        s.faults.map_straggler_units * self.avg_map_task_seconds(s)
            + s.faults.reduce_straggler_units * self.avg_reduce_task_seconds(s)
    }

    /// Total simulated seconds the job loses to faults:
    /// [`CostModel::retry_seconds`] + [`CostModel::straggler_tail_seconds`].
    pub fn fault_seconds(&self, s: &JobStats) -> f64 {
        self.retry_seconds(s) + self.straggler_tail_seconds(s)
    }

    /// A job's work plus its fault losses — the quantity workflows charge
    /// per job when computing stage makespans (startup excluded).
    pub fn charged_work_seconds(&self, s: &JobStats) -> f64 {
        self.work_seconds(s) + self.fault_seconds(s)
    }

    /// Total simulated seconds for a job run in isolation, including time
    /// lost to injected faults.
    pub fn job_seconds(&self, s: &JobStats) -> f64 {
        self.job_startup_s + self.charged_work_seconds(s)
    }

    /// Extra seconds the reduce phase's critical path spends on shuffle
    /// skew, from the per-partition attribution in
    /// [`JobStats::shuffle_partition_bytes`].
    ///
    /// [`CostModel::work_seconds`] charges the shuffle as if every one of
    /// the `r` reduce tasks pulled an equal share concurrently
    /// (`total / shuffle_bps`). In reality the phase is gated by the
    /// heaviest partition: at a fair per-task share of `shuffle_bps / r`,
    /// that task needs `max_p bytes_p × r / shuffle_bps` seconds. This
    /// returns the non-negative difference — 0 for balanced shuffles,
    /// map-only jobs, or when no per-partition data was recorded.
    pub fn shuffle_tail_seconds(&self, s: &JobStats) -> f64 {
        if s.reduce_tasks == 0 || s.shuffle_partition_bytes.is_empty() {
            return 0.0;
        }
        let total: u64 = s.shuffle_partition_bytes.iter().sum();
        let max = s.shuffle_partition_bytes.iter().copied().max().unwrap_or(0);
        let r = s.shuffle_partition_bytes.len() as f64;
        let tail = (max as f64 * r - total as f64) / self.shuffle_bps;
        tail.max(0.0)
    }

    /// [`CostModel::job_seconds`] plus the skew tail — the cost of the job
    /// when the reduce phase waits for its most-loaded partition instead
    /// of an idealized balanced shuffle.
    pub fn skew_adjusted_job_seconds(&self, s: &JobStats) -> f64 {
        self.job_seconds(s) + self.shuffle_tail_seconds(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> JobStats {
        JobStats {
            input_records: 10,
            hdfs_read_bytes: 100,
            map_output_records: 10,
            map_output_bytes: 50,
            reduce_input_records: 10,
            output_records: 5,
            output_text_bytes: 25,
            hdfs_write_bytes: 50,
            reduce_tasks: 2,
            ..JobStats::default()
        }
    }

    #[test]
    fn zero_overhead_is_io_sum() {
        let m = CostModel::zero_overhead();
        let s = stats();
        // read 100 + shuffle 50 + write 50 at unit rates
        assert!((m.work_seconds(&s) - 200.0).abs() < 1e-9);
        assert!((m.job_seconds(&s) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn map_only_jobs_skip_shuffle_and_sort() {
        let m = CostModel::zero_overhead();
        let mut s = stats();
        s.reduce_tasks = 0;
        assert!((m.work_seconds(&s) - 150.0).abs() < 1e-9);
        // Map-only: the whole job is the map phase (read 100 + write 50).
        assert!((m.map_phase_seconds(&s) - 150.0).abs() < 1e-9);
        assert!((m.reduce_phase_seconds(&s) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn phase_times_partition_work_exactly() {
        for m in [CostModel::default(), CostModel::zero_overhead(), CostModel::scaled_to(1 << 20)] {
            let s = stats();
            let sum = m.map_phase_seconds(&s) + m.reduce_phase_seconds(&s);
            assert!((sum - m.work_seconds(&s)).abs() < 1e-12);
            // With a reduce phase, the output write is charged to reduce.
            assert!(
                (m.map_phase_seconds(&s)
                    - 100.0 / m.hdfs_read_bps
                    - s.input_records as f64 * m.map_cpu_s_per_record)
                    .abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn startup_adds_constant() {
        let mut m = CostModel::zero_overhead();
        m.job_startup_s = 7.0;
        let s = stats();
        assert!((m.job_seconds(&s) - (m.work_seconds(&s) + 7.0)).abs() < 1e-9);
    }

    #[test]
    fn balanced_shuffle_has_no_tail() {
        let m = CostModel::zero_overhead();
        let mut s = stats();
        s.shuffle_partition_bytes = vec![25, 25];
        assert!((m.shuffle_tail_seconds(&s) - 0.0).abs() < 1e-9);
        assert!((m.skew_adjusted_job_seconds(&s) - m.job_seconds(&s)).abs() < 1e-9);
    }

    #[test]
    fn skewed_shuffle_pays_for_its_heaviest_partition() {
        let m = CostModel::zero_overhead();
        let mut s = stats();
        // All 50 shuffle bytes land on one of the two partitions: the
        // critical path is 50 B at a half-rate share = 100 s, versus the
        // balanced estimate of 50 s — a 50 s tail.
        s.shuffle_partition_bytes = vec![50, 0];
        assert!((m.shuffle_tail_seconds(&s) - 50.0).abs() < 1e-9);
        assert!((m.skew_adjusted_job_seconds(&s) - (m.job_seconds(&s) + 50.0)).abs() < 1e-9);
        // Map-only jobs and jobs without per-partition data have no tail.
        s.reduce_tasks = 0;
        assert!((m.shuffle_tail_seconds(&s) - 0.0).abs() < 1e-9);
        let bare = stats();
        assert!((m.shuffle_tail_seconds(&bare) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn fault_counters_are_charged_time() {
        let m = CostModel::zero_overhead();
        let clean = stats();
        assert!((m.retry_seconds(&clean) - 0.0).abs() < 1e-12);
        assert!((m.fault_seconds(&clean) - 0.0).abs() < 1e-12);
        assert!((m.job_seconds(&clean) - m.work_seconds(&clean)).abs() < 1e-12);

        // One map chunk scheduled: avg map task = whole map phase (100 s);
        // reduce phase 100 s over 2 tasks = 50 s each.
        let mut s = stats();
        s.faults.map_tasks_scheduled = 1;
        assert!((m.avg_map_task_seconds(&s) - 100.0).abs() < 1e-9);
        assert!((m.avg_reduce_task_seconds(&s) - 50.0).abs() < 1e-9);

        s.faults.map_task_retries = 2;
        s.faults.maps_reexecuted = 1;
        s.faults.speculative_map_tasks = 1;
        s.faults.reduce_task_retries = 1;
        s.faults.speculative_reduce_tasks = 1;
        // 4 wasted map tasks × 100 + 2 wasted reduce tasks × 50.
        assert!((m.retry_seconds(&s) - 500.0).abs() < 1e-9);

        // A straggler overshooting by 2 average map-task times.
        s.faults.map_straggler_units = 2.0;
        assert!((m.straggler_tail_seconds(&s) - 200.0).abs() < 1e-9);
        assert!((m.fault_seconds(&s) - 700.0).abs() < 1e-9);
        assert!((m.job_seconds(&s) - (m.work_seconds(&s) + 700.0)).abs() < 1e-9);
        assert!((m.charged_work_seconds(&s) - (m.work_seconds(&s) + 700.0)).abs() < 1e-9);
    }

    #[test]
    fn map_only_faults_price_map_tasks_only() {
        let m = CostModel::zero_overhead();
        let mut s = stats();
        s.reduce_tasks = 0;
        s.faults.map_tasks_scheduled = 2;
        s.faults.map_task_retries = 1;
        s.faults.reduce_task_retries = 5; // impossible, but must price to 0
                                          // Map phase = read 100 + write 50 = 150 s over 2 tasks = 75 s each.
        assert!((m.avg_reduce_task_seconds(&s) - 0.0).abs() < 1e-12);
        assert!((m.retry_seconds(&s) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn default_model_monotone_in_bytes() {
        let m = CostModel::default();
        let small = stats();
        let mut big = stats();
        big.hdfs_read_bytes *= 10;
        big.map_output_bytes *= 10;
        big.hdfs_write_bytes *= 10;
        assert!(m.work_seconds(&big) > m.work_seconds(&small));
    }
}
