//! # mrsim — a deterministic MapReduce engine simulator
//!
//! This crate is the substrate standing in for Hadoop in the reproduction
//! of *"Scaling Unbound-Property Queries on Big RDF Data Warehouses using
//! MapReduce"* (EDBT 2015). It executes real map/shuffle/sort/reduce
//! computation over in-memory data while keeping **byte-accurate counters**
//! of the quantities the paper measures:
//!
//! * HDFS bytes read and written (text-row sizes, × replication factor);
//! * shuffle (map-output) bytes;
//! * MR cycles and full scans of the base relation;
//! * peak DFS usage against a bounded disk budget — writes that exceed the
//!   budget fail with [`MrError::DiskFull`], reproducing the paper's failed
//!   executions (bars marked `X`).
//!
//! A configurable [`CostModel`] converts counters into simulated seconds so
//! benchmark harnesses can report execution-time *shapes* comparable to the
//! paper's cluster measurements.
//!
//! ## Quick tour
//!
//! ```
//! use mrsim::{map_fn, reduce_fn, Engine, InputBinding, JobSpec};
//! use mrsim::{TypedMapEmitter, TypedOutEmitter};
//!
//! let engine = Engine::unbounded();
//! engine.put_records("words", ["a", "b", "a"].map(String::from)).unwrap();
//!
//! let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, u64>| {
//!     out.emit(&w, &1);
//!     Ok(())
//! });
//! let reducer = reduce_fn(|w: String, ones: Vec<u64>, out: &mut TypedOutEmitter<'_, String>| {
//!     out.emit(&format!("{w} {}", ones.len()))
//! });
//! let job = JobSpec::map_reduce(
//!     "wordcount",
//!     vec![InputBinding { file: "words".into(), mapper }],
//!     reducer,
//!     2,
//!     "counts",
//! );
//! let stats = engine.run_job(&job).unwrap();
//! assert_eq!(stats.reduce_groups, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod cost;
pub mod counters;
pub mod engine;
pub mod error;
pub mod faults;
pub mod hdfs;
pub mod job;
pub mod metrics;
pub mod spill;
pub mod trace;
pub mod workflow;

/// Shared deterministic hashing (re-exported from `rdf-model`): the
/// spec-stable [`hash::fnv1a`] used for reducer partitioning, plus the
/// [`hash::DetHashMap`] deterministic hash-map type for join build sides.
pub use rdf_model::hash;

pub use codec::{uvarint_len, write_uvarint, Rec, SliceReader, VarId};
pub use cost::CostModel;
pub use counters::{FaultStats, JobStats, OpCounters, WorkflowStats};
pub use engine::{default_partition, Engine};
pub use error::MrError;
pub use faults::FaultConfig;
pub use hdfs::{DfsFile, SimHdfs};
pub use job::{
    combine_fn, map_fn, map_fn_ctx, map_only_fn, map_only_fn_ctx, reduce_fn, reduce_fn_ctx,
    InputBinding, JobKind, JobSpec, MapEmitter, OutEmitter, RawCombineOp, RawMapOnlyOp, RawMapOp,
    RawReduceOp, TaskContext, TypedMapEmitter, TypedOutEmitter,
};
pub use metrics::{Histogram, MetricsRegistry};
pub use spill::{SortStrategy, SpillArena};
pub use trace::{
    ChromeTraceSink, JsonlSink, MemorySink, MultiSink, TaskPhase, TraceEvent, TraceSink,
};
pub use workflow::{RecoveryPolicy, Workflow};
