//! Arena-backed shuffle spill storage.
//!
//! A [`SpillArena`] holds one map task's (or one reduce partition's)
//! shuffle records as a single contiguous byte buffer plus one small
//! [`IndexEntry`] per record — `(offset, key_len, val_len)` with an
//! 8-byte big-endian **key-prefix cache**. Emitting appends the encoded
//! key and value straight into the buffer (no per-record `Vec`
//! allocations), and the shuffle sort reorders the index entries, not the
//! bytes.
//!
//! ## Prefix-accelerated sort
//!
//! Each entry caches the first 8 key bytes, zero-padded, as a big-endian
//! `u64`. Because big-endian integer order over zero-padded prefixes
//! equals lexicographic byte order over the prefixes themselves, and a
//! shorter key that is a prefix of a longer key also compares less in
//! both orders, `prefix(a) < prefix(b)` implies `key(a) < key(b)`. The
//! common case of the sort is therefore a single `u64` compare; full key
//! (then value) memcmp runs only on prefix ties.
//!
//! ## Short keys never memcmp
//!
//! When two keys tie on the prefix *and both fit entirely inside the
//! 8-byte cache* (`key_len ≤ 8`), their zero-padded forms are equal, so
//! the longer key is the shorter key followed by zero bytes: lexicographic
//! order equals length order, and equal lengths mean byte-identical keys.
//! The sort therefore breaks such ties with a `key_len` compare and
//! grouping with a `key_len` equality check — no memcmp. LEB128 varint
//! dictionary-id keys (≤ 5 bytes for a `u32`) always take this path; in
//! fact distinct *canonical* varints never even tie on the prefix (a
//! longer encoding extending a shorter one would need a continuation bit
//! on the shorter's final byte), so ID-native shuffles sort and group on
//! integer compares alone. Note the tie-break is still required in
//! general: `"a"` and `"a\0"` share a prefix and differ only in length.
//!
//! ## Determinism
//!
//! The sort is `sort_unstable_by` over `(prefix, key bytes, value
//! bytes)`. Entries that compare equal have byte-identical keys *and*
//! values, so any permutation of them yields the same record stream —
//! unstable sorting is observationally deterministic, exactly as it was
//! for the owned-pair representation this replaces.

/// One record's index entry: where its key/value bytes live in the arena,
/// plus the sort-prefix cache.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IndexEntry {
    /// First 8 key bytes, zero-padded, as a big-endian `u64`.
    prefix: u64,
    /// Byte offset of the key in the arena (the value follows the key).
    off: u32,
    /// Encoded key length in bytes.
    key_len: u32,
    /// Encoded value length in bytes.
    val_len: u32,
}

/// Compute the 8-byte big-endian, zero-padded prefix of `key`.
#[inline]
fn key_prefix(key: &[u8]) -> u64 {
    if key.len() >= 8 {
        u64::from_be_bytes(key[..8].try_into().expect("8-byte slice"))
    } else {
        let mut p = [0u8; 8];
        p[..key.len()].copy_from_slice(key);
        u64::from_be_bytes(p)
    }
}

/// A contiguous spill buffer of `(key, value)` records with a sortable
/// record index. See the module docs for layout and determinism notes.
#[derive(Debug, Default, Clone)]
pub(crate) struct SpillArena {
    /// Concatenated `key ++ value` encodings of every record.
    bytes: Vec<u8>,
    /// One entry per record, in emission order until [`sort_unstable`]
    /// reorders them.
    ///
    /// [`sort_unstable`]: SpillArena::sort_unstable
    entries: Vec<IndexEntry>,
    /// Sum of the simulated text-row sizes of every record (the map
    /// phase's byte counters are per-bucket sums, so the per-record value
    /// never needs to be stored).
    text_bytes: u64,
    /// Checksum recorded by [`seal`](Self::seal), cleared by any mutation
    /// through the normal API. `None` = never sealed (nothing to verify).
    sealed: Option<u64>,
}

impl SpillArena {
    /// Number of records.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no record has been spilled.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total simulated text bytes of the spilled records.
    pub(crate) fn text_bytes(&self) -> u64 {
        self.text_bytes
    }

    /// Total *post-encoding* wire bytes of the spilled records — the
    /// exact size of the concatenated key/value encodings. This is what
    /// actually crosses the simulated network; it diverges from
    /// [`text_bytes`](Self::text_bytes) whenever the codec is not the
    /// text model (e.g. varint dictionary ids vs. lexical tokens).
    pub(crate) fn encoded_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// In-memory footprint of the arena: the byte buffer plus one
    /// [`IndexEntry`] per record. Arenas only ever grow (emission,
    /// `absorb`; sorting reorders entries in place), so the current
    /// footprint *is* the lifetime high-water mark — the engine's memory
    /// accounting reads it after each phase without per-push bookkeeping.
    pub(crate) fn footprint_bytes(&self) -> u64 {
        self.bytes.len() as u64 + (self.entries.len() * std::mem::size_of::<IndexEntry>()) as u64
    }

    /// Encoded wire size (key + value bytes) of each record, in current
    /// index order — the per-record sizes behind the
    /// `record.shuffle.bytes` histogram.
    pub(crate) fn record_wire_sizes(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|e| u64::from(e.key_len) + u64::from(e.val_len))
    }

    /// Append one record: copy the already-encoded key, then let
    /// `encode_val` append the value bytes directly into the arena.
    pub(crate) fn push(
        &mut self,
        key: &[u8],
        text_size: u64,
        encode_val: impl FnOnce(&mut Vec<u8>),
    ) {
        let off = u32::try_from(self.bytes.len()).expect("spill arena exceeds 4 GiB");
        self.bytes.extend_from_slice(key);
        let val_start = self.bytes.len();
        encode_val(&mut self.bytes);
        self.entries.push(IndexEntry {
            prefix: key_prefix(key),
            off,
            key_len: u32::try_from(key.len()).expect("key exceeds 4 GiB"),
            val_len: u32::try_from(self.bytes.len() - val_start).expect("value exceeds 4 GiB"),
        });
        self.text_bytes += text_size;
        self.sealed = None;
    }

    /// Append one already-encoded `(key, value)` record.
    pub(crate) fn push_pair(&mut self, key: &[u8], value: &[u8], text_size: u64) {
        self.push(key, text_size, |buf| buf.extend_from_slice(value));
    }

    /// Key bytes of record `i` (current index order).
    #[inline]
    pub(crate) fn key(&self, i: usize) -> &[u8] {
        let e = &self.entries[i];
        &self.bytes[e.off as usize..e.off as usize + e.key_len as usize]
    }

    /// Value bytes of record `i` (current index order).
    #[inline]
    pub(crate) fn value(&self, i: usize) -> &[u8] {
        let e = &self.entries[i];
        let start = e.off as usize + e.key_len as usize;
        &self.bytes[start..start + e.val_len as usize]
    }

    /// True when records `i` and `j` have byte-identical keys. The prefix
    /// check short-circuits the common inequality case, and the length
    /// check lets keys that fit the prefix cache (varint ids in
    /// particular) skip the memcmp entirely: equal prefixes plus equal
    /// lengths ≤ 8 imply byte-identical keys (see module docs).
    #[inline]
    pub(crate) fn keys_equal(&self, i: usize, j: usize) -> bool {
        let (a, b) = (&self.entries[i], &self.entries[j]);
        a.prefix == b.prefix
            && a.key_len == b.key_len
            && (a.key_len <= 8 || self.key(i) == self.key(j))
    }

    /// Iterate `(key, value)` slices in current index order.
    #[cfg(test)]
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        (0..self.len()).map(|i| (self.key(i), self.value(i)))
    }

    /// Append every record of `other`, preserving its record order: a
    /// byte memcpy plus an offset rebase per entry — the whole-bucket
    /// concatenation the shuffle driver performs.
    pub(crate) fn absorb(&mut self, other: &SpillArena) {
        let base = u32::try_from(self.bytes.len()).expect("spill arena exceeds 4 GiB");
        self.bytes.extend_from_slice(&other.bytes);
        self.entries.extend(other.entries.iter().map(|e| IndexEntry {
            off: base.checked_add(e.off).expect("spill arena exceeds 4 GiB"),
            ..*e
        }));
        self.text_bytes += other.text_bytes;
        self.sealed = None;
    }

    /// Compute the arena's integrity checksum: the byte buffer as one
    /// framed block, then each index entry's `(off, key_len, val_len)` in
    /// current index order — so both the bytes *and* the record layout
    /// (including post-sort record order) are covered, CRC-framed-block
    /// style.
    fn checksum(&self) -> u64 {
        let mut c = crate::hash::BlockChecksum::default();
        c.update(&self.bytes);
        for e in &self.entries {
            let mut frame = [0u8; 12];
            frame[..4].copy_from_slice(&e.off.to_le_bytes());
            frame[4..8].copy_from_slice(&e.key_len.to_le_bytes());
            frame[8..].copy_from_slice(&e.val_len.to_le_bytes());
            c.update(&frame);
        }
        c.finish()
    }

    /// Seal the arena: record its checksum for later [`verify`]. The map
    /// side calls this once a bucket's contents are final (after the
    /// combiner, if any); any later mutation through the normal API
    /// clears the seal.
    ///
    /// [`verify`]: Self::verify
    pub(crate) fn seal(&mut self) {
        self.sealed = Some(self.checksum());
    }

    /// Recompute the checksum and compare against the seal. `Ok(())` for
    /// an unsealed arena (nothing committed to verify against);
    /// `Err((expected, actual))` on mismatch — the shuffle's
    /// fetch-failure signal.
    pub(crate) fn verify(&self) -> Result<(), (u64, u64)> {
        match self.sealed {
            None => Ok(()),
            Some(expected) => {
                let actual = self.checksum();
                if actual == expected {
                    Ok(())
                } else {
                    Err((expected, actual))
                }
            }
        }
    }

    /// Flip one bit of buffer byte `offset` **without clearing the
    /// seal** — the fault injector's model of silent corruption in
    /// transit or at rest. Flipping the same offset again restores the
    /// original contents (the re-executed map's clean output).
    pub(crate) fn flip_byte(&mut self, offset: usize) {
        self.bytes[offset] ^= 0x01;
    }

    /// Sort the record index by `(key bytes, value bytes)`, comparing
    /// cached prefixes first and falling back to memcmp only on prefix
    /// ties — and, when both tied keys fit the prefix cache, breaking the
    /// tie with a length compare instead of a memcmp (see module docs).
    /// Unstable, but observationally deterministic (see module docs).
    pub(crate) fn sort_unstable(&mut self) {
        let SpillArena { bytes, entries, .. } = self;
        let slice = |off: u32, len: u32| &bytes[off as usize..off as usize + len as usize];
        entries.sort_unstable_by(|a, b| {
            a.prefix
                .cmp(&b.prefix)
                .then_with(|| {
                    if a.key_len <= 8 && b.key_len <= 8 {
                        // Equal prefixes with both keys inside the cache:
                        // the longer key is the shorter plus zero bytes,
                        // so lexicographic order is length order.
                        a.key_len.cmp(&b.key_len)
                    } else {
                        slice(a.off, a.key_len).cmp(slice(b.off, b.key_len))
                    }
                })
                .then_with(|| {
                    slice(a.off + a.key_len, a.val_len).cmp(slice(b.off + b.key_len, b.val_len))
                })
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(arena: &SpillArena) -> Vec<(Vec<u8>, Vec<u8>)> {
        arena.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect()
    }

    #[test]
    fn push_and_slice_roundtrip() {
        let mut a = SpillArena::default();
        a.push(b"key1", 7, |buf| buf.extend_from_slice(b"value1"));
        a.push_pair(b"k", b"", 3);
        assert_eq!(a.len(), 2);
        assert_eq!(a.key(0), b"key1");
        assert_eq!(a.value(0), b"value1");
        assert_eq!(a.key(1), b"k");
        assert_eq!(a.value(1), b"");
        assert_eq!(a.text_bytes(), 10);
    }

    #[test]
    fn prefix_matches_lexicographic_order() {
        // prefix(a) < prefix(b) must imply key(a) < key(b) bytewise, for
        // keys shorter, longer, and exactly 8 bytes — including embedded
        // zero bytes (which collide with padding and must fall through to
        // the memcmp tie-break, never mis-order).
        let keys: Vec<&[u8]> = vec![
            b"",
            b"\0",
            b"\0a",
            b"a",
            b"a\0",
            b"ab",
            b"abcdefgh",
            b"abcdefghi",
            b"abcdefgi",
            b"b",
            b"\xff\xff\xff\xff\xff\xff\xff\xff\xff",
        ];
        for x in &keys {
            for y in &keys {
                let (px, py) = (key_prefix(x), key_prefix(y));
                if px < py {
                    assert!(x < y, "{x:?} vs {y:?}");
                } else if px > py {
                    assert!(x > y, "{x:?} vs {y:?}");
                }
                // px == py says nothing; the sort memcmps the full keys.
            }
        }
    }

    #[test]
    fn sort_matches_owned_pair_reference() {
        let mut a = SpillArena::default();
        let mut reference: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in [5u32, 3, 11, 3, 0, 7, 3] {
            let key = format!("key{i}").into_bytes();
            let val = format!("v{}", i * 2).into_bytes();
            a.push_pair(&key, &val, 1);
            reference.push((key, val));
        }
        a.sort_unstable();
        reference.sort();
        assert_eq!(collect(&a), reference);
    }

    #[test]
    fn prefix_tie_keys_sort_and_group_correctly() {
        // All keys share the same 8-byte prefix; order must come from the
        // tails (memcmp fallback), and grouping must separate them.
        let tails = ["", "a", "aa", "b", "\0"];
        let mut a = SpillArena::default();
        for t in tails.iter().rev() {
            let key = format!("SHARED8B{t}");
            a.push_pair(key.as_bytes(), b"v", 1);
        }
        // Two extra records with a duplicate key, to exercise grouping.
        a.push_pair(b"SHARED8Ba", b"w", 1);
        a.push_pair(b"SHARED8B", b"u", 1);
        a.sort_unstable();

        let mut reference: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for t in tails.iter().rev() {
            reference.push((format!("SHARED8B{t}").into_bytes(), b"v".to_vec()));
        }
        reference.push((b"SHARED8Ba".to_vec(), b"w".to_vec()));
        reference.push((b"SHARED8B".to_vec(), b"u".to_vec()));
        reference.sort();
        assert_eq!(collect(&a), reference);

        // Group boundaries: equal keys adjacent, distinct keys separated.
        let mut groups = Vec::new();
        let mut i = 0;
        while i < a.len() {
            let mut j = i + 1;
            while j < a.len() && a.keys_equal(i, j) {
                j += 1;
            }
            groups.push((a.key(i).to_vec(), j - i));
            i = j;
        }
        assert_eq!(
            groups,
            vec![
                (b"SHARED8B".to_vec(), 2),
                (b"SHARED8B\0".to_vec(), 1),
                (b"SHARED8Ba".to_vec(), 2),
                (b"SHARED8Baa".to_vec(), 1),
                (b"SHARED8Bb".to_vec(), 1),
            ]
        );
    }

    #[test]
    fn absorb_concatenates_in_order() {
        let mut a = SpillArena::default();
        a.push_pair(b"z", b"1", 2);
        let mut b = SpillArena::default();
        b.push_pair(b"a", b"2", 3);
        b.push_pair(b"m", b"3", 4);
        a.absorb(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.text_bytes(), 9);
        assert_eq!(
            collect(&a),
            vec![
                (b"z".to_vec(), b"1".to_vec()),
                (b"a".to_vec(), b"2".to_vec()),
                (b"m".to_vec(), b"3".to_vec()),
            ]
        );
    }

    #[test]
    fn encoded_bytes_is_exact_buffer_size() {
        let mut a = SpillArena::default();
        assert_eq!(a.encoded_bytes(), 0);
        a.push_pair(b"key1", b"value1", 99);
        a.push_pair(b"k", b"", 99);
        // 4 + 6 + 1 + 0 buffer bytes, regardless of simulated text size.
        assert_eq!(a.encoded_bytes(), 11);
        let mut b = SpillArena::default();
        b.push_pair(b"xy", b"z", 1);
        a.absorb(&b);
        assert_eq!(a.encoded_bytes(), 14);
    }

    #[test]
    fn short_key_length_ties_sort_and_group_like_memcmp() {
        // Keys that share a prefix cache and fit inside it entirely —
        // including embedded/trailing NULs, the adversarial case for the
        // zero-padding argument. The length-compare fast path must agree
        // with full lexicographic order, and grouping must not merge
        // "a" with "a\0".
        let keys: Vec<&[u8]> =
            vec![b"", b"\0", b"\0\0", b"a", b"a\0", b"a\0\0", b"a\0b", b"ab", b"abcdefgh"];
        let mut a = SpillArena::default();
        for (i, k) in keys.iter().enumerate().rev() {
            a.push_pair(k, format!("v{i}").as_bytes(), 1);
            a.push_pair(k, format!("v{i}").as_bytes(), 1); // duplicate for grouping
        }
        a.sort_unstable();
        let mut reference: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            for _ in 0..2 {
                reference.push((k.to_vec(), format!("v{i}").into_bytes()));
            }
        }
        reference.sort();
        assert_eq!(collect(&a), reference);

        // Each distinct key forms exactly one group of two records.
        let mut i = 0;
        let mut groups = Vec::new();
        while i < a.len() {
            let mut j = i + 1;
            while j < a.len() && a.keys_equal(i, j) {
                j += 1;
            }
            groups.push((a.key(i).to_vec(), j - i));
            i = j;
        }
        assert_eq!(groups.len(), keys.len());
        for (k, n) in &groups {
            assert_eq!(*n, 2, "key {k:?} must group exactly its two records");
        }
    }

    #[test]
    fn composite_varint_keys_share_prefix_and_still_sort() {
        // Single canonical varints never share an 8-byte prefix (see
        // module docs), so the prefix-tie path for ID traffic is reached
        // via *composite* keys — e.g. a (tag, id) pair whose varint
        // concatenation exceeds 8 bytes. Build keys sharing the first 8
        // bytes but diverging in the tail.
        let composite = |a: u32, b: u32| {
            let mut k = Vec::new();
            crate::codec::write_uvarint(&mut k, a);
            crate::codec::write_uvarint(&mut k, b);
            k
        };
        // varint(u32::MAX) = 5 bytes, varint(x >= 2^21) >= 4 bytes: the
        // 9-byte keys below share their first 8 bytes whenever the second
        // component agrees in its low 28 bits' first 3 encoded bytes.
        let k1 = composite(u32::MAX, 0x0fff_ffff); // ff ff ff ff 0f ff ff ff 7f
        let k2 = composite(u32::MAX, 0x07ff_ffff); // ff ff ff ff 0f ff ff ff 3f
        assert_eq!(k1.len(), 9);
        assert_eq!(k2.len(), 9);
        assert_eq!(key_prefix(&k1), key_prefix(&k2), "test needs a genuine prefix tie");
        assert_ne!(k1, k2);

        let mut a = SpillArena::default();
        a.push_pair(&k1, b"big", 1);
        a.push_pair(&k2, b"small", 1);
        a.push_pair(&k1, b"big2", 1);
        a.sort_unstable();
        // Tail byte 0x3f < 0x7f puts k2 first; the two k1 records group.
        assert_eq!(
            collect(&a),
            vec![
                (k2.clone(), b"small".to_vec()),
                (k1.clone(), b"big".to_vec()),
                (k1.clone(), b"big2".to_vec()),
            ]
        );
        assert!(a.keys_equal(1, 2));
        assert!(!a.keys_equal(0, 1));
    }

    #[test]
    fn distinct_canonical_varints_never_share_a_prefix() {
        // The claim the integer-compare fast path rests on: single
        // canonical u32 varints are prefix-complete, so two distinct ids
        // always differ within the 8-byte cache. Sample the LEB128 length
        // boundaries plus a spread of interior values.
        let mut ids: Vec<u32> = vec![
            0,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            0xfff_ffff,
            0x1000_0000,
            u32::MAX,
        ];
        for i in 0..=64u32 {
            ids.push(i.wrapping_mul(0x9e37_79b9)); // golden-ratio spread
        }
        ids.sort_unstable();
        ids.dedup();
        let encode = |v: u32| {
            let mut k = Vec::new();
            crate::codec::write_uvarint(&mut k, v);
            k
        };
        for x in &ids {
            for y in &ids {
                let (kx, ky) = (encode(*x), encode(*y));
                if x != y {
                    assert_ne!(
                        key_prefix(&kx),
                        key_prefix(&ky),
                        "ids {x} and {y} must not collide in the prefix cache"
                    );
                }
                // And prefix order must equal id order (both ≤ 8 bytes, so
                // the padded prefix *is* the sort key).
                assert_eq!(
                    key_prefix(&kx).cmp(&key_prefix(&ky)).then(kx.len().cmp(&ky.len())),
                    kx.cmp(&ky),
                    "prefix+length order must match byte order for {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn footprint_and_record_sizes_track_contents() {
        let mut a = SpillArena::default();
        assert_eq!(a.footprint_bytes(), 0);
        a.push_pair(b"key1", b"value1", 99);
        a.push_pair(b"k", b"", 99);
        let entry = std::mem::size_of::<IndexEntry>() as u64;
        assert_eq!(a.footprint_bytes(), 11 + 2 * entry);
        assert_eq!(a.record_wire_sizes().collect::<Vec<_>>(), vec![10, 1]);
        let mut b = SpillArena::default();
        b.push_pair(b"xy", b"z", 1);
        a.absorb(&b);
        assert_eq!(a.footprint_bytes(), 14 + 3 * entry);
        // Sorting moves no bytes: the footprint is unchanged, and the
        // per-record sizes are a permutation of the pre-sort sizes.
        a.sort_unstable();
        assert_eq!(a.footprint_bytes(), 14 + 3 * entry);
        let mut sizes: Vec<u64> = a.record_wire_sizes().collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 10]);
    }

    #[test]
    fn seal_and_verify_catch_flips() {
        let mut a = SpillArena::default();
        a.push_pair(b"key1", b"value1", 1);
        a.push_pair(b"key2", b"value2", 1);
        // Unsealed arenas have nothing to verify against.
        assert_eq!(a.verify(), Ok(()));
        a.seal();
        assert_eq!(a.verify(), Ok(()));
        // A silent bit flip is caught, and restoring the byte re-verifies.
        a.flip_byte(3);
        let err = a.verify().expect_err("flip must be detected");
        assert_ne!(err.0, err.1);
        a.flip_byte(3);
        assert_eq!(a.verify(), Ok(()));
        // Every byte position is covered.
        for off in 0..a.encoded_bytes() as usize {
            a.flip_byte(off);
            assert!(a.verify().is_err(), "flip at {off} undetected");
            a.flip_byte(off);
        }
        // Mutation through the normal API clears the seal.
        a.push_pair(b"key3", b"v", 1);
        assert_eq!(a.verify(), Ok(()));
    }

    #[test]
    fn seal_covers_record_order() {
        // Same bytes, different index order (post-sort) must checksum
        // differently: the record stream is entries-order, not byte-order.
        let mut a = SpillArena::default();
        a.push_pair(b"zz", b"1", 1);
        a.push_pair(b"aa", b"2", 1);
        a.seal();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.seal();
        assert_eq!(a.verify(), Ok(()));
        assert_eq!(sorted.verify(), Ok(()));
        assert_ne!(a.sealed, sorted.sealed);
        // absorb clears the seal on the accumulator.
        let mut acc = SpillArena::default();
        acc.seal();
        acc.absorb(&a);
        assert_eq!(acc.sealed, None);
    }

    #[test]
    fn equal_keys_sort_by_value() {
        let mut a = SpillArena::default();
        a.push_pair(b"k", b"bb", 1);
        a.push_pair(b"k", b"aa", 1);
        a.push_pair(b"k", b"", 1);
        a.sort_unstable();
        assert_eq!(
            collect(&a),
            vec![
                (b"k".to_vec(), b"".to_vec()),
                (b"k".to_vec(), b"aa".to_vec()),
                (b"k".to_vec(), b"bb".to_vec()),
            ]
        );
    }
}
