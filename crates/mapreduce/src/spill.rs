//! Arena-backed shuffle spill storage.
//!
//! A [`SpillArena`] holds one map task's (or one reduce partition's)
//! shuffle records as a single contiguous byte buffer plus one small
//! index entry per record — `(offset, key_len, val_len)` with an
//! 8-byte big-endian **key-prefix cache**. Emitting appends the encoded
//! key and value straight into the buffer (no per-record `Vec`
//! allocations), and the shuffle sort reorders the index entries, not the
//! bytes.
//!
//! ## Prefix cache
//!
//! Each entry caches the first 8 key bytes, zero-padded, as a big-endian
//! `u64`. Because big-endian integer order over zero-padded prefixes
//! equals lexicographic byte order over the prefixes themselves, and a
//! shorter key that is a prefix of a longer key also compares less in
//! both orders, `prefix(a) < prefix(b)` implies `key(a) < key(b)`. The
//! prefix decides almost every ordering question; full key (then value)
//! memcmp runs only on prefix ties.
//!
//! ## Sort and merge
//!
//! [`SortStrategy::Radix`] (the default) orders the index with an LSD
//! radix sort over the cached prefixes: one histogram pass over all 8
//! prefix bytes, then a stable counting pass per byte from least to most
//! significant, **skipping bytes that are constant across the arena**
//! (varint-id keys zero-pad the low prefix bytes, IRI keys share their
//! scheme bytes — most passes skip). Entries inside a prefix-equal run
//! are then finished with a comparison sort over `(key tail, value,
//! offset)`; small arenas skip radix entirely and comparison-sort.
//! [`SortStrategy::Comparison`] is the pre-radix `sort_unstable_by`
//! pipeline, kept for differential testing.
//!
//! Sorting marks the arena as one **sorted run**. The shuffle driver
//! absorbs map-side-sorted buckets with [`SpillArena::absorb_sorted`],
//! which concatenates bytes as before but records each bucket as a run,
//! and the reduce side calls [`SpillArena::merge_sorted_runs`] — a k-way
//! index-entry merge over the runs (iterative pairwise ping-pong merge,
//! no payload copies) — instead of paying a second full sort.
//!
//! ## Short keys never memcmp
//!
//! When two keys tie on the prefix *and both fit entirely inside the
//! 8-byte cache* (`key_len ≤ 8`), their zero-padded forms are equal, so
//! the longer key is the shorter key followed by zero bytes: lexicographic
//! order equals length order, and equal lengths mean byte-identical keys.
//! The sort therefore breaks such ties with a `key_len` compare and
//! grouping with a `key_len` equality check — no memcmp. LEB128 varint
//! dictionary-id keys (≤ 5 bytes for a `u32`) always take this path; in
//! fact distinct *canonical* varints never even tie on the prefix (a
//! longer encoding extending a shorter one would need a continuation bit
//! on the shorter's final byte), so ID-native shuffles sort and group on
//! integer compares alone. Note the tie-break is still required in
//! general: `"a"` and `"a\0"` share a prefix and differ only in length.
//!
//! ## Determinism
//!
//! Both strategies realize the same **canonical total order**: `(prefix,
//! key bytes, value bytes, offset)`. Entries that compare equal under
//! `(prefix, key, value)` are byte-identical records, so any permutation
//! of them yields the same record stream — the trailing offset tie-break
//! adds nothing observable, but it makes the order *total* (offsets are
//! unique), so radix, comparison, and the k-way merge all produce the
//! identical index array, bit for bit, checksums included. That is what
//! the differential tests pin.

/// One record's index entry: where its key/value bytes live in the arena,
/// plus the sort-prefix cache.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IndexEntry {
    /// First 8 key bytes, zero-padded, as a big-endian `u64`.
    prefix: u64,
    /// Byte offset of the key in the arena (the value follows the key).
    off: u32,
    /// Encoded key length in bytes.
    key_len: u32,
    /// Encoded value length in bytes.
    val_len: u32,
}

/// Compute the 8-byte big-endian, zero-padded prefix of `key`.
#[inline]
fn key_prefix(key: &[u8]) -> u64 {
    if key.len() >= 8 {
        u64::from_be_bytes(key[..8].try_into().expect("8-byte slice"))
    } else {
        let mut p = [0u8; 8];
        p[..key.len()].copy_from_slice(key);
        u64::from_be_bytes(p)
    }
}

/// Which algorithm orders a [`SpillArena`]'s record index.
///
/// Both strategies produce the identical index array (see the module
/// docs on the canonical total order); `Comparison` exists so the radix
/// pipeline can be differentially tested and benchmarked against the
/// path it replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortStrategy {
    /// LSD radix sort over the cached prefixes, with map-side bucket
    /// sorting and a k-way sorted-run merge at the reduce side. Default.
    #[default]
    Radix,
    /// The pre-radix comparison sort (`sort_unstable_by` over the
    /// canonical order), with the reduce side paying a full sort after
    /// absorb. Kept for differential testing.
    Comparison,
}

impl SortStrategy {
    /// Stable lowercase tag recorded in job stats and trace output.
    pub fn as_str(self) -> &'static str {
        match self {
            SortStrategy::Radix => "radix",
            SortStrategy::Comparison => "comparison",
        }
    }
}

/// The canonical total order over index entries: `(prefix, key bytes,
/// value bytes, offset)` — with the short-key length fast path on prefix
/// ties (see module docs). Total because offsets are unique within an
/// arena; every sort/merge path realizes exactly this order.
#[inline]
fn cmp_entries(bytes: &[u8], a: &IndexEntry, b: &IndexEntry) -> std::cmp::Ordering {
    let slice = |off: u32, len: u32| &bytes[off as usize..off as usize + len as usize];
    a.prefix
        .cmp(&b.prefix)
        .then_with(|| {
            if a.key_len <= 8 && b.key_len <= 8 {
                // Equal prefixes with both keys inside the cache: the
                // longer key is the shorter plus zero bytes, so
                // lexicographic order is length order.
                a.key_len.cmp(&b.key_len)
            } else {
                slice(a.off, a.key_len).cmp(slice(b.off, b.key_len))
            }
        })
        .then_with(|| slice(a.off + a.key_len, a.val_len).cmp(slice(b.off + b.key_len, b.val_len)))
        .then_with(|| a.off.cmp(&b.off))
}

/// Arenas below this size skip the radix passes: the histogram setup
/// costs more than a comparison sort of a handful of entries.
const RADIX_FALLBACK: usize = 64;

/// A contiguous spill buffer of `(key, value)` records with a sortable
/// record index. See the module docs for layout and determinism notes.
#[derive(Debug, Default, Clone)]
pub struct SpillArena {
    /// Concatenated `key ++ value` encodings of every record.
    bytes: Vec<u8>,
    /// One entry per record, in emission order until [`sort_unstable`]
    /// reorders them.
    ///
    /// [`sort_unstable`]: SpillArena::sort_unstable
    entries: Vec<IndexEntry>,
    /// Sum of the simulated text-row sizes of every record (the map
    /// phase's byte counters are per-bucket sums, so the per-record value
    /// never needs to be stored).
    text_bytes: u64,
    /// Checksum recorded by [`seal`](Self::seal), cleared by any mutation
    /// through the normal API. `None` = never sealed (nothing to verify).
    sealed: Option<u64>,
    /// Exclusive end index (into `entries`) of each tracked sorted run.
    /// Valid only while the last boundary equals `entries.len()`; empty
    /// or stale boundaries mean "no run structure" and force a full
    /// sort. Driver-side bookkeeping, not data-plane bytes, so it is
    /// excluded from [`footprint_bytes`](Self::footprint_bytes).
    runs: Vec<u32>,
}

impl SpillArena {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no record has been spilled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total simulated text bytes of the spilled records.
    pub(crate) fn text_bytes(&self) -> u64 {
        self.text_bytes
    }

    /// Total *post-encoding* wire bytes of the spilled records — the
    /// exact size of the concatenated key/value encodings. This is what
    /// actually crosses the simulated network; it diverges from
    /// [`text_bytes`](Self::text_bytes) whenever the codec is not the
    /// text model (e.g. varint dictionary ids vs. lexical tokens).
    pub(crate) fn encoded_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// In-memory footprint of the arena: the byte buffer plus one
    /// [`IndexEntry`] per record. Arenas only ever grow (emission,
    /// `absorb`; sorting reorders entries in place), so the current
    /// footprint *is* the lifetime high-water mark — the engine's memory
    /// accounting reads it after each phase without per-push bookkeeping.
    pub(crate) fn footprint_bytes(&self) -> u64 {
        self.bytes.len() as u64 + (self.entries.len() * std::mem::size_of::<IndexEntry>()) as u64
    }

    /// Encoded wire size (key + value bytes) of each record, in current
    /// index order — the per-record sizes behind the
    /// `record.shuffle.bytes` histogram.
    pub(crate) fn record_wire_sizes(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|e| u64::from(e.key_len) + u64::from(e.val_len))
    }

    /// Append one record: copy the already-encoded key, then let
    /// `encode_val` append the value bytes directly into the arena.
    pub fn push(&mut self, key: &[u8], text_size: u64, encode_val: impl FnOnce(&mut Vec<u8>)) {
        let off = u32::try_from(self.bytes.len()).expect("spill arena exceeds 4 GiB");
        self.bytes.extend_from_slice(key);
        let val_start = self.bytes.len();
        encode_val(&mut self.bytes);
        self.entries.push(IndexEntry {
            prefix: key_prefix(key),
            off,
            key_len: u32::try_from(key.len()).expect("key exceeds 4 GiB"),
            val_len: u32::try_from(self.bytes.len() - val_start).expect("value exceeds 4 GiB"),
        });
        self.text_bytes += text_size;
        self.sealed = None;
        self.runs.clear();
    }

    /// Append one already-encoded `(key, value)` record.
    pub fn push_pair(&mut self, key: &[u8], value: &[u8], text_size: u64) {
        self.push(key, text_size, |buf| buf.extend_from_slice(value));
    }

    /// Key bytes of record `i` (current index order).
    #[inline]
    pub fn key(&self, i: usize) -> &[u8] {
        let e = &self.entries[i];
        &self.bytes[e.off as usize..e.off as usize + e.key_len as usize]
    }

    /// Value bytes of record `i` (current index order).
    #[inline]
    pub fn value(&self, i: usize) -> &[u8] {
        let e = &self.entries[i];
        let start = e.off as usize + e.key_len as usize;
        &self.bytes[start..start + e.val_len as usize]
    }

    /// True when records `i` and `j` have byte-identical keys.
    #[inline]
    pub fn keys_equal(&self, i: usize, j: usize) -> bool {
        let (a, b) = (&self.entries[i], &self.entries[j]);
        if a.prefix != b.prefix {
            // Differing prefixes settle inequality outright — in
            // particular two *full* prefixes (`key_len > 8` on both
            // sides) jump straight here without touching the lengths,
            // the hot path for long-key grouping.
            return false;
        }
        // Prefix tie: equal lengths ≤ 8 imply byte-identical keys (both
        // fit the cache, see module docs) — varint-id keys never memcmp.
        a.key_len == b.key_len && (a.key_len <= 8 || self.key(i) == self.key(j))
    }

    /// Iterate `(key, value)` slices in current index order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        (0..self.len()).map(|i| (self.key(i), self.value(i)))
    }

    /// Iterate maximal ranges of equal-key records in current index
    /// order. Only meaningful on a sorted (or merged) arena, where equal
    /// keys are adjacent — this is the one grouping loop shared by the
    /// combiner and the reduce side.
    pub fn group_ranges(&self) -> GroupRanges<'_> {
        GroupRanges { arena: self, start: 0 }
    }

    /// Append every record of `other`, preserving its record order: a
    /// byte memcpy plus an offset rebase per entry — the whole-bucket
    /// concatenation the shuffle driver performs. Drops any tracked run
    /// structure; use [`absorb_sorted`](Self::absorb_sorted) when the
    /// incoming bucket is known-sorted.
    pub fn absorb(&mut self, other: &SpillArena) {
        self.runs.clear();
        self.absorb_bytes(other);
    }

    /// [`absorb`](Self::absorb), but record the incoming bucket as one
    /// sorted run so the reduce side can
    /// [`merge_sorted_runs`](Self::merge_sorted_runs) instead of paying
    /// a full re-sort. The caller guarantees `other` is sorted (the
    /// driver only routes map-side-sorted, seal-verified buckets here).
    pub fn absorb_sorted(&mut self, other: &SpillArena) {
        debug_assert_eq!(
            self.runs.last().map_or(0, |&e| e as usize),
            self.entries.len(),
            "absorb_sorted on an accumulator without run structure"
        );
        let before = self.entries.len();
        self.absorb_bytes(other);
        let end = self.entries.len();
        if end > before {
            self.runs.push(u32::try_from(end).expect("spill arena exceeds 4 Gi records"));
        }
    }

    fn absorb_bytes(&mut self, other: &SpillArena) {
        let base = u32::try_from(self.bytes.len()).expect("spill arena exceeds 4 GiB");
        self.bytes.extend_from_slice(&other.bytes);
        self.entries.extend(other.entries.iter().map(|e| IndexEntry {
            off: base.checked_add(e.off).expect("spill arena exceeds 4 GiB"),
            ..*e
        }));
        self.text_bytes += other.text_bytes;
        self.sealed = None;
    }

    /// Number of tracked sorted runs, or 0 when the arena has no valid
    /// run structure (freshly pushed records, or a plain
    /// [`absorb`](Self::absorb)).
    pub fn sorted_run_count(&self) -> usize {
        if self.runs.last().map_or(0, |&e| e as usize) == self.entries.len() {
            self.runs.len()
        } else {
            0
        }
    }

    /// Compute the arena's integrity checksum: the byte buffer as one
    /// framed block, then each index entry's `(off, key_len, val_len)` in
    /// current index order — so both the bytes *and* the record layout
    /// (including post-sort record order) are covered, CRC-framed-block
    /// style.
    fn checksum(&self) -> u64 {
        let mut c = crate::hash::BlockChecksum::default();
        c.update(&self.bytes);
        for e in &self.entries {
            let mut frame = [0u8; 12];
            frame[..4].copy_from_slice(&e.off.to_le_bytes());
            frame[4..8].copy_from_slice(&e.key_len.to_le_bytes());
            frame[8..].copy_from_slice(&e.val_len.to_le_bytes());
            c.update(&frame);
        }
        c.finish()
    }

    /// Seal the arena: record its checksum for later [`verify`]. The map
    /// side calls this once a bucket's contents are final (after the
    /// combiner, if any); any later mutation through the normal API
    /// clears the seal.
    ///
    /// [`verify`]: Self::verify
    pub(crate) fn seal(&mut self) {
        self.sealed = Some(self.checksum());
    }

    /// Recompute the checksum and compare against the seal. `Ok(())` for
    /// an unsealed arena (nothing committed to verify against);
    /// `Err((expected, actual))` on mismatch — the shuffle's
    /// fetch-failure signal.
    pub(crate) fn verify(&self) -> Result<(), (u64, u64)> {
        match self.sealed {
            None => Ok(()),
            Some(expected) => {
                let actual = self.checksum();
                if actual == expected {
                    Ok(())
                } else {
                    Err((expected, actual))
                }
            }
        }
    }

    /// Flip one bit of buffer byte `offset` **without clearing the
    /// seal** — the fault injector's model of silent corruption in
    /// transit or at rest. Flipping the same offset again restores the
    /// original contents (the re-executed map's clean output).
    pub(crate) fn flip_byte(&mut self, offset: usize) {
        self.bytes[offset] ^= 0x01;
    }

    /// Sort the record index into the canonical order with the default
    /// [`SortStrategy::Radix`] pipeline. Unstable, but observationally
    /// deterministic (see module docs).
    pub fn sort_unstable(&mut self) {
        self.sort_with(SortStrategy::Radix);
    }

    /// Sort the record index into the canonical `(prefix, key bytes,
    /// value bytes, offset)` order with the given strategy, and mark the
    /// arena as a single sorted run. Both strategies produce the
    /// identical index array (the order is total).
    pub fn sort_with(&mut self, strategy: SortStrategy) {
        match strategy {
            SortStrategy::Radix => self.sort_radix(),
            SortStrategy::Comparison => self.sort_comparison(),
        }
        self.runs.clear();
        if !self.entries.is_empty() {
            self.runs.push(u32::try_from(self.entries.len()).expect("spill arena entry count"));
        }
    }

    fn sort_comparison(&mut self) {
        let SpillArena { bytes, entries, .. } = self;
        entries.sort_unstable_by(|a, b| cmp_entries(bytes, a, b));
    }

    /// LSD radix sort over the cached prefixes: histogram all 8 prefix
    /// bytes in one pass, run a stable counting pass per non-constant
    /// byte (least significant first), then comparison-sort each
    /// prefix-equal run by `(key tail, value, offset)`.
    fn sort_radix(&mut self) {
        let n = self.entries.len();
        if n < RADIX_FALLBACK || n >= u32::MAX as usize {
            self.sort_comparison();
            return;
        }
        let mut hist = [[0u32; 256]; 8];
        for e in &self.entries {
            let b = e.prefix.to_le_bytes();
            for (h, &byte) in hist.iter_mut().zip(b.iter()) {
                h[byte as usize] += 1;
            }
        }
        let mut src = std::mem::take(&mut self.entries);
        let mut dst = vec![src[0]; n];
        for (pass, h) in hist.iter().enumerate() {
            if h.iter().any(|&c| c as usize == n) {
                // Every entry shares this prefix byte (varint zero
                // padding, IRI scheme bytes, ...): the pass is a no-op.
                continue;
            }
            let mut next = [0u32; 256];
            let mut acc = 0u32;
            for (slot, &count) in next.iter_mut().zip(h.iter()) {
                *slot = acc;
                acc += count;
            }
            for e in &src {
                let byte = ((e.prefix >> (8 * pass)) & 0xff) as usize;
                dst[next[byte] as usize] = *e;
                next[byte] += 1;
            }
            std::mem::swap(&mut src, &mut dst);
        }
        self.entries = src;
        // Comparison fallback only *within* prefix-equal runs; the
        // cached-prefix order between runs is already final.
        let SpillArena { bytes, entries, .. } = self;
        let mut i = 0;
        while i < n {
            let p = entries[i].prefix;
            let mut j = i + 1;
            while j < n && entries[j].prefix == p {
                j += 1;
            }
            if j - i > 1 {
                entries[i..j].sort_unstable_by(|a, b| cmp_entries(bytes, a, b));
            }
            i = j;
        }
    }

    /// Bring the arena into the canonical sorted order by k-way merging
    /// its tracked sorted runs — an index-entry merge; record bytes never
    /// move and no payloads are copied. Falls back to a full radix sort
    /// when no valid run structure is tracked. Produces exactly the array
    /// [`sort_with`](Self::sort_with) would (the canonical order is
    /// total), in `O(n log k)` compares instead of a second full sort.
    ///
    /// The merge is an iterative pairwise ping-pong between two entry
    /// buffers — `⌈log₂ k⌉` passes each 2-way-merging adjacent runs —
    /// rather than a k-way heap: a 2-way merge costs ~1 comparison per
    /// element per pass against the heap's ~2 log₂ k sift comparisons per
    /// element, which matters precisely in the degenerate case (shared
    /// long key prefixes) where every comparison is a full memcmp.
    pub fn merge_sorted_runs(&mut self) {
        let n = self.entries.len();
        if self.runs.last().map_or(0, |&e| e as usize) != n {
            self.sort_with(SortStrategy::Radix);
            return;
        }
        if self.runs.len() <= 1 {
            return;
        }
        let mut bounds: Vec<(usize, usize)> = {
            let mut v = Vec::with_capacity(self.runs.len());
            let mut start = 0usize;
            for &end in &self.runs {
                v.push((start, end as usize));
                start = end as usize;
            }
            v
        };
        let mut src = std::mem::take(&mut self.entries);
        let mut dst = vec![src[0]; n];
        let bytes = &self.bytes;
        while bounds.len() > 1 {
            let mut next_bounds = Vec::with_capacity(bounds.len().div_ceil(2));
            let mut pair = 0;
            while pair + 1 < bounds.len() {
                let (a_start, a_end) = bounds[pair];
                let (b_start, b_end) = bounds[pair + 1];
                let (mut a, mut b, mut out) = (a_start, b_start, a_start);
                while a < a_end && b < b_end {
                    // The offset tie-break makes the order total, so
                    // distinct entries never compare equal and either
                    // branch choice on a tie would be unreachable.
                    let take_a = {
                        let (ea, eb) = (&src[a], &src[b]);
                        ea.prefix < eb.prefix
                            || (ea.prefix == eb.prefix && cmp_entries(bytes, ea, eb).is_lt())
                    };
                    if take_a {
                        dst[out] = src[a];
                        a += 1;
                    } else {
                        dst[out] = src[b];
                        b += 1;
                    }
                    out += 1;
                }
                dst[out..out + (a_end - a)].copy_from_slice(&src[a..a_end]);
                out += a_end - a;
                dst[out..out + (b_end - b)].copy_from_slice(&src[b..b_end]);
                next_bounds.push((a_start, b_end));
                pair += 2;
            }
            if pair < bounds.len() {
                let (start, end) = bounds[pair];
                dst[start..end].copy_from_slice(&src[start..end]);
                next_bounds.push((start, end));
            }
            std::mem::swap(&mut src, &mut dst);
            bounds = next_bounds;
        }
        self.entries = src;
        self.runs = vec![u32::try_from(n).expect("spill arena entry count")];
    }
}

/// Iterator over maximal equal-key record ranges of a sorted arena,
/// produced by [`SpillArena::group_ranges`].
#[derive(Debug)]
pub struct GroupRanges<'a> {
    arena: &'a SpillArena,
    start: usize,
}

impl Iterator for GroupRanges<'_> {
    type Item = std::ops::Range<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.arena.len();
        if self.start >= n {
            return None;
        }
        let i = self.start;
        let mut j = i + 1;
        while j < n && self.arena.keys_equal(i, j) {
            j += 1;
        }
        self.start = j;
        Some(i..j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(arena: &SpillArena) -> Vec<(Vec<u8>, Vec<u8>)> {
        arena.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect()
    }

    #[test]
    fn push_and_slice_roundtrip() {
        let mut a = SpillArena::default();
        a.push(b"key1", 7, |buf| buf.extend_from_slice(b"value1"));
        a.push_pair(b"k", b"", 3);
        assert_eq!(a.len(), 2);
        assert_eq!(a.key(0), b"key1");
        assert_eq!(a.value(0), b"value1");
        assert_eq!(a.key(1), b"k");
        assert_eq!(a.value(1), b"");
        assert_eq!(a.text_bytes(), 10);
    }

    #[test]
    fn prefix_matches_lexicographic_order() {
        // prefix(a) < prefix(b) must imply key(a) < key(b) bytewise, for
        // keys shorter, longer, and exactly 8 bytes — including embedded
        // zero bytes (which collide with padding and must fall through to
        // the memcmp tie-break, never mis-order).
        let keys: Vec<&[u8]> = vec![
            b"",
            b"\0",
            b"\0a",
            b"a",
            b"a\0",
            b"ab",
            b"abcdefgh",
            b"abcdefghi",
            b"abcdefgi",
            b"b",
            b"\xff\xff\xff\xff\xff\xff\xff\xff\xff",
        ];
        for x in &keys {
            for y in &keys {
                let (px, py) = (key_prefix(x), key_prefix(y));
                if px < py {
                    assert!(x < y, "{x:?} vs {y:?}");
                } else if px > py {
                    assert!(x > y, "{x:?} vs {y:?}");
                }
                // px == py says nothing; the sort memcmps the full keys.
            }
        }
    }

    #[test]
    fn sort_matches_owned_pair_reference() {
        let mut a = SpillArena::default();
        let mut reference: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in [5u32, 3, 11, 3, 0, 7, 3] {
            let key = format!("key{i}").into_bytes();
            let val = format!("v{}", i * 2).into_bytes();
            a.push_pair(&key, &val, 1);
            reference.push((key, val));
        }
        a.sort_unstable();
        reference.sort();
        assert_eq!(collect(&a), reference);
    }

    #[test]
    fn prefix_tie_keys_sort_and_group_correctly() {
        // All keys share the same 8-byte prefix; order must come from the
        // tails (memcmp fallback), and grouping must separate them.
        let tails = ["", "a", "aa", "b", "\0"];
        let mut a = SpillArena::default();
        for t in tails.iter().rev() {
            let key = format!("SHARED8B{t}");
            a.push_pair(key.as_bytes(), b"v", 1);
        }
        // Two extra records with a duplicate key, to exercise grouping.
        a.push_pair(b"SHARED8Ba", b"w", 1);
        a.push_pair(b"SHARED8B", b"u", 1);
        a.sort_unstable();

        let mut reference: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for t in tails.iter().rev() {
            reference.push((format!("SHARED8B{t}").into_bytes(), b"v".to_vec()));
        }
        reference.push((b"SHARED8Ba".to_vec(), b"w".to_vec()));
        reference.push((b"SHARED8B".to_vec(), b"u".to_vec()));
        reference.sort();
        assert_eq!(collect(&a), reference);

        // Group boundaries: equal keys adjacent, distinct keys separated.
        let mut groups = Vec::new();
        let mut i = 0;
        while i < a.len() {
            let mut j = i + 1;
            while j < a.len() && a.keys_equal(i, j) {
                j += 1;
            }
            groups.push((a.key(i).to_vec(), j - i));
            i = j;
        }
        assert_eq!(
            groups,
            vec![
                (b"SHARED8B".to_vec(), 2),
                (b"SHARED8B\0".to_vec(), 1),
                (b"SHARED8Ba".to_vec(), 2),
                (b"SHARED8Baa".to_vec(), 1),
                (b"SHARED8Bb".to_vec(), 1),
            ]
        );
    }

    #[test]
    fn absorb_concatenates_in_order() {
        let mut a = SpillArena::default();
        a.push_pair(b"z", b"1", 2);
        let mut b = SpillArena::default();
        b.push_pair(b"a", b"2", 3);
        b.push_pair(b"m", b"3", 4);
        a.absorb(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.text_bytes(), 9);
        assert_eq!(
            collect(&a),
            vec![
                (b"z".to_vec(), b"1".to_vec()),
                (b"a".to_vec(), b"2".to_vec()),
                (b"m".to_vec(), b"3".to_vec()),
            ]
        );
    }

    #[test]
    fn encoded_bytes_is_exact_buffer_size() {
        let mut a = SpillArena::default();
        assert_eq!(a.encoded_bytes(), 0);
        a.push_pair(b"key1", b"value1", 99);
        a.push_pair(b"k", b"", 99);
        // 4 + 6 + 1 + 0 buffer bytes, regardless of simulated text size.
        assert_eq!(a.encoded_bytes(), 11);
        let mut b = SpillArena::default();
        b.push_pair(b"xy", b"z", 1);
        a.absorb(&b);
        assert_eq!(a.encoded_bytes(), 14);
    }

    #[test]
    fn short_key_length_ties_sort_and_group_like_memcmp() {
        // Keys that share a prefix cache and fit inside it entirely —
        // including embedded/trailing NULs, the adversarial case for the
        // zero-padding argument. The length-compare fast path must agree
        // with full lexicographic order, and grouping must not merge
        // "a" with "a\0".
        let keys: Vec<&[u8]> =
            vec![b"", b"\0", b"\0\0", b"a", b"a\0", b"a\0\0", b"a\0b", b"ab", b"abcdefgh"];
        let mut a = SpillArena::default();
        for (i, k) in keys.iter().enumerate().rev() {
            a.push_pair(k, format!("v{i}").as_bytes(), 1);
            a.push_pair(k, format!("v{i}").as_bytes(), 1); // duplicate for grouping
        }
        a.sort_unstable();
        let mut reference: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            for _ in 0..2 {
                reference.push((k.to_vec(), format!("v{i}").into_bytes()));
            }
        }
        reference.sort();
        assert_eq!(collect(&a), reference);

        // Each distinct key forms exactly one group of two records.
        let mut i = 0;
        let mut groups = Vec::new();
        while i < a.len() {
            let mut j = i + 1;
            while j < a.len() && a.keys_equal(i, j) {
                j += 1;
            }
            groups.push((a.key(i).to_vec(), j - i));
            i = j;
        }
        assert_eq!(groups.len(), keys.len());
        for (k, n) in &groups {
            assert_eq!(*n, 2, "key {k:?} must group exactly its two records");
        }
    }

    #[test]
    fn composite_varint_keys_share_prefix_and_still_sort() {
        // Single canonical varints never share an 8-byte prefix (see
        // module docs), so the prefix-tie path for ID traffic is reached
        // via *composite* keys — e.g. a (tag, id) pair whose varint
        // concatenation exceeds 8 bytes. Build keys sharing the first 8
        // bytes but diverging in the tail.
        let composite = |a: u32, b: u32| {
            let mut k = Vec::new();
            crate::codec::write_uvarint(&mut k, a);
            crate::codec::write_uvarint(&mut k, b);
            k
        };
        // varint(u32::MAX) = 5 bytes, varint(x >= 2^21) >= 4 bytes: the
        // 9-byte keys below share their first 8 bytes whenever the second
        // component agrees in its low 28 bits' first 3 encoded bytes.
        let k1 = composite(u32::MAX, 0x0fff_ffff); // ff ff ff ff 0f ff ff ff 7f
        let k2 = composite(u32::MAX, 0x07ff_ffff); // ff ff ff ff 0f ff ff ff 3f
        assert_eq!(k1.len(), 9);
        assert_eq!(k2.len(), 9);
        assert_eq!(key_prefix(&k1), key_prefix(&k2), "test needs a genuine prefix tie");
        assert_ne!(k1, k2);

        let mut a = SpillArena::default();
        a.push_pair(&k1, b"big", 1);
        a.push_pair(&k2, b"small", 1);
        a.push_pair(&k1, b"big2", 1);
        a.sort_unstable();
        // Tail byte 0x3f < 0x7f puts k2 first; the two k1 records group.
        assert_eq!(
            collect(&a),
            vec![
                (k2.clone(), b"small".to_vec()),
                (k1.clone(), b"big".to_vec()),
                (k1.clone(), b"big2".to_vec()),
            ]
        );
        assert!(a.keys_equal(1, 2));
        assert!(!a.keys_equal(0, 1));
    }

    #[test]
    fn distinct_canonical_varints_never_share_a_prefix() {
        // The claim the integer-compare fast path rests on: single
        // canonical u32 varints are prefix-complete, so two distinct ids
        // always differ within the 8-byte cache. Sample the LEB128 length
        // boundaries plus a spread of interior values.
        let mut ids: Vec<u32> = vec![
            0,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            0xfff_ffff,
            0x1000_0000,
            u32::MAX,
        ];
        for i in 0..=64u32 {
            ids.push(i.wrapping_mul(0x9e37_79b9)); // golden-ratio spread
        }
        ids.sort_unstable();
        ids.dedup();
        let encode = |v: u32| {
            let mut k = Vec::new();
            crate::codec::write_uvarint(&mut k, v);
            k
        };
        for x in &ids {
            for y in &ids {
                let (kx, ky) = (encode(*x), encode(*y));
                if x != y {
                    assert_ne!(
                        key_prefix(&kx),
                        key_prefix(&ky),
                        "ids {x} and {y} must not collide in the prefix cache"
                    );
                }
                // And prefix order must equal id order (both ≤ 8 bytes, so
                // the padded prefix *is* the sort key).
                assert_eq!(
                    key_prefix(&kx).cmp(&key_prefix(&ky)).then(kx.len().cmp(&ky.len())),
                    kx.cmp(&ky),
                    "prefix+length order must match byte order for {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn footprint_and_record_sizes_track_contents() {
        let mut a = SpillArena::default();
        assert_eq!(a.footprint_bytes(), 0);
        a.push_pair(b"key1", b"value1", 99);
        a.push_pair(b"k", b"", 99);
        let entry = std::mem::size_of::<IndexEntry>() as u64;
        assert_eq!(a.footprint_bytes(), 11 + 2 * entry);
        assert_eq!(a.record_wire_sizes().collect::<Vec<_>>(), vec![10, 1]);
        let mut b = SpillArena::default();
        b.push_pair(b"xy", b"z", 1);
        a.absorb(&b);
        assert_eq!(a.footprint_bytes(), 14 + 3 * entry);
        // Sorting moves no bytes: the footprint is unchanged, and the
        // per-record sizes are a permutation of the pre-sort sizes.
        a.sort_unstable();
        assert_eq!(a.footprint_bytes(), 14 + 3 * entry);
        let mut sizes: Vec<u64> = a.record_wire_sizes().collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 10]);
    }

    #[test]
    fn seal_and_verify_catch_flips() {
        let mut a = SpillArena::default();
        a.push_pair(b"key1", b"value1", 1);
        a.push_pair(b"key2", b"value2", 1);
        // Unsealed arenas have nothing to verify against.
        assert_eq!(a.verify(), Ok(()));
        a.seal();
        assert_eq!(a.verify(), Ok(()));
        // A silent bit flip is caught, and restoring the byte re-verifies.
        a.flip_byte(3);
        let err = a.verify().expect_err("flip must be detected");
        assert_ne!(err.0, err.1);
        a.flip_byte(3);
        assert_eq!(a.verify(), Ok(()));
        // Every byte position is covered.
        for off in 0..a.encoded_bytes() as usize {
            a.flip_byte(off);
            assert!(a.verify().is_err(), "flip at {off} undetected");
            a.flip_byte(off);
        }
        // Mutation through the normal API clears the seal.
        a.push_pair(b"key3", b"v", 1);
        assert_eq!(a.verify(), Ok(()));
    }

    #[test]
    fn seal_covers_record_order() {
        // Same bytes, different index order (post-sort) must checksum
        // differently: the record stream is entries-order, not byte-order.
        let mut a = SpillArena::default();
        a.push_pair(b"zz", b"1", 1);
        a.push_pair(b"aa", b"2", 1);
        a.seal();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.seal();
        assert_eq!(a.verify(), Ok(()));
        assert_eq!(sorted.verify(), Ok(()));
        assert_ne!(a.sealed, sorted.sealed);
        // absorb clears the seal on the accumulator.
        let mut acc = SpillArena::default();
        acc.seal();
        acc.absorb(&a);
        assert_eq!(acc.sealed, None);
    }

    #[test]
    fn equal_keys_sort_by_value() {
        let mut a = SpillArena::default();
        a.push_pair(b"k", b"bb", 1);
        a.push_pair(b"k", b"aa", 1);
        a.push_pair(b"k", b"", 1);
        a.sort_unstable();
        assert_eq!(
            collect(&a),
            vec![
                (b"k".to_vec(), b"".to_vec()),
                (b"k".to_vec(), b"aa".to_vec()),
                (b"k".to_vec(), b"bb".to_vec()),
            ]
        );
    }

    /// Every key family the existing fixtures pin: short keys with
    /// embedded/trailing NULs (length-tie path), long keys sharing an
    /// 8-byte prefix (memcmp path), long keys with distinct full
    /// prefixes (the no-touch fast path), and 9-byte composite varints.
    fn fixture_keys() -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> =
            [b"" as &[u8], b"\0", b"\0\0", b"a", b"a\0", b"a\0\0", b"a\0b", b"ab", b"abcdefgh"]
                .iter()
                .map(|k| k.to_vec())
                .collect();
        for t in ["", "a", "aa", "b", "\0"] {
            keys.push(format!("SHARED8B{t}").into_bytes());
        }
        keys.push(b"DIFFER8Bx".to_vec());
        let composite = |a: u32, b: u32| {
            let mut k = Vec::new();
            crate::codec::write_uvarint(&mut k, a);
            crate::codec::write_uvarint(&mut k, b);
            k
        };
        keys.push(composite(u32::MAX, 0x0fff_ffff));
        keys.push(composite(u32::MAX, 0x07ff_ffff));
        keys
    }

    #[test]
    fn keys_equal_matches_memcmp_on_prefix_tie_fixtures() {
        let keys = fixture_keys();
        let mut a = SpillArena::default();
        for k in &keys {
            a.push_pair(k, b"v", 1);
            a.push_pair(k, b"w", 1); // duplicate: the equality side
        }
        for i in 0..a.len() {
            for j in 0..a.len() {
                assert_eq!(
                    a.keys_equal(i, j),
                    a.key(i) == a.key(j),
                    "keys_equal diverges from memcmp on {:?} vs {:?}",
                    a.key(i),
                    a.key(j)
                );
            }
        }
    }

    /// Deterministic mixed workload big enough to take the radix path.
    fn mixed_arena(records: usize) -> SpillArena {
        let mut a = SpillArena::default();
        for i in 0..records {
            let x = (i as u32).wrapping_mul(0x9e37_79b9);
            let key: Vec<u8> = match i % 4 {
                0 => {
                    let mut k = Vec::new();
                    crate::codec::write_uvarint(&mut k, x % 5000);
                    k
                }
                1 => format!("<http://example.org/r{}>", x % 300).into_bytes(),
                2 => format!("SHARED8B{}", x % 40).into_bytes(),
                _ => {
                    let mut k = Vec::new();
                    crate::codec::write_uvarint(&mut k, u32::MAX);
                    crate::codec::write_uvarint(&mut k, 0x0800_0000 + x % 64);
                    k
                }
            };
            a.push_pair(&key, format!("v{}", x % 7).as_bytes(), 1);
        }
        a
    }

    fn index_snapshot(a: &SpillArena) -> Vec<(u64, u32, u32, u32)> {
        a.entries.iter().map(|e| (e.prefix, e.off, e.key_len, e.val_len)).collect()
    }

    #[test]
    fn radix_and_comparison_agree_on_large_mixed_keys() {
        let base = mixed_arena(2000);
        let mut radix = base.clone();
        radix.sort_with(SortStrategy::Radix);
        let mut cmp = base.clone();
        cmp.sort_with(SortStrategy::Comparison);
        assert_eq!(index_snapshot(&radix), index_snapshot(&cmp));
        assert_eq!(radix.checksum(), cmp.checksum());
        // And both match the owned-pair reference order.
        let mut reference: Vec<(Vec<u8>, Vec<u8>)> =
            base.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        reference.sort();
        assert_eq!(collect(&radix), reference);
    }

    #[test]
    fn absorb_sorted_merge_equals_full_sort() {
        // Split a workload into map-style buckets, sort each, absorb as
        // runs, merge — must equal plain absorb + full sort, entries,
        // checksum, and group boundaries alike.
        let buckets: Vec<SpillArena> = (0..5)
            .map(|b| {
                let src = mixed_arena(300 + 67 * b);
                let mut bucket = SpillArena::default();
                for (k, v) in src.iter().skip(40 * b) {
                    bucket.push_pair(k, v, 1);
                }
                bucket
            })
            .collect();
        let mut merged = SpillArena::default();
        for bucket in &buckets {
            let mut sorted = bucket.clone();
            sorted.sort_with(SortStrategy::Radix);
            merged.absorb_sorted(&sorted);
        }
        assert_eq!(merged.sorted_run_count(), 5);
        merged.merge_sorted_runs();
        assert_eq!(merged.sorted_run_count(), 1);

        let mut resorted = SpillArena::default();
        for bucket in &buckets {
            let mut sorted = bucket.clone();
            sorted.sort_with(SortStrategy::Radix);
            resorted.absorb(&sorted);
        }
        assert_eq!(resorted.sorted_run_count(), 0);
        resorted.sort_with(SortStrategy::Comparison);
        assert_eq!(index_snapshot(&merged), index_snapshot(&resorted));
        assert_eq!(merged.checksum(), resorted.checksum());
        let groups: Vec<_> = merged.group_ranges().collect();
        assert_eq!(groups, resorted.group_ranges().collect::<Vec<_>>());
        assert_eq!(groups.iter().map(|r| r.len()).sum::<usize>(), merged.len());
    }

    #[test]
    fn merge_without_run_structure_falls_back_to_full_sort() {
        let mut a = mixed_arena(500);
        assert_eq!(a.sorted_run_count(), 0);
        a.merge_sorted_runs();
        let mut reference = mixed_arena(500);
        reference.sort_with(SortStrategy::Comparison);
        assert_eq!(index_snapshot(&a), index_snapshot(&reference));
        // A push invalidates the run structure again.
        a.push_pair(b"zzz", b"v", 1);
        assert_eq!(a.sorted_run_count(), 0);
    }

    #[test]
    fn group_ranges_matches_manual_grouping_loop() {
        let mut a = mixed_arena(700);
        a.sort_unstable();
        let mut manual = Vec::new();
        let mut i = 0;
        while i < a.len() {
            let mut j = i + 1;
            while j < a.len() && a.keys_equal(i, j) {
                j += 1;
            }
            manual.push(i..j);
            i = j;
        }
        assert_eq!(a.group_ranges().collect::<Vec<_>>(), manual);
    }

    mod differential {
        use super::*;
        use proptest::prelude::{prop_assert_eq, proptest};
        use proptest::strategy::{BoxedStrategy, Just, Strategy, Union};

        fn varint_id_keys() -> BoxedStrategy<Vec<Vec<u8>>> {
            proptest::collection::vec(0u32..5000, 1..400)
                .prop_map(|ids| {
                    ids.into_iter()
                        .map(|v| {
                            let mut k = Vec::new();
                            crate::codec::write_uvarint(&mut k, v);
                            k
                        })
                        .collect()
                })
                .boxed()
        }

        fn lexical_keys() -> BoxedStrategy<Vec<Vec<u8>>> {
            proptest::collection::vec(0u32..300, 1..400)
                .prop_map(|ids| {
                    ids.into_iter()
                        .map(|v| format!("<http://example.org/res{v}>").into_bytes())
                        .collect()
                })
                .boxed()
        }

        /// Pathological: every key shares (at least) an 8-byte prefix,
        /// with short-tail collisions and embedded NULs.
        fn shared_prefix_keys() -> BoxedStrategy<Vec<Vec<u8>>> {
            let tail = Union::new([
                Just(Vec::new()).boxed(),
                Just(b"\0".to_vec()).boxed(),
                Just(b"a".to_vec()).boxed(),
                Just(b"a\0".to_vec()).boxed(),
                Just(b"ab".to_vec()).boxed(),
                proptest::collection::vec(0u8..=255, 0..12).boxed(),
            ]);
            proptest::collection::vec(tail, 1..400)
                .prop_map(|tails| {
                    tails
                        .into_iter()
                        .map(|t| {
                            let mut k = b"SHARED8B".to_vec();
                            k.extend_from_slice(&t);
                            k
                        })
                        .collect()
                })
                .boxed()
        }

        fn any_key_set() -> Union<Vec<Vec<u8>>> {
            Union::new([varint_id_keys(), lexical_keys(), shared_prefix_keys()])
        }

        fn build(keys: &[Vec<u8>]) -> SpillArena {
            let mut a = SpillArena::default();
            for (i, k) in keys.iter().enumerate() {
                // Few distinct values so equal (key, value) pairs occur.
                a.push_pair(k, format!("v{}", i % 3).as_bytes(), 1);
            }
            a
        }

        proptest! {
            /// The tentpole contract: both strategies produce the
            /// byte-identical post-sort arena — entries and checksums.
            #[test]
            fn radix_equals_comparison(keys in any_key_set()) {
                let base = build(&keys);
                let mut radix = base.clone();
                radix.sort_with(SortStrategy::Radix);
                let mut cmp = base;
                cmp.sort_with(SortStrategy::Comparison);
                prop_assert_eq!(index_snapshot(&radix), index_snapshot(&cmp));
                prop_assert_eq!(radix.checksum(), cmp.checksum());
            }

            /// The merge path is just another route to the same array.
            #[test]
            fn run_merge_equals_full_sort(
                chunks in proptest::collection::vec(any_key_set(), 1..6)
            ) {
                let mut merged = SpillArena::default();
                let mut resorted = SpillArena::default();
                for keys in &chunks {
                    let mut bucket = build(keys);
                    bucket.sort_with(SortStrategy::Radix);
                    merged.absorb_sorted(&bucket);
                    resorted.absorb(&bucket);
                }
                merged.merge_sorted_runs();
                resorted.sort_with(SortStrategy::Comparison);
                prop_assert_eq!(index_snapshot(&merged), index_snapshot(&resorted));
                prop_assert_eq!(merged.checksum(), resorted.checksum());
            }
        }
    }
}
