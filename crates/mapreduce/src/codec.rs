//! Record codecs.
//!
//! Everything that moves through the engine — job inputs, map output
//! key/value pairs, reduce outputs — implements [`Rec`]:
//!
//! * `encode_into`/`decode` define the physical wire form (compact,
//!   length-prefixed binary, via the `bytes` crate); `encode_into`
//!   *appends* to a caller-provided buffer, so emit sites write straight
//!   into shuffle spill arenas with no per-record allocation, and
//!   [`Rec::to_bytes`] is merely a convenience wrapper;
//! * [`Rec::text_size`] defines the *simulated* size: the number of bytes
//!   the record would occupy as a text row in Hadoop (tab/space-separated
//!   tokens plus newline). All HDFS-read/write and shuffle counters are in
//!   text bytes, because that is what the paper measures — Pig and Hive
//!   move text through HDFS. ID-native records ([`VarId`] and the
//!   dictionary-id record types built on it) are the exception: their
//!   simulated size is their binary varint wire size, since an ID-encoded
//!   job ships compact binary rows, not text.
//!
//! Keys are compared as raw encoded bytes during the shuffle sort, so an
//! implementation must be *canonical*: equal values encode to equal bytes.
//! All implementations here are.

use crate::error::MrError;
use bytes::{Buf, BufMut};
use rdf_model::atom::{Atom, AtomTable};

/// A readable slice with position tracking for decoding.
///
/// A reader may carry a per-task [`AtomTable`]; [`read_atom`] then
/// re-interns decoded tokens instead of allocating a fresh heap string
/// per occurrence. The table never affects the bytes consumed — only who
/// owns the resulting allocation.
///
/// [`read_atom`]: SliceReader::read_atom
pub struct SliceReader<'a> {
    buf: &'a [u8],
    interner: Option<&'a AtomTable>,
}

impl<'a> SliceReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        SliceReader { buf, interner: None }
    }

    /// Wrap a byte slice with a per-task interner for [`Atom`] fields.
    pub fn with_interner(buf: &'a [u8], atoms: &'a AtomTable) -> Self {
        SliceReader { buf, interner: Some(atoms) }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Read a little-endian u32 length / tag.
    pub fn read_u32(&mut self) -> Result<u32, MrError> {
        if self.buf.remaining() < 4 {
            return Err(MrError::Codec("unexpected end of buffer (u32)".into()));
        }
        Ok(self.buf.get_u32_le())
    }

    /// Read a little-endian u64.
    pub fn read_u64(&mut self) -> Result<u64, MrError> {
        if self.buf.remaining() < 8 {
            return Err(MrError::Codec("unexpected end of buffer (u64)".into()));
        }
        Ok(self.buf.get_u64_le())
    }

    /// Read a single byte.
    pub fn read_u8(&mut self) -> Result<u8, MrError> {
        if self.buf.remaining() < 1 {
            return Err(MrError::Codec("unexpected end of buffer (u8)".into()));
        }
        Ok(self.buf.get_u8())
    }

    /// Read `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], MrError> {
        if self.buf.len() < n {
            return Err(MrError::Codec("unexpected end of buffer (bytes)".into()));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<&'a str, MrError> {
        let len = self.read_u32()? as usize;
        let raw = self.read_bytes(len)?;
        std::str::from_utf8(raw).map_err(|e| MrError::Codec(format!("invalid utf-8: {e}")))
    }

    /// Read a length-prefixed UTF-8 token as an [`Atom`], re-interning
    /// through the reader's table when one is attached (repeated tokens
    /// then share one allocation for the task's lifetime).
    pub fn read_atom(&mut self) -> Result<Atom, MrError> {
        let s = self.read_str()?;
        Ok(match self.interner {
            Some(table) => table.intern(s),
            None => Atom::from(s),
        })
    }

    /// Read a canonical LEB128 varint `u32` (see [`write_uvarint`]).
    ///
    /// Rejects encodings longer than 5 bytes, payloads overflowing `u32`,
    /// and non-canonical forms whose final group is zero (`0x80 0x00` for
    /// 0): the shuffle groups records by raw key bytes, so one id must
    /// have exactly one encoding.
    pub fn read_uvarint(&mut self) -> Result<u32, MrError> {
        let mut v: u32 = 0;
        for shift in [0u32, 7, 14, 21, 28] {
            let b = self.read_u8()?;
            let payload = u32::from(b & 0x7f);
            if shift == 28 && payload > 0x0f {
                return Err(MrError::Codec("varint overflows u32".into()));
            }
            v |= payload << shift;
            if b & 0x80 == 0 {
                if shift > 0 && b == 0 {
                    return Err(MrError::Codec("non-canonical varint (zero final group)".into()));
                }
                return Ok(v);
            }
        }
        Err(MrError::Codec("varint exceeds 5 bytes".into()))
    }
}

/// Append the canonical LEB128 encoding of `v`: little-endian base-128
/// groups, high bit set on every byte but the last (1–5 bytes for a
/// `u32`). The encoding is canonical — one value, one byte sequence — so
/// varint-keyed shuffle grouping over raw bytes equals id equality.
pub fn write_uvarint(buf: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Encoded LEB128 length of `v` in bytes (1–5; boundaries at powers of
/// 2^7).
pub fn uvarint_len(v: u32) -> u64 {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// A record that can move through the engine.
pub trait Rec: Sized + Send + Sync + Clone + 'static {
    /// Append the canonical binary encoding of `self` to `buf`.
    ///
    /// This is the primitive the engine's zero-copy emit path is built
    /// on: map emissions encode directly into a per-partition spill
    /// arena, so implementations must only ever *append* (never inspect
    /// or truncate `buf`, which may already hold other records).
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Decode one record from the reader.
    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError>;

    /// Simulated on-disk/wire size in bytes: the record as one text row
    /// (tokens + separators + newline).
    fn text_size(&self) -> u64;

    /// Convenience: encode into a fresh vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        self.encode_into(&mut v);
        v
    }

    /// Convenience: decode from a full slice, requiring full consumption.
    fn from_bytes(buf: &[u8]) -> Result<Self, MrError> {
        let mut r = SliceReader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(MrError::Codec(format!("{} trailing bytes after record", r.remaining())));
        }
        Ok(v)
    }

    /// [`from_bytes`](Rec::from_bytes), re-interning [`Atom`] fields
    /// through a per-task table. Byte behaviour is identical; only the
    /// ownership of decoded tokens changes.
    fn from_bytes_with(buf: &[u8], atoms: &AtomTable) -> Result<Self, MrError> {
        let mut r = SliceReader::with_interner(buf, atoms);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(MrError::Codec(format!("{} trailing bytes after record", r.remaining())));
        }
        Ok(v)
    }
}

impl Rec for String {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(u32::try_from(self.len()).expect("string too long"));
        buf.put_slice(self.as_bytes());
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        Ok(r.read_str()?.to_string())
    }

    fn text_size(&self) -> u64 {
        self.len() as u64 + 1 // + newline
    }
}

/// Byte-identical to the `String` codec (u32-LE length prefix + UTF-8),
/// so `String`-era wire bytes, shuffle sort order, and `text_size`
/// accounting all carry over unchanged. Decoding goes through
/// [`SliceReader::read_atom`], which re-interns when the reader carries a
/// task table.
impl Rec for Atom {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(u32::try_from(self.len()).expect("string too long"));
        buf.put_slice(self.as_bytes());
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        r.read_atom()
    }

    fn text_size(&self) -> u64 {
        self.len() as u64 + 1 // + newline
    }
}

impl Rec for u64 {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(*self);
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        r.read_u64()
    }

    fn text_size(&self) -> u64 {
        // Decimal digits + newline, as a text row would store it.
        decimal_digits(*self) + 1
    }
}

/// Number of decimal digits of `n` (at least 1).
pub fn decimal_digits(n: u64) -> u64 {
    if n == 0 {
        1
    } else {
        n.ilog10() as u64 + 1
    }
}

impl<T: Rec> Rec for Vec<T> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(u32::try_from(self.len()).expect("vec too long"));
        for item in self {
            item.encode_into(buf);
        }
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        let n = r.read_u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }

    fn text_size(&self) -> u64 {
        // Items lose their own newline; joined by a 1-byte separator, one
        // trailing newline for the row.
        if self.is_empty() {
            1
        } else {
            self.iter().map(|x| x.text_size()).sum::<u64>()
        }
    }
}

impl<A: Rec, B: Rec> Rec for (A, B) {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        self.0.encode_into(buf);
        self.1.encode_into(buf);
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }

    fn text_size(&self) -> u64 {
        // Two fields on one row: drop one of the two newlines, add one tab.
        self.0.text_size() + self.1.text_size() - 1
    }
}

impl Rec for () {
    fn encode_into(&self, _buf: &mut Vec<u8>) {}

    fn decode(_r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        Ok(())
    }

    fn text_size(&self) -> u64 {
        0
    }
}

/// A dictionary id on the wire: the ID-native shuffle codec.
///
/// Encodes as a canonical LEB128 varint (1–5 bytes; see
/// [`write_uvarint`]), replacing the lexical token codec for jobs whose
/// data plane moves dictionary ids. Two properties make it shuffle-safe:
///
/// * **Canonical** — one id, one byte sequence, so raw-byte key grouping
///   equals id equality (and, through an injective dictionary, token
///   equality).
/// * **Prefix-complete** — every encoding fits the spill arenas' 8-byte
///   key-prefix cache, and distinct canonical varints never collide in
///   the zero-padded prefix (a longer encoding extending a shorter one
///   would need a continuation bit on the shorter's final byte, which
///   canonical LEB128 forbids). Sorting and grouping varint keys is
///   therefore pure integer compares — no memcmp fallback ever runs.
///
/// `text_size` is the encoded varint length: an ID-native record's
/// simulated on-disk form *is* its binary wire form (a Hadoop sequence
/// file of ids, not a text row), which is what makes the shuffle-byte
/// savings visible to the byte counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl Rec for VarId {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_uvarint(buf, self.0);
    }

    fn decode(r: &mut SliceReader<'_>) -> Result<Self, MrError> {
        r.read_uvarint().map(VarId)
    }

    fn text_size(&self) -> u64 {
        uvarint_len(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Rec + PartialEq + std::fmt::Debug>(v: T) {
        let enc = v.to_bytes();
        let dec = T::from_bytes(&enc).unwrap();
        assert_eq!(v, dec);
    }

    #[test]
    fn string_roundtrip() {
        roundtrip(String::from("hello world"));
        roundtrip(String::new());
        roundtrip(String::from("unicode: \u{1F980}"));
    }

    #[test]
    fn u64_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
    }

    #[test]
    fn vec_roundtrip() {
        roundtrip(vec![String::from("a"), String::from("bb")]);
        roundtrip(Vec::<String>::new());
        roundtrip(vec![1u64, 2, 3]);
    }

    #[test]
    fn tuple_roundtrip() {
        roundtrip((String::from("k"), 42u64));
        roundtrip((String::from("k"), vec![String::from("v")]));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut enc = String::from("x").to_bytes();
        enc.push(0);
        assert!(String::from_bytes(&enc).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = String::from("hello").to_bytes();
        assert!(String::from_bytes(&enc[..3]).is_err());
        assert!(u64::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn decode_rejects_bad_utf8() {
        let mut enc = Vec::new();
        enc.put_u32_le(2);
        enc.extend_from_slice(&[0xFF, 0xFE]);
        assert!(String::from_bytes(&enc).is_err());
    }

    #[test]
    fn text_sizes() {
        assert_eq!(String::from("abc").text_size(), 4);
        assert_eq!(0u64.text_size(), 2);
        assert_eq!(12345u64.text_size(), 6);
        assert_eq!(vec![String::from("ab"), String::from("c")].text_size(), 5);
        assert_eq!((String::from("ab"), String::from("c")).text_size(), 4);
        assert_eq!(Vec::<String>::new().text_size(), 1);
    }

    #[test]
    fn canonical_key_encoding() {
        // Equal strings must encode to equal bytes (shuffle grouping
        // relies on it).
        assert_eq!(String::from("k1").to_bytes(), String::from("k1").to_bytes());
        assert_ne!(String::from("k1").to_bytes(), String::from("k2").to_bytes());
    }

    #[test]
    fn atom_codec_matches_string_codec() {
        for s in ["", "k1", "<gene9>", "unicode: \u{1F980}"] {
            let owned = String::from(s);
            let interned = Atom::from(s);
            assert_eq!(owned.to_bytes(), interned.to_bytes(), "wire bytes for {s:?}");
            assert_eq!(owned.text_size(), interned.text_size(), "text size for {s:?}");
            roundtrip(interned);
        }
    }

    #[test]
    fn atom_decode_interns_through_task_table() {
        let table = AtomTable::new();
        let bytes = (Atom::from("<p>"), Atom::from("<p>")).to_bytes();
        let (a, b) = <(Atom, Atom)>::from_bytes_with(&bytes, &table).unwrap();
        assert!(Atom::ptr_eq(&a, &b), "same token must share one allocation");
        assert_eq!(table.len(), 1);
        // Without a table, decoding still works (fresh allocations).
        let (c, d) = <(Atom, Atom)>::from_bytes(&bytes).unwrap();
        assert_eq!(c, d);
        assert!(!Atom::ptr_eq(&c, &d));
    }

    #[test]
    fn decimal_digit_helper() {
        assert_eq!(decimal_digits(0), 1);
        assert_eq!(decimal_digits(9), 1);
        assert_eq!(decimal_digits(10), 2);
        assert_eq!(decimal_digits(u64::MAX), 20);
    }

    /// Ids straddling every LEB128 length boundary (2^7, 2^14, 2^21,
    /// 2^28), plus the extremes.
    fn boundary_ids() -> Vec<u32> {
        vec![
            0,
            1,
            (1 << 7) - 1,
            1 << 7,
            (1 << 14) - 1,
            1 << 14,
            (1 << 21) - 1,
            1 << 21,
            (1 << 28) - 1,
            1 << 28,
            u32::MAX,
        ]
    }

    #[test]
    fn varint_roundtrip_at_length_boundaries() {
        for id in boundary_ids() {
            let v = VarId(id);
            roundtrip(v);
            let enc = v.to_bytes();
            assert_eq!(enc.len() as u64, uvarint_len(id), "length of {id}");
            assert_eq!(v.text_size(), uvarint_len(id));
        }
    }

    #[test]
    fn varint_golden_bytes() {
        let cases: &[(u32, &[u8])] = &[
            (0, &[0x00]),
            (1, &[0x01]),
            (127, &[0x7f]),
            (128, &[0x80, 0x01]),
            (16_383, &[0xff, 0x7f]),
            (16_384, &[0x80, 0x80, 0x01]),
            (2_097_151, &[0xff, 0xff, 0x7f]),
            (2_097_152, &[0x80, 0x80, 0x80, 0x01]),
            (268_435_455, &[0xff, 0xff, 0xff, 0x7f]),
            (268_435_456, &[0x80, 0x80, 0x80, 0x80, 0x01]),
            (u32::MAX, &[0xff, 0xff, 0xff, 0xff, 0x0f]),
        ];
        for (id, bytes) in cases {
            assert_eq!(VarId(*id).to_bytes(), *bytes, "encoding of {id}");
        }
    }

    #[test]
    fn varint_rejects_overflow_and_overlength() {
        // Payload past u32::MAX in the 5th group.
        assert!(VarId::from_bytes(&[0xff, 0xff, 0xff, 0xff, 0x1f]).is_err());
        // Continuation bit on the 5th byte (6-byte encoding).
        assert!(VarId::from_bytes(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]).is_err());
        // Truncated mid-varint.
        assert!(VarId::from_bytes(&[0x80]).is_err());
        assert!(VarId::from_bytes(&[]).is_err());
    }

    #[test]
    fn varint_rejects_non_canonical_encodings() {
        // 0x80 0x00 decodes to 0 but is not the canonical [0x00]: grouping
        // by raw key bytes requires exactly one encoding per id.
        assert!(VarId::from_bytes(&[0x80, 0x00]).is_err());
        assert!(VarId::from_bytes(&[0xff, 0x80, 0x00]).is_err());
        assert!(VarId::from_bytes(&[0x00]).is_ok());
    }

    #[test]
    fn varint_composite_records() {
        // VarId composes with tuples and vecs like any other Rec.
        roundtrip((VarId(5), VarId(1 << 20)));
        roundtrip(vec![VarId(0), VarId(u32::MAX)]);
    }
}
